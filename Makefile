# Development entry points. CI runs the same steps (see
# .github/workflows/ci.yml); `make bench` is how the checked-in
# BENCH_*.json trajectory is produced — run it once per PR and commit
# the artifact so benchmark regressions are visible PR-over-PR.

BENCH_OUT ?= BENCH_PR4.json
# -benchtime 1x keeps the sweep cheap enough for CI; override locally
# (e.g. BENCH_TIME=1s) for stabler numbers before reading too much into
# a diff.
BENCH_TIME ?= 1x

.PHONY: test race cover bench fmt vet

test:
	go build ./... && go test ./...

race:
	go test -race ./...

cover:
	go test -coverprofile=cover.out -coverpkg=./... ./...
	go tool cover -func=cover.out | tail -1

bench:
	# No pipe: a pipeline would exit with tee's status and let a failing
	# benchmark run publish a silently truncated artifact.
	go test -run '^$$' -bench . -benchmem -benchtime $(BENCH_TIME) ./... > bench.txt || { cat bench.txt; rm -f bench.txt; exit 1; }
	cat bench.txt
	go run ./cmd/bench2json < bench.txt > $(BENCH_OUT)
	rm -f bench.txt
	@echo "wrote $(BENCH_OUT)"

fmt:
	gofmt -l .

vet:
	go vet ./...
