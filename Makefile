# Development entry points. CI runs the same steps (see
# .github/workflows/ci.yml); `make bench` is how the checked-in
# BENCH_*.json trajectory is produced — run it once per PR and commit
# the artifact so benchmark regressions are visible PR-over-PR.

BENCH_OUT ?= BENCH_PR5.json
# The archived trajectory runs every benchmark a fixed number of times:
# -benchtime 3x / -count 1 means 3 iterations per op for every result, so
# PR-over-PR artifacts average the same amount of work and their diffs
# are comparable (the PR4 artifact recorded iterations:1 everywhere —
# single samples of multi-second benches). Override BENCH_TIME (e.g.
# BENCH_TIME=1s) locally for tighter numbers on fast benches.
BENCH_TIME ?= 3x
BENCH_COUNT ?= 1
# Baseline the bench-diff target compares against.
BENCH_BASE ?= BENCH_PR5.json

# Third-party lint passes are pinned and run via `go run` so nothing is
# installed globally and go.mod stays dependency-free. Both need the
# module proxy; `make lint` probes for it first and skips them with a
# notice when offline, so the in-tree passes (gofmt, vet, krakcheck)
# still gate everywhere.
STATICCHECK ?= honnef.co/go/tools/cmd/staticcheck@2025.1
GOVULNCHECK ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: test race cover bench bench-diff profile fmt vet lint lint-fix

test:
	go build ./... && go test ./...

race:
	go test -race ./...

cover:
	go test -coverprofile=cover.out -coverpkg=./... ./...
	go tool cover -func=cover.out | tail -1

bench:
	# No pipe: a pipeline would exit with tee's status and let a failing
	# benchmark run publish a silently truncated artifact.
	go test -run '^$$' -bench . -benchmem -benchtime $(BENCH_TIME) -count $(BENCH_COUNT) ./... > bench.txt || { cat bench.txt; rm -f bench.txt; exit 1; }
	cat bench.txt
	go run ./cmd/bench2json < bench.txt > $(BENCH_OUT)
	rm -f bench.txt
	@echo "wrote $(BENCH_OUT)"

# bench-diff compares a fresh artifact against the checked-in baseline
# (benchstat-style ns/op and allocs/op deltas). CI runs this after every
# bench job (BENCH_OUT=bench.json) so regressions land in the log, not
# just the artifact. Refuses to diff a file against itself — with the
# defaults that would always report "no change".
bench-diff:
	@if [ "$(BENCH_BASE)" = "$(BENCH_OUT)" ]; then \
		echo "bench-diff: BENCH_BASE and BENCH_OUT are both $(BENCH_OUT);"; \
		echo "run 'make bench BENCH_OUT=bench.json' first, then 'make bench-diff BENCH_OUT=bench.json'"; \
		exit 1; \
	fi
	go run ./cmd/bench2json -diff $(BENCH_BASE) $(BENCH_OUT)

# profile captures CPU and allocation profiles of the flagship workload
# (a cold multi-PE simulate sweep) so the next perf investigation starts
# with data: go tool pprof cpu.prof / mem.prof.
PROFILE_ARGS ?= sweep -op simulate -deck medium -pe 8,16,32,64,128 -quick
profile:
	go run ./cmd/krak $(PROFILE_ARGS) -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof mem.prof (from: krak $(PROFILE_ARGS))"

fmt:
	gofmt -l .

vet:
	go vet ./...

# lint is the full static gate CI runs: formatting, go vet, the in-tree
# krakcheck suite (determinism, arena hygiene, typed errors, bounded
# parsers, context flow — see docs/ARCHITECTURE.md "Static analysis"),
# then pinned staticcheck and govulncheck when the proxy is reachable.
# The skip branch fires only when the tool cannot be *downloaded*; a
# finding from a downloaded tool still fails the target.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	go vet ./...
	go run ./cmd/krakcheck ./...
	@if go run $(STATICCHECK) -version >/dev/null 2>&1; then \
		echo "go run $(STATICCHECK) ./..."; \
		go run $(STATICCHECK) ./... || exit 1; \
	else \
		echo "lint: staticcheck not downloadable (offline?); skipping"; \
	fi
	@if go run $(GOVULNCHECK) -version >/dev/null 2>&1; then \
		echo "go run $(GOVULNCHECK) ./..."; \
		go run $(GOVULNCHECK) ./... || exit 1; \
	else \
		echo "lint: govulncheck not downloadable (offline?); skipping"; \
	fi

# lint-fix applies every mechanical remedy the gate knows how to make:
# formatting, `go fix` modernizations, and krakcheck's suggested
# rewrites (today: the maprange sorted-keys loop).
lint-fix:
	gofmt -w .
	go fix ./...
	go run ./cmd/krakcheck -fix ./...
