// Command krak-sim runs the discrete-event cluster simulator — the
// "measured" platform — for a partitioned deck and reports iteration and
// per-phase times.
//
// Usage:
//
//	krak-sim -deck medium -pe 256 -iterations 5
//	krak-sim -deck small -pe 16 -partitioner strips
package main

import (
	"flag"
	"fmt"
	"os"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
	"krak/internal/stats"
	"krak/internal/textplot"
)

func main() {
	var (
		deckName  = flag.String("deck", "medium", "deck: small, medium, large, figure2")
		pe        = flag.Int("pe", 128, "processor count")
		iters     = flag.Int("iterations", 5, "iterations to simulate")
		parter    = flag.String("partitioner", "multilevel", "multilevel, rcb, strips, random")
		netName   = flag.String("net", "qsnet", "qsnet, gige, infiniband")
		serialize = flag.Bool("serialize-sends", false, "disable message overlap")
		quick     = flag.Bool("quick", false, "scaled-down deck")
	)
	flag.Parse()

	var sz mesh.StandardSize
	switch *deckName {
	case "small":
		sz = mesh.Small
	case "medium":
		sz = mesh.Medium
	case "large":
		sz = mesh.Large
	case "figure2":
		sz = mesh.Figure2
	default:
		fmt.Fprintf(os.Stderr, "unknown deck %q\n", *deckName)
		os.Exit(1)
	}
	env := experiments.NewEnv()
	if *quick {
		env = experiments.NewQuickEnv()
	}
	d, err := env.Deck(sz)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var pr partition.Partitioner
	switch *parter {
	case "multilevel":
		pr = partition.NewMultilevel(env.Seed)
	case "rcb":
		pr = partition.RCB{}
	case "sfc":
		pr = partition.SFC{}
	case "strips":
		pr = partition.Strips{}
	case "random":
		pr = partition.Random{Seed: env.Seed}
	default:
		fmt.Fprintf(os.Stderr, "unknown partitioner %q\n", *parter)
		os.Exit(1)
	}

	var net *netmodel.Model
	switch *netName {
	case "qsnet":
		net = netmodel.QsNetI()
	case "gige":
		net = netmodel.GigE()
	case "infiniband":
		net = netmodel.Infiniband()
	default:
		fmt.Fprintf(os.Stderr, "unknown network %q\n", *netName)
		os.Exit(1)
	}

	g := partition.FromMesh(d.Mesh)
	part, err := pr.Partition(g, *pe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum, err := mesh.Summarize(d.Mesh, part, *pe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := cluster.Config{Net: net, Costs: compute.ES45(), SerializeSends: *serialize}
	results, mean, err := cluster.SimulateIterations(sum, cfg, *iters)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Deck %s (%d cells) on %d PEs — partitioner %s, network %s\n",
		d.Name, d.Mesh.NumCells(), *pe, pr.Name(), net.Name())
	fmt.Printf("Partition: edge cut %d faces, imbalance %.3f, max neighbors %d\n\n",
		sum.EdgeCut(), sum.Imbalance(), sum.MaxNeighbors())

	r := results[0]
	header := []string{"Phase", "Duration (ms)", "Comm share (ms)", "Max compute (ms)"}
	var rows [][]string
	for ph := 0; ph < phases.Count; ph++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", ph+1),
			fmt.Sprintf("%.3f", r.PhaseTimes[ph]*1e3),
			fmt.Sprintf("%.3f", r.CommTimes[ph]*1e3),
			fmt.Sprintf("%.3f", stats.Max(r.ComputeTimes[ph])*1e3),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	var times []float64
	for _, res := range results {
		times = append(times, res.IterationTime)
	}
	fmt.Printf("\nIteration time over %d iterations: mean %.1f ms (min %.1f, max %.1f), collectives %.1f ms\n",
		*iters, mean*1e3, stats.Min(times)*1e3, stats.Max(times)*1e3, r.CollectiveTime*1e3)
}
