// Command bench2json converts `go test -bench` output on stdin into the
// JSON benchmark artifact `make bench` archives (BENCH_*.json), so
// benchmark regressions are visible PR-over-PR as a diffable file
// instead of scrollback.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | bench2json > BENCH_PRn.json
//	bench2json -diff BENCH_PR4.json BENCH_PR5.json
//
// -diff compares two archived artifacts benchstat-style: one row per
// benchmark present in both files with ns/op and allocs/op deltas, plus
// the benchmarks only one side has. CI prints the diff of every run
// against the checked-in baseline so regressions surface in the job log,
// not just the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BPerOp     float64 `json:"b_per_op,omitempty"`
	AllocsSPer float64 `json:"allocs_per_op,omitempty"`
}

// Artifact is the archived document.
type Artifact struct {
	Schema  string   `json:"schema"`
	Results []Result `json:"results"`
}

// ArtifactSchema identifies the artifact layout.
const ArtifactSchema = "krak.bench/v1"

func main() {
	diff := flag.Bool("diff", false, "compare two artifacts: bench2json -diff old.json new.json")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: bench2json -diff old.json new.json")
			os.Exit(2)
		}
		out, err := diffFiles(flag.Arg(0), flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench2json:", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	art, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// loadArtifact reads and validates an archived benchmark artifact.
func loadArtifact(path string) (*Artifact, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(src, &art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if art.Schema != ArtifactSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, art.Schema, ArtifactSchema)
	}
	return &art, nil
}

// benchKey identifies a benchmark across artifacts. The name keeps its
// -N GOMAXPROCS suffix; runs from machines with different CPU counts
// compare as missing rather than as misleading deltas.
func benchKey(r Result) string { return r.Pkg + "." + r.Name }

// fmtNs renders a ns/op value with a human unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// fmtDelta renders a relative change, benchstat-style ("~" for tiny).
func fmtDelta(old, new float64) string {
	if old == 0 {
		return "?"
	}
	d := (new - old) / old * 100
	if d > -0.5 && d < 0.5 {
		return "~"
	}
	return fmt.Sprintf("%+.1f%%", d)
}

// diffFiles renders the benchstat-style comparison of two artifacts.
func diffFiles(oldPath, newPath string) (string, error) {
	oldArt, err := loadArtifact(oldPath)
	if err != nil {
		return "", err
	}
	newArt, err := loadArtifact(newPath)
	if err != nil {
		return "", err
	}
	oldBy := map[string]Result{}
	for _, r := range oldArt.Results {
		oldBy[benchKey(r)] = r
	}
	newBy := map[string]Result{}
	for _, r := range newArt.Results {
		newBy[benchKey(r)] = r
	}

	// Benchmarks are keyed by pkg+name; rows show the bare name unless two
	// packages share it, in which case the pkg qualifies the row so a
	// regression cannot be misattributed.
	nameCount := map[string]int{}
	for _, r := range newArt.Results {
		nameCount[r.Name]++
	}
	label := func(r Result) string {
		if nameCount[r.Name] > 1 {
			return r.Pkg + "." + r.Name
		}
		return r.Name
	}

	var b strings.Builder
	rows := [][]string{{"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta"}}
	for _, nr := range newArt.Results {
		or, ok := oldBy[benchKey(nr)]
		if !ok {
			continue
		}
		rows = append(rows, []string{
			label(nr),
			fmtNs(or.NsPerOp), fmtNs(nr.NsPerOp), fmtDelta(or.NsPerOp, nr.NsPerOp),
			fmt.Sprintf("%.0f", or.AllocsSPer), fmt.Sprintf("%.0f", nr.AllocsSPer), fmtDelta(or.AllocsSPer, nr.AllocsSPer),
		})
	}
	// Column widths count runes, not bytes: fmtNs emits "µs" values whose
	// two-byte micro sign would otherwise pad those cells one short and
	// stagger the table.
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); n > widths[i] {
				widths[i] = n
			}
		}
	}
	pad := func(n int) {
		for ; n > 0; n-- {
			b.WriteByte(' ')
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fill := widths[i] - utf8.RuneCountInString(cell)
			if i == 0 {
				b.WriteString(cell)
				pad(fill)
			} else {
				pad(fill)
				b.WriteString(cell)
			}
		}
		b.WriteString("\n")
	}
	for _, nr := range newArt.Results {
		if _, ok := oldBy[benchKey(nr)]; !ok {
			fmt.Fprintf(&b, "only in %s: %s\n", newPath, benchKey(nr))
		}
	}
	for _, or := range oldArt.Results {
		if _, ok := newBy[benchKey(or)]; !ok {
			fmt.Fprintf(&b, "only in %s: %s\n", oldPath, benchKey(or))
		}
	}
	return b.String(), nil
}

// parse scans `go test -bench` output: "pkg: ..." headers set the
// current package, "Benchmark..." lines become results, everything else
// is ignored.
func parse(sc *bufio.Scanner) (*Artifact, error) {
	art := &Artifact{Schema: ArtifactSchema, Results: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r.Pkg = pkg
		//krakcheck:ignore boundedparse input is trusted `make bench` output from the local toolchain, one small record per benchmark line
		art.Results = append(art.Results, r)
	}
	return art, sc.Err()
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkServePredict/warm-8  175310  6799 ns/op  6191 B/op  82 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsSPer = v
		}
	}
	return r, true
}
