// Command bench2json converts `go test -bench` output on stdin into the
// JSON benchmark artifact `make bench` archives (BENCH_*.json), so
// benchmark regressions are visible PR-over-PR as a diffable file
// instead of scrollback.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | bench2json > BENCH_PRn.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Pkg        string  `json:"pkg"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op,omitempty"`
	BPerOp     float64 `json:"b_per_op,omitempty"`
	AllocsSPer float64 `json:"allocs_per_op,omitempty"`
}

// Artifact is the archived document.
type Artifact struct {
	Schema  string   `json:"schema"`
	Results []Result `json:"results"`
}

// ArtifactSchema identifies the artifact layout.
const ArtifactSchema = "krak.bench/v1"

func main() {
	art, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// parse scans `go test -bench` output: "pkg: ..." headers set the
// current package, "Benchmark..." lines become results, everything else
// is ignored.
func parse(sc *bufio.Scanner) (*Artifact, error) {
	art := &Artifact{Schema: ArtifactSchema, Results: []Result{}}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		r, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		r.Pkg = pkg
		art.Results = append(art.Results, r)
	}
	return art, sc.Err()
}

// parseBenchLine parses one benchmark result line, e.g.
//
//	BenchmarkServePredict/warm-8  175310  6799 ns/op  6191 B/op  82 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BPerOp = v
		case "allocs/op":
			r.AllocsSPer = v
		}
	}
	return r, true
}
