package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	src := `goos: linux
goarch: amd64
pkg: krak
BenchmarkSweepSerial-8   	       2	 612345678 ns/op
BenchmarkSweepParallel-8 	       4	 312345678 ns/op	 1234 B/op	      56 allocs/op
PASS
ok  	krak	3.1s
pkg: krak/internal/server
BenchmarkServePredict/warm-8         	  175310	      6799 ns/op	    6191 B/op	      82 allocs/op
some unrelated line
ok  	krak/internal/server	2.2s
`
	art, err := parse(bufio.NewScanner(strings.NewReader(src)))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != ArtifactSchema {
		t.Errorf("schema %q", art.Schema)
	}
	if len(art.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(art.Results))
	}
	r0 := art.Results[0]
	if r0.Pkg != "krak" || r0.Name != "BenchmarkSweepSerial-8" || r0.Iterations != 2 || r0.NsPerOp != 612345678 {
		t.Errorf("result 0 drifted: %+v", r0)
	}
	r2 := art.Results[2]
	if r2.Pkg != "krak/internal/server" || r2.BPerOp != 6191 || r2.AllocsSPer != 82 {
		t.Errorf("result 2 drifted: %+v", r2)
	}
}

func TestParseBenchLineRejects(t *testing.T) {
	for _, line := range []string{
		"BenchmarkTooShort",
		"BenchmarkNoIters abc 1 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
	// A bare name+iters line (custom metrics only) still parses.
	if r, ok := parseBenchLine("BenchmarkX-4 10 3.5 widgets/op 2 ns/op"); !ok || r.NsPerOp != 2 {
		t.Errorf("custom-metric line: %+v ok=%t", r, ok)
	}
}

func TestDiffFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, art Artifact) string {
		t.Helper()
		p := filepath.Join(dir, name)
		out, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, out, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	oldP := write("old.json", Artifact{Schema: ArtifactSchema, Results: []Result{
		{Pkg: "krak", Name: "BenchmarkA", NsPerOp: 2e6, AllocsSPer: 1000},
		{Pkg: "krak", Name: "BenchmarkGone", NsPerOp: 5e3, AllocsSPer: 7},
	}})
	newP := write("new.json", Artifact{Schema: ArtifactSchema, Results: []Result{
		{Pkg: "krak", Name: "BenchmarkA", NsPerOp: 1e6, AllocsSPer: 200},
		{Pkg: "krak", Name: "BenchmarkNew", NsPerOp: 1e3, AllocsSPer: 3},
	}})
	out, err := diffFiles(oldP, newP)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkA", "2.00ms", "1.00ms", "-50.0%", "-80.0%",
		"only in " + newP + ": krak.BenchmarkNew",
		"only in " + oldP + ": krak.BenchmarkGone",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}

func TestDiffFilesRejectsBadSchema(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(p, []byte(`{"schema":"nope","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"schema":"`+ArtifactSchema+`","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := diffFiles(p, good); err == nil {
		t.Fatal("bad schema accepted")
	}
}
