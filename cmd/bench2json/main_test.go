package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	src := `goos: linux
goarch: amd64
pkg: krak
BenchmarkSweepSerial-8   	       2	 612345678 ns/op
BenchmarkSweepParallel-8 	       4	 312345678 ns/op	 1234 B/op	      56 allocs/op
PASS
ok  	krak	3.1s
pkg: krak/internal/server
BenchmarkServePredict/warm-8         	  175310	      6799 ns/op	    6191 B/op	      82 allocs/op
some unrelated line
ok  	krak/internal/server	2.2s
`
	art, err := parse(bufio.NewScanner(strings.NewReader(src)))
	if err != nil {
		t.Fatal(err)
	}
	if art.Schema != ArtifactSchema {
		t.Errorf("schema %q", art.Schema)
	}
	if len(art.Results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(art.Results))
	}
	r0 := art.Results[0]
	if r0.Pkg != "krak" || r0.Name != "BenchmarkSweepSerial-8" || r0.Iterations != 2 || r0.NsPerOp != 612345678 {
		t.Errorf("result 0 drifted: %+v", r0)
	}
	r2 := art.Results[2]
	if r2.Pkg != "krak/internal/server" || r2.BPerOp != 6191 || r2.AllocsSPer != 82 {
		t.Errorf("result 2 drifted: %+v", r2)
	}
}

func TestParseBenchLineRejects(t *testing.T) {
	for _, line := range []string{
		"BenchmarkTooShort",
		"BenchmarkNoIters abc 1 ns/op",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("accepted %q", line)
		}
	}
	// A bare name+iters line (custom metrics only) still parses.
	if r, ok := parseBenchLine("BenchmarkX-4 10 3.5 widgets/op 2 ns/op"); !ok || r.NsPerOp != 2 {
		t.Errorf("custom-metric line: %+v ok=%t", r, ok)
	}
}
