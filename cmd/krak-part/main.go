// Command krak-part partitions a deck and reports partition quality with an
// ASCII rendering of the subgrid map (the Figure 1 visualization).
//
// Usage:
//
//	krak-part -deck small -pe 16
//	krak-part -deck small -pe 16 -algo rcb -map=false
package main

import (
	"flag"
	"fmt"
	"os"

	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/partition"
	"krak/internal/textplot"
)

func main() {
	var (
		deckName = flag.String("deck", "small", "deck: small, medium, large, figure2")
		pe       = flag.Int("pe", 16, "processor count")
		algo     = flag.String("algo", "multilevel", "multilevel, rcb, strips, random")
		seed     = flag.Uint64("seed", 1, "partitioner seed")
		showMap  = flag.Bool("map", true, "render the subgrid map")
	)
	flag.Parse()

	var sz mesh.StandardSize
	switch *deckName {
	case "small":
		sz = mesh.Small
	case "medium":
		sz = mesh.Medium
	case "large":
		sz = mesh.Large
	case "figure2":
		sz = mesh.Figure2
	default:
		fmt.Fprintf(os.Stderr, "unknown deck %q\n", *deckName)
		os.Exit(1)
	}
	env := experiments.NewEnv()
	env.Seed = *seed
	d, err := env.Deck(sz)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var pr partition.Partitioner
	switch *algo {
	case "multilevel":
		pr = partition.NewMultilevel(*seed)
	case "rcb":
		pr = partition.RCB{}
	case "sfc":
		pr = partition.SFC{}
	case "strips":
		pr = partition.Strips{}
	case "random":
		pr = partition.Random{Seed: *seed}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algo)
		os.Exit(1)
	}

	g := partition.FromMesh(d.Mesh)
	q, part, err := partition.Evaluate(pr, g, *pe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sum, err := mesh.Summarize(d.Mesh, part, *pe)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Deck %s (%d cells) into %d parts with %s\n", d.Name, d.Mesh.NumCells(), *pe, q.Algorithm)
	fmt.Printf("  edge cut      %d faces\n", q.EdgeCut)
	fmt.Printf("  imbalance     %.3f\n", q.Imbalance)
	fmt.Printf("  max neighbors %d\n\n", sum.MaxNeighbors())

	header := []string{"PE", "Cells", "HE Gas", "Al(In)", "Foam", "Al(Out)", "Neighbors", "Ghost nodes"}
	var rows [][]string
	for p := 0; p < *pe; p++ {
		ghosts := 0
		for _, nb := range sum.NeighborsOf[p] {
			ghosts += sum.Boundary(p, nb).GhostNodes
		}
		c := sum.CellsByMaterial[p]
		rows = append(rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", sum.TotalCells[p]),
			fmt.Sprintf("%d", c[mesh.HEGas]),
			fmt.Sprintf("%d", c[mesh.AluminumInner]),
			fmt.Sprintf("%d", c[mesh.Foam]),
			fmt.Sprintf("%d", c[mesh.AluminumOuter]),
			fmt.Sprintf("%d", len(sum.NeighborsOf[p])),
			fmt.Sprintf("%d", ghosts),
		})
	}
	fmt.Print(textplot.Table(header, rows))

	if *showMap && d.Mesh.W > 0 && d.Mesh.W <= 200 {
		fmt.Println()
		fmt.Print(textplot.GridMap("Subgrid map (characters = PE ids):",
			d.Mesh.W, d.Mesh.H, func(x, y int) int { return part[y*d.Mesh.W+x] }))
	}
}
