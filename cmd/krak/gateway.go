package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"krak/internal/gateway"
)

// runGateway starts the multi-replica resilience layer: a reverse proxy
// that routes across N `krak serve` replicas by consistent hashing of
// the canonical request keys, with health probing, bounded retries,
// per-replica circuit breakers, ring failover, and graceful degradation
// (disk-cache tier, then local quick evaluation with a Krak-Degraded
// header) when every replica for a key is down. Replicas come from
// repeated/comma-separated -replica flags or a -config file.
func runGateway(args []string) error {
	fs := flag.NewFlagSet("krak gateway", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	var replicaFlags stringList
	fs.Var(&replicaFlags, "replica", "replica base URL (repeatable, or comma-separated)")
	configPath := fs.String("config", "", "gateway config file (see docs/ARCHITECTURE.md, Resilience)")
	cacheDir := fs.String("cache-dir", "", "read-through response cache directory for degraded serving (empty = off)")
	quick := fs.Bool("quick", false, "replicas run -quick (keeps canonical keys and local fallback consistent)")
	noLocal := fs.Bool("no-local-fallback", false, "disable the local-evaluation degradation tier")
	retries := fs.Int("retries", -1, "extra attempts per idempotent request (-1 = config/default)")
	probeInterval := fs.Duration("probe-interval", 0, "health-check cadence per replica (0 = config/default)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures that open a replica's breaker (0 = config/default)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open time before a half-open probe (0 = config/default)")
	faultPlan := fs.String("fault-plan", "", "client-side fault-injection plan for chaos drills (requires -allow-faults)")
	allowFaults := fs.Bool("allow-faults", false, "acknowledge that -fault-plan deliberately breaks responses")
	fs.Parse(args)

	cfg := gateway.DefaultConfig()
	if *configPath != "" {
		src, err := os.ReadFile(*configPath)
		if err != nil {
			return err
		}
		if cfg, err = gateway.ParseGatewayConfig(src); err != nil {
			return err
		}
	}
	cfg.Replicas = append(cfg.Replicas, replicaFlags...)
	if *cacheDir != "" {
		cfg.CacheDir = *cacheDir
	}
	if *quick {
		cfg.Quick = true
	}
	if *noLocal {
		cfg.LocalFallback = false
	}
	if *retries >= 0 {
		cfg.Retries = *retries
	}
	if *probeInterval > 0 {
		cfg.ProbeInterval = *probeInterval
	}
	if *breakerThreshold > 0 {
		cfg.BreakerThreshold = *breakerThreshold
	}
	if *breakerCooldown > 0 {
		cfg.BreakerCooldown = *breakerCooldown
	}

	faults, err := loadFaultPlan(*faultPlan, *allowFaults)
	if err != nil {
		return err
	}
	g, err := gateway.New(cfg, faults)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	g.Start(ctx)
	// LIFO: stop cancels ctx first so Close's wait for the probe loops
	// can finish — the reverse order deadlocks every error return.
	defer g.Close()
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: g}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "krak gateway listening on %s, %d replicas\n", *addr, len(cfg.Replicas))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "krak gateway: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// stringList collects a repeatable flag, splitting comma-separated
// values, so both `-replica a -replica b` and `-replica a,b` work.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	for _, part := range strings.Split(v, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			*s = append(*s, part)
		}
	}
	return nil
}
