package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"strings"

	"krak/internal/compare"
	"krak/internal/engine"
	"krak/pkg/krak"
)

// runCompare sweeps one scenario across a set of machines — the
// checked-in machines/ catalog, ad-hoc machine files, or directories of
// them — and reports each machine's scaling curve, knee, and crossover
// against the baseline. -scenario is an alias for -deck, so the paper's
// headline question reads naturally:
//
//	krak compare -scenario medium -machines machines/
//
// --json output is byte-identical to POST /v1/compare for the same
// request (CI's compare-smoke job diffs the two).
func runCompare(args []string) error {
	fs := flag.NewFlagSet("krak compare", flag.ExitOnError)
	var deck string
	fs.StringVar(&deck, "deck", "medium", "deck to sweep: small, medium, large, figure2")
	fs.StringVar(&deck, "scenario", "medium", "alias for -deck")
	machines := fs.String("machines", "machines", "comma-separated machine files and/or directories of *"+compare.MachineFileExt+" files")
	pes := fs.String("pe", "", "comma-separated processor counts (default 16,32,...,1024)")
	op := fs.String("op", "predict", "operation per grid point: predict, simulate")
	modelName := fs.String("model", "", "model for predict points (default general-homo)")
	parter := fs.String("partitioner", "", "partitioner for simulate points (default multilevel)")
	iters := fs.Int("iterations", 0, "iterations per simulate point (0 = machine repeats)")
	baseline := fs.String("baseline", "", "baseline machine name (default "+compare.DefaultBaselineName+" if present, else the first machine)")
	knee := fs.Float64("knee", compare.DefaultKneeEfficiency, "parallel-efficiency threshold defining the knee, in (0, 1]")
	quick := fs.Bool("quick", false, "scaled-down decks on every machine")
	parallel := fs.Int("parallel", 0, "worker-pool width (0 = number of CPUs)")
	asJSON := fs.Bool("json", false, "emit JSON")
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *parallel < 0 {
		return fmt.Errorf("krak: -parallel must be >= 0 (0 = number of CPUs), got %d", *parallel)
	}
	var paths []string
	for _, p := range strings.Split(*machines, ",") {
		if p = strings.TrimSpace(p); p != "" {
			paths = append(paths, p)
		}
	}
	specs, err := compare.LoadPaths(paths)
	if err != nil {
		return err
	}
	if *quick {
		for i := range specs {
			specs[i].Quick = true
		}
	}
	req := compare.Request{
		Op:             *op,
		Deck:           deck,
		Model:          *modelName,
		Partitioner:    *parter,
		Iterations:     *iters,
		Baseline:       *baseline,
		KneeEfficiency: *knee,
		Machines:       specs,
	}
	if *pes != "" {
		if req.PEs, err = parseIntList("pe", *pes); err != nil {
			return err
		}
	}

	rep, err := compare.Run(context.Background(), req,
		compare.NewBuilder(krak.NewSharedArtifacts()), engine.New(*parallel))
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(rep.Render())
	return nil
}
