package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// profileFlags adds -cpuprofile/-memprofile to a subcommand, so any krak
// invocation can be profiled without a rebuild:
//
//	krak sweep -op simulate -deck medium -pe 8,16,32 -cpuprofile cpu.prof
//	go tool pprof cpu.prof
//
// The CPU profile covers everything between flag parsing and subcommand
// exit; the allocation profile is a heap snapshot written at exit (after a
// GC, so it reflects live objects plus cumulative allocation counters).
type profileFlags struct {
	cpu *string
	mem *string
}

// addProfileFlags declares the profiling flags on a subcommand FlagSet.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to `file` (inspect with go tool pprof)"),
		mem: fs.String("memprofile", "", "write an allocation profile to `file` at exit"),
	}
}

// start begins CPU profiling when requested and returns a stop function to
// defer; stop also writes the allocation profile when requested. Profile
// I/O failures report to stderr rather than masking the subcommand's own
// error.
func (p *profileFlags) start() (stop func(), err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, fmt.Errorf("krak: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("krak: -cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "krak: -cpuprofile:", err)
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "krak: -memprofile:", err)
				return
			}
			runtime.GC() // flush recent allocation state into the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "krak: -memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "krak: -memprofile:", err)
			}
		}
	}, nil
}
