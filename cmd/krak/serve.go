package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"krak/internal/faultinject"
	"krak/internal/server"
)

// loadFaultPlan reads and parses a -fault-plan file into an Injector.
// It refuses to arm unless -allow-faults acknowledges that the plan
// deliberately breaks responses — chaos can never ship on by accident.
// An empty path is a nil (no-op) injector.
func loadFaultPlan(path string, allow bool) (*faultinject.Injector, error) {
	if path == "" {
		return nil, nil
	}
	if !allow {
		return nil, fmt.Errorf("krak: -fault-plan deliberately corrupts responses; pass -allow-faults to confirm")
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	plan, err := faultinject.ParseFaultPlan(src)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "krak: fault injection ACTIVE (plan %q, seed %d)\n", plan.Name, plan.Seed)
	return faultinject.New(plan), nil
}

// runServe starts the long-running HTTP prediction service: the serving
// subsystem of internal/server behind a net/http listener with graceful
// shutdown on SIGINT/SIGTERM.
//
// Responses are byte-identical to the corresponding CLI --json output:
// POST /v1/predict for a scenario returns exactly what
// `krak predict --json` prints for the same flags (CI's smoke job diffs
// the two on every push).
func runServe(args []string) error {
	fs := flag.NewFlagSet("krak serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	parallel := fs.Int("parallel", 0, "worker-pool width for dispatch and machines (0 = number of CPUs)")
	cacheSize := fs.Int("cache-size", 1024, "rendered-response LRU capacity (entries)")
	quick := fs.Bool("quick", false, "serve scaled-down decks and calibrations")
	batchWindow := fs.Duration("batch-window", 500*time.Microsecond, "micro-batch collection window for /v1/predict")
	cacheDir := fs.String("cache-dir", "", "disk cache directory for partitions and rendered responses (persists across restarts; empty = off)")
	lightLimit := fs.Int("light-limit", 0, "concurrent in-flight limit for cached-read endpoints (0 = default 256, -1 = unlimited)")
	lightQueue := fs.Int("light-queue", 0, "admission wait-queue depth for cached-read endpoints (0 = default 1024, -1 = no queue)")
	heavyLimit := fs.Int("heavy-limit", 0, "concurrent in-flight limit for sweep/compare/calibrate (0 = default 4, -1 = unlimited)")
	heavyQueue := fs.Int("heavy-queue", 0, "admission wait-queue depth for sweep/compare/calibrate (0 = default 16, -1 = no queue)")
	requestTimeout := fs.Duration("request-timeout", 0, "per-request timeout for heavy endpoints once admitted (0 = none)")
	maxJobs := fs.Int("max-jobs", 0, "cap on live background jobs (0 = default 256)")
	jobTTL := fs.Duration("job-ttl", 0, "how long finished job results stay fetchable (0 = default 15m)")
	faultPlan := fs.String("fault-plan", "", "fault-injection plan file for chaos drills (requires -allow-faults)")
	allowFaults := fs.Bool("allow-faults", false, "acknowledge that -fault-plan deliberately breaks responses")
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *parallel < 0 {
		return fmt.Errorf("krak: -parallel must be >= 0 (0 = number of CPUs), got %d", *parallel)
	}
	if *cacheSize <= 0 {
		return fmt.Errorf("krak: -cache-size must be positive, got %d", *cacheSize)
	}
	if *batchWindow < 0 {
		return fmt.Errorf("krak: -batch-window must be >= 0, got %v", *batchWindow)
	}
	if *requestTimeout < 0 {
		return fmt.Errorf("krak: -request-timeout must be >= 0, got %v", *requestTimeout)
	}

	faults, err := loadFaultPlan(*faultPlan, *allowFaults)
	if err != nil {
		return err
	}

	h, err := server.New(server.Config{
		Parallel:       *parallel,
		CacheSize:      *cacheSize,
		Quick:          *quick,
		BatchWindow:    *batchWindow,
		CacheDir:       *cacheDir,
		LightLimit:     *lightLimit,
		LightQueue:     *lightQueue,
		HeavyLimit:     *heavyLimit,
		HeavyQueue:     *heavyQueue,
		RequestTimeout: *requestTimeout,
		MaxJobs:        *maxJobs,
		JobTTL:         *jobTTL,
		Faults:         faults,
	})
	if err != nil {
		return err
	}
	defer h.Close()
	srv := &http.Server{Addr: *addr, Handler: h}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "krak serve listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop()
		fmt.Fprintln(os.Stderr, "krak serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
