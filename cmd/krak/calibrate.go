package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"krak/pkg/krak"
)

// runCalibrate implements `krak calibrate`: fit machine parameters
// (compute scale vs the ES45 baseline, effective latency, bandwidth,
// fixed overhead) to a timing dataset — either a measurement file
// (-data, "obs DECK PES SECONDS" lines) or self-generated runs of the
// machine under -machine-file / the machine flags (-synth). The fitted
// machine is reported with standard errors, R², optional k-fold
// cross-validation (-folds), and as a ready-to-use machine file
// (-emit-machine writes it; every other subcommand accepts it via
// -machine-file).
func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("krak calibrate", flag.ExitOnError)
	data := fs.String("data", "", "measurement file to fit (dataset/obs lines)")
	synth := fs.Bool("synth", false, "self-generate the dataset from the machine instead")
	synthOp := fs.String("synth-op", "simulate", "synthetic generator: simulate (noisy measured runs) or predict (noiseless model)")
	decks := fs.String("deck", "small", "comma-separated decks for -synth")
	pes := fs.String("pe", "2,4,8,16,32", "comma-separated processor counts for -synth")
	folds := fs.Int("folds", 0, "k-fold cross-validation folds (0 = off)")
	modelName := fs.String("model", "general-homo", "feature model: general-homo, general-het")
	emitMachine := fs.String("emit-machine", "", "write the fitted machine file here")
	writeData := fs.String("write-data", "", "write the (possibly synthesized) dataset here")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, true)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	if (*data == "") == !*synth {
		return fmt.Errorf("krak: calibrate needs exactly one dataset source: -data FILE or -synth")
	}
	model, err := krak.ParseModel(*modelName)
	if err != nil {
		return err
	}
	m, err := mf.machine()
	if err != nil {
		return err
	}
	sc, err := krak.NewScenario(krak.WithModel(model))
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}

	var ds *krak.Dataset
	if *data != "" {
		src, err := os.ReadFile(*data)
		if err != nil {
			return err
		}
		if ds, err = krak.ParseDataset(src); err != nil {
			return err
		}
	} else {
		op, err := krak.ParseSweepOp(*synthOp)
		if err != nil {
			return err
		}
		peList, err := parseIntList("pe", *pes)
		if err != nil {
			return err
		}
		var deckList []string
		for _, d := range strings.Split(*decks, ",") {
			if d = strings.TrimSpace(d); d != "" {
				deckList = append(deckList, d)
			}
		}
		if ds, err = s.SynthesizeDataset(context.Background(), op, deckList, peList); err != nil {
			return err
		}
	}
	if *writeData != "" {
		if err := os.WriteFile(*writeData, ds.Format(), 0o644); err != nil {
			return err
		}
	}

	cr, err := s.Calibrate(context.Background(), ds, krak.CalibrateOptions{Folds: *folds})
	if err != nil {
		return err
	}
	if *emitMachine != "" {
		if err := os.WriteFile(*emitMachine, krak.FormatMachineFile(cr.Fitted), 0o644); err != nil {
			return err
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(cr, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(cr.Render())
	return nil
}
