package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"krak/pkg/krak"
)

// runCalibrate implements `krak calibrate`: fit machine parameters
// (compute scale vs the ES45 baseline, effective latency, bandwidth,
// fixed overhead) to a timing dataset — either a measurement file
// (-data, "obs DECK PES SECONDS" lines) or self-generated runs of the
// machine under -machine-file / the machine flags (-synth). -model
// picks the timing-model form ("auto" cross-validates the whole zoo and
// reports a scoreboard; see `krak machines -forms`); -append folds a
// second measurement file into the fit with a drift check against the
// base fit. The fitted machine is reported with standard errors, R²,
// optional k-fold cross-validation (-folds), and as a ready-to-use
// machine file (-emit-machine writes it; every other subcommand accepts
// it via -machine-file).
func runCalibrate(args []string) error {
	fs := flag.NewFlagSet("krak calibrate", flag.ExitOnError)
	data := fs.String("data", "", "measurement file to fit (dataset/obs lines)")
	appendFile := fs.String("append", "", "fresh measurement file to fold into -data with a drift check")
	synth := fs.Bool("synth", false, "self-generate the dataset from the machine instead")
	synthOp := fs.String("synth-op", "simulate", "synthetic generator: simulate (noisy measured runs) or predict (noiseless model)")
	decks := fs.String("deck", "small", "comma-separated decks for -synth")
	pes := fs.String("pe", "2,4,8,16,32", "comma-separated processor counts for -synth")
	folds := fs.Int("folds", 0, "k-fold cross-validation folds (0 = off)")
	formName := fs.String("model", krak.FormAuto, "timing-model form: auto, linear, loglog, interact, piecewise")
	features := fs.String("features", "general-homo", "feature model: general-homo, general-het")
	emitMachine := fs.String("emit-machine", "", "write the fitted machine file here")
	writeData := fs.String("write-data", "", "write the (possibly synthesized) dataset here")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, true)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	if (*data == "") == !*synth {
		return fmt.Errorf("krak: calibrate needs exactly one dataset source: -data FILE or -synth")
	}
	if *appendFile != "" && *data == "" {
		return fmt.Errorf("krak: -append extends a stored dataset; it needs -data FILE")
	}
	model, err := krak.ParseModel(*features)
	if err != nil {
		return err
	}
	m, err := mf.machine()
	if err != nil {
		return err
	}
	sc, err := krak.NewScenario(krak.WithModel(model))
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}

	var ds *krak.Dataset
	if *data != "" {
		src, err := os.ReadFile(*data)
		if err != nil {
			return err
		}
		if ds, err = krak.ParseDataset(src); err != nil {
			return err
		}
	} else {
		op, err := krak.ParseSweepOp(*synthOp)
		if err != nil {
			return err
		}
		peList, err := parseIntList("pe", *pes)
		if err != nil {
			return err
		}
		var deckList []string
		for _, d := range strings.Split(*decks, ",") {
			if d = strings.TrimSpace(d); d != "" {
				deckList = append(deckList, d)
			}
		}
		if ds, err = s.SynthesizeDataset(context.Background(), op, deckList, peList); err != nil {
			return err
		}
	}
	if *writeData != "" {
		if err := os.WriteFile(*writeData, ds.Format(), 0o644); err != nil {
			return err
		}
	}

	opt := krak.CalibrateOptions{Folds: *folds, Form: *formName}
	var cr *krak.CalibrationResult
	if *appendFile != "" {
		src, err := os.ReadFile(*appendFile)
		if err != nil {
			return err
		}
		fresh, err := krak.ParseDataset(src)
		if err != nil {
			return err
		}
		cr, err = s.CalibrateAppend(context.Background(), ds, fresh, opt)
		if err != nil {
			return err
		}
	} else if cr, err = s.Calibrate(context.Background(), ds, opt); err != nil {
		return err
	}
	if *emitMachine != "" {
		if err := os.WriteFile(*emitMachine, krak.FormatMachineFile(cr.Fitted), 0o644); err != nil {
			return err
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(cr, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(cr.Render())
	return nil
}

// runMachines implements `krak machines`: the interconnect presets with
// their serving fingerprints (the identity GET /v1/machines/{fp} and
// the calibration registry key histories by), and with -forms the
// calibration model-form zoo.
func runMachines(args []string) error {
	fs := flag.NewFlagSet("krak machines", flag.ExitOnError)
	forms := fs.Bool("forms", false, "list the calibration model forms instead")
	asJSON := fs.Bool("json", false, "emit JSON")
	fs.Parse(args)

	if *forms {
		if *asJSON {
			out, err := json.MarshalIndent(krak.ModelForms(), "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		fmt.Printf("%-10s %-6s %s\n", "FORM", "COEFFS", "DESCRIPTION")
		for _, f := range krak.ModelForms() {
			fmt.Printf("%-10s %-6d %s\n", f.Name, f.Coeffs, f.Description)
		}
		return nil
	}

	type entry struct {
		Interconnect string `json:"interconnect"`
		Network      string `json:"network"`
		Fingerprint  string `json:"fingerprint"`
	}
	var out []entry
	for _, mi := range krak.ListMachines() {
		spec := krak.MachineSpec{Interconnect: mi.Interconnect}
		out = append(out, entry{
			Interconnect: mi.Interconnect,
			Network:      mi.Network,
			Fingerprint:  spec.Normalized().Fingerprint(),
		})
	}
	if *asJSON {
		b, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("%-12s %-16s %s\n", "INTERCONNECT", "NETWORK", "FINGERPRINT")
	for _, e := range out {
		fmt.Printf("%-12s %-16s %s\n", e.Interconnect, e.Network, e.Fingerprint)
	}
	return nil
}
