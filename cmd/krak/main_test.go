package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs one subcommand runner with os.Stdout redirected,
// returning what it printed. The runners write through fmt.Print*, so
// this is the only seam the CLI layer needs.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var b bytes.Buffer
		io.Copy(&b, r)
		done <- b.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("runner failed: %v\noutput so far:\n%s", runErr, out)
	}
	return out
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList("pe", " 2, 4 ,8,,")
	if err != nil || len(got) != 3 || got[0] != 2 || got[2] != 8 {
		t.Errorf("parseIntList = %v, %v", got, err)
	}
	for _, bad := range []string{"", ",", "0", "-4", "x", "2,huge"} {
		if _, err := parseIntList("pe", bad); err == nil {
			t.Errorf("parseIntList(%q) accepted", bad)
		}
	}
	if _, err := parseIntList("pe", strings.TrimSuffix(strings.Repeat("1,", 5000), ",")); err == nil {
		t.Error("parseIntList accepted an oversized list")
	}
}

func TestRunPredictQuick(t *testing.T) {
	out := captureStdout(t, func() error {
		return runPredict([]string{"-deck", "small", "-pe", "16", "-quick", "-json"})
	})
	var res map[string]any
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("predict --json did not decode: %v\n%s", err, out)
	}
	text := captureStdout(t, func() error {
		return runPredict([]string{"-deck", "small", "-pe", "16", "-quick"})
	})
	if !strings.Contains(text, "predict") && !strings.Contains(text, "Predicted") {
		t.Errorf("text rendering looks wrong:\n%s", text)
	}
	if err := runPredict([]string{"-model", "oracle", "-quick"}); err == nil {
		t.Error("bad model accepted")
	}
}

func TestRunSimulateQuick(t *testing.T) {
	out := captureStdout(t, func() error {
		return runSimulate([]string{"-deck", "small", "-pe", "8", "-iterations", "1", "-quick", "-json"})
	})
	if !strings.Contains(out, `"kind": "simulate"`) || !strings.Contains(out, "total_s") {
		t.Errorf("simulate --json lacks timings:\n%s", out)
	}
}

func TestRunPartQuick(t *testing.T) {
	out := captureStdout(t, func() error {
		return runPart([]string{"-deck", "small", "-pe", "4", "-algo", "rcb", "-quick"})
	})
	if !strings.Contains(out, "rcb") {
		t.Errorf("part output lacks the algorithm:\n%s", out)
	}
}

func TestRunSweepQuick(t *testing.T) {
	out := captureStdout(t, func() error {
		return runSweep([]string{"-deck", "small", "-pe", "2,4", "-quick", "-parallel", "2", "-json"})
	})
	if !strings.Contains(out, "points") {
		t.Errorf("sweep --json lacks points:\n%s", out)
	}
	if err := runSweep([]string{"-pe", "2", "-iterations", "-1", "-quick"}); err == nil {
		t.Error("negative -iterations accepted")
	}
	if err := runSweep([]string{"-deck", ",", "-pe", "2", "-quick"}); err == nil {
		t.Error("empty sweep grid accepted")
	}
}

func TestRunHydroTiny(t *testing.T) {
	out := captureStdout(t, func() error {
		return runHydro([]string{"-w", "8", "-h", "4", "-steps", "2", "-report", "0"})
	})
	if len(out) == 0 {
		t.Error("hydro printed nothing")
	}
}

func TestRunExperimentsList(t *testing.T) {
	out := captureStdout(t, func() error {
		return runExperiments([]string{"-list"})
	})
	if !strings.Contains(out, "table6") {
		t.Errorf("experiment list lacks table6:\n%s", out)
	}
}

// TestRunCompareCatalog drives the compare subcommand over the real
// checked-in catalog exactly as the acceptance flow does, in both
// renderings.
func TestRunCompareCatalog(t *testing.T) {
	catalog := filepath.Join("..", "..", "machines")
	out := captureStdout(t, func() error {
		return runCompare([]string{"-scenario", "small", "-machines", catalog, "-pe", "2,4", "-quick"})
	})
	for _, want := range []string{"es45-qsnet", "(baseline)", "overtakes"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare text lacks %q:\n%s", want, out)
		}
	}
	jsonOut := captureStdout(t, func() error {
		return runCompare([]string{"-deck", "small", "-machines", catalog, "-pe", "2,4", "-quick", "-json"})
	})
	var rep struct {
		Schema   string `json:"schema"`
		Baseline string `json:"baseline"`
	}
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("compare --json did not decode: %v", err)
	}
	if rep.Schema != "krak.compare/v1" || rep.Baseline != "es45-qsnet" {
		t.Errorf("schema %q baseline %q", rep.Schema, rep.Baseline)
	}

	if err := runCompare([]string{"-machines", "no-such-dir", "-quick"}); err == nil {
		t.Error("missing catalog accepted")
	}
	if err := runCompare([]string{"-machines", catalog, "-parallel", "-1"}); err == nil {
		t.Error("negative -parallel accepted")
	}
	if err := runCompare([]string{"-machines", catalog, "-pe", "nope", "-quick"}); err == nil {
		t.Error("bad -pe accepted")
	}
}

// TestMachineFlagsOverrideFile pins the precedence rule: explicitly set
// flags override the machine file's directives, unset ones keep them.
func TestMachineFlagsOverrideFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.machine")
	src := "machine filed\ninterconnect gige\nseed 7\nquick\ntopology fat-tree 0.2 8\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := captureStdout(t, func() error {
		return runPredict([]string{"-machine-file", path, "-net", "qsnet", "-deck", "small", "-pe", "4", "-json"})
	})
	if !strings.Contains(out, "QsNet") {
		t.Errorf("-net did not override the file's interconnect:\n%s", out)
	}
	if err := runPredict([]string{"-machine-file", filepath.Join(t.TempDir(), "absent"), "-quick"}); err == nil {
		t.Error("missing machine file accepted")
	}
}
