// Command krak is the single entry point to the Krak performance-model
// reproduction, built entirely on the public façade (pkg/krak). It unifies
// the former krak-model, krak-sim, krak-hydro, krak-part, and
// krak-experiments binaries as subcommands.
//
// Usage:
//
//	krak predict     -deck medium -pe 128 -model general-homo [--json]
//	krak simulate    -deck medium -pe 256 -iterations 5 [--json]
//	krak hydro       -w 80 -h 40 -steps 200 -ranks 4 [-deck-file deck.txt] [--json]
//	krak part        -deck small -pe 16 -algo rcb [-deck-file deck.txt] [--json]
//	krak sweep       -op predict -deck medium -pe 32,64,128,256 -parallel 8 [--json]
//	krak experiments -list | -run table6 | -write EXPERIMENTS.md -parallel 8 [--json]
//	krak compare     -scenario medium -machines machines/ -baseline es45-qsnet [--json]
//	krak calibrate   -data runs.txt -model auto -folds 5 [-append fresh.txt] | -synth -deck small -pe 2,4,8 [--json]
//	krak machines    [-forms] [--json]
//	krak serve       -addr :8080 -parallel 8 -cache-size 1024 [-quick]
//	krak gateway     -addr :8090 -replica http://127.0.0.1:8081,http://127.0.0.1:8082 [-cache-dir DIR] [-quick]
//
// sweep and experiments fan their work out over the machine's worker pool
// (-parallel N, default as wide as the hardware). experiments output is
// byte-identical at every parallelism level, as is the model/simulator
// content of every sweep point; sweep's timing fields (the wall/work
// summary and each point's seconds) naturally vary run to run.
//
// serve runs the same operations as a long-lived batched HTTP service
// (see internal/server); its /v1/predict responses are byte-identical to
// `krak predict --json` for the same scenario.
//
// -deck-file loads a textual deck instead of a standard one. The format
// is line-oriented ('#' comments): "deck NAME", "grid W H", optional
// "detonator X Y", then one of "layered" (Table 2 radial bands),
// "uniform MAT", or "cells" followed by H rows of W one-character
// material codes (h|a|f|o or 0-3), top row first.
//
// -machine-file (every machine-taking subcommand) loads a declarative
// machine file: "machine NAME", "interconnect qsnet|gige|infiniband" or
// a custom "network NAME" with "segment MINBYTES LATENCY_US BW_MBS"
// lines, an optional "topology fat-tree HOPLAT_US RADIX" /
// "topology dragonfly HOPLAT_US GROUPSIZE" / "topology torus HOPLAT_US
// [X Y Z]" stanza refining the collective models, "compute-scale F",
// "seed N", "repeats N", "quick", "serialize-sends". `krak calibrate
// -emit-machine` writes one from fitted parameters, closing the
// measure -> calibrate -> predict loop. The machines/ directory at the
// repo root is a checked-in catalog of such files spanning machine
// generations; `krak compare -machines machines/` sweeps them all.
//
// calibrate fits one of several timing-model forms (-model: linear,
// loglog, interact, piecewise, or auto to cross-validate the whole zoo
// and report a selection scoreboard; `krak machines -forms` lists them).
// -append folds a fresh measurement file into the -data fit with a
// drift check against the base fit's stderr band — the same check
// `krak serve` runs on POST /v1/calibrate/append for registered
// machines.
//
// Every subcommand also accepts -cpuprofile FILE and -memprofile FILE,
// writing pprof profiles of the invocation (see `make profile` for the
// canonical flagship-workload capture).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"krak/pkg/krak"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "predict":
		err = runPredict(os.Args[2:])
	case "simulate":
		err = runSimulate(os.Args[2:])
	case "hydro":
		err = runHydro(os.Args[2:])
	case "part":
		err = runPart(os.Args[2:])
	case "sweep":
		err = runSweep(os.Args[2:])
	case "experiments":
		err = runExperiments(os.Args[2:])
	case "compare":
		err = runCompare(os.Args[2:])
	case "calibrate":
		err = runCalibrate(os.Args[2:])
	case "machines":
		err = runMachines(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "gateway":
		err = runGateway(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "krak: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: krak <subcommand> [flags]

subcommands:
  predict      evaluate the analytic performance model
  simulate     run the discrete-event cluster simulator ("measure")
  hydro        run the Lagrangian hydrodynamics mini-app
  part         partition a deck and report quality
  sweep        evaluate a deck x PE grid concurrently
  experiments  regenerate the paper's tables and figures
  compare      sweep one scenario across a catalog of machines
  calibrate    fit machine parameters to measured timings
  machines     list machine presets, fingerprints, and model forms
  serve        run the batched HTTP prediction service
  gateway      route requests across serve replicas with failover

Run "krak <subcommand> -h" for the subcommand's flags. All subcommands
accept --json for machine-readable output, and subcommands that take a
machine accept -machine-file (a declarative machine spec; see
"krak calibrate -h").
`)
}

// machineFlags declares the flags shared by every subcommand that needs a
// Machine and builds it. -machine-file loads a declarative machine file
// (see krak calibrate -h for the format) as the base configuration;
// explicitly set flags override the file's directives.
type machineFlags struct {
	fs          *flag.FlagSet
	machineFile *string
	net         *string
	seed        *uint64
	quick       *bool
	serialize   *bool
	parallel    *int
}

func addMachineFlags(fs *flag.FlagSet, withSerialize bool) *machineFlags {
	mf := &machineFlags{
		fs:          fs,
		machineFile: fs.String("machine-file", "", "machine file defining the platform (flags override its directives)"),
		net:         fs.String("net", "qsnet", "interconnect: qsnet, gige, infiniband"),
		seed:        fs.Uint64("seed", 1, "partitioner seed"),
		quick:       fs.Bool("quick", false, "scaled-down decks and calibrations"),
		parallel:    fs.Int("parallel", 0, "worker-pool width (0 = number of CPUs)"),
	}
	if withSerialize {
		mf.serialize = fs.Bool("serialize-sends", false, "disable message overlap")
	}
	return mf
}

func (mf *machineFlags) machine() (*krak.Machine, error) {
	set := map[string]bool{}
	mf.fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var opts []krak.MachineOption
	if *mf.machineFile != "" {
		src, err := os.ReadFile(*mf.machineFile)
		if err != nil {
			return nil, err
		}
		spec, err := krak.ParseMachineFile(src)
		if err != nil {
			return nil, err
		}
		// Only flags the user explicitly set override the file's
		// directives — including explicit negations like -quick=false.
		if set["net"] {
			spec.Interconnect = *mf.net
			spec.Network = nil
		}
		if set["seed"] {
			spec.Seed = *mf.seed
		}
		if set["quick"] {
			spec.Quick = *mf.quick
		}
		if mf.serialize != nil && set["serialize-sends"] {
			spec.SerializeSends = *mf.serialize
		}
		opts = spec.Options()
	} else {
		opts = []krak.MachineOption{
			krak.WithInterconnect(*mf.net),
			krak.WithSeed(*mf.seed),
		}
		if *mf.quick {
			opts = append(opts, krak.WithQuick())
		}
		if mf.serialize != nil && *mf.serialize {
			opts = append(opts, krak.WithSerializedSends())
		}
	}
	if *mf.parallel < 0 {
		return nil, fmt.Errorf("krak: -parallel must be >= 0 (0 = number of CPUs), got %d", *mf.parallel)
	}
	if *mf.parallel > 0 {
		opts = append(opts, krak.WithParallelism(*mf.parallel))
	}
	return krak.NewMachine(opts...)
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("krak: bad -%s entry %q (want positive integers)", flagName, part)
		}
		if len(out) >= krak.MaxSweepPoints {
			return nil, fmt.Errorf("krak: -%s has more than %d entries", flagName, krak.MaxSweepPoints)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("krak: -%s is empty", flagName)
	}
	return out, nil
}

// emit prints a result as text or JSON.
func emit(res *krak.Result, asJSON bool) error {
	if asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(res.Render())
	return nil
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("krak predict", flag.ExitOnError)
	deck := fs.String("deck", "medium", "deck: small, medium, large, figure2")
	pe := fs.Int("pe", 128, "processor count")
	modelName := fs.String("model", "general-homo", "model: general-homo, general-het, mesh-specific")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, false)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	model, err := krak.ParseModel(*modelName)
	if err != nil {
		return err
	}
	m, err := mf.machine()
	if err != nil {
		return err
	}
	sc, err := krak.NewScenario(krak.WithDeck(*deck), krak.WithPE(*pe), krak.WithModel(model))
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}
	res, err := s.Predict()
	if err != nil {
		return err
	}
	return emit(res, *asJSON)
}

func runSimulate(args []string) error {
	fs := flag.NewFlagSet("krak simulate", flag.ExitOnError)
	deck := fs.String("deck", "medium", "deck: small, medium, large, figure2")
	pe := fs.Int("pe", 128, "processor count")
	iters := fs.Int("iterations", 5, "iterations to simulate")
	parter := fs.String("partitioner", "multilevel", "multilevel, rcb, sfc, strips, random")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, true)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	m, err := mf.machine()
	if err != nil {
		return err
	}
	sc, err := krak.NewScenario(
		krak.WithDeck(*deck),
		krak.WithPE(*pe),
		krak.WithPartitioner(*parter),
		krak.WithIterations(*iters),
	)
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}
	res, err := s.Simulate()
	if err != nil {
		return err
	}
	return emit(res, *asJSON)
}

func runHydro(args []string) error {
	fs := flag.NewFlagSet("krak hydro", flag.ExitOnError)
	w := fs.Int("w", 40, "grid width (cells)")
	h := fs.Int("h", 20, "grid height (cells)")
	deckFile := fs.String("deck-file", "", "textual deck file (grid/layered/uniform/cells directives; overrides -w/-h)")
	steps := fs.Int("steps", 100, "timesteps to run")
	ranks := fs.Int("ranks", 1, "parallel goroutine ranks (1 = serial)")
	report := fs.Int("report", 20, "diagnostics interval in steps, 0 to disable (serial only)")
	asJSON := fs.Bool("json", false, "emit JSON")
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	m := krak.QsNetCluster()
	deckOpt := krak.WithDeckDims(*w, *h)
	if *deckFile != "" {
		src, err := os.ReadFile(*deckFile)
		if err != nil {
			return err
		}
		deckOpt = krak.WithDeckSpec(src)
	}
	opts := []krak.ScenarioOption{
		deckOpt,
		krak.WithSteps(*steps),
		krak.WithRanks(*ranks),
	}
	if *report > 0 && *ranks <= 1 && !*asJSON {
		opts = append(opts, krak.WithHydroProgress(*report, func(tk krak.HydroTick) {
			fmt.Printf("cycle %4d  t=%.4f  dt=%.2e  burned=%4d  maxP=%8.3f  KE=%.4f  IE=%.4f\n",
				tk.Cycle, tk.Time, tk.DT, tk.BurnedCells, tk.MaxPressure, tk.KineticEnergy, tk.InternalEnergy)
		}))
	}
	sc, err := krak.NewScenario(opts...)
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}
	res, err := s.RunHydro()
	if err != nil {
		return err
	}
	return emit(res, *asJSON)
}

func runPart(args []string) error {
	fs := flag.NewFlagSet("krak part", flag.ExitOnError)
	deck := fs.String("deck", "small", "deck: small, medium, large, figure2")
	deckFile := fs.String("deck-file", "", "textual deck file (overrides -deck)")
	pe := fs.Int("pe", 16, "processor count")
	algo := fs.String("algo", "multilevel", "multilevel, rcb, sfc, strips, random")
	showMap := fs.Bool("map", true, "render the subgrid map")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, false)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	m, err := mf.machine()
	if err != nil {
		return err
	}
	deckOpt := krak.WithDeck(*deck)
	if *deckFile != "" {
		src, err := os.ReadFile(*deckFile)
		if err != nil {
			return err
		}
		deckOpt = krak.WithDeckSpec(src)
	}
	sc, err := krak.NewScenario(deckOpt, krak.WithPE(*pe), krak.WithPartitioner(*algo))
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}
	res, err := s.Partition()
	if err != nil {
		return err
	}
	if !*showMap && res.Partition != nil {
		res.Partition.Map = ""
	}
	return emit(res, *asJSON)
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("krak sweep", flag.ExitOnError)
	op := fs.String("op", "predict", "operation per grid point: predict, simulate")
	decks := fs.String("deck", "medium", "comma-separated decks: small, medium, large, figure2")
	pes := fs.String("pe", "32,64,128,256", "comma-separated processor counts")
	modelName := fs.String("model", "general-homo", "model for predict points: general-homo, general-het, mesh-specific")
	parter := fs.String("partitioner", "multilevel", "multilevel, rcb, sfc, strips, random")
	iters := fs.Int("iterations", 0, "iterations per simulate point (0 = machine repeats)")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, true)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *iters < 0 {
		return fmt.Errorf("krak: -iterations must be >= 0 (0 = machine repeats), got %d", *iters)
	}
	sweepOp, err := krak.ParseSweepOp(*op)
	if err != nil {
		return err
	}
	model, err := krak.ParseModel(*modelName)
	if err != nil {
		return err
	}
	peList, err := parseIntList("pe", *pes)
	if err != nil {
		return err
	}
	m, err := mf.machine()
	if err != nil {
		return err
	}

	// The grid is the cross product of decks and PE counts, decks major,
	// so output order matches the flag order.
	var grid []*krak.Scenario
	for _, deck := range strings.Split(*decks, ",") {
		deck = strings.TrimSpace(deck)
		if deck == "" {
			continue
		}
		for _, pe := range peList {
			opts := []krak.ScenarioOption{
				krak.WithDeck(deck),
				krak.WithPE(pe),
				krak.WithModel(model),
				krak.WithPartitioner(*parter),
			}
			if *iters > 0 {
				opts = append(opts, krak.WithIterations(*iters))
			}
			sc, err := krak.NewScenario(opts...)
			if err != nil {
				return err
			}
			grid = append(grid, sc)
		}
	}
	if len(grid) == 0 {
		return fmt.Errorf("krak: empty sweep grid")
	}

	sc, err := krak.NewScenario()
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}
	sr, err := s.Sweep(context.Background(), sweepOp, grid)
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := json.MarshalIndent(sr, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Print(sr.Render())
	return nil
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("krak experiments", flag.ExitOnError)
	list := fs.Bool("list", false, "list available experiments")
	run := fs.String("run", "", "run a single experiment by id (default: all)")
	write := fs.String("write", "", "write results as markdown to this file")
	asJSON := fs.Bool("json", false, "emit JSON")
	mf := addMachineFlags(fs, false)
	pf := addProfileFlags(fs)
	fs.Parse(args)
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *list {
		if *asJSON {
			out, err := json.MarshalIndent(krak.ListExperiments(), "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			return nil
		}
		for _, e := range krak.ListExperiments() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return nil
	}

	m, err := mf.machine()
	if err != nil {
		return err
	}
	sc, err := krak.NewScenario()
	if err != nil {
		return err
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		return err
	}

	var ids []string
	if *run != "" {
		ids = []string{*run}
	}

	// nil ids regenerates the whole registry; the batch fans out over the
	// machine's worker pool (-parallel) with byte-identical output.
	results, err := s.Experiments(context.Background(), ids)
	if err != nil {
		return err
	}
	if !*asJSON {
		for _, res := range results {
			fmt.Print(res.Render())
			fmt.Println()
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	}
	if *write != "" {
		if err := os.WriteFile(*write, []byte(experimentsMarkdown(results, *mf.quick)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *write)
	}
	return nil
}

// experimentsMarkdown renders experiment results as the EXPERIMENTS.md
// document the old krak-experiments binary produced.
func experimentsMarkdown(results []*krak.Result, quick bool) string {
	var md strings.Builder
	md.WriteString("# EXPERIMENTS — paper vs reproduction\n\n")
	md.WriteString("Generated by `krak experiments")
	if quick {
		md.WriteString(" -quick")
	}
	md.WriteString("`. The \"measured\" platform is the discrete-event cluster\n")
	md.WriteString("simulator standing in for the paper's AlphaServer ES45 / QsNet-I machine\n")
	md.WriteString("(see docs/MODEL.md for the substitution table); predictions come from the\n")
	md.WriteString("analytic model. Match the *shapes*, not absolute numbers.\n\n")
	for _, res := range results {
		e := res.Experiment
		if e == nil {
			continue
		}
		fmt.Fprintf(&md, "## %s — %s\n\n", e.ID, e.Title)
		if len(e.Header) > 0 {
			fmt.Fprintf(&md, "| %s |\n", strings.Join(e.Header, " | "))
			sep := make([]string, len(e.Header))
			for i := range sep {
				sep[i] = "---"
			}
			fmt.Fprintf(&md, "| %s |\n", strings.Join(sep, " | "))
			for _, row := range e.Rows {
				fmt.Fprintf(&md, "| %s |\n", strings.Join(row, " | "))
			}
			md.WriteString("\n")
		}
		if e.Text != "" {
			fmt.Fprintf(&md, "```\n%s```\n\n", e.Text)
		}
		if e.Notes != "" {
			fmt.Fprintf(&md, "%s\n\n", e.Notes)
		}
	}
	return md.String()
}
