package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestStringList(t *testing.T) {
	var s stringList
	if err := s.Set("http://a:1, http://b:2,,"); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("http://c:3"); err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[0] != "http://a:1" || s[2] != "http://c:3" {
		t.Fatalf("stringList = %v", s)
	}
	if got := s.String(); got != "http://a:1,http://b:2,http://c:3" {
		t.Fatalf("String() = %q", got)
	}
}

func TestRunGatewayErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.conf")
	if err := os.WriteFile(bad, []byte("gateway broken\nnot-a-directive"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing config", []string{"-config", filepath.Join(dir, "nope.conf")}, "no such file"},
		{"bad config", []string{"-config", bad}, ""},
		{"no replicas", nil, "replica"},
		{"unarmed fault plan", []string{"-replica", "http://127.0.0.1:1", "-fault-plan", bad}, "allow-faults"},
	}
	for _, tc := range cases {
		err := runGateway(tc.args)
		if err == nil {
			t.Errorf("%s: runGateway accepted", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestRunGatewayListenConflict drives the full startup path — config
// file merge, flag overrides, fault-plan arming, gateway construction —
// into a deterministic ListenAndServe failure on an occupied port.
func TestRunGatewayListenConflict(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	dir := t.TempDir()
	conf := filepath.Join(dir, "gateway.conf")
	if err := os.WriteFile(conf, []byte("replica http://127.0.0.1:1\nretries 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	plan := filepath.Join(dir, "chaos.plan")
	if err := os.WriteFile(plan, []byte("plan cli-test\nseed 7\nerror-rate 0.1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = runGateway([]string{
		"-addr", ln.Addr().String(),
		"-config", conf,
		"-replica", "http://127.0.0.1:2,http://127.0.0.1:3",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-quick",
		"-no-local-fallback",
		"-retries", "2",
		"-probe-interval", "30s",
		"-breaker-threshold", "5",
		"-breaker-cooldown", "1s",
		"-fault-plan", plan,
		"-allow-faults",
	})
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("runGateway on an occupied port: %v", err)
	}
}

// waitHTTP polls url until it answers 200, failing fast if the runner
// under test returns an error instead of serving.
func waitHTTP(t *testing.T, url string, errc <-chan error) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-errc:
			t.Fatalf("runner exited before serving: %v", err)
		default:
		}
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s never became healthy", url)
}

// freePort reserves an ephemeral port and releases it for the runner
// to bind. The tiny reuse window is fine for a test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunGatewayGracefulShutdown boots the real subcommand, confirms
// it serves its own /healthz, then delivers SIGTERM and expects a
// clean nil return — the operator contract for rolling restarts.
func TestRunGatewayGracefulShutdown(t *testing.T) {
	addr := freePort(t)
	errc := make(chan error, 1)
	go func() {
		errc <- runGateway([]string{"-addr", addr, "-replica", "http://127.0.0.1:1", "-quick", "-probe-interval", "30s"})
	}()
	waitHTTP(t, fmt.Sprintf("http://%s/healthz", addr), errc)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("gateway did not shut down on SIGTERM")
	}
}
