package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestLoadFaultPlan(t *testing.T) {
	if inj, err := loadFaultPlan("", false); inj != nil || err != nil {
		t.Fatalf("empty path = %v, %v, want nil, nil", inj, err)
	}
	if _, err := loadFaultPlan("anything", false); err == nil || !strings.Contains(err.Error(), "allow-faults") {
		t.Fatalf("unacknowledged plan = %v, want allow-faults refusal", err)
	}
	if _, err := loadFaultPlan(filepath.Join(t.TempDir(), "nope"), true); err == nil {
		t.Fatal("missing plan file accepted")
	}

	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.plan")
	if err := os.WriteFile(bad, []byte("plan x\nerror-rate 7.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadFaultPlan(bad, true); err == nil {
		t.Fatal("malformed plan accepted")
	}

	good := filepath.Join(dir, "good.plan")
	if err := os.WriteFile(good, []byte("plan drill\nseed 9\nlatency-rate 0.5\nlatency 1ms 10ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	inj, err := loadFaultPlan(good, true)
	if err != nil {
		t.Fatal(err)
	}
	p := inj.Plan()
	if p.Name != "drill" || p.Seed != 9 {
		t.Fatalf("armed plan = %+v", p)
	}
}

func TestRunServeValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"negative parallel", []string{"-parallel", "-1"}},
		{"zero cache", []string{"-cache-size", "0"}},
		{"negative batch window", []string{"-batch-window", "-1ms"}},
		{"negative request timeout", []string{"-request-timeout", "-1s"}},
		{"unarmed fault plan", []string{"-fault-plan", "x.plan"}},
	}
	for _, tc := range cases {
		if err := runServe(tc.args); err == nil {
			t.Errorf("%s: runServe accepted", tc.name)
		}
	}
}

func TestRunServeListenConflict(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = runServe([]string{"-addr", ln.Addr().String(), "-quick"})
	if err == nil || !strings.Contains(err.Error(), "address already in use") {
		t.Fatalf("runServe on an occupied port: %v", err)
	}
}

// TestRunServeGracefulShutdown boots the real subcommand, waits for
// /healthz, and delivers SIGTERM — the same rolling-restart contract
// the gateway test pins, exercised at the replica level.
func TestRunServeGracefulShutdown(t *testing.T) {
	addr := freePort(t)
	errc := make(chan error, 1)
	go func() {
		errc <- runServe([]string{"-addr", addr, "-quick", "-cache-size", "8"})
	}()
	waitHTTP(t, fmt.Sprintf("http://%s/healthz", addr), errc)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not shut down on SIGTERM")
	}
}
