// Command krakcheck runs krak's in-tree static-analysis suite — the
// mechanical form of the repo's determinism, arena-hygiene, typed-error,
// bounded-parse, and context-propagation invariants — over a set of
// packages, in the style of an x/tools multichecker.
//
// Usage:
//
//	krakcheck [-rules r1,r2] [-fix] [-list] [packages...]
//
// Exit status is 1 when any diagnostic survives //krakcheck:ignore
// filtering, 2 on operational errors. `make lint` runs `krakcheck ./...`
// and CI keeps it green; `make lint-fix` applies the safe suggested
// fixes (-fix), e.g. the sorted-keys rewrite for map ranges.
package main

import (
	"flag"
	"fmt"
	"os"

	"krak/internal/analysis"
	"krak/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("krakcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules   = fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
		fix     = fs.Bool("fix", false, "apply suggested fixes to the source tree")
		list    = fs.Bool("list", false, "list available rules and exit")
		verbose = fs.Bool("v", false, "print the number of packages checked")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := analyzers.All()
	if *rules != "" {
		var unknown string
		selected, unknown = analyzers.ByName(*rules)
		if unknown != "" {
			fmt.Fprintf(stderr, "krakcheck: unknown rule %q (use -list)\n", unknown)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "krakcheck: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, selected)
	if err != nil {
		fmt.Fprintf(stderr, "krakcheck: %v\n", err)
		return 2
	}
	if *verbose {
		fmt.Fprintf(stdout, "krakcheck: %d packages, %d rules, %d findings\n",
			len(pkgs), len(selected), len(findings))
	}
	if len(findings) == 0 {
		return 0
	}
	if *fix {
		changed, err := analysis.ApplyFixes(findings)
		if err != nil {
			fmt.Fprintf(stderr, "krakcheck: applying fixes: %v\n", err)
			return 2
		}
		for _, name := range changed {
			fmt.Fprintf(stdout, "fixed: %s\n", name)
		}
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f.String())
	}
	return 1
}
