// Command krak-hydro runs the Lagrangian hydrodynamics mini-app (the Krak
// stand-in) serially or on goroutine ranks, reporting physics diagnostics
// and per-phase wall-clock times.
//
// Usage:
//
//	krak-hydro -w 80 -h 40 -steps 200
//	krak-hydro -w 80 -h 40 -steps 100 -ranks 4
package main

import (
	"flag"
	"fmt"
	"os"

	"krak/internal/hydro"
	"krak/internal/mesh"
	"krak/internal/partition"
	"krak/internal/phases"
	"krak/internal/textplot"
)

func main() {
	var (
		w     = flag.Int("w", 40, "grid width (cells)")
		h     = flag.Int("h", 20, "grid height (cells)")
		steps = flag.Int("steps", 100, "timesteps to run")
		ranks = flag.Int("ranks", 1, "parallel goroutine ranks (1 = serial)")
		every = flag.Int("report", 20, "diagnostics interval (serial only)")
	)
	flag.Parse()

	d, err := mesh.BuildLayeredDeck(*w, *h)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("Deck %s: %d cells, detonator at (%.3f, %.3f)\n\n",
		d.Name, d.Mesh.NumCells(), d.DetonatorX, d.DetonatorY)

	var timers hydro.PhaseSeconds
	var diag hydro.Diagnostics
	if *ranks <= 1 {
		s, err := hydro.NewState(d, hydro.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for i := 0; i < *steps; i++ {
			if err := hydro.Step(s, hydro.Serial{}, &timers); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *every > 0 && (i+1)%*every == 0 {
				dg := s.Diag()
				fmt.Printf("cycle %4d  t=%.4f  dt=%.2e  burned=%4d  maxP=%8.3f  KE=%.4f  IE=%.4f\n",
					dg.Cycle, dg.Time, s.DT, dg.BurnedCells, dg.MaxPressure, dg.KineticEnergy, dg.InternalEnergy)
			}
		}
		diag = s.Diag()
	} else {
		g := partition.FromMesh(d.Mesh)
		part, err := partition.NewMultilevel(1).Partition(g, *ranks)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := hydro.RunParallel(d, part, *ranks, *steps, hydro.Options{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		diag = res.Diag
		timers = res.PhaseSeconds
	}

	fmt.Printf("\nFinal: cycle %d, t=%.4f\n", diag.Cycle, diag.Time)
	fmt.Printf("  mass            %.6f\n", diag.TotalMass)
	fmt.Printf("  internal energy %.6f\n", diag.InternalEnergy)
	fmt.Printf("  kinetic energy  %.6f\n", diag.KineticEnergy)
	fmt.Printf("  released        %.6f\n", diag.EnergyReleased)
	fmt.Printf("  burned cells    %d\n", diag.BurnedCells)
	fmt.Printf("  max pressure    %.4f\n", diag.MaxPressure)

	labels := make([]string, phases.Count)
	vals := make([]float64, phases.Count)
	for i := range labels {
		labels[i] = fmt.Sprintf("phase %2d", i+1)
		vals[i] = timers[i] * 1e3
	}
	fmt.Println()
	fmt.Print(textplot.Bars("Wall-clock per phase (ms, accumulated):", labels, vals, 40))
}
