// Command krak-model runs the analytic performance model for a deck and
// processor count and prints the predicted iteration time with its
// per-phase breakdown.
//
// Usage:
//
//	krak-model -deck medium -pe 512 -model general-homo
//	krak-model -deck small -pe 64 -model mesh-specific
package main

import (
	"flag"
	"fmt"
	"os"

	"krak/internal/core"
	"krak/internal/experiments"
	"krak/internal/mesh"
	"krak/internal/phases"
	"krak/internal/textplot"
)

func deckSize(name string) (mesh.StandardSize, error) {
	switch name {
	case "small":
		return mesh.Small, nil
	case "medium":
		return mesh.Medium, nil
	case "large":
		return mesh.Large, nil
	case "figure2":
		return mesh.Figure2, nil
	}
	return 0, fmt.Errorf("unknown deck %q (small|medium|large|figure2)", name)
}

func main() {
	var (
		deckName  = flag.String("deck", "medium", "deck: small, medium, large, figure2")
		pe        = flag.Int("pe", 128, "processor count")
		modelName = flag.String("model", "general-homo", "model: general-homo, general-het, mesh-specific")
		quick     = flag.Bool("quick", false, "scaled-down deck")
	)
	flag.Parse()

	sz, err := deckSize(*deckName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	env := experiments.NewEnv()
	if *quick {
		env = experiments.NewQuickEnv()
	}
	d, err := env.Deck(sz)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var pred *core.Prediction
	switch *modelName {
	case "general-homo", "general-het":
		cal, err := env.ContrivedCalibration()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		mode := core.Homogeneous
		if *modelName == "general-het" {
			mode = core.Heterogeneous
		}
		pred, err = core.NewGeneral(cal, env.Net, mode).Predict(d.Mesh.NumCells(), *pe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case "mesh-specific":
		cal, err := env.DeckCalibration(d, []int{2, 8, 32})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sum, err := env.Partition(d, *pe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		pred, err = core.NewMeshSpecific(cal, env.Net).Predict(sum)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(1)
	}

	fmt.Printf("Deck %s (%d cells) on %d PEs, %s model, network %s\n\n",
		d.Name, d.Mesh.NumCells(), *pe, *modelName, env.Net.Name())
	header := []string{"Phase", "Compute (ms)", "P2P (ms)", "Collective (ms)", "Total (ms)"}
	var rows [][]string
	for ph := 1; ph <= phases.Count; ph++ {
		rows = append(rows, []string{
			fmt.Sprintf("%d", ph),
			fmt.Sprintf("%.3f", pred.PhaseCompute[ph-1]*1e3),
			fmt.Sprintf("%.3f", pred.PhaseP2P[ph-1]*1e3),
			fmt.Sprintf("%.3f", pred.PhaseCollective[ph-1]*1e3),
			fmt.Sprintf("%.3f", pred.PhaseTotal(ph)*1e3),
		})
	}
	fmt.Print(textplot.Table(header, rows))
	fmt.Printf("\nPredicted iteration time: %.1f ms (compute %.1f ms, communication %.1f ms)\n",
		pred.Total*1e3, pred.Compute()*1e3, pred.Communication()*1e3)
}
