module krak

go 1.24
