package partition

import (
	"testing"

	"krak/internal/mesh"
)

// TestMultilevelAllocRegression guards the scratch-arena refactor: one
// Partition call on a 12,800-cell deck at 128 parts must stay within an
// allocation budget far below the pre-arena implementation (~52,700
// allocs/op). The budget leaves ~50% headroom over the measured ~3,700 so
// legitimate small changes don't trip it, while a regression back to
// per-level maps or per-pass buffers (tens of thousands) cannot hide.
func TestMultilevelAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("partition-heavy")
	}
	d, err := mesh.BuildLayeredDeck(160, 80)
	if err != nil {
		t.Fatal(err)
	}
	g := FromMesh(d.Mesh)
	ml := NewMultilevel(1)
	const budget = 6000
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := ml.Partition(g, 128); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("Partition(128) allocated %.0f objects per run, budget %d", allocs, budget)
	}
}
