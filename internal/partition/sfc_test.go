package partition

import (
	"testing"
	"testing/quick"

	"krak/internal/mesh"
)

// buildDeckForSFC builds a layered deck mesh without a testing.TB, for use
// inside property-check closures.
func buildDeckForSFC(w, h int) (*mesh.Mesh, error) {
	d, err := mesh.BuildLayeredDeck(w, h)
	if err != nil {
		return nil, err
	}
	return d.Mesh, nil
}

func TestSFCBasics(t *testing.T) {
	g := buildGraph(t, 40, 20)
	for _, k := range []int{2, 5, 16} {
		part, err := SFC{}.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, g, part, k)
		// Curve cutting balances within one vertex of perfection.
		if im := Imbalance(g, part, k); im > 1.05 {
			t.Errorf("sfc k=%d imbalance %.3f", k, im)
		}
	}
	if (SFC{}).Name() != "hilbert-sfc" {
		t.Fatal("name wrong")
	}
}

func TestSFCRequiresCoordinates(t *testing.T) {
	g := &Graph{Xadj: []int32{0, 0}, VWgt: []int32{1}}
	if _, err := (SFC{}).Partition(g, 1); err == nil {
		t.Fatal("missing coordinates accepted")
	}
}

func TestSFCLocalityBeatsRandom(t *testing.T) {
	g := buildGraph(t, 80, 40)
	const k = 16
	sfcPart, err := SFC{}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	randPart, err := Random{Seed: 1}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	if Cut(g, sfcPart) >= Cut(g, randPart)/3 {
		t.Fatalf("sfc cut %d not clearly better than random %d",
			Cut(g, sfcPart), Cut(g, randPart))
	}
	// On regular structured grids the Hilbert curve is highly competitive
	// with multilevel partitioning; require the two to be in the same
	// ballpark rather than asserting a winner.
	mlPart, err := NewMultilevel(1).Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	mlCut, sfcCut := Cut(g, mlPart), Cut(g, sfcPart)
	if mlCut > 2*sfcCut || sfcCut > 2*mlCut {
		t.Fatalf("cuts diverge: multilevel %d vs sfc %d", mlCut, sfcCut)
	}
}

// TestHilbertCurveBijective checks the curve index is unique per lattice
// point (bijection on a small lattice).
func TestHilbertCurveBijective(t *testing.T) {
	const order = 4
	seen := map[uint64]bool{}
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			d := hilbertD(order, x, y)
			if seen[d] {
				t.Fatalf("duplicate curve index %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
			if d >= 1<<(2*order) {
				t.Fatalf("curve index %d out of range", d)
			}
		}
	}
}

// TestHilbertCurveContinuity: consecutive curve indices map to lattice
// neighbors (Manhattan distance 1) — the locality property the partitioner
// relies on.
func TestHilbertCurveContinuity(t *testing.T) {
	const order = 4
	pos := make(map[uint64][2]uint32)
	for x := uint32(0); x < 1<<order; x++ {
		for y := uint32(0); y < 1<<order; y++ {
			pos[hilbertD(order, x, y)] = [2]uint32{x, y}
		}
	}
	for d := uint64(0); d+1 < 1<<(2*order); d++ {
		a, b := pos[d], pos[d+1]
		dx := int(a[0]) - int(b[0])
		dy := int(a[1]) - int(b[1])
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			t.Fatalf("curve jump between d=%d (%v) and d=%d (%v)", d, a, d+1, b)
		}
	}
}

// Property: SFC partitions are valid and balanced for random shapes.
func TestSFCProperty(t *testing.T) {
	d, err := buildDeckForSFC(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	g := FromMesh(d)
	f := func(kRaw uint8) bool {
		k := int(kRaw)%12 + 2
		part, err := SFC{}.Partition(g, k)
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
			counts[p]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return Imbalance(g, part, k) < 1.1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
