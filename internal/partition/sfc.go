package partition

import (
	"fmt"
	"sort"
)

// SFC partitions by ordering vertices along a Hilbert space-filling curve
// and cutting the order into k equal-weight chunks. Space-filling-curve
// partitioning was the main lightweight alternative to multilevel graph
// methods in the paper's era: near-perfect balance, good locality, no graph
// needed — but typically ~20-40% worse edge cuts than METIS.
type SFC struct {
	// Order is the Hilbert curve refinement depth (default 16 bits/axis).
	Order int
}

// Name implements Partitioner.
func (SFC) Name() string { return "hilbert-sfc" }

// Partition implements Partitioner. The graph must carry coordinates.
func (s SFC) Partition(g *Graph, k int) ([]int, error) {
	if err := validateArgs(g, k); err != nil {
		return nil, err
	}
	if len(g.CoordX) != g.NumVertices() || len(g.CoordY) != g.NumVertices() {
		return nil, fmt.Errorf("partition: sfc requires vertex coordinates")
	}
	order := s.Order
	if order <= 0 || order > 30 {
		order = 16
	}
	n := g.NumVertices()

	// Normalize coordinates onto the [0, 2^order) integer lattice.
	minX, maxX := g.CoordX[0], g.CoordX[0]
	minY, maxY := g.CoordY[0], g.CoordY[0]
	for v := 1; v < n; v++ {
		if g.CoordX[v] < minX {
			minX = g.CoordX[v]
		}
		if g.CoordX[v] > maxX {
			maxX = g.CoordX[v]
		}
		if g.CoordY[v] < minY {
			minY = g.CoordY[v]
		}
		if g.CoordY[v] > maxY {
			maxY = g.CoordY[v]
		}
	}
	side := uint32(1) << order
	scale := func(v, lo, hi float64) uint32 {
		if hi <= lo {
			return 0
		}
		x := (v - lo) / (hi - lo) * float64(side-1)
		if x < 0 {
			return 0
		}
		if x > float64(side-1) {
			return side - 1
		}
		return uint32(x)
	}

	type keyed struct {
		v   int32
		key uint64
	}
	keys := make([]keyed, n)
	for v := 0; v < n; v++ {
		hx := scale(g.CoordX[v], minX, maxX)
		hy := scale(g.CoordY[v], minY, maxY)
		keys[v] = keyed{v: int32(v), key: hilbertD(order, hx, hy)}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].key != keys[b].key {
			return keys[a].key < keys[b].key
		}
		return keys[a].v < keys[b].v
	})

	// Cut the curve order into k equal-weight chunks.
	part := make([]int, n)
	var total int64
	for _, w := range g.VWgt {
		total += int64(w)
	}
	var acc int64
	for _, kv := range keys {
		p := int(acc * int64(k) / total)
		if p >= k {
			p = k - 1
		}
		part[kv.v] = p
		acc += int64(g.VWgt[kv.v])
	}
	return part, nil
}

// hilbertD maps lattice coordinates (x, y) to their distance along the
// Hilbert curve of the given order (the classic rot/reflect walk).
func hilbertD(order int, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}
