package partition

import (
	"fmt"
	bits64 "math/bits"

	"krak/internal/stats"
)

// Multilevel is the METIS-style multilevel k-way partitioner: the graph is
// coarsened once by repeated heavy-edge matching, the coarsest graph is
// partitioned by recursive bisection (greedy growing + Fiduccia–Mattheyses
// refinement with rollback), and the partition is projected back through the
// levels with greedy k-way boundary refinement at each step.
//
// The hot path is allocation-frugal: every Partition call owns one scratch
// arena (see mlScratch) whose buffers are threaded through coarsening,
// bisection, and refinement, so per-level and per-pass work reuses memory
// instead of reallocating it. The arena is per-call state, never stored on
// the receiver, preserving the Partitioner concurrency contract.
type Multilevel struct {
	// Seed drives every randomized decision; equal seeds give identical
	// partitions.
	Seed uint64
	// CoarsenTo stops coarsening once the graph has at most
	// max(CoarsenTo, 12*k) vertices (default 64).
	CoarsenTo int
	// Tries is the number of initial bisections grown per coarsest graph,
	// keeping the best (default 4).
	Tries int
	// MaxImbalance bounds the tolerated imbalance as a fraction, e.g. 0.05
	// allows parts 5% above average (default 0.05).
	MaxImbalance float64
	// RefinePasses bounds the k-way refinement passes per level (default 4).
	RefinePasses int
}

// NewMultilevel returns a Multilevel partitioner with default tuning.
func NewMultilevel(seed uint64) *Multilevel {
	return &Multilevel{Seed: seed, CoarsenTo: 64, Tries: 4, MaxImbalance: 0.05, RefinePasses: 4}
}

// Name implements Partitioner.
func (ml *Multilevel) Name() string { return "multilevel-kway" }

func (ml *Multilevel) coarsenTo() int {
	if ml.CoarsenTo <= 1 {
		return 64
	}
	return ml.CoarsenTo
}

func (ml *Multilevel) tries() int {
	if ml.Tries <= 0 {
		return 4
	}
	return ml.Tries
}

func (ml *Multilevel) maxImbalance() float64 {
	if ml.MaxImbalance <= 0 {
		return 0.05
	}
	return ml.MaxImbalance
}

func (ml *Multilevel) refinePasses() int {
	if ml.RefinePasses <= 0 {
		return 4
	}
	return ml.RefinePasses
}

// level captures one coarsening step.
type level struct {
	g    *Graph
	cmap []int32 // fine vertex -> coarse vertex
}

// mlScratch is the reusable working memory of one Partition call. Buffers
// are sized on demand (grow* helpers) and shared across coarsening levels,
// bisection tries, and refinement passes. Ownership rules:
//
//   - Buffers here never escape the call: anything retained across levels
//     (cmap vectors, coarse CSR arrays, the final part vector) is allocated
//     exactly once at its final size instead.
//   - fm/kway buffers (gain, nExt, locked, moves, w, conn, order) are
//     reset by their users; acc and newID rely on their users restoring
//     zeros / -1 before returning, so the next user can skip the clear.
//   - sideA/sideB ping-pong through bisection projection; the returned
//     side vector is only valid until the next bisect call, which is fine
//     because recurse consumes it immediately.
//
// krakcheck:arena
type mlScratch struct {
	match    []int32
	acc      []int32 // zeroed between uses by coarsenOnce's touched-list
	touched  []int32
	mstart   []int32
	mlist    []int32
	adjTmp   []int32
	wgtTmp   []int32
	order    []int32
	newID    []int32 // -1 outside induce; restored before induce returns
	seen     []bool
	queue    []int32
	sideA    []int8
	sideB    []int8
	bestSde  []int8
	gain     []int64
	nExt     []int32
	cand     []uint64
	locked   []bool
	moves    []int32
	w        []int64
	conn     []int64
	touchedP []int
}

// grow returns buf resized to n, reallocating (zeroed, contents dropped)
// only when capacity is short — the arena's one sizing policy.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// Partition implements Partitioner.
func (ml *Multilevel) Partition(g *Graph, k int) ([]int, error) {
	if err := validateArgs(g, k); err != nil {
		return nil, err
	}
	rng := stats.Derive(ml.Seed, 0x9a17, uint64(k))
	scr := &mlScratch{}

	// Coarsening phase: contract heavy-edge matchings until the graph is
	// small relative to k.
	stopAt := ml.coarsenTo()
	if t := 40 * k; t > stopAt {
		stopAt = t
	}
	var levels []level
	cur := g
	for cur.NumVertices() > stopAt {
		cmap, coarse := coarsenOnce(cur, rng, scr)
		if coarse.NumVertices() >= cur.NumVertices()*9/10 {
			break // matching stalled; stop coarsening
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}

	// Initial k-way partition of the coarsest graph by recursive bisection.
	// The per-bisection tolerance shrinks with recursion depth so the
	// compounded imbalance stays within MaxImbalance overall.
	depth := 1
	for 1<<depth < k {
		depth++
	}
	bisectTol := ml.maxImbalance() / float64(depth)
	if bisectTol < 0.002 {
		bisectTol = 0.002
	}
	part := make([]int, cur.NumVertices())
	vertices := make([]int32, cur.NumVertices())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	// newID doubles as induce's dense remap table over the coarsest graph;
	// induce's contract is that it holds -1 whenever induce is not running.
	scr.newID = grow(scr.newID, cur.NumVertices())
	for i := range scr.newID {
		scr.newID[i] = -1
	}
	ml.recurse(cur, vertices, k, 0, part, bisectTol, rng, scr)
	kwayRefine(cur, part, k, ml.maxImbalance(), ml.refinePasses(), rng, scr)

	// Uncoarsening with refinement at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int, lv.g.NumVertices())
		for v := range fine {
			fine[v] = part[lv.cmap[v]]
		}
		kwayRefine(lv.g, fine, k, ml.maxImbalance(), ml.refinePasses(), rng, scr)
		part = fine
	}
	return part, nil
}

// recurse bisects the subgraph induced by vertices into kL and kR shares,
// assigning final part ids [base, base+k) into part. It is only invoked on
// coarse graphs, so the induced-subgraph copies are cheap.
func (ml *Multilevel) recurse(g *Graph, vertices []int32, k, base int, part []int, tol float64, rng *stats.SplitMix64, scr *mlScratch) {
	if k == 1 {
		for _, v := range vertices {
			part[v] = base
		}
		return
	}
	kL := k / 2
	kR := k - kL
	sub := induce(g, vertices, scr)
	frac := float64(kL) / float64(k)
	side := ml.bisect(sub, frac, tol, rng, scr)
	var left, right []int32
	for i, v := range vertices {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Degenerate splits can strand a side with fewer vertices than parts;
	// rebalance by moving arbitrary vertices (never happens on meshes, but
	// keeps the invariant for adversarial graphs).
	for len(left) < kL {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	for len(right) < kR {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	ml.recurse(g, left, kL, base, part, tol, rng, scr)
	ml.recurse(g, right, kR, base+kL, part, tol, rng, scr)
}

// induce builds the subgraph over the given vertices (in their given order),
// remapping ids through the scratch arena's dense newID table instead of a
// per-call map. newID must hold -1 on entry for every vertex of g; induce
// restores that before returning.
func induce(g *Graph, vertices []int32, scr *mlScratch) *Graph {
	newID := scr.newID
	for i, v := range vertices {
		newID[v] = int32(i)
	}
	// First pass: count surviving edges so the CSR arrays allocate exactly
	// once at their final size (they outlive the scratch reuse window).
	edges := 0
	for _, v := range vertices {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if newID[g.Adjncy[e]] >= 0 {
				edges++
			}
		}
	}
	sub := &Graph{
		Xadj:   make([]int32, len(vertices)+1),
		Adjncy: make([]int32, edges),
		AdjWgt: make([]int32, edges),
		VWgt:   make([]int32, len(vertices)),
	}
	fill := int32(0)
	for i, v := range vertices {
		sub.VWgt[i] = g.VWgt[v]
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if nu := newID[g.Adjncy[e]]; nu >= 0 {
				sub.Adjncy[fill] = nu
				sub.AdjWgt[fill] = g.AdjWgt[e]
				fill++
			}
		}
		sub.Xadj[i+1] = fill
	}
	for _, v := range vertices {
		newID[v] = -1
	}
	return sub
}

// bisect performs a multilevel bisection of g, targeting the given weight
// fraction in side 0. Returns a 0/1 side per vertex, valid until the next
// bisect call on the same scratch.
func (ml *Multilevel) bisect(g *Graph, frac, tol float64, rng *stats.SplitMix64, scr *mlScratch) []int8 {
	var levels []level
	cur := g
	for cur.NumVertices() > ml.coarsenTo() {
		cmap, coarse := coarsenOnce(cur, rng, scr)
		if coarse.NumVertices() >= cur.NumVertices()*9/10 {
			break
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}
	target0 := int64(frac * float64(cur.TotalVWgt()))
	n := cur.NumVertices()
	scr.sideA = grow(scr.sideA, g.NumVertices())
	scr.bestSde = grow(scr.bestSde, g.NumVertices())
	side := scr.sideA[:n]
	best := scr.bestSde[:n]
	var bestCut int64 = 1<<62 - 1
	haveBest := false
	for t := 0; t < ml.tries(); t++ {
		growBisection(cur, side, target0, rng, scr)
		fmRefine(cur, side, target0, tol, 4, scr)
		if c := cutSides(cur, side); c < bestCut {
			bestCut = c
			copy(best, side)
			haveBest = true
		}
	}
	if haveBest {
		copy(side, best)
	}
	// Project through the levels, ping-ponging between the two side
	// buffers: the fine side is written while the coarse side is read.
	scr.sideB = grow(scr.sideB, g.NumVertices())
	other := scr.sideB
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := other[:lv.g.NumVertices()]
		for v := range fine {
			fine[v] = side[lv.cmap[v]]
		}
		t0 := int64(frac * float64(lv.g.TotalVWgt()))
		fmRefine(lv.g, fine, t0, tol, 4, scr)
		side, other = fine, side[:cap(side)]
	}
	//krakcheck:ignore arenaescape deliberate borrow: the side vector is valid until the next bisect call and recurse consumes it before calling bisect again
	return side
}

// coarsenOnce computes a heavy-edge matching and contracts it. Only the
// returned cmap and coarse CSR arrays are freshly allocated (they are
// retained across the level stack); all working memory comes from scr.
func coarsenOnce(g *Graph, rng *stats.SplitMix64, scr *mlScratch) (cmap []int32, coarse *Graph) {
	n := g.NumVertices()
	scr.order = grow(scr.order, n)
	order := scr.order
	randomOrderInto(order, rng)
	scr.match = grow(scr.match, n)
	match := scr.match
	for i := range match {
		match[i] = -1
	}
	nCoarse := int32(0)
	cmap = make([]int32, n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		// Pick the unmatched neighbor with the heaviest connecting edge.
		bestU := int32(-1)
		var bestW int32 = -1
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if match[u] == -1 && g.AdjWgt[e] > bestW {
				bestW = g.AdjWgt[e]
				bestU = u
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = v
			cmap[v] = nCoarse
			cmap[bestU] = nCoarse
		} else {
			match[v] = v
			cmap[v] = nCoarse
		}
		nCoarse++
	}
	// Contract. Member lists come from a counting sort into one flat
	// scratch array (ascending fine id within each coarse vertex, matching
	// the append order the map-free aggregation below relies on), and edge
	// accumulation uses a dense scratch array indexed by coarse vertex with
	// a touched-list, avoiding per-vertex maps.
	coarse = &Graph{
		Xadj: make([]int32, nCoarse+1),
		VWgt: make([]int32, nCoarse),
	}
	for v := 0; v < n; v++ {
		coarse.VWgt[cmap[v]] += g.VWgt[v]
	}
	scr.mstart = grow(scr.mstart, int(nCoarse)+1)
	mstart := scr.mstart
	for i := range mstart {
		mstart[i] = 0
	}
	for v := 0; v < n; v++ {
		mstart[cmap[v]+1]++
	}
	for cv := int32(0); cv < nCoarse; cv++ {
		mstart[cv+1] += mstart[cv]
	}
	scr.mlist = grow(scr.mlist, n)
	mlist := scr.mlist
	{
		// Fill positions advance through each coarse vertex's span; reuse
		// match as the cursor array (its contents are dead past this point).
		fill := match
		copy(fill, mstart[:nCoarse])
		for v := 0; v < n; v++ {
			cv := cmap[v]
			mlist[fill[cv]] = int32(v)
			fill[cv]++
		}
	}
	scr.acc = grow(scr.acc, int(nCoarse))
	acc := scr.acc
	for i := range acc {
		acc[i] = 0
	}
	scr.touched = grow(scr.touched, 0)
	touched := scr.touched[:0]
	// Aggregate into arena buffers sized by the upper bound (contraction
	// never increases edge endpoints), then copy to exact-size arrays.
	adjncy := grow(scr.adjTmp, len(g.Adjncy))[:0]
	adjwgt := grow(scr.wgtTmp, len(g.Adjncy))[:0]
	for cv := int32(0); cv < nCoarse; cv++ {
		touched = touched[:0]
		for _, v := range mlist[mstart[cv]:mstart[cv+1]] {
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				cu := cmap[g.Adjncy[e]]
				if cu == cv {
					continue
				}
				if acc[cu] == 0 {
					touched = append(touched, cu)
				}
				acc[cu] += g.AdjWgt[e]
			}
		}
		for _, cu := range touched {
			adjncy = append(adjncy, cu)
			adjwgt = append(adjwgt, acc[cu])
			acc[cu] = 0
		}
		coarse.Xadj[cv+1] = int32(len(adjncy))
	}
	scr.touched = touched
	scr.adjTmp = adjncy[:0]
	scr.wgtTmp = adjwgt[:0]
	// Copy to exact-size arrays: the coarse graph is retained for the
	// whole uncoarsening walk, so it must not alias the reused scratch.
	coarse.Adjncy = make([]int32, len(adjncy))
	copy(coarse.Adjncy, adjncy)
	coarse.AdjWgt = make([]int32, len(adjwgt))
	copy(coarse.AdjWgt, adjwgt)
	return cmap, coarse
}

// randomOrder returns a fresh shuffled permutation of [0, n). The hot paths
// use randomOrderInto with an arena buffer instead; this allocating form
// remains for the baseline partitioners.
func randomOrder(n int, rng *stats.SplitMix64) []int32 {
	order := make([]int32, n)
	randomOrderInto(order, rng)
	return order
}

// randomOrderInto fills order with the identity permutation of its length
// and Fisher–Yates shuffles it, consuming exactly len(order)-1 rng draws
// (the same stream the allocating randomOrder consumed).
func randomOrderInto(order []int32, rng *stats.SplitMix64) {
	n := len(order)
	for i := range order {
		order[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
}

// growBisection grows side 0 by BFS from a random seed until it holds
// roughly target0 weight, writing into the caller's side buffer.
func growBisection(g *Graph, side []int8, target0 int64, rng *stats.SplitMix64, scr *mlScratch) {
	n := g.NumVertices()
	for i := range side {
		side[i] = 1
	}
	start := int32(rng.Next() % uint64(n))
	var w0 int64
	scr.queue = grow(scr.queue, 0)
	queue := append(scr.queue[:0], start)
	scr.seen = grow(scr.seen, n)
	seen := scr.seen
	for i := range seen {
		seen[i] = false
	}
	seen[start] = true
	head := 0
	for head < len(queue) && w0 < target0 {
		v := queue[head]
		head++
		side[v] = 0
		w0 += int64(g.VWgt[v])
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	scr.queue = queue[:0]
	// Disconnected leftovers: if the BFS exhausted its component before
	// reaching the target, keep absorbing unseen vertices.
	if w0 < target0 {
		for v := int32(0); v < int32(n) && w0 < target0; v++ {
			if !seen[v] {
				seen[v] = true
				side[v] = 0
				w0 += int64(g.VWgt[v])
			}
		}
	}
}

// cutSides returns the cut of a two-way side assignment.
func cutSides(g *Graph, side []int8) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[v] != side[g.Adjncy[e]] {
				cut += int64(g.AdjWgt[e])
			}
		}
	}
	return cut / 2
}

// fmRefine runs Fiduccia–Mattheyses passes with rollback on a bisection of a
// small (coarse) graph: each pass repeatedly moves the highest-gain movable
// boundary vertex, then keeps the best prefix of moves. Balance moves are
// admitted when they keep side 0 within tol of target0, or strictly improve
// the distance to target0 (so an out-of-tolerance start can recover).
//
// Gains and boundary membership are maintained incrementally: flipping a
// vertex negates its own gain and adjusts each neighbor's cached gain and
// external-edge count by the flipped edge, so selecting the next move is a
// flat scan over cached values instead of re-walking the adjacency of every
// candidate. The scan order (ascending vertex id, strictly-greater gain
// wins) exactly matches the re-scanning implementation, so move sequences —
// and therefore partitions — are byte-identical at a fixed seed.
func fmRefine(g *Graph, side []int8, target0 int64, tol float64, maxPasses int, scr *mlScratch) {
	n := g.NumVertices()
	lo0 := int64(float64(target0) * (1 - tol))
	hi0 := int64(float64(target0) * (1 + tol))

	var w0 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += int64(g.VWgt[v])
		}
	}

	// Cached per-vertex state: gain = external minus internal edge weight,
	// nExt = number of incident edges crossing the cut (0 means interior).
	scr.gain = grow(scr.gain, n)
	scr.nExt = grow(scr.nExt, n)
	gain := scr.gain
	nExt := scr.nExt
	for v := 0; v < n; v++ {
		var ext, inter int64
		cnt := int32(0)
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[g.Adjncy[e]] != side[v] {
				ext += int64(g.AdjWgt[e])
				cnt++
			} else {
				inter += int64(g.AdjWgt[e])
			}
		}
		gain[v] = ext - inter
		nExt[v] = cnt
	}

	// cand is a bitset of movable candidates — vertices that are on the
	// boundary (nExt > 0) and not locked this pass. Selection scans its set
	// bits in ascending index order, which reproduces exactly the ascending
	// full-vertex scan of the pre-bitset implementation (skipped vertices
	// fail the same nExt/locked tests there).
	words := (n + 63) / 64
	scr.cand = grow(scr.cand, words)
	cand := scr.cand
	scr.locked = grow(scr.locked, n)
	locked := scr.locked

	// flip moves v to the other side, updating w0 and the cached gains,
	// crossing counts, and candidacy bits of v and its neighbors. Used for
	// moves and rollback alike, so the caches stay exact across passes.
	flip := func(v int) {
		if side[v] == 0 {
			side[v] = 1
			w0 -= int64(g.VWgt[v])
		} else {
			side[v] = 0
			w0 += int64(g.VWgt[v])
		}
		gain[v] = -gain[v]
		deg := g.Xadj[v+1] - g.Xadj[v]
		nExt[v] = deg - nExt[v]
		if nExt[v] > 0 && !locked[v] {
			cand[v>>6] |= 1 << (uint(v) & 63)
		} else {
			cand[v>>6] &^= 1 << (uint(v) & 63)
		}
		sv := side[v]
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			w2 := 2 * int64(g.AdjWgt[e])
			if side[u] == sv {
				// Edge became internal for u.
				gain[u] -= w2
				nExt[u]--
			} else {
				// Edge became external for u.
				gain[u] += w2
				nExt[u]++
			}
			if nExt[u] > 0 && !locked[u] {
				cand[u>>6] |= 1 << (uint(u) & 63)
			} else {
				cand[u>>6] &^= 1 << (uint(u) & 63)
			}
		}
	}

	dist := func(w int64) int64 {
		if w > target0 {
			return w - target0
		}
		return target0 - w
	}

	scr.moves = grow(scr.moves, 0)

	for pass := 0; pass < maxPasses; pass++ {
		for i := range locked {
			locked[i] = false
		}
		for i := range cand {
			cand[i] = 0
		}
		for v := 0; v < n; v++ {
			if nExt[v] > 0 {
				cand[v>>6] |= 1 << (uint(v) & 63)
			}
		}
		moves := scr.moves[:0]
		var cumGain, bestGain int64
		bestPrefix := 0
		for step := 0; step < n; step++ {
			bestV := -1
			var bestMoveGain int64 = -1 << 62
			for wi := 0; wi < words; wi++ {
				bits := cand[wi]
				for bits != 0 {
					v := wi<<6 + bits64.TrailingZeros64(bits)
					bits &= bits - 1
					nw0 := w0
					if side[v] == 0 {
						nw0 -= int64(g.VWgt[v])
					} else {
						nw0 += int64(g.VWgt[v])
					}
					if (nw0 < lo0 || nw0 > hi0) && dist(nw0) >= dist(w0) {
						continue
					}
					if gv := gain[v]; gv > bestMoveGain {
						bestMoveGain = gv
						bestV = v
					}
				}
			}
			if bestV < 0 {
				break
			}
			flip(bestV)
			locked[bestV] = true
			cand[bestV>>6] &^= 1 << (uint(bestV) & 63)
			cumGain += bestMoveGain
			moves = append(moves, int32(bestV))
			if cumGain > bestGain {
				bestGain = cumGain
				bestPrefix = len(moves)
			}
			if cumGain < bestGain-64 {
				break // gains have gone clearly negative; stop the pass
			}
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			flip(int(moves[i]))
		}
		scr.moves = moves[:0]
		if bestGain <= 0 {
			return
		}
	}
}

// kwayRefine runs greedy k-way boundary refinement: vertices on part
// boundaries move to the neighboring part with the strongest connection when
// that reduces the cut (or equals it while improving balance), subject to an
// upper bound on the destination part's weight. Linear time per pass.
func kwayRefine(g *Graph, part []int, k int, tol float64, maxPasses int, rng *stats.SplitMix64, scr *mlScratch) {
	n := g.NumVertices()
	total := g.TotalVWgt()
	maxW := int64(float64(total)/float64(k)*(1+tol)) + 1
	scr.w = grow(scr.w, k)
	w := scr.w
	for i := range w {
		w[i] = 0
	}
	for v := 0; v < n; v++ {
		w[part[v]] += int64(g.VWgt[v])
	}
	scr.conn = grow(scr.conn, k)
	conn := scr.conn
	for i := range conn {
		conn[i] = 0
	}
	touched := scr.touchedP[:0]
	defer func() { scr.touchedP = touched[:0] }()
	scr.order = grow(scr.order, n)
	order := scr.order

	// Balance-enforcement phase: while any part exceeds maxW, push its
	// boundary vertices into the most-connected non-overweight neighbor
	// part, accepting cut increases. Projection from a coarse level can
	// leave parts overweight because coarse vertices are indivisible; at
	// finer levels vertices shrink and this phase restores the tolerance.
	for round := 0; round < maxPasses+2; round++ {
		over := false
		for _, pw := range w {
			if pw > maxW {
				over = true
				break
			}
		}
		if !over {
			break
		}
		moved := 0
		randomOrderInto(order, rng)
		for _, v32 := range order {
			v := int(v32)
			pv := part[v]
			if w[pv] <= maxW {
				continue
			}
			touched = touched[:0]
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				pu := part[g.Adjncy[e]]
				if conn[pu] == 0 {
					touched = append(touched, pu)
				}
				conn[pu] += int64(g.AdjWgt[e])
			}
			vw := int64(g.VWgt[v])
			bestP := -1
			var bestConn int64 = -1
			for _, p := range touched {
				if p == pv || w[p]+vw > maxW {
					continue
				}
				if conn[p] > bestConn || (conn[p] == bestConn && bestP >= 0 && w[p] < w[bestP]) {
					bestConn = conn[p]
					bestP = p
				}
			}
			if bestP < 0 {
				// Cascade fallback: all neighbors are themselves at the
				// bound; push into the lightest one anyway as long as that
				// strictly levels the pair, letting weight percolate toward
				// underweight parts over subsequent rounds.
				for _, p := range touched {
					if p == pv || w[p]+vw >= w[pv] {
						continue
					}
					if bestP < 0 || w[p] < w[bestP] {
						bestP = p
					}
				}
			}
			if bestP >= 0 {
				w[pv] -= vw
				w[bestP] += vw
				part[v] = bestP
				moved++
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}

	// Boundary counts for the refinement passes: nExtK[v] is how many of
	// v's neighbors live in another part. Interior vertices (the vast
	// majority on fine graphs) skip their whole edge scan — behaviorally
	// identical to the scan-then-do-nothing the unconditional loop
	// performed, since an interior vertex never moves and touches no
	// state. Counts are maintained incrementally on every move. Computed
	// after the balance phase (which moves vertices without reading them).
	scr.nExt = grow(scr.nExt, n)
	nExtK := scr.nExt
	for v := 0; v < n; v++ {
		pv := part[v]
		cnt := int32(0)
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if part[g.Adjncy[e]] != pv {
				cnt++
			}
		}
		nExtK[v] = cnt
	}

	for pass := 0; pass < maxPasses; pass++ {
		moved := 0
		randomOrderInto(order, rng)
		for _, v32 := range order {
			v := int(v32)
			if nExtK[v] == 0 {
				continue // interior: no move possible, no state to touch
			}
			pv := part[v]
			// Connectivity of v to each adjacent part.
			touched = touched[:0]
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				pu := part[g.Adjncy[e]]
				if conn[pu] == 0 {
					touched = append(touched, pu)
				}
				conn[pu] += int64(g.AdjWgt[e])
			}
			vw := int64(g.VWgt[v])
			bestP := -1
			var bestConn int64 = -1
			for _, p := range touched {
				if p == pv {
					continue
				}
				if w[p]+vw > maxW {
					continue
				}
				if conn[p] > bestConn || (conn[p] == bestConn && bestP >= 0 && w[p] < w[bestP]) {
					bestConn = conn[p]
					bestP = p
				}
			}
			if bestP >= 0 {
				gain := bestConn - conn[pv]
				if gain > 0 || (gain == 0 && w[pv] > w[bestP]+vw) {
					w[pv] -= vw
					w[bestP] += vw
					part[v] = bestP
					moved++
					// Maintain boundary counts: each incident edge's
					// crossing status may change as v leaves pv for bestP.
					cnt := int32(0)
					for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
						u := g.Adjncy[e]
						pu := part[u]
						before := pu != pv
						after := pu != bestP
						if before != after {
							if after {
								nExtK[u]++
							} else {
								nExtK[u]--
							}
						}
						if after {
							cnt++
						}
					}
					nExtK[v] = cnt
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			return
		}
	}
}

// String describes the configuration.
func (ml *Multilevel) String() string {
	return fmt.Sprintf("multilevel(seed=%d, coarsenTo=%d, tries=%d, tol=%.2f)",
		ml.Seed, ml.coarsenTo(), ml.tries(), ml.maxImbalance())
}
