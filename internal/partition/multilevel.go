package partition

import (
	"fmt"

	"krak/internal/stats"
)

// Multilevel is the METIS-style multilevel k-way partitioner: the graph is
// coarsened once by repeated heavy-edge matching, the coarsest graph is
// partitioned by recursive bisection (greedy growing + Fiduccia–Mattheyses
// refinement with rollback), and the partition is projected back through the
// levels with greedy k-way boundary refinement at each step.
type Multilevel struct {
	// Seed drives every randomized decision; equal seeds give identical
	// partitions.
	Seed uint64
	// CoarsenTo stops coarsening once the graph has at most
	// max(CoarsenTo, 12*k) vertices (default 64).
	CoarsenTo int
	// Tries is the number of initial bisections grown per coarsest graph,
	// keeping the best (default 4).
	Tries int
	// MaxImbalance bounds the tolerated imbalance as a fraction, e.g. 0.05
	// allows parts 5% above average (default 0.05).
	MaxImbalance float64
	// RefinePasses bounds the k-way refinement passes per level (default 4).
	RefinePasses int
}

// NewMultilevel returns a Multilevel partitioner with default tuning.
func NewMultilevel(seed uint64) *Multilevel {
	return &Multilevel{Seed: seed, CoarsenTo: 64, Tries: 4, MaxImbalance: 0.05, RefinePasses: 4}
}

// Name implements Partitioner.
func (ml *Multilevel) Name() string { return "multilevel-kway" }

func (ml *Multilevel) coarsenTo() int {
	if ml.CoarsenTo <= 1 {
		return 64
	}
	return ml.CoarsenTo
}

func (ml *Multilevel) tries() int {
	if ml.Tries <= 0 {
		return 4
	}
	return ml.Tries
}

func (ml *Multilevel) maxImbalance() float64 {
	if ml.MaxImbalance <= 0 {
		return 0.05
	}
	return ml.MaxImbalance
}

func (ml *Multilevel) refinePasses() int {
	if ml.RefinePasses <= 0 {
		return 4
	}
	return ml.RefinePasses
}

// level captures one coarsening step.
type level struct {
	g    *Graph
	cmap []int32 // fine vertex -> coarse vertex
}

// Partition implements Partitioner.
func (ml *Multilevel) Partition(g *Graph, k int) ([]int, error) {
	if err := validateArgs(g, k); err != nil {
		return nil, err
	}
	rng := stats.Derive(ml.Seed, 0x9a17, uint64(k))

	// Coarsening phase: contract heavy-edge matchings until the graph is
	// small relative to k.
	stopAt := ml.coarsenTo()
	if t := 40 * k; t > stopAt {
		stopAt = t
	}
	var levels []level
	cur := g
	for cur.NumVertices() > stopAt {
		cmap, coarse := coarsenOnce(cur, rng)
		if coarse.NumVertices() >= cur.NumVertices()*9/10 {
			break // matching stalled; stop coarsening
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}

	// Initial k-way partition of the coarsest graph by recursive bisection.
	// The per-bisection tolerance shrinks with recursion depth so the
	// compounded imbalance stays within MaxImbalance overall.
	depth := 1
	for 1<<depth < k {
		depth++
	}
	bisectTol := ml.maxImbalance() / float64(depth)
	if bisectTol < 0.002 {
		bisectTol = 0.002
	}
	part := make([]int, cur.NumVertices())
	vertices := make([]int32, cur.NumVertices())
	for i := range vertices {
		vertices[i] = int32(i)
	}
	ml.recurse(cur, vertices, k, 0, part, bisectTol, rng)
	kwayRefine(cur, part, k, ml.maxImbalance(), ml.refinePasses(), rng)

	// Uncoarsening with refinement at every level.
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int, lv.g.NumVertices())
		for v := range fine {
			fine[v] = part[lv.cmap[v]]
		}
		kwayRefine(lv.g, fine, k, ml.maxImbalance(), ml.refinePasses(), rng)
		part = fine
	}
	return part, nil
}

// recurse bisects the subgraph induced by vertices into kL and kR shares,
// assigning final part ids [base, base+k) into part. It is only invoked on
// coarse graphs, so the induced-subgraph copies are cheap.
func (ml *Multilevel) recurse(g *Graph, vertices []int32, k, base int, part []int, tol float64, rng *stats.SplitMix64) {
	if k == 1 {
		for _, v := range vertices {
			part[v] = base
		}
		return
	}
	kL := k / 2
	kR := k - kL
	sub := induce(g, vertices)
	frac := float64(kL) / float64(k)
	side := ml.bisect(sub, frac, tol, rng)
	var left, right []int32
	for i, v := range vertices {
		if side[i] == 0 {
			left = append(left, v)
		} else {
			right = append(right, v)
		}
	}
	// Degenerate splits can strand a side with fewer vertices than parts;
	// rebalance by moving arbitrary vertices (never happens on meshes, but
	// keeps the invariant for adversarial graphs).
	for len(left) < kL {
		left = append(left, right[len(right)-1])
		right = right[:len(right)-1]
	}
	for len(right) < kR {
		right = append(right, left[len(left)-1])
		left = left[:len(left)-1]
	}
	ml.recurse(g, left, kL, base, part, tol, rng)
	ml.recurse(g, right, kR, base+kL, part, tol, rng)
}

// induce builds the subgraph over the given vertices (in their given order).
func induce(g *Graph, vertices []int32) *Graph {
	newID := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		newID[v] = int32(i)
	}
	sub := &Graph{
		Xadj: make([]int32, 1, len(vertices)+1),
		VWgt: make([]int32, len(vertices)),
	}
	for i, v := range vertices {
		sub.VWgt[i] = g.VWgt[v]
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if nu, ok := newID[u]; ok {
				sub.Adjncy = append(sub.Adjncy, nu)
				sub.AdjWgt = append(sub.AdjWgt, g.AdjWgt[e])
			}
		}
		sub.Xadj = append(sub.Xadj, int32(len(sub.Adjncy)))
	}
	return sub
}

// bisect performs a multilevel bisection of g, targeting the given weight
// fraction in side 0. Returns a 0/1 side per vertex.
func (ml *Multilevel) bisect(g *Graph, frac, tol float64, rng *stats.SplitMix64) []int8 {
	var levels []level
	cur := g
	for cur.NumVertices() > ml.coarsenTo() {
		cmap, coarse := coarsenOnce(cur, rng)
		if coarse.NumVertices() >= cur.NumVertices()*9/10 {
			break
		}
		levels = append(levels, level{g: cur, cmap: cmap})
		cur = coarse
	}
	target0 := int64(frac * float64(cur.TotalVWgt()))
	var best []int8
	var bestCut int64 = 1<<62 - 1
	for t := 0; t < ml.tries(); t++ {
		side := growBisection(cur, target0, rng)
		fmRefine(cur, side, target0, tol, 4)
		if c := cutSides(cur, side); c < bestCut {
			bestCut = c
			best = side
		}
	}
	side := best
	for i := len(levels) - 1; i >= 0; i-- {
		lv := levels[i]
		fine := make([]int8, lv.g.NumVertices())
		for v := range fine {
			fine[v] = side[lv.cmap[v]]
		}
		t0 := int64(frac * float64(lv.g.TotalVWgt()))
		fmRefine(lv.g, fine, t0, tol, 4)
		side = fine
	}
	return side
}

// coarsenOnce computes a heavy-edge matching and contracts it.
func coarsenOnce(g *Graph, rng *stats.SplitMix64) (cmap []int32, coarse *Graph) {
	n := g.NumVertices()
	order := randomOrder(n, rng)
	match := make([]int32, n)
	for i := range match {
		match[i] = -1
	}
	nCoarse := int32(0)
	cmap = make([]int32, n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		// Pick the unmatched neighbor with the heaviest connecting edge.
		bestU := int32(-1)
		var bestW int32 = -1
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if match[u] == -1 && g.AdjWgt[e] > bestW {
				bestW = g.AdjWgt[e]
				bestU = u
			}
		}
		if bestU >= 0 {
			match[v] = bestU
			match[bestU] = v
			cmap[v] = nCoarse
			cmap[bestU] = nCoarse
		} else {
			match[v] = v
			cmap[v] = nCoarse
		}
		nCoarse++
	}
	// Contract. Edge accumulation uses a dense scratch array indexed by
	// coarse vertex with a touched-list, avoiding per-vertex maps.
	coarse = &Graph{
		Xadj: make([]int32, 1, nCoarse+1),
		VWgt: make([]int32, nCoarse),
	}
	for v := 0; v < n; v++ {
		coarse.VWgt[cmap[v]] += g.VWgt[v]
	}
	members := make([][]int32, nCoarse)
	for v := 0; v < n; v++ {
		members[cmap[v]] = append(members[cmap[v]], int32(v))
	}
	acc := make([]int32, nCoarse)
	var touched []int32
	for cv := int32(0); cv < nCoarse; cv++ {
		touched = touched[:0]
		for _, v := range members[cv] {
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				cu := cmap[g.Adjncy[e]]
				if cu == cv {
					continue
				}
				if acc[cu] == 0 {
					touched = append(touched, cu)
				}
				acc[cu] += g.AdjWgt[e]
			}
		}
		for _, cu := range touched {
			coarse.Adjncy = append(coarse.Adjncy, cu)
			coarse.AdjWgt = append(coarse.AdjWgt, acc[cu])
			acc[cu] = 0
		}
		coarse.Xadj = append(coarse.Xadj, int32(len(coarse.Adjncy)))
	}
	return cmap, coarse
}

func randomOrder(n int, rng *stats.SplitMix64) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// growBisection grows side 0 by BFS from a random seed until it holds
// roughly target0 weight.
func growBisection(g *Graph, target0 int64, rng *stats.SplitMix64) []int8 {
	n := g.NumVertices()
	side := make([]int8, n)
	for i := range side {
		side[i] = 1
	}
	start := int32(rng.Next() % uint64(n))
	var w0 int64
	queue := []int32{start}
	seen := make([]bool, n)
	seen[start] = true
	for len(queue) > 0 && w0 < target0 {
		v := queue[0]
		queue = queue[1:]
		side[v] = 0
		w0 += int64(g.VWgt[v])
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			u := g.Adjncy[e]
			if !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		}
	}
	// Disconnected leftovers: if the BFS exhausted its component before
	// reaching the target, keep absorbing unseen vertices.
	if w0 < target0 {
		for v := int32(0); v < int32(n) && w0 < target0; v++ {
			if !seen[v] {
				seen[v] = true
				side[v] = 0
				w0 += int64(g.VWgt[v])
			}
		}
	}
	return side
}

// cutSides returns the cut of a two-way side assignment.
func cutSides(g *Graph, side []int8) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[v] != side[g.Adjncy[e]] {
				cut += int64(g.AdjWgt[e])
			}
		}
	}
	return cut / 2
}

// fmRefine runs Fiduccia–Mattheyses passes with rollback on a bisection of a
// small (coarse) graph: each pass repeatedly moves the highest-gain movable
// boundary vertex, then keeps the best prefix of moves. Balance moves are
// admitted when they keep side 0 within tol of target0, or strictly improve
// the distance to target0 (so an out-of-tolerance start can recover).
func fmRefine(g *Graph, side []int8, target0 int64, tol float64, maxPasses int) {
	n := g.NumVertices()
	lo0 := int64(float64(target0) * (1 - tol))
	hi0 := int64(float64(target0) * (1 + tol))

	var w0 int64
	for v := 0; v < n; v++ {
		if side[v] == 0 {
			w0 += int64(g.VWgt[v])
		}
	}

	gain := func(v int) int64 {
		var ext, inter int64
		for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
			if side[g.Adjncy[e]] != side[v] {
				ext += int64(g.AdjWgt[e])
			} else {
				inter += int64(g.AdjWgt[e])
			}
		}
		return ext - inter
	}
	dist := func(w int64) int64 {
		if w > target0 {
			return w - target0
		}
		return target0 - w
	}

	for pass := 0; pass < maxPasses; pass++ {
		locked := make([]bool, n)
		var moves []int
		var cumGain, bestGain int64
		bestPrefix := 0
		for step := 0; step < n; step++ {
			bestV := -1
			var bestMoveGain int64 = -1 << 62
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				onBoundary := false
				for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
					if side[g.Adjncy[e]] != side[v] {
						onBoundary = true
						break
					}
				}
				if !onBoundary {
					continue
				}
				nw0 := w0
				if side[v] == 0 {
					nw0 -= int64(g.VWgt[v])
				} else {
					nw0 += int64(g.VWgt[v])
				}
				if (nw0 < lo0 || nw0 > hi0) && dist(nw0) >= dist(w0) {
					continue
				}
				if gv := gain(v); gv > bestMoveGain {
					bestMoveGain = gv
					bestV = v
				}
			}
			if bestV < 0 {
				break
			}
			if side[bestV] == 0 {
				side[bestV] = 1
				w0 -= int64(g.VWgt[bestV])
			} else {
				side[bestV] = 0
				w0 += int64(g.VWgt[bestV])
			}
			locked[bestV] = true
			cumGain += bestMoveGain
			moves = append(moves, bestV)
			if cumGain > bestGain {
				bestGain = cumGain
				bestPrefix = len(moves)
			}
			if cumGain < bestGain-64 {
				break // gains have gone clearly negative; stop the pass
			}
		}
		// Roll back past the best prefix.
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			v := moves[i]
			if side[v] == 0 {
				side[v] = 1
				w0 -= int64(g.VWgt[v])
			} else {
				side[v] = 0
				w0 += int64(g.VWgt[v])
			}
		}
		if bestGain <= 0 {
			return
		}
	}
}

// kwayRefine runs greedy k-way boundary refinement: vertices on part
// boundaries move to the neighboring part with the strongest connection when
// that reduces the cut (or equals it while improving balance), subject to an
// upper bound on the destination part's weight. Linear time per pass.
func kwayRefine(g *Graph, part []int, k int, tol float64, maxPasses int, rng *stats.SplitMix64) {
	n := g.NumVertices()
	total := g.TotalVWgt()
	maxW := int64(float64(total)/float64(k)*(1+tol)) + 1
	w := make([]int64, k)
	for v := 0; v < n; v++ {
		w[part[v]] += int64(g.VWgt[v])
	}
	conn := make([]int64, k)
	var touched []int

	// Balance-enforcement phase: while any part exceeds maxW, push its
	// boundary vertices into the most-connected non-overweight neighbor
	// part, accepting cut increases. Projection from a coarse level can
	// leave parts overweight because coarse vertices are indivisible; at
	// finer levels vertices shrink and this phase restores the tolerance.
	for round := 0; round < maxPasses+2; round++ {
		over := false
		for _, pw := range w {
			if pw > maxW {
				over = true
				break
			}
		}
		if !over {
			break
		}
		moved := 0
		order := randomOrder(n, rng)
		for _, v32 := range order {
			v := int(v32)
			pv := part[v]
			if w[pv] <= maxW {
				continue
			}
			touched = touched[:0]
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				pu := part[g.Adjncy[e]]
				if conn[pu] == 0 {
					touched = append(touched, pu)
				}
				conn[pu] += int64(g.AdjWgt[e])
			}
			vw := int64(g.VWgt[v])
			bestP := -1
			var bestConn int64 = -1
			for _, p := range touched {
				if p == pv || w[p]+vw > maxW {
					continue
				}
				if conn[p] > bestConn || (conn[p] == bestConn && bestP >= 0 && w[p] < w[bestP]) {
					bestConn = conn[p]
					bestP = p
				}
			}
			if bestP < 0 {
				// Cascade fallback: all neighbors are themselves at the
				// bound; push into the lightest one anyway as long as that
				// strictly levels the pair, letting weight percolate toward
				// underweight parts over subsequent rounds.
				for _, p := range touched {
					if p == pv || w[p]+vw >= w[pv] {
						continue
					}
					if bestP < 0 || w[p] < w[bestP] {
						bestP = p
					}
				}
			}
			if bestP >= 0 {
				w[pv] -= vw
				w[bestP] += vw
				part[v] = bestP
				moved++
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			break
		}
	}

	for pass := 0; pass < maxPasses; pass++ {
		moved := 0
		order := randomOrder(n, rng)
		for _, v32 := range order {
			v := int(v32)
			pv := part[v]
			// Connectivity of v to each adjacent part.
			touched = touched[:0]
			boundary := false
			for e := g.Xadj[v]; e < g.Xadj[v+1]; e++ {
				pu := part[g.Adjncy[e]]
				if pu != pv {
					boundary = true
				}
				if conn[pu] == 0 {
					touched = append(touched, pu)
				}
				conn[pu] += int64(g.AdjWgt[e])
			}
			if !boundary {
				for _, p := range touched {
					conn[p] = 0
				}
				continue
			}
			vw := int64(g.VWgt[v])
			bestP := -1
			var bestConn int64 = -1
			for _, p := range touched {
				if p == pv {
					continue
				}
				if w[p]+vw > maxW {
					continue
				}
				if conn[p] > bestConn || (conn[p] == bestConn && bestP >= 0 && w[p] < w[bestP]) {
					bestConn = conn[p]
					bestP = p
				}
			}
			if bestP >= 0 {
				gain := bestConn - conn[pv]
				if gain > 0 || (gain == 0 && w[pv] > w[bestP]+vw) {
					w[pv] -= vw
					w[bestP] += vw
					part[v] = bestP
					moved++
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
		}
		if moved == 0 {
			return
		}
	}
}

// String describes the configuration.
func (ml *Multilevel) String() string {
	return fmt.Sprintf("multilevel(seed=%d, coarsenTo=%d, tries=%d, tol=%.2f)",
		ml.Seed, ml.coarsenTo(), ml.tries(), ml.maxImbalance())
}
