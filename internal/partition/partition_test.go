package partition

import (
	"testing"
	"testing/quick"

	"krak/internal/mesh"
)

func buildGraph(t testing.TB, w, h int) *Graph {
	t.Helper()
	d, err := mesh.BuildLayeredDeck(w, h)
	if err != nil {
		t.Fatal(err)
	}
	g := FromMesh(d.Mesh)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func checkPartition(t *testing.T, g *Graph, part []int, k int) {
	t.Helper()
	if len(part) != g.NumVertices() {
		t.Fatalf("partition length %d != %d vertices", len(part), g.NumVertices())
	}
	seen := make([]int, k)
	for v, p := range part {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d in invalid part %d", v, p)
		}
		seen[p]++
	}
	for p, n := range seen {
		if n == 0 {
			t.Fatalf("part %d is empty", p)
		}
	}
}

func TestFromMeshDualGraph(t *testing.T) {
	d, _ := mesh.BuildUniformDeck(3, 3, mesh.Foam)
	g := FromMesh(d.Mesh)
	if g.NumVertices() != 9 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Interior edges of a 3x3 grid: 2*3 + 3*2 = 12; each vertex degree 2..4.
	if len(g.Adjncy) != 24 {
		t.Fatalf("adjacency entries = %d, want 24", len(g.Adjncy))
	}
	if g.Degree(4) != 4 {
		t.Fatalf("center degree = %d", g.Degree(4))
	}
	if g.Degree(0) != 2 {
		t.Fatalf("corner degree = %d", g.Degree(0))
	}
	if g.TotalVWgt() != 9 {
		t.Fatalf("total vertex weight = %d", g.TotalVWgt())
	}
}

func TestGraphValidateCatchesAsymmetry(t *testing.T) {
	g := &Graph{
		Xadj:   []int32{0, 1, 2},
		Adjncy: []int32{1, 0},
		AdjWgt: []int32{2, 3}, // asymmetric weights
		VWgt:   []int32{1, 1},
	}
	if err := g.Validate(); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
	g.AdjWgt = []int32{2, 2}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestGraphValidateDeterministicError is the regression test for the
// map-range iteration Validate used to use for the symmetry check: with
// several asymmetric edges, the reported edge depended on map order and
// the message changed run to run. It must now always name the first
// asymmetric edge in vertex order.
func TestGraphValidateDeterministicError(t *testing.T) {
	// Path 0-1-2 with both edges weight-asymmetric.
	g := &Graph{
		Xadj:   []int32{0, 1, 3, 4},
		Adjncy: []int32{1, 0, 2, 1},
		AdjWgt: []int32{1, 2, 3, 4},
		VWgt:   []int32{1, 1, 1},
	}
	const want = "partition: asymmetric edge (0,1)"
	for i := 0; i < 50; i++ {
		err := g.Validate()
		if err == nil {
			t.Fatal("asymmetric weights accepted")
		}
		if err.Error() != want {
			t.Fatalf("run %d: error %q, want %q", i, err, want)
		}
	}
}

func TestCutAndImbalance(t *testing.T) {
	d, _ := mesh.BuildUniformDeck(4, 1, mesh.Foam)
	g := FromMesh(d.Mesh)
	// Path of 4 vertices: cut between {0,1} and {2,3} is one edge.
	part := []int{0, 0, 1, 1}
	if c := Cut(g, part); c != 1 {
		t.Fatalf("cut = %d, want 1", c)
	}
	if im := Imbalance(g, part, 2); im != 1.0 {
		t.Fatalf("imbalance = %v", im)
	}
	part = []int{0, 0, 0, 1}
	if im := Imbalance(g, part, 2); im != 1.5 {
		t.Fatalf("imbalance = %v, want 1.5", im)
	}
	w := PartWeights(g, part, 2)
	if w[0] != 3 || w[1] != 1 {
		t.Fatalf("weights = %v", w)
	}
}

func TestMultilevelSmallDeck(t *testing.T) {
	g := buildGraph(t, 80, 40)
	ml := NewMultilevel(1)
	for _, k := range []int{2, 4, 16} {
		part, err := ml.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, g, part, k)
		if im := Imbalance(g, part, k); im > 1.10 {
			t.Errorf("k=%d imbalance = %.3f, want <= 1.10", k, im)
		}
		// The cut should be far below a strip partition's worst case and
		// in the ballpark of the perimeter heuristic ~ sqrt(cells/k)*k.
		cut := Cut(g, part)
		if cut <= 0 {
			t.Errorf("k=%d cut = %d, want positive", k, cut)
		}
		maxReasonable := int64(6 * 57 * k) // ~6x the ideal square-subgrid perimeter
		if cut > maxReasonable {
			t.Errorf("k=%d cut = %d, want <= %d", k, cut, maxReasonable)
		}
	}
}

func TestMultilevelDeterminism(t *testing.T) {
	g := buildGraph(t, 40, 20)
	a, err := NewMultilevel(7).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMultilevel(7).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestMultilevelBeatsStripsOnCut(t *testing.T) {
	g := buildGraph(t, 80, 40)
	const k = 16
	mlPart, err := NewMultilevel(3).Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	stripPart, err := Strips{}.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	mlCut, stripCut := Cut(g, mlPart), Cut(g, stripPart)
	if mlCut >= stripCut {
		t.Fatalf("multilevel cut %d not better than strips cut %d", mlCut, stripCut)
	}
}

func TestMultilevelArgValidation(t *testing.T) {
	g := buildGraph(t, 4, 2)
	ml := NewMultilevel(1)
	if _, err := ml.Partition(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := ml.Partition(g, 9); err == nil {
		t.Fatal("k > vertices accepted")
	}
	if _, err := ml.Partition(&Graph{Xadj: []int32{0}}, 1); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestMultilevelK1(t *testing.T) {
	g := buildGraph(t, 8, 4)
	part, err := NewMultilevel(1).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range part {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
}

func TestRCB(t *testing.T) {
	g := buildGraph(t, 40, 20)
	for _, k := range []int{2, 3, 8} {
		part, err := RCB{}.Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, g, part, k)
		if im := Imbalance(g, part, k); im > 1.15 {
			t.Errorf("rcb k=%d imbalance = %.3f", k, im)
		}
	}
	// RCB without coordinates must fail.
	if _, err := (RCB{}).Partition(&Graph{Xadj: []int32{0, 0}, VWgt: []int32{1}}, 1); err == nil {
		t.Fatal("rcb without coordinates accepted")
	}
}

func TestStripsStructure(t *testing.T) {
	g := buildGraph(t, 16, 4)
	part, err := Strips{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, part, 4)
	// Strips along x: part must be monotone in cell x coordinate.
	for v := 0; v < g.NumVertices(); v++ {
		for u := 0; u < g.NumVertices(); u++ {
			if g.CoordX[v] < g.CoordX[u] && part[v] > part[u] {
				t.Fatalf("strips not monotone: x=%v part=%d vs x=%v part=%d",
					g.CoordX[v], part[v], g.CoordX[u], part[u])
			}
		}
	}
	if (Strips{}).Name() != "strips-x" || (Strips{Vertical: true}).Name() != "strips-y" {
		t.Fatal("strip names wrong")
	}
}

func TestRandomBalanced(t *testing.T) {
	g := buildGraph(t, 20, 10)
	part, err := Random{Seed: 5}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, part, 8)
	if im := Imbalance(g, part, 8); im > 1.01 {
		t.Fatalf("random round-robin imbalance = %v", im)
	}
	// Random cut should be dramatically worse than multilevel.
	mlPart, _ := NewMultilevel(1).Partition(g, 8)
	if Cut(g, part) < 2*Cut(g, mlPart) {
		t.Fatal("random cut suspiciously good")
	}
}

func TestEvaluate(t *testing.T) {
	g := buildGraph(t, 16, 8)
	q, part, err := Evaluate(NewMultilevel(2), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Algorithm != "multilevel-kway" || q.K != 4 {
		t.Fatalf("quality = %+v", q)
	}
	if q.EdgeCut != Cut(g, part) {
		t.Fatal("reported cut mismatch")
	}
	if q.Imbalance < 1 {
		t.Fatalf("imbalance = %v < 1", q.Imbalance)
	}
}

// Property: for random small decks and part counts, the multilevel
// partitioner produces complete, non-empty, reasonably balanced partitions.
func TestMultilevelProperty(t *testing.T) {
	f := func(seedRaw uint16, kRaw uint8) bool {
		k := int(kRaw)%7 + 2
		d, err := mesh.BuildLayeredDeck(24, 12)
		if err != nil {
			return false
		}
		g := FromMesh(d.Mesh)
		ml := NewMultilevel(uint64(seedRaw))
		part, err := ml.Partition(g, k)
		if err != nil {
			return false
		}
		counts := make([]int, k)
		for _, p := range part {
			if p < 0 || p >= k {
				return false
			}
			counts[p]++
		}
		for _, c := range counts {
			if c == 0 {
				return false
			}
		}
		return Imbalance(g, part, k) < 1.35
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMultilevelSmall16(b *testing.B) {
	g := buildGraph(b, 80, 40)
	ml := NewMultilevel(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Partition(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRCBSmall16(b *testing.B) {
	g := buildGraph(b, 80, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (RCB{}).Partition(g, 16); err != nil {
			b.Fatal(err)
		}
	}
}
