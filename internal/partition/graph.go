// Package partition provides the mesh-partitioning substrate of the Krak
// reproduction. The paper partitions its spatial grids with METIS 4.0,
// "balancing cell counts on each processor while minimizing edge cuts", and
// stresses that the resulting irregular partitions are what make Krak hard
// to model. This package implements a from-scratch multilevel k-way
// partitioner in the METIS style (heavy-edge-matching coarsening, greedy
// graph-growing initial bisection, Fiduccia–Mattheyses boundary refinement)
// along with simpler baselines (recursive coordinate bisection, strips,
// random) used by the ablation benches.
package partition

import (
	"fmt"

	"krak/internal/mesh"
)

// Graph is an undirected graph in compressed sparse row form, following the
// METIS conventions: vertex v's neighbors are Adjncy[Xadj[v]:Xadj[v+1]] with
// matching edge weights in AdjWgt. Every edge appears twice (once per
// endpoint).
type Graph struct {
	Xadj   []int32
	Adjncy []int32
	AdjWgt []int32
	VWgt   []int32

	// Optional vertex coordinates (cell centroids) used by the geometric
	// partitioners.
	CoordX, CoordY []float64
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Xadj) - 1 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.Xadj[v+1] - g.Xadj[v]) }

// TotalVWgt returns the sum of all vertex weights.
func (g *Graph) TotalVWgt() int64 {
	var s int64
	for _, w := range g.VWgt {
		s += int64(w)
	}
	return s
}

// Validate checks CSR invariants: monotone Xadj, in-range neighbors, no
// self-loops, symmetric adjacency with matching weights.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if n < 0 {
		return fmt.Errorf("partition: empty Xadj")
	}
	if len(g.VWgt) != n {
		return fmt.Errorf("partition: VWgt length %d != vertex count %d", len(g.VWgt), n)
	}
	if g.Xadj[0] != 0 || int(g.Xadj[n]) != len(g.Adjncy) {
		return fmt.Errorf("partition: bad Xadj bounds")
	}
	if len(g.AdjWgt) != len(g.Adjncy) {
		return fmt.Errorf("partition: AdjWgt length mismatch")
	}
	type edge struct{ u, v int32 }
	weights := make(map[edge]int32, len(g.Adjncy))
	for v := 0; v < n; v++ {
		if g.Xadj[v] > g.Xadj[v+1] {
			return fmt.Errorf("partition: Xadj not monotone at %d", v)
		}
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if u < 0 || int(u) >= n {
				return fmt.Errorf("partition: vertex %d has out-of-range neighbor %d", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("partition: self-loop at %d", v)
			}
			weights[edge{int32(v), u}] = g.AdjWgt[i]
		}
	}
	// Check symmetry by walking the adjacency arrays in vertex order, not
	// by ranging over the map: the first asymmetric edge reported must be
	// the same on every run so error messages are reproducible.
	for v := 0; v < n; v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if weights[edge{u, int32(v)}] != g.AdjWgt[i] {
				return fmt.Errorf("partition: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// FromMesh builds the dual graph of a mesh: one vertex per cell (unit
// weight), one edge per interior face (unit weight), with cell centroids as
// vertex coordinates.
func FromMesh(m *mesh.Mesh) *Graph {
	n := m.NumCells()
	deg := make([]int32, n)
	for _, f := range m.Faces {
		if f.Interior() {
			deg[f.C0]++
			deg[f.C1]++
		}
	}
	g := &Graph{
		Xadj:   make([]int32, n+1),
		VWgt:   make([]int32, n),
		CoordX: make([]float64, n),
		CoordY: make([]float64, n),
	}
	for v := 0; v < n; v++ {
		g.Xadj[v+1] = g.Xadj[v] + deg[v]
		g.VWgt[v] = 1
		g.CoordX[v], g.CoordY[v] = m.CellCenter(v)
	}
	g.Adjncy = make([]int32, g.Xadj[n])
	g.AdjWgt = make([]int32, g.Xadj[n])
	fill := make([]int32, n)
	for _, f := range m.Faces {
		if !f.Interior() {
			continue
		}
		a, b := f.C0, f.C1
		g.Adjncy[g.Xadj[a]+fill[a]] = b
		g.AdjWgt[g.Xadj[a]+fill[a]] = 1
		fill[a]++
		g.Adjncy[g.Xadj[b]+fill[b]] = a
		g.AdjWgt[g.Xadj[b]+fill[b]] = 1
		fill[b]++
	}
	return g
}

// Cut returns the total weight of edges crossing between parts.
func Cut(g *Graph, part []int) int64 {
	var cut int64
	for v := 0; v < g.NumVertices(); v++ {
		for i := g.Xadj[v]; i < g.Xadj[v+1]; i++ {
			u := g.Adjncy[i]
			if part[v] != part[u] {
				cut += int64(g.AdjWgt[i])
			}
		}
	}
	return cut / 2 // every crossing edge counted twice
}

// PartWeights returns the summed vertex weight of each part.
func PartWeights(g *Graph, part []int, k int) []int64 {
	w := make([]int64, k)
	for v := 0; v < g.NumVertices(); v++ {
		w[part[v]] += int64(g.VWgt[v])
	}
	return w
}

// Imbalance returns max(partWeight)*k/total, i.e. 1.0 when perfectly
// balanced.
func Imbalance(g *Graph, part []int, k int) float64 {
	w := PartWeights(g, part, k)
	total := g.TotalVWgt()
	if total == 0 {
		return 0
	}
	var max int64
	for _, x := range w {
		if x > max {
			max = x
		}
	}
	return float64(max) * float64(k) / float64(total)
}

// Partitioner divides a graph into k balanced parts.
// Implementations must be safe for concurrent use: Partition derives any
// randomness per call from the configured seed and keeps no mutable state
// on the receiver, so one Partitioner (and one *Graph, which Partition
// never mutates) can serve parallel engine jobs.
type Partitioner interface {
	// Name identifies the algorithm for reports.
	Name() string
	// Partition returns a part id in [0,k) for every vertex.
	Partition(g *Graph, k int) ([]int, error)
}

// validateArgs provides shared argument checking for the partitioners.
func validateArgs(g *Graph, k int) error {
	if g == nil || g.NumVertices() == 0 {
		return fmt.Errorf("partition: empty graph")
	}
	if k <= 0 {
		return fmt.Errorf("partition: invalid part count %d", k)
	}
	if k > g.NumVertices() {
		return fmt.Errorf("partition: %d parts exceed %d vertices", k, g.NumVertices())
	}
	return nil
}
