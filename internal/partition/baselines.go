package partition

import (
	"fmt"
	"sort"

	"krak/internal/stats"
)

// RCB is recursive coordinate bisection: vertices are split at the weighted
// median along the longer coordinate axis, recursively, into k parts. It
// produces compact box-like subdomains — a classic geometric baseline
// against the graph-based multilevel partitioner.
type RCB struct{}

// Name implements Partitioner.
func (RCB) Name() string { return "rcb" }

// Partition implements Partitioner. The graph must carry coordinates.
func (RCB) Partition(g *Graph, k int) ([]int, error) {
	if err := validateArgs(g, k); err != nil {
		return nil, err
	}
	if len(g.CoordX) != g.NumVertices() || len(g.CoordY) != g.NumVertices() {
		return nil, fmt.Errorf("partition: rcb requires vertex coordinates")
	}
	part := make([]int, g.NumVertices())
	idx := make([]int32, g.NumVertices())
	for i := range idx {
		idx[i] = int32(i)
	}
	rcbSplit(g, idx, k, 0, part)
	return part, nil
}

func rcbSplit(g *Graph, idx []int32, k, base int, part []int) {
	if k == 1 {
		for _, v := range idx {
			part[v] = base
		}
		return
	}
	kL := k / 2
	kR := k - kL
	// Choose the axis with the larger extent.
	minX, maxX := g.CoordX[idx[0]], g.CoordX[idx[0]]
	minY, maxY := g.CoordY[idx[0]], g.CoordY[idx[0]]
	for _, v := range idx {
		x, y := g.CoordX[v], g.CoordY[v]
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	coord := g.CoordX
	if maxY-minY > maxX-minX {
		coord = g.CoordY
	}
	sort.Slice(idx, func(a, b int) bool { return coord[idx[a]] < coord[idx[b]] })
	// Split at the weighted position proportional to kL/k.
	var total int64
	for _, v := range idx {
		total += int64(g.VWgt[v])
	}
	target := total * int64(kL) / int64(k)
	var acc int64
	split := 0
	for i, v := range idx {
		acc += int64(g.VWgt[v])
		if acc >= target {
			split = i + 1
			break
		}
	}
	if split < kL {
		split = kL
	}
	if len(idx)-split < kR {
		split = len(idx) - kR
	}
	rcbSplit(g, idx[:split], kL, base, part)
	rcbSplit(g, idx[split:], kR, base+kL, part)
}

// Strips partitions by sorting vertices along one axis and cutting into k
// equal-weight slabs. The paper's decks partitioned this way produce long
// skinny subdomains with large boundaries — the "bad partitioner" baseline.
type Strips struct {
	// Vertical selects slabs stacked along y instead of x.
	Vertical bool
}

// Name implements Partitioner.
func (s Strips) Name() string {
	if s.Vertical {
		return "strips-y"
	}
	return "strips-x"
}

// Partition implements Partitioner. The graph must carry coordinates.
func (s Strips) Partition(g *Graph, k int) ([]int, error) {
	if err := validateArgs(g, k); err != nil {
		return nil, err
	}
	if len(g.CoordX) != g.NumVertices() || len(g.CoordY) != g.NumVertices() {
		return nil, fmt.Errorf("partition: strips requires vertex coordinates")
	}
	coord := g.CoordX
	if s.Vertical {
		coord = g.CoordY
	}
	n := g.NumVertices()
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return coord[idx[a]] < coord[idx[b]] })
	part := make([]int, n)
	var total int64
	for _, w := range g.VWgt {
		total += int64(w)
	}
	var acc int64
	for _, v := range idx {
		p := int(acc * int64(k) / total)
		if p >= k {
			p = k - 1
		}
		part[v] = p
		acc += int64(g.VWgt[v])
	}
	return part, nil
}

// Random assigns vertices to parts uniformly at random (balanced via a
// shuffled round-robin). It is the worst-case baseline: perfectly balanced,
// maximally fragmented boundaries.
type Random struct {
	Seed uint64
}

// Name implements Partitioner.
func (Random) Name() string { return "random" }

// Partition implements Partitioner.
func (r Random) Partition(g *Graph, k int) ([]int, error) {
	if err := validateArgs(g, k); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	rng := stats.Derive(r.Seed, 0x52a9d)
	order := randomOrder(n, rng)
	part := make([]int, n)
	for i, v := range order {
		part[v] = i % k
	}
	return part, nil
}

// Quality summarizes a partition for reports and ablations.
type Quality struct {
	Algorithm string
	K         int
	EdgeCut   int64
	Imbalance float64
}

// QualityOf reports the quality of an existing assignment — the single
// place a Quality record is assembled, shared by Evaluate and callers
// that already hold a (possibly cached) partition vector.
func QualityOf(name string, g *Graph, part []int, k int) Quality {
	return Quality{
		Algorithm: name,
		K:         k,
		EdgeCut:   Cut(g, part),
		Imbalance: Imbalance(g, part, k),
	}
}

// Evaluate runs a partitioner and reports its quality.
func Evaluate(p Partitioner, g *Graph, k int) (Quality, []int, error) {
	part, err := p.Partition(g, k)
	if err != nil {
		return Quality{}, nil, err
	}
	return QualityOf(p.Name(), g, part, k), part, nil
}
