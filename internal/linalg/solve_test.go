package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLUKnown(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLU(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestLUSingular(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := FactorLU(a); err != ErrSingular {
		t.Fatalf("FactorLU(singular) err = %v, want ErrSingular", err)
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square LU accepted")
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{
		{3, 8},
		{4, 6},
	})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); !almostEqual(got, -14, 1e-10) {
		t.Fatalf("Det = %v, want -14", got)
	}
}

func TestLUSolveRHSLengthMismatch(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 0}, {0, 1}})
	f, _ := FactorLU(a)
	if _, err := f.Solve([]float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// Property: for random well-conditioned systems, A * Solve(A, b) == b.
func TestLURoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance => well conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if !almostEqual(ax[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQRExactSystem(t *testing.T) {
	// Square system: least squares must reproduce the exact solution.
	a, _ := NewMatrixFrom([][]float64{
		{1, 1},
		{1, 2},
	})
	x, err := LeastSquares(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-10) || !almostEqual(x[1], 2, 1e-10) {
		t.Fatalf("x = %v, want [1 2]", x)
	}
}

func TestQROverdetermined(t *testing.T) {
	// y = 2 + 3x sampled with zero noise at 5 points.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-10) || !almostEqual(x[1], 3, 1e-10) {
		t.Fatalf("fit = %v, want [2 3]", x)
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	if _, err := FactorQR(NewMatrix(2, 3)); err == nil {
		t.Fatal("m < n accepted")
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Two identical columns: rank deficient.
	a, _ := NewMatrixFrom([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	_, err := LeastSquares(a, []float64{1, 2, 3})
	if err == nil {
		t.Fatal("rank-deficient system accepted")
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestQRNormalEquationsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(10)
		n := 1 + rng.Intn(3)
		if n > m {
			n = m
		}
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		r, err := Residual(a, x, b)
		if err != nil {
			return false
		}
		// A' r must be ~0.
		atr, err := a.Transpose().MulVec(r)
		if err != nil {
			return false
		}
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResidualLengthMismatch(t *testing.T) {
	a := Identity(2)
	if _, err := Residual(a, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
