// Package linalg provides the small dense linear-algebra kernel used by the
// Krak performance model: matrices, LU and QR factorizations, least-squares
// solvers, simple regressions, and piecewise-linear interpolation.
//
// The package is deliberately self-contained (stdlib only) and sized for the
// model-calibration problems in this repository: systems with a handful of
// unknowns (per-cell costs of four materials plus a constant term) and up to
// a few thousand observation rows.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero-initialized matrix with the given shape.
// It panics if either dimension is non-positive.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have the
// same length.
func NewMatrixFrom(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("linalg: empty matrix literal")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("linalg: ragged matrix literal: row %d has %d entries, want %d", i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range", i))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range", j))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Mul returns the matrix product m*other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, other.rows, other.cols)
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			rowOut := out.data[i*out.cols : (i+1)*out.cols]
			rowOther := other.data[k*other.cols : (k+1)*other.cols]
			for j := range rowOther {
				rowOut[j] += a * rowOther[j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.cols != len(x) {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d * vec(%d)", m.rows, m.cols, len(x))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%12.6g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled to avoid overflow for large entries.
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}
