package linalg

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinearFit holds the result of a simple linear regression y = A + B*x.
type LinearFit struct {
	A, B float64 // intercept and slope
	R2   float64 // coefficient of determination
}

// FitLinear performs an ordinary least-squares fit of y = A + B*x.
// It requires at least two points with distinct x values.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("linalg: FitLinear length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("linalg: FitLinear needs at least 2 points")
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("linalg: FitLinear requires distinct x values")
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			e := ys[i] - (a + b*xs[i])
			ssRes += e * e
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{A: a, B: b, R2: r2}, nil
}

// Eval returns the fitted value at x.
func (f LinearFit) Eval(x float64) float64 { return f.A + f.B*x }

// Piecewise is a continuous piecewise-linear function defined by breakpoints
// sorted by X. Evaluation outside the breakpoint range extrapolates using the
// first or last segment (matching how the paper's model interpolates between
// measured per-cell cost samples and extends beyond them).
type Piecewise struct {
	xs, ys []float64
}

// NewPiecewise builds a piecewise-linear function from sample points. Points
// are sorted by x; duplicate x values are rejected. At least one point is
// required (a single point yields a constant function).
func NewPiecewise(xs, ys []float64) (*Piecewise, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("linalg: NewPiecewise length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return nil, errors.New("linalg: NewPiecewise needs at least 1 point")
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	sx := make([]float64, len(xs))
	sy := make([]float64, len(ys))
	for i, j := range idx {
		sx[i] = xs[j]
		sy[i] = ys[j]
	}
	for i := 1; i < len(sx); i++ {
		if sx[i] == sx[i-1] {
			return nil, fmt.Errorf("linalg: NewPiecewise duplicate x value %g", sx[i])
		}
	}
	return &Piecewise{xs: sx, ys: sy}, nil
}

// MustPiecewise is like NewPiecewise but panics on error; intended for
// statically known tables.
func MustPiecewise(xs, ys []float64) *Piecewise {
	p, err := NewPiecewise(xs, ys)
	if err != nil {
		panic(err)
	}
	return p
}

// Eval evaluates the piecewise-linear function at x.
func (p *Piecewise) Eval(x float64) float64 {
	n := len(p.xs)
	if n == 1 {
		return p.ys[0]
	}
	// Locate the segment: the largest i with xs[i] <= x (clamped for
	// extrapolation).
	i := sort.SearchFloat64s(p.xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	default:
		// xs[i-1] < x <= xs[i]; interpolate on segment (i-1, i).
	}
	x0, x1 := p.xs[i-1], p.xs[i]
	y0, y1 := p.ys[i-1], p.ys[i]
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// EvalLog evaluates the function with interpolation performed in log-x space,
// which is appropriate for per-cell cost curves sampled at log-spaced cell
// counts (Figure 3 in the paper). All breakpoints must have positive x.
func (p *Piecewise) EvalLog(x float64) float64 {
	n := len(p.xs)
	if n == 1 {
		return p.ys[0]
	}
	if x <= 0 {
		return p.ys[0]
	}
	lx := math.Log(x)
	i := sort.SearchFloat64s(p.xs, x)
	switch {
	case i <= 0:
		i = 1
	case i >= n:
		i = n - 1
	}
	x0, x1 := p.xs[i-1], p.xs[i]
	if x0 <= 0 || x1 <= 0 {
		// Fall back to linear interpolation when log space is unusable.
		return p.Eval(x)
	}
	l0, l1 := math.Log(x0), math.Log(x1)
	t := (lx - l0) / (l1 - l0)
	return p.ys[i-1] + t*(p.ys[i]-p.ys[i-1])
}

// Knots returns copies of the breakpoint coordinates.
func (p *Piecewise) Knots() (xs, ys []float64) {
	xs = make([]float64, len(p.xs))
	ys = make([]float64, len(p.ys))
	copy(xs, p.xs)
	copy(ys, p.ys)
	return xs, ys
}

// Len returns the number of breakpoints.
func (p *Piecewise) Len() int { return len(p.xs) }
