package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization encounters a (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of the square matrix a with partial
// (row) pivoting. The input matrix is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: LU requires a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		maxAbs := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if ab := math.Abs(lu.At(i, k)); ab > maxAbs {
				maxAbs = ab
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				tmp := lu.At(p, j)
				lu.Set(p, j, lu.At(k, j))
				lu.Set(k, j, tmp)
			}
			piv[p], piv[k] = piv[k], piv[p]
			sign = -sign
		}
		// Eliminate below the pivot.
		pivVal := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivVal
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -f*lu.At(k, j))
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b for x using the factorization.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d does not match matrix order %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply the permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = (x[i] - s) / d
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLU is a convenience wrapper that factors a and solves a*x = b.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// QR holds a Householder QR factorization A = Q*R of an m-by-n matrix with
// m >= n.
type QR struct {
	qr    *Matrix   // Upper triangle holds R; below-diagonal + vDiag hold the Householder vectors.
	vDiag []float64 // Leading coefficients of the Householder vectors.
}

// FactorQR computes the Householder QR factorization of a (m >= n required).
// The input matrix is not modified.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR requires rows >= cols, got %dx%d", m, n)
	}
	qr := a.Clone()
	vDiag := make([]float64, n)
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = qr.At(i, k)
		}
		alpha := Norm2(col)
		if alpha == 0 {
			return nil, ErrSingular
		}
		if qr.At(k, k) > 0 {
			alpha = -alpha
		}
		// v = x - alpha*e1. v[0] is kept in vDiag; the below-diagonal
		// column entries already hold the rest of v in place.
		vDiag[k] = qr.At(k, k) - alpha
		// beta = 2 / (v'v)
		vtv := vDiag[k] * vDiag[k]
		for i := k + 1; i < m; i++ {
			vtv += qr.At(i, k) * qr.At(i, k)
		}
		if vtv == 0 {
			return nil, ErrSingular
		}
		beta := 2 / vtv
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := vDiag[k] * qr.At(k, j)
			for i := k + 1; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s *= beta
			qr.Add(k, j, -s*vDiag[k])
			for i := k + 1; i < m; i++ {
				qr.Add(i, j, -s*qr.At(i, k))
			}
		}
		qr.Set(k, k, alpha)
	}
	return &QR{qr: qr, vDiag: vDiag}, nil
}

// Solve returns the least-squares solution x minimizing ||A*x - b||2.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d does not match row count %d", len(b), m)
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply the Householder reflectors to b: y = Q' * b.
	for k := 0; k < n; k++ {
		vtv := f.vDiag[k] * f.vDiag[k]
		for i := k + 1; i < m; i++ {
			vtv += f.qr.At(i, k) * f.qr.At(i, k)
		}
		beta := 2 / vtv
		s := f.vDiag[k] * y[k]
		for i := k + 1; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s *= beta
		y[k] -= s * f.vDiag[k]
		for i := k + 1; i < m; i++ {
			y[i] -= s * f.qr.At(i, k)
		}
	}
	// Back substitution with R. A diagonal entry that is tiny relative to
	// the largest one signals (numerical) rank deficiency.
	var maxDiag float64
	for i := 0; i < n; i++ {
		if d := math.Abs(f.qr.At(i, i)); d > maxDiag {
			maxDiag = d
		}
	}
	tol := maxDiag * 1e-12 * float64(m)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		d := f.qr.At(i, i)
		if math.Abs(d) <= tol {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares returns the x minimizing ||A*x - b||2 via Householder QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Residual returns b - A*x, useful for checking least-squares quality.
func Residual(a *Matrix, x, b []float64) ([]float64, error) {
	ax, err := a.MulVec(x)
	if err != nil {
		return nil, err
	}
	if len(b) != len(ax) {
		return nil, fmt.Errorf("linalg: rhs length %d does not match %d", len(b), len(ax))
	}
	r := make([]float64, len(b))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	return r, nil
}
