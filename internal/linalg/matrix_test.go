package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("fresh matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatrix(0, 2) did not panic")
		}
	}()
	NewMatrix(0, 2)
}

func TestNewMatrixFromRagged(t *testing.T) {
	_, err := NewMatrixFrom([][]float64{{1, 2}, {3}})
	if err == nil {
		t.Fatal("ragged literal accepted")
	}
	_, err = NewMatrixFrom(nil)
	if err == nil {
		t.Fatal("empty literal accepted")
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", got)
	}
}

func TestIdentityMul(t *testing.T) {
	a, err := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	id := Identity(2)
	p, err := a.Mul(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != a.At(i, j) {
				t.Fatalf("A*I != A at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	b, _ := NewMatrixFrom([][]float64{{7, 8}, {9, 10}, {11, 12}})
	p, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{58, 64}, {139, 154}}
	for i := range want {
		for j := range want[i] {
			if p.At(i, j) != want[i][j] {
				t.Fatalf("product (%d,%d) = %v, want %v", i, j, p.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Fatal("dimension mismatch not reported")
	}
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Fatal("MulVec dimension mismatch not reported")
	}
}

func TestMulVecKnown(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 17 || v[1] != 39 {
		t.Fatalf("MulVec = %v, want [17 39]", v)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := a.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if a.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestRowColClone(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	r := a.Row(1)
	c := a.Col(0)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	if c[0] != 1 || c[1] != 3 {
		t.Fatalf("Col(0) = %v", c)
	}
	cl := a.Clone()
	cl.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestDotAndNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Norm2 must not overflow for large entries.
	if got := Norm2([]float64{1e308, 1e308}); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestMaxAbs(t *testing.T) {
	a, _ := NewMatrixFrom([][]float64{{1, -7}, {3, 4}})
	if got := a.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %v, want 7", got)
	}
}

// Property: (A*B)^T == B^T * A^T for random matrices.
func TestTransposeProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, p := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := NewMatrix(m, n)
		b := NewMatrix(n, p)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < p; j++ {
				b.Set(i, j, rng.NormFloat64())
			}
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left := ab.Transpose()
		right, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		for i := 0; i < left.Rows(); i++ {
			for j := 0; j < left.Cols(); j++ {
				if !almostEqual(left.At(i, j), right.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
