package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.A, 1, 1e-12) || !almostEqual(fit.B, 2, 1e-12) {
		t.Fatalf("fit = %+v, want A=1 B=2", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
	if got := fit.Eval(10); !almostEqual(got, 21, 1e-12) {
		t.Fatalf("Eval(10) = %v, want 21", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 100
		xs = append(xs, x)
		ys = append(ys, 4+0.5*x+rng.NormFloat64()*0.01)
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-4) > 0.05 || math.Abs(fit.B-0.5) > 0.01 {
		t.Fatalf("noisy fit = %+v, want approx A=4 B=0.5", fit)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("R2 = %v, want near 1", fit.R2)
	}
}

func TestPiecewiseSinglePoint(t *testing.T) {
	p := MustPiecewise([]float64{5}, []float64{42})
	for _, x := range []float64{-10, 0, 5, 100} {
		if got := p.Eval(x); got != 42 {
			t.Fatalf("Eval(%v) = %v, want constant 42", x, got)
		}
	}
}

func TestPiecewiseInterpolation(t *testing.T) {
	p := MustPiecewise([]float64{0, 10, 20}, []float64{0, 100, 0})
	cases := []struct{ x, want float64 }{
		{0, 0}, {5, 50}, {10, 100}, {15, 50}, {20, 0},
	}
	for _, c := range cases {
		if got := p.Eval(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Eval(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPiecewiseExtrapolation(t *testing.T) {
	p := MustPiecewise([]float64{0, 1}, []float64{0, 2})
	if got := p.Eval(2); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("right extrapolation = %v, want 4", got)
	}
	if got := p.Eval(-1); !almostEqual(got, -2, 1e-12) {
		t.Fatalf("left extrapolation = %v, want -2", got)
	}
}

func TestPiecewiseUnsortedInput(t *testing.T) {
	p, err := NewPiecewise([]float64{10, 0, 5}, []float64{1, 0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(2.5); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("Eval(2.5) = %v, want 0.25", got)
	}
	xs, _ := p.Knots()
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatal("knots not sorted")
		}
	}
}

func TestPiecewiseDuplicateX(t *testing.T) {
	if _, err := NewPiecewise([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Fatal("duplicate x accepted")
	}
}

func TestPiecewiseEmpty(t *testing.T) {
	if _, err := NewPiecewise(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestMustPiecewisePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustPiecewise did not panic on bad input")
		}
	}()
	MustPiecewise([]float64{1, 1}, []float64{0, 0})
}

func TestPiecewiseEvalLog(t *testing.T) {
	// In log space the midpoint of [10, 1000] is 100.
	p := MustPiecewise([]float64{10, 1000}, []float64{0, 1})
	if got := p.EvalLog(100); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("EvalLog(100) = %v, want 0.5", got)
	}
	// Non-positive x falls back to the first knot value.
	if got := p.EvalLog(0); got != 0 {
		t.Fatalf("EvalLog(0) = %v, want 0", got)
	}
}

func TestPiecewiseLen(t *testing.T) {
	p := MustPiecewise([]float64{1, 2, 3}, []float64{4, 5, 6})
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

// Property: Eval at any knot returns the knot's y exactly; Eval between two
// adjacent knots is bounded by their y values.
func TestPiecewiseBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := rng.Float64()
		for i := 0; i < n; i++ {
			x += 0.1 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64() * 10
		}
		p, err := NewPiecewise(xs, ys)
		if err != nil {
			return false
		}
		for i := range xs {
			if !almostEqual(p.Eval(xs[i]), ys[i], 1e-9) {
				return false
			}
		}
		for i := 1; i < n; i++ {
			mid := (xs[i-1] + xs[i]) / 2
			v := p.Eval(mid)
			lo := math.Min(ys[i-1], ys[i]) - 1e-9
			hi := math.Max(ys[i-1], ys[i]) + 1e-9
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
