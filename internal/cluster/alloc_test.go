package cluster

import (
	"testing"
)

// TestRunnerAllocRegression guards the zero-alloc simulation stepping: a
// warm Runner (the state every SimulateIterations Repeats loop reaches
// after its first iteration) must allocate only the Result and its flat
// compute-time backing — single digits of objects, not the ~6,400 the
// per-call implementation cost. Budget 40 leaves room for incidental
// runtime allocations while catching any reintroduced per-phase or
// per-PE buffer.
func TestRunnerAllocRegression(t *testing.T) {
	sum := summarize(t, 64, 32, 16)
	cfg := baseConfig()
	r := NewRunner(sum)
	// Warm the buffers once; the regression bound applies at steady state.
	if _, err := r.Simulate(cfg); err != nil {
		t.Fatal(err)
	}
	iter := 0
	allocs := testing.AllocsPerRun(10, func() {
		c := cfg
		c.Iteration = iter
		iter++
		if _, err := r.Simulate(c); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Errorf("warm Runner.Simulate allocated %.0f objects per run, budget 40", allocs)
	}
}
