package cluster

import (
	"math"
	"testing"

	"krak/internal/compute"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
)

func summarize(t testing.TB, w, h, p int) *mesh.PartitionSummary {
	t.Helper()
	d, err := mesh.BuildLayeredDeck(w, h)
	if err != nil {
		t.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mesh.Summarize(d.Mesh, part, p)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func baseConfig() Config {
	return Config{Net: netmodel.QsNetI(), Costs: compute.ES45().WithoutNoise()}
}

func TestSimulateValidation(t *testing.T) {
	sum := summarize(t, 16, 8, 4)
	if _, err := Simulate(sum, Config{}); err == nil {
		t.Fatal("missing net/costs accepted")
	}
	if _, err := Simulate(nil, baseConfig()); err == nil {
		t.Fatal("nil summary accepted")
	}
}

func TestSimulateSingleProcessor(t *testing.T) {
	d, err := mesh.BuildLayeredDeck(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	part := make([]int, d.Mesh.NumCells())
	sum, err := mesh.Summarize(d.Mesh, part, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig()
	r, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// On one PE there is no communication at all.
	if r.CollectiveTime != 0 {
		t.Fatalf("collective time on 1 PE = %v", r.CollectiveTime)
	}
	want := cfg.Costs.IterationTime(sum.CellsByMaterial[0])
	if math.Abs(r.IterationTime-want) > 1e-12 {
		t.Fatalf("iteration = %v, want pure compute %v", r.IterationTime, want)
	}
	for ph := 0; ph < phases.Count; ph++ {
		if r.CommTimes[ph] != 0 {
			t.Fatalf("phase %d comm time on 1 PE = %v", ph+1, r.CommTimes[ph])
		}
	}
}

func TestSimulateDeterminism(t *testing.T) {
	sum := summarize(t, 32, 16, 8)
	cfg := Config{Net: netmodel.QsNetI(), Costs: compute.ES45()}
	a, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime != b.IterationTime {
		t.Fatal("simulation not deterministic")
	}
	// A different iteration index gives a different (noisy) result.
	cfg.Iteration = 1
	c, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.IterationTime == a.IterationTime {
		t.Fatal("noise did not vary across iterations")
	}
}

func TestSimulatePhaseAccounting(t *testing.T) {
	sum := summarize(t, 32, 16, 8)
	cfg := baseConfig()
	r, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for ph := 0; ph < phases.Count; ph++ {
		if r.PhaseTimes[ph] <= 0 {
			t.Fatalf("phase %d time = %v", ph+1, r.PhaseTimes[ph])
		}
		if r.CommTimes[ph] < 0 {
			t.Fatalf("phase %d comm time negative: %v", ph+1, r.CommTimes[ph])
		}
		if len(r.ComputeTimes[ph]) != 8 {
			t.Fatalf("phase %d compute times for %d PEs", ph+1, len(r.ComputeTimes[ph]))
		}
		total += r.PhaseTimes[ph]
	}
	if math.Abs(total-r.IterationTime) > 1e-12 {
		t.Fatalf("phase times sum %v != iteration %v", total, r.IterationTime)
	}
	if r.CollectiveTime <= 0 {
		t.Fatal("no collective time on 8 PEs")
	}
	tc := r.TotalCompute()
	if len(tc) != 8 {
		t.Fatalf("TotalCompute length %d", len(tc))
	}
	for pe, v := range tc {
		if v <= 0 {
			t.Fatalf("PE %d total compute = %v", pe, v)
		}
	}
}

func TestCommOnlyInCommPhases(t *testing.T) {
	sum := summarize(t, 32, 16, 4)
	cfg := baseConfig()
	cfg.Exact = true
	r, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range phases.Table1() {
		collectives := float64(0)
		for _, b := range ph.BcastBytes {
			collectives += cfg.Net.Bcast(4, b)
		}
		for _, b := range ph.GatherBytes {
			collectives += cfg.Net.Gather(4, b)
		}
		for _, b := range ph.AllreduceBytes {
			collectives += cfg.Net.Allreduce(4, b)
		}
		if !ph.HasPointToPoint() {
			// Compute-only phases: comm share is exactly the collectives.
			if math.Abs(r.CommTimes[i]-collectives) > 1e-9 {
				t.Errorf("phase %d comm = %v, want collectives only %v", ph.Number, r.CommTimes[i], collectives)
			}
		} else if r.CommTimes[i] <= collectives {
			t.Errorf("phase %d should have p2p comm beyond collectives", ph.Number)
		}
	}
}

func TestSerializeSendsSlower(t *testing.T) {
	sum := summarize(t, 64, 32, 16)
	over := baseConfig()
	ser := baseConfig()
	ser.SerializeSends = true
	a, err := Simulate(sum, over)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sum, ser)
	if err != nil {
		t.Fatal(err)
	}
	if b.IterationTime <= a.IterationTime {
		t.Fatalf("serialized sends (%v) not slower than overlapped (%v)",
			b.IterationTime, a.IterationTime)
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Iteration time must drop with processor count in the compute-bound
	// regime (medium-ish deck, small P).
	cfg := baseConfig()
	prev := math.Inf(1)
	for _, p := range []int{2, 4, 8, 16} {
		sum := summarize(t, 160, 80, p)
		r, err := Simulate(sum, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.IterationTime >= prev {
			t.Fatalf("iteration time not decreasing at P=%d: %v >= %v", p, r.IterationTime, prev)
		}
		prev = r.IterationTime
	}
}

func TestMaterialDependentPhaseSpread(t *testing.T) {
	// In a material-dependent phase, single-material PEs of different
	// materials must show different compute times; in a material-
	// independent phase they must not (equal cell counts).
	cfg := baseConfig()
	var heOnly, alOnly [mesh.NumMaterials]int
	heOnly[mesh.HEGas] = 1000
	alOnly[mesh.AluminumOuter] = 1000
	he2 := cfg.Costs.PhaseTime(2, heOnly)
	al2 := cfg.Costs.PhaseTime(2, alOnly)
	if he2 <= al2 {
		t.Fatalf("phase 2 HE gas (%v) should exceed aluminum (%v)", he2, al2)
	}
	he3 := cfg.Costs.PhaseTime(3, heOnly)
	al3 := cfg.Costs.PhaseTime(3, alOnly)
	if math.Abs(he3-al3) > 1e-15 {
		t.Fatalf("phase 3 should be material independent: %v vs %v", he3, al3)
	}
}

func TestSimulateIterations(t *testing.T) {
	sum := summarize(t, 32, 16, 4)
	cfg := Config{Net: netmodel.QsNetI(), Costs: compute.ES45()}
	results, mean, err := SimulateIterations(sum, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	var s float64
	for _, r := range results {
		s += r.IterationTime
	}
	if math.Abs(mean-s/5) > 1e-15 {
		t.Fatal("mean mismatch")
	}
	if _, _, err := SimulateIterations(sum, cfg, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestFasterNetworkFasterIteration(t *testing.T) {
	sum := summarize(t, 64, 32, 32)
	slow := Config{Net: netmodel.GigE(), Costs: compute.ES45().WithoutNoise()}
	fast := Config{Net: netmodel.Infiniband(), Costs: compute.ES45().WithoutNoise()}
	a, err := Simulate(sum, slow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(sum, fast)
	if err != nil {
		t.Fatal(err)
	}
	if b.IterationTime >= a.IterationTime {
		t.Fatalf("InfiniBand (%v) not faster than GigE (%v)", b.IterationTime, a.IterationTime)
	}
}
