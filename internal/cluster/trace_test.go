package cluster

import (
	"testing"

	"krak/internal/phases"
)

func TestTraceEvents(t *testing.T) {
	sum := summarize(t, 32, 16, 4)
	cfg := baseConfig()
	cfg.Trace = true
	r, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) == 0 {
		t.Fatal("no events traced")
	}
	var computes, sends, recvs, colls int
	sendBytes := map[int]int{} // phase -> total bytes sent
	for _, e := range r.Events {
		if e.Phase < 1 || e.Phase > phases.Count {
			t.Fatalf("event with bad phase %d", e.Phase)
		}
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		switch e.Kind {
		case EventCompute:
			computes++
			if e.Start != 0 {
				t.Fatalf("compute must start the phase: %+v", e)
			}
		case EventSend:
			sends++
			sendBytes[e.Phase] += e.Bytes
			if e.Peer < 0 || e.Peer >= 4 || e.Peer == e.PE {
				t.Fatalf("send with bad peer: %+v", e)
			}
		case EventRecv:
			recvs++
		case EventCollective:
			colls++
			if e.PE != -1 {
				t.Fatalf("collective events are global: %+v", e)
			}
		}
	}
	// One compute event per PE per phase.
	if computes != 4*phases.Count {
		t.Fatalf("compute events = %d, want %d", computes, 4*phases.Count)
	}
	// Sends and receives pair up exactly.
	if sends == 0 || sends != recvs {
		t.Fatalf("sends = %d, recvs = %d", sends, recvs)
	}
	// Every phase with sync points produced a collective event.
	if colls != phases.Count {
		t.Fatalf("collective events = %d, want %d", colls, phases.Count)
	}
	// Only the phases Table 1 marks exchange data.
	for _, ph := range phases.Table1() {
		if ph.HasPointToPoint() && sendBytes[ph.Number] == 0 {
			t.Errorf("phase %d should have sent bytes", ph.Number)
		}
		if !ph.HasPointToPoint() && sendBytes[ph.Number] != 0 {
			t.Errorf("phase %d should not have sent bytes", ph.Number)
		}
	}
}

func TestTraceOffByDefault(t *testing.T) {
	sum := summarize(t, 16, 8, 2)
	r, err := Simulate(sum, baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Events) != 0 {
		t.Fatal("events traced without Trace")
	}
}

func TestTraceDoesNotChangeTiming(t *testing.T) {
	sum := summarize(t, 32, 16, 8)
	cfg := baseConfig()
	a, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = true
	b, err := Simulate(sum, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterationTime != b.IterationTime {
		t.Fatalf("tracing changed timing: %v vs %v", a.IterationTime, b.IterationTime)
	}
}
