// Package cluster is the measured-platform substrate of the Krak
// reproduction: a discrete-event simulator that plays the role the
// 256-node AlphaServer ES45 / QsNet-I cluster played in the paper. It
// executes one Krak iteration — the 15 phases of Table 1 — over P virtual
// processors, charging computation from the ground-truth cost tables
// (internal/compute) and communication from the piecewise-linear network
// model (internal/netmodel), and reports the per-phase and per-iteration
// times that the validation experiments treat as "measured".
//
// The simulator honors the application's communication semantics as §4
// describes them: asynchronous sends posted to every neighbor, completion
// waits, then blocking receives; per-material boundary-exchange messages
// with the Table 3 size rules; ghost-node updates split into local and
// remote messages; and binary-tree collectives closing every phase. Unlike
// the analytic model (internal/core), the simulator sees the true irregular
// partition, true per-PE material mixtures, per-PE noise, and genuine
// message overlap — exactly the effects the paper's model abstracts away.
package cluster

import (
	"fmt"
	"sort"

	"krak/internal/compute"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/phases"
)

// Config parameterizes a simulation.
type Config struct {
	// Net is the interconnect model. Required.
	Net *netmodel.Model

	// Costs is the ground-truth computation table. Required.
	Costs *compute.TruthTable

	// SendOverhead and RecvOverhead are the CPU costs of posting one
	// asynchronous send and of draining one blocking receive. They default
	// to 0.6 us / 0.8 us (MPI library costs on the ES45 era hardware) when
	// zero. Set Exact to use zeros.
	SendOverhead, RecvOverhead float64

	// SerializeSends disables message overlap: each message's full wire
	// time is charged to the sender before the next message is posted.
	// This mirrors the accounting of the model's Equation (5), which "does
	// not account for overlapping of messages between different neighbors";
	// the default (false) lets transfers to different neighbors overlap,
	// which is what the real code achieves with asynchronous sends.
	SerializeSends bool

	// Iteration selects the noise stream (think: which timestep is being
	// measured). Simulations with the same configuration and iteration are
	// bit-identical.
	Iteration int

	// Exact uses zero send/receive overheads rather than the defaults.
	Exact bool

	// Trace records a per-processor event timeline into Result.Events.
	Trace bool
}

// EventKind labels a traced simulator event.
type EventKind string

// The traced event kinds.
const (
	EventCompute    EventKind = "compute"
	EventSend       EventKind = "send"
	EventRecv       EventKind = "recv"
	EventCollective EventKind = "collective"
)

// Event is one interval on a processor's timeline, with times relative to
// the start of its phase.
type Event struct {
	PE    int
	Phase int // 1-based
	Kind  EventKind
	Peer  int // neighbor for send/recv, -1 otherwise
	Bytes int // payload for send/recv
	Start float64
	End   float64
}

func (c *Config) sendOverhead() float64 {
	if c.Exact {
		return 0
	}
	if c.SendOverhead == 0 {
		return 0.6e-6
	}
	return c.SendOverhead
}

func (c *Config) recvOverhead() float64 {
	if c.Exact {
		return 0
	}
	if c.RecvOverhead == 0 {
		return 0.8e-6
	}
	return c.RecvOverhead
}

// Result reports one simulated iteration.
type Result struct {
	P int

	// IterationTime is the wall-clock time of the full iteration (s).
	IterationTime float64

	// PhaseTimes[ph-1] is the global duration of each phase, including
	// point-to-point communication and the closing collectives.
	PhaseTimes [phases.Count]float64

	// ComputeTimes[ph-1][pe] is each processor's computation-only time in
	// each phase — the "No MPI" quantity of Figure 2.
	ComputeTimes [phases.Count][]float64

	// CommTimes[ph-1] is the per-phase communication share: phase duration
	// minus the slowest processor's compute time.
	CommTimes [phases.Count]float64

	// CollectiveTime is the total time spent in collectives.
	CollectiveTime float64

	// Events holds the traced timeline when Config.Trace is set.
	Events []Event
}

// TotalCompute returns the per-PE total compute time across phases.
func (r *Result) TotalCompute() []float64 {
	out := make([]float64, r.P)
	for ph := 0; ph < phases.Count; ph++ {
		for pe, t := range r.ComputeTimes[ph] {
			out[pe] += t
		}
	}
	return out
}

// message is an in-flight point-to-point message.
type message struct {
	from, to int
	bytes    int
	sent     float64 // send completion time at the sender
}

// Runner simulates iterations over one partition summary, reusing its
// working buffers (inboxes, arrival queues, message scratch) across runs so
// the per-iteration loop — the Repeats loop every measurement takes — is
// allocation-free apart from the Result it returns. A Runner is not safe
// for concurrent use; concurrent callers each create their own (the summary
// itself is read-only and freely shared).
//
// krakcheck:arena
type Runner struct {
	sum      *mesh.PartitionSummary
	inbox    [][]message
	postDone []float64
	arrivals []arrival
	msgs     []phases.Message
	sorter   arrivalSorter
}

// NewRunner returns a reusable simulator for the given partition summary.
func NewRunner(sum *mesh.PartitionSummary) *Runner {
	return &Runner{sum: sum}
}

// Simulate runs one iteration of Krak over the partitioned deck described
// by sum. One-shot convenience over NewRunner(sum).Simulate(cfg); loops
// should hold a Runner to amortize its buffers.
func Simulate(sum *mesh.PartitionSummary, cfg Config) (*Result, error) {
	return NewRunner(sum).Simulate(cfg)
}

// Simulate runs one iteration of Krak over the runner's partition summary.
func (r *Runner) Simulate(cfg Config) (*Result, error) {
	if cfg.Net == nil || cfg.Costs == nil {
		return nil, fmt.Errorf("cluster: Config.Net and Config.Costs are required")
	}
	sum := r.sum
	if sum == nil || sum.P <= 0 {
		return nil, fmt.Errorf("cluster: empty partition summary")
	}
	p := sum.P
	res := &Result{P: p}

	oSend := cfg.sendOverhead()
	oRecv := cfg.recvOverhead()

	// One flat backing array serves every phase's compute-time slice; the
	// slices escape into the Result, the backing is a single allocation.
	compFlat := make([]float64, phases.Count*p)

	for phIdx, ph := range phases.All() {
		// 1. Computation.
		comp := compFlat[phIdx*p : (phIdx+1)*p : (phIdx+1)*p]
		for pe := 0; pe < p; pe++ {
			comp[pe] = cfg.Costs.NoisyPhaseTime(ph.Number, sum.CellsByMaterial[pe], pe, cfg.Iteration)
		}
		res.ComputeTimes[phIdx] = comp
		maxComp := 0.0
		for _, t := range comp {
			if t > maxComp {
				maxComp = t
			}
		}
		if cfg.Trace {
			for pe, t := range comp {
				res.Events = append(res.Events, Event{
					PE: pe, Phase: ph.Number, Kind: EventCompute, Peer: -1, End: t,
				})
			}
		}

		// 2. Point-to-point communication, if any.
		var phaseEnd float64
		if ph.HasPointToPoint() && p > 1 {
			phaseEnd = r.simulateP2P(ph, comp, cfg, oSend, oRecv, res)
		} else {
			phaseEnd = maxComp
		}

		// 3. Collectives close the phase: broadcasts and gathers issued in
		// the phase, then one all-reduce per sync point.
		var coll float64
		for _, b := range ph.BcastBytes {
			coll += cfg.Net.Bcast(p, b)
		}
		for _, b := range ph.GatherBytes {
			coll += cfg.Net.Gather(p, b)
		}
		for _, b := range ph.AllreduceBytes {
			coll += cfg.Net.Allreduce(p, b)
		}
		res.CollectiveTime += coll
		if cfg.Trace && coll > 0 {
			res.Events = append(res.Events, Event{
				PE: -1, Phase: ph.Number, Kind: EventCollective, Peer: -1,
				Start: phaseEnd, End: phaseEnd + coll,
			})
		}

		total := phaseEnd + coll
		res.PhaseTimes[phIdx] = total
		res.CommTimes[phIdx] = total - maxComp
		res.IterationTime += total
	}
	return res, nil
}

// simulateP2P plays out one phase's point-to-point traffic and returns the
// time at which the slowest processor has finished computing, sending, and
// receiving. Phase-relative time: computation starts at 0. All working
// memory comes from the runner's reusable buffers.
func (r *Runner) simulateP2P(ph phases.Phase, comp []float64, cfg Config, oSend, oRecv float64, res *Result) float64 {
	sum := r.sum
	p := sum.P
	if cap(r.inbox) < p {
		r.inbox = make([][]message, p)
	}
	inbox := r.inbox[:p]
	for i := range inbox {
		inbox[i] = inbox[i][:0]
	}
	if cap(r.postDone) < p {
		r.postDone = make([]float64, p)
	}
	postDone := r.postDone[:p]

	for pe := 0; pe < p; pe++ {
		t := comp[pe]
		// Enumerate this PE's outgoing messages, neighbors in ascending
		// order (deterministic schedule).
		for _, nb := range sum.NeighborsOf[pe] {
			b := sum.Boundary(pe, nb)
			msgs := r.msgs[:0]
			if ph.BoundaryExchange {
				msgs = phases.AppendBoundaryExchangeMessages(msgs, b)
			} else {
				msgs = phases.AppendGhostUpdateMessages(msgs, b, pe, ph.GhostUpdateBytes)
			}
			r.msgs = msgs
			for _, m := range msgs {
				start := t
				if cfg.SerializeSends {
					// The whole wire time is charged before the next send.
					t += oSend + cfg.Net.MsgTime(m.Bytes)
				} else {
					// Asynchronous: the sender pays only the posting
					// overhead; the transfer proceeds in the background.
					t += oSend
				}
				inbox[nb] = append(inbox[nb], message{from: pe, to: nb, bytes: m.Bytes, sent: t})
				if cfg.Trace {
					res.Events = append(res.Events, Event{
						PE: pe, Phase: ph.Number, Kind: EventSend, Peer: nb,
						Bytes: m.Bytes, Start: start, End: t,
					})
				}
			}
		}
		postDone[pe] = t
	}

	// Receives: blocking, drained in arrival order after sends are posted.
	end := 0.0
	for pe := 0; pe < p; pe++ {
		arrivals := r.arrivals[:0]
		for _, m := range inbox[pe] {
			arr := m.sent
			if !cfg.SerializeSends {
				arr += cfg.Net.MsgTime(m.bytes)
			}
			arrivals = append(arrivals, arrival{at: arr, from: m.from, bytes: m.bytes})
		}
		r.arrivals = arrivals
		r.sorter.a = arrivals
		sort.Sort(&r.sorter)
		cpu := postDone[pe]
		for _, a := range arrivals {
			start := cpu
			if a.at > cpu {
				cpu = a.at
			}
			cpu += oRecv
			if cfg.Trace {
				res.Events = append(res.Events, Event{
					PE: pe, Phase: ph.Number, Kind: EventRecv, Peer: a.from,
					Bytes: a.bytes, Start: start, End: cpu,
				})
			}
		}
		if cpu > end {
			end = cpu
		}
	}
	return end
}

// arrival is a received message's delivery time.
type arrival struct {
	at    float64
	from  int
	bytes int
}

// arrivalSorter orders arrivals by delivery time. Sorting through a pointer
// receiver on a runner field avoids the per-call closure and interface
// allocations sort.Slice would cost in the phase loop. Processing order of
// equal delivery times does not affect the drained-receive arithmetic (only
// `at` enters the max), so the unstable sort is deterministic where it
// matters.
type arrivalSorter struct{ a []arrival }

func (s *arrivalSorter) Len() int           { return len(s.a) }
func (s *arrivalSorter) Less(i, j int) bool { return s.a[i].at < s.a[j].at }
func (s *arrivalSorter) Swap(i, j int)      { s.a[i], s.a[j] = s.a[j], s.a[i] }

// SimulateIterations runs n iterations (with independent noise) and returns
// the per-iteration results plus the mean iteration time. All iterations
// share one Runner, so the per-iteration simulation is allocation-free
// beyond the Results themselves.
func SimulateIterations(sum *mesh.PartitionSummary, cfg Config, n int) ([]*Result, float64, error) {
	if n <= 0 {
		return nil, 0, fmt.Errorf("cluster: iteration count %d", n)
	}
	runner := NewRunner(sum)
	results := make([]*Result, 0, n)
	var total float64
	for i := 0; i < n; i++ {
		c := cfg
		c.Iteration = cfg.Iteration + i
		r, err := runner.Simulate(c)
		if err != nil {
			return nil, 0, err
		}
		results = append(results, r)
		total += r.IterationTime
	}
	return results, total / float64(n), nil
}
