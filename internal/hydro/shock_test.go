package hydro

import (
	"math"
	"testing"

	"krak/internal/mesh"
)

// shockState builds a Riemann-like setup: a uniform gas bar with a hot
// left region, producing a right-moving shock — the classic qualitative
// validation for a compressible hydro scheme.
func shockState(t *testing.T, w, h int) *State {
	t.Helper()
	d, err := mesh.BuildUniformDeck(w, h, mesh.HEGas)
	if err != nil {
		t.Fatal(err)
	}
	var opt Options
	opt.Materials = DefaultMaterials()
	opt.Materials[mesh.HEGas].DetonationEnergy = 0 // no burn in this test
	s, err := NewState(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < s.Mesh.NumCells(); c++ {
		s.Burned[c] = true // gamma-law gas everywhere
		if c%w < w/4 {
			s.En[c] = 1.0 // hot driver region
		}
	}
	return s
}

// shockFront locates the rightmost column whose pressure exceeds half the
// maximum.
func shockFront(s *State, w int) int {
	maxP := 0.0
	for _, p := range s.P {
		if p > maxP {
			maxP = p
		}
	}
	front := 0
	for c := 0; c < s.Mesh.NumCells(); c++ {
		if s.P[c] > maxP/2 {
			if col := c % w; col > front {
				front = col
			}
		}
	}
	return front
}

func TestShockPropagatesRight(t *testing.T) {
	const w, h = 48, 4
	s := shockState(t, w, h)
	e0 := s.Diag().TotalEnergy()

	var fronts []int
	for i := 0; i < 240; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
		if i%40 == 39 {
			fronts = append(fronts, shockFront(s, w))
		}
	}
	// The front must advance monotonically and actually move.
	for i := 1; i < len(fronts); i++ {
		if fronts[i] < fronts[i-1] {
			t.Fatalf("shock front retreated: %v", fronts)
		}
	}
	if fronts[len(fronts)-1] <= w/4+2 {
		t.Fatalf("shock never left the driver region: %v", fronts)
	}

	// Energy conservation (free boundaries do no work; no burn).
	e1 := s.Diag().TotalEnergy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.03 {
		t.Fatalf("energy drift %.2f%% over shock run", rel*100)
	}

	// Shocked material moves rightward (positive u) ahead of the driver.
	var rightward, wrong int
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		if s.U[n] > 1e-6 {
			rightward++
		}
		// Strong leftward motion would indicate a sign error.
		if s.U[n] < -0.5 {
			wrong++
		}
	}
	if rightward == 0 {
		t.Fatal("no rightward motion behind the shock")
	}
	if wrong > s.Mesh.NumNodes()/10 {
		t.Fatalf("%d nodes moving hard left (driver expansion should push right)", wrong)
	}
}

func TestShockHeatsCompressedGas(t *testing.T) {
	const w, h = 48, 4
	s := shockState(t, w, h)
	for i := 0; i < 160; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Just ahead of the driver, gas must be compressed (rho > rho0) and
	// heated (e > initial 1e-6) — shock heating, not adiabatic cooling.
	rho0 := DefaultMaterials()[mesh.HEGas].Rho0
	heated := 0
	for c := 0; c < s.Mesh.NumCells(); c++ {
		col := c % w
		if col > w/4 && col < w/2 && s.Rho[c] > rho0*1.02 && s.En[c] > 1e-4 {
			heated++
		}
	}
	if heated == 0 {
		t.Fatal("no shock-heated cells found ahead of the driver")
	}
}

func TestQualityDegradesGracefullyUnderDetonation(t *testing.T) {
	// After a detonation transient the mesh deforms but must not invert.
	d, err := mesh.BuildLayeredDeck(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Check deformed-grid quality via the mesh metrics on current coords.
	dm := &mesh.Mesh{
		NodeX:        s.X,
		NodeY:        s.Y,
		CellNodes:    s.Mesh.CellNodes,
		CellMaterial: s.Mesh.CellMaterial,
	}
	q := dm.Quality()
	if q.Inverted != 0 {
		t.Fatalf("%d inverted cells after detonation", q.Inverted)
	}
	if q.MinArea <= 0 {
		t.Fatalf("min area %v", q.MinArea)
	}
}
