package hydro

import (
	"fmt"
	"sort"

	"krak/internal/mesh"
	"krak/internal/mpisim"
)

// NeighborLink describes one rank's connection to a neighboring rank.
type NeighborLink struct {
	// Rank is the neighboring rank.
	Rank int
	// SharedNodes lists local node indices shared with the neighbor,
	// ordered by global node id so both sides agree on message layout.
	SharedNodes []int32
	// SharedFaces is the number of mesh faces on the common boundary
	// (determines the phase 2 payload, 12 bytes per face).
	SharedFaces int
}

// Subgrid is one rank's portion of a partitioned deck.
type Subgrid struct {
	// Deck holds the local mesh (cells and nodes remapped to local ids;
	// connectivity carried by CellNodes only) plus the global detonator.
	Deck *mesh.Deck
	// GlobalCells maps local cell id to global cell id.
	GlobalCells []int32
	// GlobalNodes maps local node id to global node id.
	GlobalNodes []int32
	// Neighbors lists adjacent ranks in ascending order.
	Neighbors []NeighborLink
	// OwnerRank[l] is the lowest rank sharing local node l (== this rank
	// for interior nodes).
	OwnerRank []int
}

// ExtractSubgrid builds rank's subgrid of a deck under a partition vector.
func ExtractSubgrid(d *mesh.Deck, part []int, p, rank int) (*Subgrid, error) {
	m := d.Mesh
	if len(part) != m.NumCells() {
		return nil, fmt.Errorf("hydro: partition length %d != %d cells", len(part), m.NumCells())
	}
	if rank < 0 || rank >= p {
		return nil, fmt.Errorf("hydro: rank %d out of range", rank)
	}
	// Local cells in global order.
	var cells []int32
	for c, pe := range part {
		if pe == rank {
			cells = append(cells, int32(c))
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("hydro: rank %d owns no cells", rank)
	}
	// Local nodes: every node of an owned cell, in ascending global order.
	nodeSet := map[int32]bool{}
	for _, c := range cells {
		for _, n := range m.CellNodes[c] {
			nodeSet[n] = true
		}
	}
	globalNodes := make([]int32, 0, len(nodeSet))
	for n := range nodeSet {
		globalNodes = append(globalNodes, n)
	}
	sort.Slice(globalNodes, func(i, j int) bool { return globalNodes[i] < globalNodes[j] })
	localOf := make(map[int32]int32, len(globalNodes))
	for l, g := range globalNodes {
		localOf[g] = int32(l)
	}

	// Local mesh.
	lm := &mesh.Mesh{
		NodeX:        make([]float64, len(globalNodes)),
		NodeY:        make([]float64, len(globalNodes)),
		CellNodes:    make([][4]int32, len(cells)),
		CellMaterial: make([]mesh.Material, len(cells)),
	}
	for l, g := range globalNodes {
		lm.NodeX[l] = m.NodeX[g]
		lm.NodeY[l] = m.NodeY[g]
	}
	for lc, gc := range cells {
		for i, gn := range m.CellNodes[gc] {
			lm.CellNodes[lc][i] = localOf[gn]
		}
		lm.CellMaterial[lc] = m.CellMaterial[gc]
	}

	// Shared nodes per neighboring rank, via global node incidence.
	nodeRanks := map[int32][]int{}
	nc := m.NodeCells()
	for _, g := range globalNodes {
		var ranks []int
		for _, c := range nc[g] {
			pr := part[c]
			dup := false
			for _, r := range ranks {
				if r == pr {
					dup = true
					break
				}
			}
			if !dup {
				ranks = append(ranks, pr)
			}
		}
		sort.Ints(ranks)
		nodeRanks[g] = ranks
	}
	owner := make([]int, len(globalNodes))
	sharedBy := map[int][]int32{} // neighbor rank -> local node ids
	for l, g := range globalNodes {
		ranks := nodeRanks[g]
		owner[l] = ranks[0]
		for _, r := range ranks {
			if r != rank {
				sharedBy[r] = append(sharedBy[r], int32(l))
			}
		}
	}
	// Shared faces per neighbor.
	faceCount := map[int]int{}
	for _, f := range m.Faces {
		if !f.Interior() {
			continue
		}
		pa, pb := part[f.C0], part[f.C1]
		if pa == rank && pb != rank {
			faceCount[pb]++
		} else if pb == rank && pa != rank {
			faceCount[pa]++
		}
	}
	neighborRanks := make([]int, 0, len(sharedBy))
	for r := range sharedBy {
		neighborRanks = append(neighborRanks, r)
	}
	sort.Ints(neighborRanks)
	links := make([]NeighborLink, 0, len(neighborRanks))
	for _, r := range neighborRanks {
		nodes := sharedBy[r]
		// Already in ascending local order == ascending global order.
		links = append(links, NeighborLink{Rank: r, SharedNodes: nodes, SharedFaces: faceCount[r]})
	}

	return &Subgrid{
		Deck: &mesh.Deck{
			Name:       fmt.Sprintf("%s/rank%d", d.Name, rank),
			Mesh:       lm,
			DetonatorX: d.DetonatorX,
			DetonatorY: d.DetonatorY,
		},
		GlobalCells: cells,
		GlobalNodes: globalNodes,
		Neighbors:   links,
		OwnerRank:   owner,
	}, nil
}

// parallelExchanger implements Exchanger over mpisim. Staging buffers are
// allocated once at construction and reused every step, so the per-step
// exchange path allocates nothing.
type parallelExchanger struct {
	comm *mpisim.Comm
	sub  *Subgrid
	// epoch separates the collectives of successive Step calls.
	epoch int
	// sendBuf stages outgoing payloads and recvBuf drains incoming ones
	// (via RecvInto), each sized for the largest message any link carries
	// (3 values per shared face or 2 per shared node). One staging buffer
	// serves every neighbor because mpisim's Send copies the payload into
	// its transport buffer before returning, so the buffer is free for
	// reuse the moment Isend returns.
	sendBuf []float64
	recvBuf []float64
	// batch reuses send-request storage across exchanges.
	batch mpisim.Batch
}

// newParallelExchanger sizes the exchanger's staging buffers for sub.
func newParallelExchanger(comm *mpisim.Comm, sub *Subgrid) *parallelExchanger {
	x := &parallelExchanger{comm: comm, sub: sub}
	maxLen := 0
	for _, nb := range sub.Neighbors {
		n := 3 * nb.SharedFaces
		if v := 2 * len(nb.SharedNodes); v > n {
			n = v
		}
		if n > maxLen {
			maxLen = n
		}
	}
	x.sendBuf = make([]float64, maxLen)
	x.recvBuf = make([]float64, maxLen)
	return x
}

// Tags for point-to-point phases; user tag space below 1<<20.
const (
	tagBoundary = 1000
	tagShared   = 2000
	tagVel      = 3000
)

// Rank implements Exchanger.
func (x *parallelExchanger) Rank() int { return x.comm.Rank() }

// BoundaryExchange implements Exchanger: per neighbor, exchange three
// values per shared face (pressure, viscosity, density summaries — 12-byte
// face payloads region-wide, per §4.1). The payload feeds boundary
// diagnostics; cross-rank coupling itself flows through the ghost-node
// sums.
func (x *parallelExchanger) BoundaryExchange(s *State) error {
	// Summaries of this subgrid's state.
	var meanP, meanQ, meanRho float64
	n := float64(s.Mesh.NumCells())
	for c := 0; c < s.Mesh.NumCells(); c++ {
		meanP += s.P[c]
		meanQ += s.Q[c]
		meanRho += s.Rho[c]
	}
	if n > 0 {
		meanP /= n
		meanQ /= n
		meanRho /= n
	}
	// Asynchronous sends to every neighbor, a completion wait, then
	// blocking receives — the §4 communication structure.
	for _, nb := range x.sub.Neighbors {
		payload := x.sendBuf[:3*nb.SharedFaces]
		for i := 0; i < nb.SharedFaces; i++ {
			payload[3*i] = meanP
			payload[3*i+1] = meanQ
			payload[3*i+2] = meanRho
		}
		x.batch.Isend(x.comm, nb.Rank, tagBoundary, payload)
	}
	if err := x.batch.Waitall(); err != nil {
		return err
	}
	for _, nb := range x.sub.Neighbors {
		got, err := x.comm.RecvInto(nb.Rank, tagBoundary, x.recvBuf)
		if err != nil {
			return err
		}
		x.recvBuf = got[:cap(got)]
		if len(got) != 3*nb.SharedFaces {
			return fmt.Errorf("hydro: boundary payload %d from rank %d, want %d",
				len(got), nb.Rank, 3*nb.SharedFaces)
		}
	}
	return nil
}

// SumShared implements Exchanger: exchange partial values for shared nodes
// with every neighbor, accumulating into total. Partials are sent, so
// corner nodes shared by three or more ranks sum correctly.
func (x *parallelExchanger) SumShared(partial, total []float64, tag int) error {
	copy(total, partial)
	for _, nb := range x.sub.Neighbors {
		buf := x.sendBuf[:len(nb.SharedNodes)]
		for i, l := range nb.SharedNodes {
			buf[i] = partial[l]
		}
		x.batch.Isend(x.comm, nb.Rank, tagShared+tag, buf)
	}
	if err := x.batch.Waitall(); err != nil {
		return err
	}
	for _, nb := range x.sub.Neighbors {
		got, err := x.comm.RecvInto(nb.Rank, tagShared+tag, x.recvBuf)
		if err != nil {
			return err
		}
		x.recvBuf = got[:cap(got)]
		if len(got) != len(nb.SharedNodes) {
			return fmt.Errorf("hydro: shared payload %d from rank %d, want %d",
				len(got), nb.Rank, len(nb.SharedNodes))
		}
		for i, l := range nb.SharedNodes {
			total[l] += got[i]
		}
	}
	return nil
}

// SyncGhostVelocities implements Exchanger: the owning rank's velocities
// win on shared nodes, making the integration bit-reproducible across rank
// counts' partial-sum orderings.
func (x *parallelExchanger) SyncGhostVelocities(s *State) error {
	me := x.comm.Rank()
	for _, nb := range x.sub.Neighbors {
		buf := x.sendBuf[:2*len(nb.SharedNodes)]
		for i, l := range nb.SharedNodes {
			buf[2*i] = s.U[l]
			buf[2*i+1] = s.V[l]
		}
		x.batch.Isend(x.comm, nb.Rank, tagVel, buf)
	}
	if err := x.batch.Waitall(); err != nil {
		return err
	}
	for _, nb := range x.sub.Neighbors {
		got, err := x.comm.RecvInto(nb.Rank, tagVel, x.recvBuf)
		if err != nil {
			return err
		}
		x.recvBuf = got[:cap(got)]
		for i, l := range nb.SharedNodes {
			if x.sub.OwnerRank[l] == nb.Rank && x.sub.OwnerRank[l] != me {
				s.U[l] = got[2*i]
				s.V[l] = got[2*i+1]
			}
		}
	}
	return nil
}

// AllreduceMin implements Exchanger.
func (x *parallelExchanger) AllreduceMin(v float64) (float64, error) {
	x.epoch++
	return x.comm.AllreduceMinScalar(v, x.epoch)
}

// AllreduceMax implements Exchanger.
func (x *parallelExchanger) AllreduceMax(v float64) (float64, error) {
	x.epoch++
	return x.comm.AllreduceMaxScalar(v, x.epoch)
}

// AllreduceSum implements Exchanger.
func (x *parallelExchanger) AllreduceSum(v float64) (float64, error) {
	x.epoch++
	return x.comm.AllreduceSumScalar(v, x.epoch)
}

// Bcast implements Exchanger.
func (x *parallelExchanger) Bcast(vals []float64) ([]float64, error) {
	x.epoch++
	return x.comm.Bcast(0, vals, x.epoch)
}

// Gather implements Exchanger.
func (x *parallelExchanger) Gather(vals []float64) ([][]float64, error) {
	x.epoch++
	return x.comm.Gather(0, vals, x.epoch)
}

// ParallelResult aggregates a parallel run.
type ParallelResult struct {
	// Diag sums the conserved quantities over ranks (MaxPressure and
	// MinVolume are global extrema; Time/Cycle from rank 0).
	Diag Diagnostics
	// PhaseSeconds holds, per phase, the maximum accumulated wall-clock
	// time over ranks.
	PhaseSeconds PhaseSeconds
}

// RunParallel advances a partitioned deck by steps timesteps on p mpisim
// ranks and returns aggregated diagnostics.
func RunParallel(d *mesh.Deck, part []int, p, steps int, opt Options) (*ParallelResult, error) {
	results := make([]*State, p)
	timers := make([]PhaseSeconds, p)
	err := mpisim.Run(p, func(c *mpisim.Comm) error {
		sub, err := ExtractSubgrid(d, part, p, c.Rank())
		if err != nil {
			return err
		}
		st, err := NewState(sub.Deck, opt)
		if err != nil {
			return err
		}
		// Mask corner masses so kinetic-energy partials do not double
		// count shared nodes: scale the local share by cell ownership
		// only (the partial arrays already hold only local cells'
		// contributions, so nothing further is needed).
		ex := newParallelExchanger(c, sub)
		for i := 0; i < steps; i++ {
			if err := Step(st, ex, &timers[c.Rank()]); err != nil {
				return err
			}
		}
		results[c.Rank()] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &ParallelResult{}
	for r, st := range results {
		d := st.Diag()
		out.Diag.TotalMass += d.TotalMass
		out.Diag.InternalEnergy += d.InternalEnergy
		out.Diag.KineticEnergy += d.KineticEnergy
		out.Diag.EnergyReleased += d.EnergyReleased
		out.Diag.BurnedCells += d.BurnedCells
		if d.MaxPressure > out.Diag.MaxPressure {
			out.Diag.MaxPressure = d.MaxPressure
		}
		if r == 0 {
			out.Diag.MinVolume = d.MinVolume
			out.Diag.Time = d.Time
			out.Diag.Cycle = d.Cycle
		} else if d.MinVolume < out.Diag.MinVolume {
			out.Diag.MinVolume = d.MinVolume
		}
		for ph := range timers[r] {
			if timers[r][ph] > out.PhaseSeconds[ph] {
				out.PhaseSeconds[ph] = timers[r][ph]
			}
		}
	}
	return out, nil
}
