package hydro

import (
	"fmt"
	"math"
	"time"

	"krak/internal/mesh"
	"krak/internal/phases"
)

// Exchanger abstracts the communication a (sub)grid performs during one
// timestep. The serial driver uses no-ops; the parallel driver implements
// the paper's message patterns over mpisim.
type Exchanger interface {
	// Rank identifies this subgrid (0 in serial).
	Rank() int
	// BoundaryExchange performs the phase 2 face-data exchange.
	BoundaryExchange(s *State) error
	// SumShared adds neighboring subgrids' partial values into total for
	// every shared node: total[n] = partial[n] + sum of remote partials.
	// The tag distinguishes concurrent exchanges within one phase.
	SumShared(partial, total []float64, tag int) error
	// SyncGhostVelocities overwrites shared-node velocities with the
	// owning rank's values (phase 7).
	SyncGhostVelocities(s *State) error
	// AllreduceMin/Max/Sum are the phase-closing global reductions.
	AllreduceMin(v float64) (float64, error)
	AllreduceMax(v float64) (float64, error)
	AllreduceSum(v float64) (float64, error)
	// Bcast distributes root's values.
	Bcast(vals []float64) ([]float64, error)
	// Gather collects fixed-size diagnostics at rank 0 (returns nil
	// elsewhere).
	Gather(vals []float64) ([][]float64, error)
}

// Serial is the no-communication exchanger.
type Serial struct{}

// Rank implements Exchanger.
func (Serial) Rank() int { return 0 }

// BoundaryExchange implements Exchanger.
func (Serial) BoundaryExchange(*State) error { return nil }

// SumShared implements Exchanger.
func (Serial) SumShared(partial, total []float64, tag int) error {
	copy(total, partial)
	return nil
}

// SyncGhostVelocities implements Exchanger.
func (Serial) SyncGhostVelocities(*State) error { return nil }

// AllreduceMin implements Exchanger.
func (Serial) AllreduceMin(v float64) (float64, error) { return v, nil }

// AllreduceMax implements Exchanger.
func (Serial) AllreduceMax(v float64) (float64, error) { return v, nil }

// AllreduceSum implements Exchanger.
func (Serial) AllreduceSum(v float64) (float64, error) { return v, nil }

// Bcast implements Exchanger.
func (Serial) Bcast(vals []float64) ([]float64, error) { return vals, nil }

// Gather implements Exchanger.
func (Serial) Gather(vals []float64) ([][]float64, error) { return [][]float64{vals}, nil }

// PhaseSeconds accumulates wall-clock time per Table 1 phase.
type PhaseSeconds [phases.Count]float64

// maxCompression is the density ratio beyond which the subzonal rebound
// term engages.
const maxCompression = 3.0

// Step advances the state by one timestep, organized as the paper's 15
// phases. Wall-clock per-phase times are accumulated into timers when
// non-nil.
func Step(s *State, ex Exchanger, timers *PhaseSeconds) error {
	//krakcheck:ignore detrand phase timers are a wall-clock profile of this run; the physics state never reads them
	tick := time.Now()
	lap := func(ph int) {
		if timers != nil {
			//krakcheck:ignore detrand same wall-clock profile as above
			now := time.Now()
			timers[ph-1] += now.Sub(tick).Seconds()
			tick = now
		}
	}

	// Phase 1: iteration setup. Rank 0 broadcasts cycle and time; two
	// status reductions close the phase.
	meta, err := ex.Bcast([]float64{float64(s.Cycle), s.Time, s.DT})
	if err != nil {
		return err
	}
	s.Cycle = int(meta[0])
	s.Time = meta[1]
	s.DT = meta[2]
	if _, err := ex.AllreduceSum(1); err != nil {
		return err
	}
	if _, err := ex.AllreduceMax(s.DT); err != nil {
		return err
	}
	lap(1)

	// Phase 2: boundary exchange plus a diagnostics gather.
	if err := ex.BoundaryExchange(s); err != nil {
		return err
	}
	d := s.Diag()
	if _, err := ex.Gather([]float64{d.TotalMass, d.InternalEnergy, d.KineticEnergy, float64(d.BurnedCells)}); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(d.TotalMass); err != nil {
		return err
	}
	lap(2)

	// Phase 3: volumes, density, EOS, artificial viscosity.
	minRho, maxP := phase3EOS(s)
	if _, err := ex.AllreduceMin(minRho); err != nil {
		return err
	}
	if _, err := ex.AllreduceMax(maxP); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(3)

	// Phase 4: corner masses; ghost-node mass update (8 bytes per node).
	phase4Mass(s)
	if err := ex.SumShared(s.massLocal, s.NodeMass, 4); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(4)

	// Phase 5: corner forces incl. hourglass resistance; ghost-node force
	// update (16 bytes per node: fx, fy).
	phase5Forces(s)
	if err := ex.SumShared(s.fxLocal, s.FX, 50); err != nil {
		return err
	}
	if err := ex.SumShared(s.fyLocal, s.FY, 51); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(5)

	// Phase 6: accelerations, velocity update, boundary conditions.
	maxU := phase6Velocity(s)
	if _, err := ex.AllreduceMax(maxU); err != nil {
		return err
	}
	if _, err := ex.AllreduceMin(0); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(6)

	// Phase 7: ghost-node velocity synchronization (16 bytes per node).
	if err := ex.SyncGhostVelocities(s); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(7)

	// Phase 8: move nodes.
	phase8Move(s)
	if _, err := ex.AllreduceMin(1); err != nil {
		return err
	}
	lap(8)

	// Phase 9: PdV energy update with the new volumes.
	minVol := phase9Energy(s)
	if _, err := ex.AllreduceMin(minVol); err != nil {
		return err
	}
	if minVol <= 0 {
		return fmt.Errorf("hydro: cell inverted at cycle %d (volume %g)", s.Cycle, minVol)
	}
	lap(9)

	// Phase 10: programmed burn.
	released := phase10Burn(s)
	if _, err := ex.AllreduceSum(released); err != nil {
		return err
	}
	lap(10)

	// Phase 11: hourglass diagnostics.
	hg := phase11Hourglass(s)
	if _, err := ex.AllreduceMax(hg); err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(hg); err != nil {
		return err
	}
	lap(11)

	// Phase 12: strain-rate diagnostics (material dependent).
	strain := phase12Strain(s)
	if _, err := ex.AllreduceMax(strain); err != nil {
		return err
	}
	lap(12)

	// Phase 13: floors and clamps.
	phase13Floors(s)
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(13)

	// Phase 14: material strength relaxation (aluminum-heavy).
	phase14Strength(s)
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	lap(14)

	// Phase 15: next timestep: local CFL, global min, broadcast.
	dtLocal := phase15DT(s)
	dtGlobal, err := ex.AllreduceMin(dtLocal)
	if err != nil {
		return err
	}
	if _, err := ex.AllreduceSum(0); err != nil {
		return err
	}
	next, err := ex.Bcast([]float64{dtGlobal})
	if err != nil {
		return err
	}
	s.Time += s.DT
	s.Cycle++
	s.DT = next[0]
	lap(15)
	return nil
}

// phase3EOS recomputes volumes, densities, pressures, and artificial
// viscosity; returns the minimum density and maximum pressure.
func phase3EOS(s *State) (minRho, maxP float64) {
	minRho = math.Inf(1)
	for c := 0; c < s.Mesh.NumCells(); c++ {
		vol := polyArea(s, c)
		s.Vol[c] = vol
		if vol > 0 {
			s.Rho[c] = s.CMass[c] / vol
		}
		eos := s.Opt.Materials[s.Mesh.CellMaterial[c]]
		s.P[c] = eos.PressureState(s.Rho[c], s.En[c], s.Burned[c])
		// Artificial viscosity from the compression rate.
		div := divergence(s, c)
		if div < 0 && vol > 0 {
			l := charLength(s, c)
			du := -div * l
			cs := eos.SoundSpeedState(s.Rho[c], s.En[c], s.Burned[c])
			s.Q[c] = s.Rho[c] * (s.Opt.QLinear*cs*du + s.Opt.QQuad*du*du)
		} else {
			s.Q[c] = 0
		}
		// Subzonal compression limiter: cells approaching the maximum
		// compression ratio pick up a stiff elastic rebound, preventing
		// the geometric collapse a plain corner-force scheme allows
		// (production codes use subzonal pressures for the same purpose).
		if ratio := s.Rho[c] / eos.Rho0; ratio > maxCompression && div < 0 {
			over := ratio - maxCompression
			ref := eos.C0
			if ref == 0 {
				ref = eos.SoundSpeedState(s.Rho[c], s.En[c], s.Burned[c])
			}
			s.Q[c] += eos.Rho0 * ref * ref * over * over
		}
		if s.Rho[c] < minRho {
			minRho = s.Rho[c]
		}
		if s.P[c] > maxP {
			maxP = s.P[c]
		}
	}
	return minRho, maxP
}

// divergence returns (dA/dt)/A for a cell from its nodal velocities.
func divergence(s *State, c int) float64 {
	n := s.Mesh.CellNodes[c]
	var dAdt float64
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		ni, nj := n[i], n[j]
		dAdt += s.U[ni]*s.Y[nj] - s.U[nj]*s.Y[ni] + s.X[ni]*s.V[nj] - s.X[nj]*s.V[ni]
	}
	dAdt /= 2
	if s.Vol[c] <= 0 {
		return 0
	}
	return dAdt / s.Vol[c]
}

// phase4Mass computes this subgrid's partial corner masses.
func phase4Mass(s *State) {
	for n := range s.massLocal {
		s.massLocal[n] = 0
	}
	for c := 0; c < s.Mesh.NumCells(); c++ {
		quarter := s.CMass[c] / 4
		for _, n := range s.Mesh.CellNodes[c] {
			s.massLocal[n] += quarter
		}
	}
	copy(s.NodeMass, s.massLocal)
}

// phase5Forces computes this subgrid's partial nodal forces: pressure plus
// artificial viscosity acting on cell corners, plus a viscous hourglass
// resistance.
func phase5Forces(s *State) {
	for n := range s.fxLocal {
		s.fxLocal[n] = 0
		s.fyLocal[n] = 0
	}
	for c := 0; c < s.Mesh.NumCells(); c++ {
		n := s.Mesh.CellNodes[c]
		pt := s.P[c] + s.Q[c]
		for i := 0; i < 4; i++ {
			prev := n[(i+3)%4]
			next := n[(i+1)%4]
			// Outward corner force F_i = p * dA/dx_i: pressure does work
			// to expand the cell (shoelace area gradient).
			s.fxLocal[n[i]] += pt / 2 * (s.Y[next] - s.Y[prev])
			s.fyLocal[n[i]] += pt / 2 * (s.X[prev] - s.X[next])
		}
		// Hourglass resistance: damp the +-+- corner velocity mode. The
		// removed kinetic energy is dissipation, fed back as heat in the
		// phase 9 energy update so total energy closes.
		s.hgPower[c] = 0
		if k := s.Opt.HourglassDamping; k > 0 {
			ampU := s.U[n[0]] - s.U[n[1]] + s.U[n[2]] - s.U[n[3]]
			ampV := s.V[n[0]] - s.V[n[1]] + s.V[n[2]] - s.V[n[3]]
			eos := s.Opt.Materials[s.Mesh.CellMaterial[c]]
			cs := eos.SoundSpeedState(s.Rho[c], s.En[c], s.Burned[c])
			coef := k * s.Rho[c] * cs * charLength(s, c) / 4
			for i := 0; i < 4; i++ {
				sign := 1.0
				if i%2 == 1 {
					sign = -1
				}
				s.fxLocal[n[i]] -= coef * sign * ampU
				s.fyLocal[n[i]] -= coef * sign * ampV
			}
			// Work rate extracted from the hourglass mode:
			// sum_i F_i·u_i = -coef*(ampU^2 + ampV^2).
			s.hgPower[c] = coef * (ampU*ampU + ampV*ampV)
		}
	}
	copy(s.FX, s.fxLocal)
	copy(s.FY, s.fyLocal)
}

// contactFraction is the edge length (relative to the cell's initial
// scale) below which two nodes are treated as being in contact.
const contactFraction = 0.05

// phase6Velocity integrates nodal velocities, applies boundary conditions,
// and resolves node-node contact on degenerate edges; returns the maximum
// speed.
func phase6Velocity(s *State) float64 {
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		if s.NodeMass[n] <= 0 {
			continue
		}
		s.U[n] += s.FX[n] / s.NodeMass[n] * s.DT
		s.V[n] += s.FY[n] / s.NodeMass[n] * s.DT
		if s.OnAxis[n] {
			s.U[n] = 0 // reflective axis of rotation
		}
	}
	// Contact: when a cell edge has pinched below the contact length, the
	// closing component of the two nodes' relative velocity is removed
	// (perfectly inelastic), preventing edge crossing without freezing
	// the timestep.
	for c := 0; c < s.Mesh.NumCells(); c++ {
		limit := contactFraction * s.H0[c]
		n := s.Mesh.CellNodes[c]
		for i := 0; i < 4; i++ {
			j := (i + 1) % 4
			a, b := n[i], n[j]
			ex := s.X[b] - s.X[a]
			ey := s.Y[b] - s.Y[a]
			el := math.Hypot(ex, ey)
			if el >= limit {
				continue
			}
			var dx, dy float64
			if el > 0 {
				dx, dy = ex/el, ey/el
			} else {
				// Coincident nodes: use their relative velocity direction.
				rvx, rvy := s.U[b]-s.U[a], s.V[b]-s.V[a]
				rl := math.Hypot(rvx, rvy)
				if rl == 0 {
					continue
				}
				dx, dy = rvx/rl, rvy/rl
			}
			// Closing speed along the edge direction.
			rel := (s.U[b]-s.U[a])*dx + (s.V[b]-s.V[a])*dy
			if rel >= 0 {
				continue // separating
			}
			ma, mb := s.NodeMass[a], s.NodeMass[b]
			if ma+mb <= 0 {
				continue
			}
			// Momentum-conserving removal of the closing component; the
			// lost kinetic energy becomes heat in the pinched cell.
			pa := (s.U[a]*dx + s.V[a]*dy)
			pb := (s.U[b]*dx + s.V[b]*dy)
			avg := (ma*pa + mb*pb) / (ma + mb)
			lost := 0.5*(ma*pa*pa+mb*pb*pb) - 0.5*(ma+mb)*avg*avg
			if lost > 0 {
				s.contactHeat[c] += lost
			}
			s.U[a] += (avg - pa) * dx
			s.V[a] += (avg - pa) * dy
			s.U[b] += (avg - pb) * dx
			s.V[b] += (avg - pb) * dy
			if s.OnAxis[a] {
				s.U[a] = 0
			}
			if s.OnAxis[b] {
				s.U[b] = 0
			}
		}
	}
	var maxU float64
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		if sp := math.Hypot(s.U[n], s.V[n]); sp > maxU {
			maxU = sp
		}
	}
	return maxU
}

// phase8Move advances nodal positions.
func phase8Move(s *State) {
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		s.X[n] += s.U[n] * s.DT
		s.Y[n] += s.V[n] * s.DT
	}
}

// phase9Energy applies PdV work with the post-move volumes, using a
// time-centered pressure (one predictor-corrector pass: the standard
// iterated energy update) so strong shocks conserve total energy to first
// order in dt rather than zeroth. Returns the minimum volume.
func phase9Energy(s *State) float64 {
	minVol := math.Inf(1)
	for c := 0; c < s.Mesh.NumCells(); c++ {
		newVol := polyArea(s, c)
		dV := newVol - s.Vol[c]
		if s.CMass[c] > 0 && newVol > 0 {
			eos := s.Opt.Materials[s.Mesh.CellMaterial[c]]
			pOld := s.P[c]
			rhoNew := s.CMass[c] / newVol
			// Predictor: end-of-step energy with the old pressure.
			ePred := s.En[c] - (pOld+s.Q[c])*dV/s.CMass[c]
			if ePred < 0 {
				ePred = 0
			}
			pNew := eos.PressureState(rhoNew, ePred, s.Burned[c])
			// Corrector: time-centered pressure in the work term.
			s.En[c] -= (0.5*(pOld+pNew) + s.Q[c]) * dV / s.CMass[c]
			// Hourglass and contact dissipation return as heat.
			s.En[c] += (s.hgPower[c]*s.DT + s.contactHeat[c]) / s.CMass[c]
			s.contactHeat[c] = 0
		}
		s.Vol[c] = newVol
		if newVol > 0 {
			s.Rho[c] = s.CMass[c] / newVol
		}
		if newVol < minVol {
			minVol = newVol
		}
	}
	return minVol
}

// phase10Burn advances the programmed burn: once the front reaches a cell,
// its detonation energy ramps in over the front's transit time and the cell
// switches to the product-gas EOS. Returns the energy released this step.
func phase10Burn(s *State) float64 {
	var released float64
	for c := 0; c < s.Mesh.NumCells(); c++ {
		bt := s.BurnTime[c]
		if math.IsInf(bt, 1) || s.Time < bt || s.BurnFrac[c] >= 1 {
			continue
		}
		frac := 1.0
		if tau := s.BurnTau[c]; tau > 0 {
			frac = (s.Time - bt) / tau
			if frac > 1 {
				frac = 1
			}
		}
		if frac <= s.BurnFrac[c] {
			continue
		}
		eos := s.Opt.Materials[s.Mesh.CellMaterial[c]]
		de := eos.DetonationEnergy * (frac - s.BurnFrac[c])
		s.En[c] += de
		released += de * s.CMass[c]
		s.BurnFrac[c] = frac
		s.Burned[c] = true
	}
	s.EnergyReleased += released
	return released
}

// phase11Hourglass measures the residual hourglass-mode amplitude.
func phase11Hourglass(s *State) float64 {
	var worst float64
	for c := 0; c < s.Mesh.NumCells(); c++ {
		n := s.Mesh.CellNodes[c]
		amp := math.Abs(s.U[n[0]]-s.U[n[1]]+s.U[n[2]]-s.U[n[3]]) +
			math.Abs(s.V[n[0]]-s.V[n[1]]+s.V[n[2]]-s.V[n[3]])
		if amp > worst {
			worst = amp
		}
	}
	return worst
}

// phase12Strain computes the maximum volumetric strain rate.
func phase12Strain(s *State) float64 {
	var worst float64
	for c := 0; c < s.Mesh.NumCells(); c++ {
		if d := math.Abs(divergence(s, c)); d > worst {
			worst = d
		}
	}
	return worst
}

// phase13Floors clamps unphysical states.
func phase13Floors(s *State) {
	for c := 0; c < s.Mesh.NumCells(); c++ {
		if s.En[c] < 0 {
			s.En[c] = 0
		}
	}
}

// phase14Strength relaxes a deviatoric measure for the strength-bearing
// (aluminum) materials — the material-dependent tail work of the iteration.
func phase14Strength(s *State) {
	for c := 0; c < s.Mesh.NumCells(); c++ {
		mat := s.Mesh.CellMaterial[c]
		eos := s.Opt.Materials[mat]
		if eos.C0 == 0 || eos.CrushPressure > 0 {
			continue // gas and foam carry no strength
		}
		// Simple shear-rate proxy on the cell's diagonals.
		n := s.Mesh.CellNodes[c]
		shear := math.Abs((s.U[n[2]]-s.U[n[0]])-(s.U[n[3]]-s.U[n[1]])) +
			math.Abs((s.V[n[2]]-s.V[n[0]])-(s.V[n[3]]-s.V[n[1]]))
		_ = shear // diagnostic only; full plasticity is out of scope
	}
}

// phase15DT returns the local CFL-limited timestep for the next cycle,
// bounded to grow at most 10% per step.
func phase15DT(s *State) float64 {
	dt := s.DT * 1.1
	for c := 0; c < s.Mesh.NumCells(); c++ {
		l := charLength(s, c)
		if l <= 0 {
			continue
		}
		eos := s.Opt.Materials[s.Mesh.CellMaterial[c]]
		cs := eos.SoundSpeedState(s.Rho[c], s.En[c], s.Burned[c])
		// Include the fastest corner speed.
		var umax float64
		for _, n := range s.Mesh.CellNodes[c] {
			if sp := math.Hypot(s.U[n], s.V[n]); sp > umax {
				umax = sp
			}
		}
		if lim := s.Opt.CFL * l / (cs + umax + 1e-30); lim < dt {
			dt = lim
		}
		// Edge-closing limiter: no edge may lose more than CFL of its
		// length in one step, which keeps cells from pinching shut
		// between timestep checks. Edges already at contact length are
		// handled by the phase 6 contact resolution instead.
		n := s.Mesh.CellNodes[c]
		for i := 0; i < 4; i++ {
			j := (i + 1) % 4
			ex := s.X[n[j]] - s.X[n[i]]
			ey := s.Y[n[j]] - s.Y[n[i]]
			el := math.Hypot(ex, ey)
			if el <= contactFraction*s.H0[c] {
				continue
			}
			// Closing speed: negative rate of change of edge length.
			closing := -((s.U[n[j]]-s.U[n[i]])*ex + (s.V[n[j]]-s.V[n[i]])*ey) / el
			if closing > 0 {
				if lim := s.Opt.CFL * el / closing; lim < dt {
					dt = lim
				}
			}
		}
	}
	return dt
}

// RunSerial advances steps timesteps on a single processor and returns the
// final state plus accumulated per-phase wall-clock times.
func RunSerial(d *mesh.Deck, steps int, opt Options) (*State, PhaseSeconds, error) {
	var timers PhaseSeconds
	s, err := NewState(d, opt)
	if err != nil {
		return nil, timers, err
	}
	for i := 0; i < steps; i++ {
		if err := Step(s, Serial{}, &timers); err != nil {
			return nil, timers, err
		}
	}
	return s, timers, nil
}
