// Package hydro is the Krak stand-in: a from-scratch 2-D Lagrangian
// hydrodynamics mini-application with the iteration structure the paper
// models. Thermodynamic state (density, specific internal energy, pressure,
// artificial viscosity) lives on cells; kinematics (position, velocity)
// live on nodes; the spatial grid deforms as forces propagate through the
// objects. Each of the four deck materials carries its own equation of
// state: gamma-law product gas with programmed-burn detonation for the
// high explosive, a stiffened-gas (Mie-Grüneisen-like) response for the
// aluminum layers, and a crushable weak stiffened gas for the foam.
//
// One timestep is organised as the paper's Table 1: fifteen phases
// separated by global reductions, with a boundary exchange in phase 2,
// ghost-node mass/force/velocity updates in phases 4, 5, and 7, and
// broadcasts opening and closing the iteration. The serial and parallel
// drivers share the same phase kernels; the parallel driver runs one
// mpisim rank per subgrid.
//
// Simplifications relative to the production code (documented in
// docs/MODEL.md): slip lines are not implemented (material interfaces remain
// conforming), hourglass control is a simple viscous damping rather than
// Flanagan-Belytschko, and the cylindrical rotation is treated as planar
// 2-D. None of these affect the performance structure the model captures.
package hydro

import (
	"fmt"
	"math"

	"krak/internal/mesh"
)

// EOS holds one material's equation-of-state and initialization parameters.
type EOS struct {
	// Rho0 is the reference (initial) density.
	Rho0 float64
	// Gamma is the Grüneisen/ideal-gas exponent.
	Gamma float64
	// C0 is the reference sound speed for the stiffened term (0 for pure
	// gas).
	C0 float64
	// E0 is the initial specific internal energy.
	E0 float64
	// DetonationEnergy is the specific energy released on burn (HE only).
	DetonationEnergy float64
	// CrushPressure caps the stiffened response (foam): beyond it the
	// material offers no additional elastic resistance.
	CrushPressure float64
}

// Pressure evaluates the EOS for unreacted material.
func (e EOS) Pressure(rho, en float64) float64 {
	p := (e.Gamma - 1) * rho * en
	if e.C0 > 0 {
		elastic := e.C0 * e.C0 * (rho - e.Rho0)
		if e.CrushPressure > 0 && elastic > e.CrushPressure {
			elastic = e.CrushPressure
		}
		p += elastic
	}
	if p < 0 {
		p = 0 // no tension support (free surfaces open up)
	}
	return p
}

// PressureState evaluates the EOS, switching burned high explosive to its
// gamma-law product-gas form (the stiffened solid term applies only to
// unreacted material).
func (e EOS) PressureState(rho, en float64, burned bool) float64 {
	if burned {
		p := (e.Gamma - 1) * rho * en
		if p < 0 {
			p = 0
		}
		return p
	}
	return e.Pressure(rho, en)
}

// SoundSpeed estimates the adiabatic sound speed of unreacted material.
func (e EOS) SoundSpeed(rho, en float64) float64 {
	if rho <= 0 {
		return e.C0
	}
	c2 := e.Gamma * (e.Gamma - 1) * en
	c2 += e.C0 * e.C0
	if c2 <= 0 {
		return 1e-6
	}
	return math.Sqrt(c2)
}

// SoundSpeedState is SoundSpeed with the burned-gas switch.
func (e EOS) SoundSpeedState(rho, en float64, burned bool) float64 {
	if burned {
		c2 := e.Gamma * (e.Gamma - 1) * en
		if c2 <= 0 {
			return 1e-6
		}
		return math.Sqrt(c2)
	}
	return e.SoundSpeed(rho, en)
}

// Options parameterize a run.
type Options struct {
	// Materials maps each deck material to its EOS. DefaultMaterials()
	// when nil entries are detected (Rho0 == 0).
	Materials [mesh.NumMaterials]EOS

	// CFL is the timestep safety factor (default 0.2).
	CFL float64

	// QLinear and QQuad are the artificial-viscosity coefficients
	// (defaults 0.5 and 2.0).
	QLinear, QQuad float64

	// HourglassDamping scales the viscous resistance applied to the
	// hourglass corner-velocity mode (default 0.5); the extracted energy
	// is returned as heat.
	HourglassDamping float64

	// DetonationSpeed is the programmed-burn front speed (default 4.0 in
	// domain units/time).
	DetonationSpeed float64

	// InitialDT bounds the first step (default 1e-4).
	InitialDT float64
}

// DefaultMaterials returns the deck's material EOS set, in scaled units
// (domain length ~1, initial sound speeds O(1-10)).
func DefaultMaterials() [mesh.NumMaterials]EOS {
	var m [mesh.NumMaterials]EOS
	// Unreacted explosive behaves as a solid (stiffened term); once burned
	// its cells switch to gamma-law product gas.
	m[mesh.HEGas] = EOS{Rho0: 1.6, Gamma: 3.0, C0: 2.5, E0: 1e-6, DetonationEnergy: 0.4}
	m[mesh.AluminumInner] = EOS{Rho0: 2.7, Gamma: 2.0, C0: 5.0, E0: 1e-6}
	m[mesh.Foam] = EOS{Rho0: 0.3, Gamma: 1.4, C0: 0.8, E0: 1e-6, CrushPressure: 0.05}
	m[mesh.AluminumOuter] = EOS{Rho0: 2.7, Gamma: 2.0, C0: 5.0, E0: 1e-6}
	return m
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Materials[mesh.HEGas].Rho0 == 0 {
		out.Materials = DefaultMaterials()
	}
	if out.CFL <= 0 {
		out.CFL = 0.2
	}
	if out.QLinear <= 0 {
		out.QLinear = 0.5
	}
	if out.QQuad <= 0 {
		out.QQuad = 2.0
	}
	if out.HourglassDamping < 0 {
		out.HourglassDamping = 0
	} else if out.HourglassDamping == 0 {
		out.HourglassDamping = 0.5
	}
	if out.DetonationSpeed <= 0 {
		out.DetonationSpeed = 4.0
	}
	if out.InitialDT <= 0 {
		out.InitialDT = 1e-4
	}
	return out
}

// State is the hydrodynamic state of one (sub)grid.
type State struct {
	Mesh *mesh.Mesh
	Opt  Options

	// Node fields.
	X, Y      []float64 // positions (deform over time)
	U, V      []float64 // velocities
	NodeMass  []float64 // summed corner masses (full values incl. remote contributions)
	FX, FY    []float64 // accumulated nodal forces
	massLocal []float64 // this subgrid's partial corner masses
	fxLocal   []float64
	fyLocal   []float64
	OnAxis    []bool // reflective boundary (x = 0 axis of rotation)

	// Cell fields.
	Rho, En, P, Q []float64 // density, specific internal energy, pressure, viscosity
	Vol, CMass    []float64 // current volume (area) and fixed cell mass
	H0            []float64 // initial length scale sqrt(area) per cell
	hgPower       []float64 // hourglass dissipation rate, fed back as heat
	contactHeat   []float64 // kinetic energy removed by contact, fed back as heat
	BurnTime      []float64 // programmed-burn ignition time (+Inf for inert)
	BurnTau       []float64 // burn ramp duration (front transit time per cell)
	BurnFrac      []float64 // fraction of detonation energy deposited so far
	Burned        []bool    // burn started (EOS switched to product gas)

	// Scalars.
	Time  float64
	DT    float64
	Cycle int

	// EnergyReleased accumulates detonation energy deposited so far (this
	// subgrid's cells only).
	EnergyReleased float64
}

// NewState initializes the state for a deck (or extracted subgrid deck).
// Burn times are programmed as distance from the detonator divided by the
// detonation speed.
func NewState(d *mesh.Deck, opt Options) (*State, error) {
	if d == nil || d.Mesh == nil {
		return nil, fmt.Errorf("hydro: nil deck")
	}
	o := (&opt).withDefaults()
	m := d.Mesh
	nn, nc := m.NumNodes(), m.NumCells()
	s := &State{
		Mesh: m, Opt: o,
		X: make([]float64, nn), Y: make([]float64, nn),
		U: make([]float64, nn), V: make([]float64, nn),
		NodeMass: make([]float64, nn), FX: make([]float64, nn), FY: make([]float64, nn),
		massLocal: make([]float64, nn), fxLocal: make([]float64, nn), fyLocal: make([]float64, nn),
		OnAxis: make([]bool, nn),
		Rho:    make([]float64, nc), En: make([]float64, nc),
		P: make([]float64, nc), Q: make([]float64, nc),
		Vol: make([]float64, nc), CMass: make([]float64, nc),
		H0: make([]float64, nc), hgPower: make([]float64, nc),
		contactHeat: make([]float64, nc),
		BurnTime:    make([]float64, nc), BurnTau: make([]float64, nc),
		BurnFrac: make([]float64, nc), Burned: make([]bool, nc),
		DT: o.InitialDT,
	}
	copy(s.X, m.NodeX)
	copy(s.Y, m.NodeY)
	for n := 0; n < nn; n++ {
		s.OnAxis[n] = m.NodeX[n] == 0
	}
	for c := 0; c < nc; c++ {
		mat := m.CellMaterial[c]
		eos := o.Materials[mat]
		area := polyArea(s, c)
		if area <= 0 {
			return nil, fmt.Errorf("hydro: cell %d has non-positive initial area", c)
		}
		s.Vol[c] = area
		s.H0[c] = math.Sqrt(area)
		s.Rho[c] = eos.Rho0
		s.En[c] = eos.E0
		s.CMass[c] = eos.Rho0 * area
		if mat == mesh.HEGas && eos.DetonationEnergy > 0 {
			cx, cy := cellCenter(s, c)
			dist := math.Hypot(cx-d.DetonatorX, cy-d.DetonatorY)
			// A detonator region (not a single point) ignites together,
			// then the front propagates outward: distributed ignition is
			// far less singular than a one-cell point source.
			h := math.Sqrt(area)
			ignitionRadius := 2 * h
			if dist < ignitionRadius {
				dist = 0
			}
			s.BurnTime[c] = dist / o.DetonationSpeed
			// Energy ramps in over several front-transit times across the
			// cell, avoiding an unphysical instantaneous deposit.
			s.BurnTau[c] = 3 * h / o.DetonationSpeed
		} else {
			s.BurnTime[c] = math.Inf(1)
		}
	}
	return s, nil
}

func polyArea(s *State, c int) float64 {
	n := s.Mesh.CellNodes[c]
	var a float64
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		a += s.X[n[i]]*s.Y[n[j]] - s.X[n[j]]*s.Y[n[i]]
	}
	return a / 2
}

func cellCenter(s *State, c int) (x, y float64) {
	n := s.Mesh.CellNodes[c]
	for _, id := range n {
		x += s.X[id]
		y += s.Y[id]
	}
	return x / 4, y / 4
}

// charLength returns a characteristic cell length: area / longest diagonal.
func charLength(s *State, c int) float64 {
	n := s.Mesh.CellNodes[c]
	d1 := math.Hypot(s.X[n[2]]-s.X[n[0]], s.Y[n[2]]-s.Y[n[0]])
	d2 := math.Hypot(s.X[n[3]]-s.X[n[1]], s.Y[n[3]]-s.Y[n[1]])
	d := math.Max(d1, d2)
	if d == 0 {
		return 0
	}
	return s.Vol[c] / d * 2
}

// Diagnostics summarizes conserved quantities.
type Diagnostics struct {
	Time           float64
	Cycle          int
	TotalMass      float64
	InternalEnergy float64
	KineticEnergy  float64
	EnergyReleased float64
	BurnedCells    int
	MaxPressure    float64
	MinVolume      float64
}

// TotalEnergy returns internal plus kinetic energy.
func (d Diagnostics) TotalEnergy() float64 { return d.InternalEnergy + d.KineticEnergy }

// Diag computes this (sub)grid's diagnostics. Kinetic energy uses the
// subgrid's locally owned nodal mass share so parallel partial diagnostics
// sum to the serial value.
func (s *State) Diag() Diagnostics {
	d := Diagnostics{Time: s.Time, Cycle: s.Cycle, MinVolume: math.Inf(1), EnergyReleased: s.EnergyReleased}
	for c := 0; c < s.Mesh.NumCells(); c++ {
		d.TotalMass += s.CMass[c]
		d.InternalEnergy += s.CMass[c] * s.En[c]
		if s.P[c] > d.MaxPressure {
			d.MaxPressure = s.P[c]
		}
		if s.Vol[c] < d.MinVolume {
			d.MinVolume = s.Vol[c]
		}
		if s.Burned[c] {
			d.BurnedCells++
		}
	}
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		// Use the local partial mass so cross-rank sums do not double
		// count shared nodes.
		d.KineticEnergy += 0.5 * s.massLocal[n] * (s.U[n]*s.U[n] + s.V[n]*s.V[n])
	}
	return d
}
