package hydro

import (
	"math"
	"testing"

	"krak/internal/mesh"
	"krak/internal/partition"
)

func smallDeck(t testing.TB, w, h int) *mesh.Deck {
	t.Helper()
	d, err := mesh.BuildLayeredDeck(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestEOSPressure(t *testing.T) {
	gas := EOS{Rho0: 1.6, Gamma: 3.0}
	if got, want := gas.Pressure(2, 5), 2.0*2*5; got != want {
		t.Fatalf("gamma-law p = %v, want %v", got, want)
	}
	// No tension support.
	stiff := EOS{Rho0: 2.7, Gamma: 2, C0: 5}
	if got := stiff.Pressure(2.0, 0); got != 0 {
		t.Fatalf("tension not clamped: %v", got)
	}
	// Compression resists.
	if got := stiff.Pressure(3.0, 0); got <= 0 {
		t.Fatalf("compressed solid p = %v", got)
	}
	// Foam crush caps the elastic term.
	foam := EOS{Rho0: 0.3, Gamma: 1.4, C0: 0.8, CrushPressure: 0.05}
	pCrush := foam.Pressure(3.0, 0)
	if pCrush > 0.05001 {
		t.Fatalf("crush cap violated: %v", pCrush)
	}
	if cs := gas.SoundSpeed(1.6, 1); cs <= 0 {
		t.Fatalf("sound speed %v", cs)
	}
	if cs := stiff.SoundSpeed(0, 0); cs != 5 {
		t.Fatalf("fallback sound speed %v", cs)
	}
}

func TestNewStateInitialization(t *testing.T) {
	d := smallDeck(t, 16, 8)
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Densities match material references; detonator programs HE cells.
	mats := DefaultMaterials()
	heCells, finiteBurn := 0, 0
	for c := 0; c < s.Mesh.NumCells(); c++ {
		mat := s.Mesh.CellMaterial[c]
		if s.Rho[c] != mats[mat].Rho0 {
			t.Fatalf("cell %d rho = %v, want %v", c, s.Rho[c], mats[mat].Rho0)
		}
		if mat == mesh.HEGas {
			heCells++
			if !math.IsInf(s.BurnTime[c], 1) {
				finiteBurn++
			}
		} else if !math.IsInf(s.BurnTime[c], 1) {
			t.Fatalf("inert cell %d has burn time", c)
		}
	}
	if heCells == 0 || finiteBurn != heCells {
		t.Fatalf("burn programming: %d HE cells, %d programmed", heCells, finiteBurn)
	}
	// Axis nodes flagged.
	axis := 0
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		if s.OnAxis[n] {
			axis++
		}
	}
	if axis != 9 { // h+1 nodes on x=0
		t.Fatalf("axis nodes = %d, want 9", axis)
	}
	if _, err := NewState(nil, Options{}); err == nil {
		t.Fatal("nil deck accepted")
	}
}

func TestUniformStateStaysAtRest(t *testing.T) {
	// A single-material deck with no detonation must not move: uniform
	// pressure means zero net nodal force.
	d, err := mesh.BuildUniformDeck(8, 4, mesh.Foam)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		// Boundary nodes feel the one-sided pressure of the foam (free
		// surface), so motion is allowed there; interior nodes of a
		// uniform grid must stay put if their force cancels. With free
		// boundaries everywhere the block expands slightly; just require
		// finite, small velocities.
		if math.IsNaN(s.U[n]) || math.Abs(s.U[n]) > 1 || math.Abs(s.V[n]) > 1 {
			t.Fatalf("node %d velocity exploded: (%v,%v)", n, s.U[n], s.V[n])
		}
	}
	if s.Cycle != 10 {
		t.Fatalf("cycle = %d", s.Cycle)
	}
}

func TestDetonationReleasesEnergyAndDrivesFlow(t *testing.T) {
	d := smallDeck(t, 20, 10)
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e0 := s.Diag().TotalEnergy()
	steps := 0
	for s.Diag().BurnedCells == 0 && steps < 200 {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
		steps++
	}
	if s.Diag().BurnedCells == 0 {
		t.Fatal("no cells burned in 200 steps")
	}
	// Run a little further and check energy accounting.
	for i := 0; i < 20; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	diag := s.Diag()
	if diag.EnergyReleased <= 0 {
		t.Fatal("no energy released")
	}
	if diag.KineticEnergy <= 0 {
		t.Fatal("detonation produced no motion")
	}
	if diag.MaxPressure <= 0 {
		t.Fatal("no pressure developed")
	}
	// Conservation: total energy == initial + released, within tolerance
	// for the first-order scheme with viscosity and hourglass damping.
	want := e0 + diag.EnergyReleased
	got := diag.TotalEnergy()
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("energy drift %.2f%%: total %v, want %v", rel*100, got, want)
	}
}

func TestMassExactlyConserved(t *testing.T) {
	d := smallDeck(t, 16, 8)
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m0 := s.Diag().TotalMass
	for i := 0; i < 50; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if m1 := s.Diag().TotalMass; m1 != m0 {
		t.Fatalf("mass changed: %v -> %v", m0, m1)
	}
}

func TestAxisReflection(t *testing.T) {
	d := smallDeck(t, 20, 10)
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < s.Mesh.NumNodes(); n++ {
		if s.OnAxis[n] && s.U[n] != 0 {
			t.Fatalf("axis node %d has radial velocity %v", n, s.U[n])
		}
	}
}

func TestTimestepPositiveAndBounded(t *testing.T) {
	d := smallDeck(t, 16, 8)
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := s.DT
	for i := 0; i < 30; i++ {
		if err := Step(s, Serial{}, nil); err != nil {
			t.Fatal(err)
		}
		if s.DT <= 0 {
			t.Fatalf("dt = %v at cycle %d", s.DT, s.Cycle)
		}
		if s.DT > prev*1.1000001 {
			t.Fatalf("dt grew too fast: %v -> %v", prev, s.DT)
		}
		prev = s.DT
	}
	if s.Time <= 0 {
		t.Fatal("time did not advance")
	}
}

func TestPhaseTimersAccumulate(t *testing.T) {
	d := smallDeck(t, 16, 8)
	s, err := NewState(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var timers PhaseSeconds
	for i := 0; i < 3; i++ {
		if err := Step(s, Serial{}, &timers); err != nil {
			t.Fatal(err)
		}
	}
	var total float64
	for _, v := range timers {
		if v < 0 {
			t.Fatal("negative phase time")
		}
		total += v
	}
	if total <= 0 {
		t.Fatal("timers did not accumulate")
	}
}

func TestExtractSubgrid(t *testing.T) {
	d := smallDeck(t, 8, 4)
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	totalCells := 0
	for rank := 0; rank < 4; rank++ {
		sub, err := ExtractSubgrid(d, part, 4, rank)
		if err != nil {
			t.Fatal(err)
		}
		totalCells += len(sub.GlobalCells)
		// Local cell materials match global.
		for lc, gc := range sub.GlobalCells {
			if sub.Deck.Mesh.CellMaterial[lc] != d.Mesh.CellMaterial[gc] {
				t.Fatalf("rank %d cell %d material mismatch", rank, lc)
			}
		}
		// Shared node lists are consistent: every shared node's global id
		// is incident to cells of both ranks.
		for _, nb := range sub.Neighbors {
			if nb.Rank == rank {
				t.Fatal("self neighbor")
			}
			for _, l := range nb.SharedNodes {
				g := sub.GlobalNodes[l]
				touchesMine, touchesTheirs := false, false
				for _, c := range d.Mesh.NodeCells()[g] {
					switch part[c] {
					case rank:
						touchesMine = true
					case nb.Rank:
						touchesTheirs = true
					}
				}
				if !touchesMine || !touchesTheirs {
					t.Fatalf("rank %d node %d not genuinely shared with %d", rank, g, nb.Rank)
				}
			}
		}
	}
	if totalCells != d.Mesh.NumCells() {
		t.Fatalf("subgrids cover %d cells, want %d", totalCells, d.Mesh.NumCells())
	}
	if _, err := ExtractSubgrid(d, part[:3], 4, 0); err == nil {
		t.Fatal("short partition accepted")
	}
	if _, err := ExtractSubgrid(d, part, 4, 9); err == nil {
		t.Fatal("bad rank accepted")
	}
}

func TestSharedNodeListsMirror(t *testing.T) {
	d := smallDeck(t, 8, 4)
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*Subgrid, 3)
	for r := range subs {
		s, err := ExtractSubgrid(d, part, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		subs[r] = s
	}
	for r, sub := range subs {
		for _, nb := range sub.Neighbors {
			// Find the mirror link.
			var mirror *NeighborLink
			for i := range subs[nb.Rank].Neighbors {
				if subs[nb.Rank].Neighbors[i].Rank == r {
					mirror = &subs[nb.Rank].Neighbors[i]
				}
			}
			if mirror == nil {
				t.Fatalf("rank %d -> %d has no mirror", r, nb.Rank)
			}
			if len(mirror.SharedNodes) != len(nb.SharedNodes) {
				t.Fatalf("shared node count mismatch %d vs %d", len(mirror.SharedNodes), len(nb.SharedNodes))
			}
			if mirror.SharedFaces != nb.SharedFaces {
				t.Fatalf("shared face mismatch")
			}
			// Same global ids in the same order.
			for i := range nb.SharedNodes {
				g1 := sub.GlobalNodes[nb.SharedNodes[i]]
				g2 := subs[nb.Rank].GlobalNodes[mirror.SharedNodes[i]]
				if g1 != g2 {
					t.Fatalf("shared node order mismatch at %d: %d vs %d", i, g1, g2)
				}
			}
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := smallDeck(t, 16, 8)
	const steps = 25
	serial, _, err := RunSerial(d, steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sd := serial.Diag()

	g := partition.FromMesh(d.Mesh)
	for _, p := range []int{2, 4} {
		part, err := partition.NewMultilevel(1).Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunParallel(d, part, p, steps, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pd := res.Diag
		if pd.Cycle != sd.Cycle {
			t.Fatalf("p=%d cycle %d vs %d", p, pd.Cycle, sd.Cycle)
		}
		check := func(name string, a, b float64, tol float64) {
			if b == 0 && a == 0 {
				return
			}
			if rel := math.Abs(a-b) / math.Max(math.Abs(b), 1e-30); rel > tol {
				t.Errorf("p=%d %s: parallel %v vs serial %v (rel %.2e)", p, name, a, b, rel)
			}
		}
		check("mass", pd.TotalMass, sd.TotalMass, 1e-12)
		check("internal", pd.InternalEnergy, sd.InternalEnergy, 1e-6)
		check("kinetic", pd.KineticEnergy, sd.KineticEnergy, 1e-6)
		check("released", pd.EnergyReleased, sd.EnergyReleased, 1e-12)
		check("time", pd.Time, sd.Time, 1e-9)
		if pd.BurnedCells != sd.BurnedCells {
			t.Errorf("p=%d burned %d vs %d", p, pd.BurnedCells, sd.BurnedCells)
		}
	}
}

func TestParallelPhaseTimers(t *testing.T) {
	d := smallDeck(t, 8, 4)
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunParallel(d, part, 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range res.PhaseSeconds {
		total += v
	}
	if total <= 0 {
		t.Fatal("no phase times recorded")
	}
}
