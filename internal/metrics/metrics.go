// Package metrics is the observability core shared by the serving tier
// (`krak serve`) and the resilience tier (`krak gateway`): a small
// Prometheus text-exposition registry built entirely on the stdlib.
// Every number a process reports — request counters, latency
// histograms, cache/admission/breaker gauges — lives in one Registry;
// GET /metrics renders all of it, and liveness endpoints are thin JSON
// views over the same families (they read registry totals, never
// private fields), so the two renderings can never disagree.
//
// Families are registered once at construction with collect hooks that
// snapshot their samples at scrape time, closing over the owner's live
// atomics; the registry itself holds no metric state beyond the
// per-endpoint request stats its Instrument middleware feeds.
package metrics

import (
	"fmt"
	"maps"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one rendered metric line minus the family name: an optional
// name suffix (histograms emit _bucket/_sum/_count series), a rendered
// label set ("" or `{k="v",...}`), and the value.
type Sample struct {
	Suffix string
	Labels string
	Value  float64
}

// family is one metric family: HELP/TYPE header plus a collect hook that
// snapshots its samples at scrape time.
type family struct {
	name, help, typ string
	collect         func() []Sample
}

// Registry holds a process's metric families in registration order, plus
// the per-endpoint request stats the Instrument middleware feeds.
type Registry struct {
	families []*family

	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

// latencyBuckets are the request-latency histogram bounds (seconds):
// cached reads land in the sub-millisecond buckets, model computes in the
// middle, cold calibrations and sweeps at the top.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointStats accumulates one endpoint's request counts (by status
// code) and latency histogram. Buckets store per-bucket counts and are
// cumulated at render time.
type endpointStats struct {
	codes   map[int]*atomic.Int64 // guarded by Registry.mu
	buckets []atomic.Int64        // len(latencyBuckets); overflow only in count
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the latency sum
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{endpoints: make(map[string]*endpointStats)}
}

// AddFamily registers a family; render order is registration order.
func (reg *Registry) AddFamily(name, typ, help string, collect func() []Sample) {
	reg.families = append(reg.families, &family{name: name, help: help, typ: typ, collect: collect})
}

// AddScalar registers a single-series family (no labels) whose value is
// read at scrape time.
func (reg *Registry) AddScalar(name, typ, help string, fn func() float64) {
	reg.AddFamily(name, typ, help, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// AddLabeled registers a family with a fixed set of labeled series, each
// read at scrape time. The series render in sorted label order.
func (reg *Registry) AddLabeled(name, typ, help string, series map[string]func() float64, label string) {
	reg.AddFamily(name, typ, help, func() []Sample {
		out := make([]Sample, 0, len(series))
		for _, k := range slices.Sorted(maps.Keys(series)) {
			out = append(out, Sample{Labels: LabelSet(label, k), Value: series[k]()})
		}
		return out
	})
}

// Counter adapts an atomic counter into a scrape-time reader — the
// canonical collect hook for AddScalar.
func Counter(v *atomic.Int64) func() float64 {
	return func() float64 { return float64(v.Load()) }
}

// LabelSet renders a one-label set.
func LabelSet(k, v string) string {
	return "{" + k + "=" + strconv.Quote(v) + "}"
}

// endpoint returns (creating on first use) the stats bucket for an
// endpoint label. The Instrument middleware calls it once per route at
// registration, so scrape-time families see a stable set.
func (reg *Registry) endpoint(name string) *endpointStats {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st, ok := reg.endpoints[name]
	if !ok {
		st = &endpointStats{
			codes:   make(map[int]*atomic.Int64),
			buckets: make([]atomic.Int64, len(latencyBuckets)),
		}
		reg.endpoints[name] = st
	}
	return st
}

// observe records one finished request on the endpoint: its status code
// and wall latency.
func (reg *Registry) observe(st *endpointStats, code int, seconds float64) {
	reg.mu.Lock()
	c, ok := st.codes[code]
	if !ok {
		c = &atomic.Int64{}
		st.codes[code] = c
	}
	reg.mu.Unlock()
	c.Add(1)
	for i, b := range latencyBuckets {
		if seconds <= b {
			st.buckets[i].Add(1)
			break
		}
	}
	st.count.Add(1)
	for {
		old := st.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if st.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
}

// CollectRequests snapshots the per-endpoint request counters: one series
// per (endpoint, code), both dimensions sorted so scrape output is
// stable. Register it as the collect hook of a counter family.
func (reg *Registry) CollectRequests() []Sample {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	var out []Sample
	for _, ep := range slices.Sorted(maps.Keys(reg.endpoints)) {
		st := reg.endpoints[ep]
		for _, code := range slices.Sorted(maps.Keys(st.codes)) {
			out = append(out, Sample{
				Labels: fmt.Sprintf(`{endpoint=%q,code="%d"}`, ep, code),
				Value:  float64(st.codes[code].Load()),
			})
		}
	}
	return out
}

// CollectLatency snapshots the per-endpoint latency histograms: per
// endpoint, the cumulative _bucket series (ending at le="+Inf"), then
// _sum and _count. Register it as the collect hook of a histogram family.
func (reg *Registry) CollectLatency() []Sample {
	reg.mu.Lock()
	endpoints := slices.Sorted(maps.Keys(reg.endpoints))
	stats := make([]*endpointStats, len(endpoints))
	for i, ep := range endpoints {
		stats[i] = reg.endpoints[ep]
	}
	reg.mu.Unlock()
	var out []Sample
	for i, ep := range endpoints {
		st := stats[i]
		var cum int64
		for j, b := range latencyBuckets {
			cum += st.buckets[j].Load()
			out = append(out, Sample{
				Suffix: "_bucket",
				Labels: fmt.Sprintf(`{endpoint=%q,le=%q}`, ep, formatFloat(b)),
				Value:  float64(cum),
			})
		}
		count := st.count.Load()
		out = append(out,
			Sample{Suffix: "_bucket", Labels: fmt.Sprintf(`{endpoint=%q,le="+Inf"}`, ep), Value: float64(count)},
			Sample{Suffix: "_sum", Labels: LabelSet("endpoint", ep), Value: math.Float64frombits(st.sumBits.Load())},
			Sample{Suffix: "_count", Labels: LabelSet("endpoint", ep), Value: float64(count)},
		)
	}
	return out
}

// formatFloat renders a metric value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render writes the whole registry in Prometheus text exposition format.
func (reg *Registry) Render() []byte {
	var b strings.Builder
	for _, f := range reg.families {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.collect() {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.Suffix, s.Labels, formatFloat(s.Value))
		}
	}
	return []byte(b.String())
}

// Total returns the sum of a family's base series (suffix-less samples) —
// the accessor liveness views read the registry through.
func (reg *Registry) Total(name string) float64 {
	for _, f := range reg.families {
		if f.name != name {
			continue
		}
		var sum float64
		for _, s := range f.collect() {
			if s.Suffix == "" {
				sum += s.Value
			}
		}
		return sum
	}
	return 0
}

// statusRecorder captures the status code a handler writes so the
// Instrument middleware can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Instrument wraps a route with metrics collection: every request
// through it lands in the per-endpoint request counters and latency
// histogram (exposed via CollectRequests/CollectLatency families). The
// endpoint label should be the route pattern, not the raw URL, so path
// parameters cannot explode the label space.
func (reg *Registry) Instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	st := reg.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		reg.observe(st, rec.code, time.Since(start).Seconds())
	}
}

// Handler serves the registry in Prometheus text exposition format —
// the GET /metrics endpoint.
func (reg *Registry) Handler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(reg.Render())
}
