// Package phases encodes the structure of a Krak iteration as the paper
// describes it: the 15 phases of Table 1 with their synchronization points
// and communication actions, the collective-operation schedule of Table 4,
// and the boundary-exchange message rules of §4.1 (Table 3) and ghost-node
// update rules of §4.2.
//
// Both the analytic performance model (internal/core) and the cluster
// simulator (internal/cluster) consume this package, which guarantees the
// two sides of every validation experiment agree on what an iteration *is*
// and differ only in how they account for its cost.
package phases

import (
	"fmt"

	"krak/internal/mesh"
)

// Count is the number of phases in a Krak iteration (Table 1).
const Count = 15

// BytesPerFaceWord is the payload contribution of one face to a boundary-
// exchange message: 12 bytes per face (§4.1). Ghost nodes touching more than
// one material also contribute 12 bytes to the first two messages of a
// material's exchange step.
const BytesPerFaceWord = 12

// MessagesPerExchangeStep is the number of messages exchanged with each
// neighbor per material step (and in the final step) of a boundary exchange.
const MessagesPerExchangeStep = 6

// GhostUpdateMessagesPerNeighbor is the number of messages per neighbor in a
// ghost-node-update phase: one for local and one for remote ghost nodes.
const GhostUpdateMessagesPerNeighbor = 2

// Phase describes one phase of the iteration.
type Phase struct {
	// Number is the 1-based phase number from Table 1.
	Number int

	// Action is Table 1's description.
	Action string

	// SyncPoints is the number of global reductions that close the phase
	// (Table 1's "Sync Points" column).
	SyncPoints int

	// BcastBytes lists the payloads of the broadcasts issued in this phase.
	BcastBytes []int

	// AllreduceBytes lists the payloads of the phase's synchronization
	// reductions; its length always equals SyncPoints.
	AllreduceBytes []int

	// GatherBytes lists the payloads of gathers issued in this phase.
	GatherBytes []int

	// BoundaryExchange marks the phase as performing the §4.1 boundary
	// exchange.
	BoundaryExchange bool

	// GhostUpdateBytes is the number of bytes transferred per ghost node in
	// this phase (0 when the phase performs no ghost-node update).
	GhostUpdateBytes int

	// MaterialDependent marks phases whose per-cell computation cost varies
	// with cell material (Figure 2: "the time required for certain phases,
	// for instance phase 14, is material dependent").
	MaterialDependent bool
}

// HasPointToPoint reports whether the phase exchanges point-to-point
// messages with neighbors.
func (p Phase) HasPointToPoint() bool {
	return p.BoundaryExchange || p.GhostUpdateBytes > 0
}

// table is the Table 1 phase list. Allreduce payload sizes are assigned so
// that the per-iteration totals match Table 4 exactly: 9 four-byte and 13
// eight-byte all-reduces, 3+3 broadcasts, and one 32-byte gather.
var table = [Count]Phase{
	{Number: 1, Action: "Broadcast (4 bytes, 8 bytes)", SyncPoints: 2,
		BcastBytes: []int{4, 8}, AllreduceBytes: []int{4, 8}},
	{Number: 2, Action: "Bcast (4 bytes, 8 bytes); Boundary exchange; Gather (32 bytes)", SyncPoints: 1,
		BcastBytes: []int{4, 8}, AllreduceBytes: []int{8}, GatherBytes: []int{32},
		BoundaryExchange: true, MaterialDependent: true},
	{Number: 3, Action: "Computation only", SyncPoints: 3,
		AllreduceBytes: []int{4, 4, 8}},
	{Number: 4, Action: "Ghost node updates (8 bytes)", SyncPoints: 1,
		AllreduceBytes: []int{8}, GhostUpdateBytes: 8},
	{Number: 5, Action: "Ghost node updates (16 bytes)", SyncPoints: 1,
		AllreduceBytes: []int{8}, GhostUpdateBytes: 16, MaterialDependent: true},
	{Number: 6, Action: "Computation only", SyncPoints: 3,
		AllreduceBytes: []int{4, 4, 8}},
	{Number: 7, Action: "Ghost node updates (16 bytes)", SyncPoints: 1,
		AllreduceBytes: []int{8}, GhostUpdateBytes: 16, MaterialDependent: true},
	{Number: 8, Action: "Computation only", SyncPoints: 1,
		AllreduceBytes: []int{4}},
	{Number: 9, Action: "Computation only", SyncPoints: 1,
		AllreduceBytes: []int{8}},
	{Number: 10, Action: "Computation only", SyncPoints: 1,
		AllreduceBytes: []int{8}},
	{Number: 11, Action: "Computation only", SyncPoints: 2,
		AllreduceBytes: []int{4, 8}},
	{Number: 12, Action: "Computation only", SyncPoints: 1,
		AllreduceBytes: []int{8}, MaterialDependent: true},
	{Number: 13, Action: "Computation only", SyncPoints: 1,
		AllreduceBytes: []int{4}},
	{Number: 14, Action: "Computation only", SyncPoints: 1,
		AllreduceBytes: []int{8}, MaterialDependent: true},
	{Number: 15, Action: "Broadcast (4 bytes, 8 bytes)", SyncPoints: 2,
		BcastBytes: []int{4, 8}, AllreduceBytes: []int{4, 8}},
}

// Table1 returns the full phase list in order. The returned slice is freshly
// allocated; the phases' internal slices are shared and must not be mutated.
func Table1() []Phase {
	out := make([]Phase, Count)
	copy(out, table[:])
	return out
}

// All returns the phase list backed by the package's shared table — no
// allocation, STRICTLY read-only: writing through the returned slice (or
// through the inner slices Table1 also shares) corrupts the process-global
// phase definitions and with them every determinism guarantee downstream.
// Hot paths (the cluster simulator's per-iteration loop) use this instead
// of Table1; anything that wants to modify phases must copy.
func All() []Phase { return table[:] }

// Get returns the phase with the given 1-based number.
func Get(number int) (Phase, error) {
	if number < 1 || number > Count {
		return Phase{}, fmt.Errorf("phases: phase number %d out of range 1..%d", number, Count)
	}
	return table[number-1], nil
}

// MustGet is Get for statically known phase numbers.
func MustGet(number int) Phase {
	p, err := Get(number)
	if err != nil {
		panic(err)
	}
	return p
}

// CollectiveTotals aggregates the per-iteration collective schedule, i.e.
// reconstructs Table 4 from Table 1.
type CollectiveTotals struct {
	BcastBySize     map[int]int // payload bytes -> count per iteration
	AllreduceBySize map[int]int
	GatherBySize    map[int]int
}

// Table4 computes the per-iteration collective totals from the phase table.
func Table4() CollectiveTotals {
	t := CollectiveTotals{
		BcastBySize:     map[int]int{},
		AllreduceBySize: map[int]int{},
		GatherBySize:    map[int]int{},
	}
	for _, p := range table {
		for _, b := range p.BcastBytes {
			t.BcastBySize[b]++
		}
		for _, b := range p.AllreduceBytes {
			t.AllreduceBySize[b]++
		}
		for _, b := range p.GatherBytes {
			t.GatherBySize[b]++
		}
	}
	return t
}

// Message is one point-to-point message in a boundary exchange or ghost
// update, described by its payload size.
type Message struct {
	Bytes int
	// Step labels the exchange step the message belongss to: the exchange
	// group index for per-material steps, or -1 for the final all-materials
	// step and for ghost updates.
	Step int
}

// BoundaryExchangeMessages enumerates the messages one processor sends to a
// single neighbor during a boundary exchange, per §4.1 and Table 3:
//
//   - one step per exchange group present on the shared boundary (identical
//     materials combined), each of six messages: the first two carry
//     12 bytes per face of that group plus 12 bytes per multi-material ghost
//     node touching the group, the remaining four carry 12 bytes per face;
//   - one final step of six messages of 12 bytes per face regardless of
//     material.
//
// Groups with zero faces on the boundary contribute no messages.
func BoundaryExchangeMessages(b *mesh.PairBoundary) []Message {
	return AppendBoundaryExchangeMessages(nil, b)
}

// AppendBoundaryExchangeMessages appends the boundary-exchange messages to
// msgs and returns the extended slice, letting callers reuse one buffer
// across boundaries instead of allocating per pair.
func AppendBoundaryExchangeMessages(msgs []Message, b *mesh.PairBoundary) []Message {
	for g := 0; g < mesh.NumExchangeGroups; g++ {
		faces := b.FacesByGroup[g]
		if faces == 0 {
			continue
		}
		first := BytesPerFaceWord * (faces + b.MultiGroupGhostsByGroup[g])
		rest := BytesPerFaceWord * faces
		msgs = append(msgs,
			Message{Bytes: first, Step: g},
			Message{Bytes: first, Step: g},
			Message{Bytes: rest, Step: g},
			Message{Bytes: rest, Step: g},
			Message{Bytes: rest, Step: g},
			Message{Bytes: rest, Step: g},
		)
	}
	if b.TotalFaces > 0 {
		all := BytesPerFaceWord * b.TotalFaces
		for i := 0; i < MessagesPerExchangeStep; i++ {
			msgs = append(msgs, Message{Bytes: all, Step: -1})
		}
	}
	return msgs
}

// GhostUpdateMessages enumerates the messages one processor pe exchanges
// with a single neighbor in a ghost-node-update phase (§4.2): one message
// for the locally owned ghost nodes and one for the remote ones, at
// bytesPerNode each.
func GhostUpdateMessages(b *mesh.PairBoundary, pe, bytesPerNode int) []Message {
	return AppendGhostUpdateMessages(nil, b, pe, bytesPerNode)
}

// AppendGhostUpdateMessages appends the ghost-update messages to msgs and
// returns the extended slice (see AppendBoundaryExchangeMessages).
func AppendGhostUpdateMessages(msgs []Message, b *mesh.PairBoundary, pe, bytesPerNode int) []Message {
	return append(msgs,
		Message{Bytes: bytesPerNode * b.Owned(pe), Step: -1},
		Message{Bytes: bytesPerNode * b.Remote(pe), Step: -1},
	)
}
