package phases

import (
	"testing"

	"krak/internal/mesh"
)

func TestTable1Structure(t *testing.T) {
	ps := Table1()
	if len(ps) != Count || Count != 15 {
		t.Fatalf("phase count = %d, want 15", len(ps))
	}
	for i, p := range ps {
		if p.Number != i+1 {
			t.Fatalf("phase %d has number %d", i, p.Number)
		}
		if len(p.AllreduceBytes) != p.SyncPoints {
			t.Fatalf("phase %d: %d allreduce sizes but %d sync points",
				p.Number, len(p.AllreduceBytes), p.SyncPoints)
		}
		if p.Action == "" {
			t.Fatalf("phase %d has no action text", p.Number)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	// Table 1's sync-point column.
	wantSync := []int{2, 1, 3, 1, 1, 3, 1, 1, 1, 1, 2, 1, 1, 1, 2}
	for i, want := range wantSync {
		if got := MustGet(i + 1).SyncPoints; got != want {
			t.Errorf("phase %d sync points = %d, want %d", i+1, got, want)
		}
	}
	// Communication actions per Table 1.
	if !MustGet(2).BoundaryExchange {
		t.Error("phase 2 must do the boundary exchange")
	}
	if MustGet(4).GhostUpdateBytes != 8 {
		t.Error("phase 4 must update ghosts at 8 bytes/node")
	}
	for _, ph := range []int{5, 7} {
		if MustGet(ph).GhostUpdateBytes != 16 {
			t.Errorf("phase %d must update ghosts at 16 bytes/node", ph)
		}
	}
	for _, ph := range []int{1, 2, 15} {
		p := MustGet(ph)
		if len(p.BcastBytes) != 2 || p.BcastBytes[0] != 4 || p.BcastBytes[1] != 8 {
			t.Errorf("phase %d broadcasts = %v, want [4 8]", ph, p.BcastBytes)
		}
	}
	for _, ph := range []int{3, 6, 8, 9, 10, 11, 12, 13, 14} {
		if MustGet(ph).HasPointToPoint() {
			t.Errorf("phase %d is computation only but has point-to-point comm", ph)
		}
	}
	if !MustGet(14).MaterialDependent {
		t.Error("phase 14 must be material dependent (Figure 2)")
	}
}

func TestTable4MatchesPaper(t *testing.T) {
	tot := Table4()
	// Table 4: Bcast 3x4B + 3x8B; Allreduce 9x4B + 13x8B; Gather 1x32B.
	if tot.BcastBySize[4] != 3 || tot.BcastBySize[8] != 3 {
		t.Errorf("bcasts = %v, want 3x4B and 3x8B", tot.BcastBySize)
	}
	if tot.AllreduceBySize[4] != 9 || tot.AllreduceBySize[8] != 13 {
		t.Errorf("allreduces = %v, want 9x4B and 13x8B", tot.AllreduceBySize)
	}
	if tot.GatherBySize[32] != 1 {
		t.Errorf("gathers = %v, want 1x32B", tot.GatherBySize)
	}
	// Total sync points across the iteration must equal total allreduces.
	syncs := 0
	for _, p := range Table1() {
		syncs += p.SyncPoints
	}
	if syncs != 22 {
		t.Errorf("total sync points = %d, want 22", syncs)
	}
}

func TestGetBounds(t *testing.T) {
	if _, err := Get(0); err == nil {
		t.Fatal("phase 0 accepted")
	}
	if _, err := Get(16); err == nil {
		t.Fatal("phase 16 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet(99) did not panic")
		}
	}()
	MustGet(99)
}

// table3Boundary reconstructs the Figure 4 / Table 3 example: a boundary of
// 3 H.E. gas faces, 2 aluminum, 3 foam, and 2 more aluminum faces, with
// ghost nodes at the three internal material junctions.
func table3Boundary() *mesh.PairBoundary {
	b := &mesh.PairBoundary{Key: mesh.MakePairKey(0, 1)}
	b.FacesByMaterial[mesh.HEGas] = 3
	b.FacesByMaterial[mesh.AluminumInner] = 2
	b.FacesByMaterial[mesh.Foam] = 3
	b.FacesByMaterial[mesh.AluminumOuter] = 2
	b.FacesByGroup[mesh.GroupHEGas] = 3
	b.FacesByGroup[mesh.GroupAluminum] = 4
	b.FacesByGroup[mesh.GroupFoam] = 3
	b.TotalFaces = 10
	b.GhostNodes = 11
	b.OwnedByA = 6
	b.OwnedByB = 5
	// Junctions: HE|Al, Al|Foam, Foam|Al.
	b.MultiGroupGhosts = 3
	b.MultiGroupGhostsByGroup[mesh.GroupHEGas] = 1
	b.MultiGroupGhostsByGroup[mesh.GroupAluminum] = 3
	b.MultiGroupGhostsByGroup[mesh.GroupFoam] = 2
	return b
}

func TestBoundaryExchangeReproducesTable3(t *testing.T) {
	msgs := BoundaryExchangeMessages(table3Boundary())
	// 3 groups x 6 messages + 6 final = 24 messages.
	if len(msgs) != 24 {
		t.Fatalf("message count = %d, want 24", len(msgs))
	}
	// Tally sizes per Table 3.
	count := map[int]int{}
	for _, m := range msgs {
		count[m.Bytes]++
	}
	want := map[int]int{
		48:  2 + 4, // HE first-two 48 = 3*12+1*12; aluminum remaining-four 48 = 4*12
		36:  4 + 4, // HE remaining-four 36; foam remaining-four 36
		84:  2,     // aluminum first-two 84 = 4*12 + 3*12
		60:  2,     // foam first-two 60 = 3*12 + 2*12
		120: 6,     // final step 120 = 10*12
	}
	for size, n := range want {
		if count[size] != n {
			t.Errorf("messages of %d bytes = %d, want %d (tally %v)", size, count[size], n, count)
		}
	}
}

func TestBoundaryExchangeSkipsAbsentGroups(t *testing.T) {
	b := &mesh.PairBoundary{Key: mesh.MakePairKey(0, 1)}
	b.FacesByGroup[mesh.GroupFoam] = 5
	b.FacesByMaterial[mesh.Foam] = 5
	b.TotalFaces = 5
	msgs := BoundaryExchangeMessages(b)
	// One material step + final step = 12 messages.
	if len(msgs) != 12 {
		t.Fatalf("message count = %d, want 12", len(msgs))
	}
	for _, m := range msgs {
		if m.Bytes != 60 {
			t.Fatalf("single-material sizes should all be 60, got %d", m.Bytes)
		}
	}
}

func TestBoundaryExchangeEmptyBoundary(t *testing.T) {
	b := &mesh.PairBoundary{Key: mesh.MakePairKey(0, 1)}
	if msgs := BoundaryExchangeMessages(b); len(msgs) != 0 {
		t.Fatalf("corner-only boundary should exchange no faces, got %d msgs", len(msgs))
	}
}

func TestGhostUpdateMessages(t *testing.T) {
	b := table3Boundary()
	msgs := GhostUpdateMessages(b, 0, 8)
	if len(msgs) != GhostUpdateMessagesPerNeighbor {
		t.Fatalf("ghost update messages = %d, want 2", len(msgs))
	}
	if msgs[0].Bytes != 8*6 || msgs[1].Bytes != 8*5 {
		t.Fatalf("ghost update sizes = %d,%d want 48,40", msgs[0].Bytes, msgs[1].Bytes)
	}
	// From the other side, local and remote swap.
	msgs = GhostUpdateMessages(b, 1, 16)
	if msgs[0].Bytes != 16*5 || msgs[1].Bytes != 16*6 {
		t.Fatalf("ghost update sizes = %d,%d want 80,96", msgs[0].Bytes, msgs[1].Bytes)
	}
}
