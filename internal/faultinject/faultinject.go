// Package faultinject is the deterministic chaos layer of the serving
// tier: an Injector configured from a bounded textual plan that makes a
// configurable fraction of HTTP traffic fail, stall, truncate, or
// corrupt — reproducibly. It exists so the resilience machinery
// (gateway retries, circuit breakers, degradation) can be proven
// against faults rather than trusted, and so a chaos run can be
// replayed byte-for-byte: every injection decision is a pure function
// of the plan's seed, the request's content, and how many times that
// exact request has been seen, never of wall-clock time or scheduling
// order. Two runs over the same request multiset inject the same fault
// sequence, whatever the interleaving.
//
// The injector wires in at two points: Middleware wraps a server's
// routes (krak serve -fault-plan, refused unless -allow-faults is also
// set, so chaos can never ship on by accident), and RoundTripper wraps
// a client transport (the gateway's replica client), where an injected
// "error" surfaces as a transport failure — exactly what a dying
// replica looks like from the gateway's side.
//
// A nil *Injector is a valid no-op: both wrappers pass traffic through
// untouched, so callers thread it unconditionally.
package faultinject

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"maps"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Plan is a parsed fault plan: what to inject, how often, and where.
// The zero value injects nothing.
type Plan struct {
	// Name is an optional display name (the plan directive).
	Name string

	// Seed drives every injection decision; 0 means 1.
	Seed uint64

	// Scopes are path prefixes the plan applies to ("/v1/predict",
	// "/v1/"); empty means every path.
	Scopes []string

	// ErrorRate is the fraction of in-scope requests that fail outright:
	// Middleware writes ErrorStatus, RoundTripper returns a transport
	// error. Mutually exclusive per request with truncation/corruption
	// (one draw selects among them).
	ErrorRate float64

	// ErrorStatus is the status Middleware writes for injected errors;
	// 0 means 500.
	ErrorStatus int

	// LatencyRate is the fraction of in-scope requests delayed by an
	// injected latency drawn uniformly from [LatencyMin, LatencyMax].
	// Latency is an independent draw: a request can be both slow and
	// broken, like real failure modes.
	LatencyRate float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// TruncateRate is the fraction of in-scope responses cut to half
	// their bytes; CorruptRate is the fraction with bytes flipped. Both
	// leave the status code intact — the body lies, which is what the
	// gateway's byte-level checks must catch.
	TruncateRate float64
	CorruptRate  float64
}

// Injection kinds, the krak_fault_injected_total{kind} label values.
const (
	KindError    = "error"
	KindLatency  = "latency"
	KindTruncate = "truncate"
	KindCorrupt  = "corrupt"
)

// Parse bounds. A fault plan is a handful of directives; anything
// larger is rejected before allocation, which is what keeps
// ParseFaultPlan safe on fuzzer-shaped input.
const (
	maxPlanBytes  = 1 << 16
	maxPlanLines  = 256
	maxPlanScopes = 32
	maxLatency    = 10 * time.Second
)

// ParseFaultPlan parses the bounded textual plan format:
//
//	plan NAME                  # optional display name
//	seed N                     # decision seed (default 1)
//	scope /v1/predict          # path prefix (repeatable; default: all)
//	error-rate 0.2             # fraction of requests failed outright
//	error-status 503           # status Middleware writes (default 500)
//	latency-rate 0.5           # fraction of requests delayed
//	latency 5ms 50ms           # injected latency bounds
//	truncate-rate 0.05         # fraction of responses cut in half
//	corrupt-rate 0.05          # fraction of responses with flipped bytes
//
// Lines are directive-per-line, '#' starts a comment, blank lines are
// ignored. Rates must lie in [0,1] and sum (error+truncate+corrupt) to
// at most 1; latency bounds are Go durations, non-negative, min <= max,
// and capped at 10s.
func ParseFaultPlan(src []byte) (*Plan, error) {
	if len(src) > maxPlanBytes {
		return nil, fmt.Errorf("faultinject: plan exceeds %d bytes", maxPlanBytes)
	}
	p := &Plan{Seed: 1, ErrorStatus: http.StatusInternalServerError}
	lines := strings.Split(string(src), "\n")
	if len(lines) > maxPlanLines {
		return nil, fmt.Errorf("faultinject: plan exceeds %d lines", maxPlanLines)
	}
	for i, line := range lines {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineErr := func(format string, args ...any) error {
			return fmt.Errorf("faultinject: line %d: %s", i+1, fmt.Sprintf(format, args...))
		}
		dir, args := fields[0], fields[1:]
		switch dir {
		case "plan":
			if len(args) != 1 {
				return nil, lineErr("plan wants exactly one name")
			}
			p.Name = args[0]
		case "seed":
			if len(args) != 1 {
				return nil, lineErr("seed wants exactly one value")
			}
			var seed uint64
			if _, err := fmt.Sscanf(args[0], "%d", &seed); err != nil || seed == 0 {
				return nil, lineErr("bad seed %q (want a positive integer)", args[0])
			}
			p.Seed = seed
		case "scope":
			if len(args) != 1 || !strings.HasPrefix(args[0], "/") {
				return nil, lineErr("scope wants exactly one path prefix starting with /")
			}
			if len(p.Scopes) >= maxPlanScopes {
				return nil, lineErr("more than %d scopes", maxPlanScopes)
			}
			p.Scopes = append(p.Scopes, args[0])
		case "error-rate":
			if err := parseRate(args, &p.ErrorRate); err != nil {
				return nil, lineErr("%v", err)
			}
		case "error-status":
			if len(args) != 1 {
				return nil, lineErr("error-status wants exactly one value")
			}
			var status int
			if _, err := fmt.Sscanf(args[0], "%d", &status); err != nil || status < 400 || status > 599 {
				return nil, lineErr("bad error-status %q (want 400..599)", args[0])
			}
			p.ErrorStatus = status
		case "latency-rate":
			if err := parseRate(args, &p.LatencyRate); err != nil {
				return nil, lineErr("%v", err)
			}
		case "latency":
			if len(args) != 2 {
				return nil, lineErr("latency wants MIN MAX durations")
			}
			min, err1 := time.ParseDuration(args[0])
			max, err2 := time.ParseDuration(args[1])
			if err1 != nil || err2 != nil || min < 0 || max < min || max > maxLatency {
				return nil, lineErr("bad latency bounds %q %q (want 0 <= min <= max <= %v)", args[0], args[1], maxLatency)
			}
			p.LatencyMin, p.LatencyMax = min, max
		case "truncate-rate":
			if err := parseRate(args, &p.TruncateRate); err != nil {
				return nil, lineErr("%v", err)
			}
		case "corrupt-rate":
			if err := parseRate(args, &p.CorruptRate); err != nil {
				return nil, lineErr("%v", err)
			}
		default:
			return nil, lineErr("unknown directive %q", dir)
		}
	}
	if sum := p.ErrorRate + p.TruncateRate + p.CorruptRate; sum > 1 {
		return nil, fmt.Errorf("faultinject: error+truncate+corrupt rates sum to %g (max 1)", sum)
	}
	return p, nil
}

// parseRate parses a single probability in [0,1].
func parseRate(args []string, dst *float64) error {
	if len(args) != 1 {
		return fmt.Errorf("rate wants exactly one value")
	}
	var v float64
	if _, err := fmt.Sscanf(args[0], "%g", &v); err != nil || v != v || v < 0 || v > 1 {
		return fmt.Errorf("bad rate %q (want a probability in [0,1])", args[0])
	}
	*dst = v
	return nil
}

// maxTrackedKeys bounds the per-request occurrence map. Past the cap,
// repeats of a novel request all draw as occurrence 0 — still
// deterministic, just without per-repeat variety.
const maxTrackedKeys = 4096

// maxFaultBody bounds how much of a request body the injector reads to
// derive its content key, mirroring the serving tier's body cap.
const maxFaultBody = 1 << 20

// Injector makes deterministic injection decisions for a Plan and
// counts what it injected. Build with New; a nil Injector injects
// nothing.
type Injector struct {
	plan Plan

	mu   sync.Mutex
	seen map[string]uint64 // request key → occurrences so far (bounded)

	errors    atomic.Int64
	latencies atomic.Int64
	truncates atomic.Int64
	corrupts  atomic.Int64
}

// New builds an Injector for the plan. A nil plan yields a nil
// (no-op) injector.
func New(p *Plan) *Injector {
	if p == nil {
		return nil
	}
	plan := *p
	if plan.Seed == 0 {
		plan.Seed = 1
	}
	if plan.ErrorStatus == 0 {
		plan.ErrorStatus = http.StatusInternalServerError
	}
	return &Injector{plan: plan, seen: make(map[string]uint64)}
}

// Plan returns the injector's plan (the zero Plan for nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Totals snapshots the injected-fault counters by kind — the series
// behind krak_fault_injected_total{kind}, and the number a determinism
// check diffs across runs.
func (in *Injector) Totals() map[string]int64 {
	if in == nil {
		return map[string]int64{KindError: 0, KindLatency: 0, KindTruncate: 0, KindCorrupt: 0}
	}
	return map[string]int64{
		KindError:    in.errors.Load(),
		KindLatency:  in.latencies.Load(),
		KindTruncate: in.truncates.Load(),
		KindCorrupt:  in.corrupts.Load(),
	}
}

// MetricSeries returns per-kind scrape-time readers over the injected-
// fault counters — the series map for registering
// krak_fault_injected_total{kind} on a metrics registry. Nil-safe (a
// nil injector's series all read 0), though callers normally register
// only when a plan is armed.
func (in *Injector) MetricSeries() map[string]func() float64 {
	out := make(map[string]func() float64, 4)
	for _, kind := range []string{KindError, KindLatency, KindTruncate, KindCorrupt} {
		kind := kind
		out[kind] = func() float64 { return float64(in.Totals()[kind]) }
	}
	return out
}

// inScope reports whether the plan applies to the path.
func (in *Injector) inScope(path string) bool {
	if len(in.plan.Scopes) == 0 {
		return true
	}
	for _, s := range in.plan.Scopes {
		if strings.HasPrefix(path, s) {
			return true
		}
	}
	return false
}

// decision is what one request draw decided.
type decision struct {
	kind    string // KindError/KindTruncate/KindCorrupt or "" for none
	latency time.Duration
}

// requestKey derives the content identity a decision keys on: method,
// path, and a digest of the body. Two requests with identical content
// share a key (and differ only in their occurrence number), which is
// what makes the fault sequence a function of the traffic rather than
// of arrival order.
func requestKey(method, path string, body []byte) string {
	sum := sha256.Sum256(body)
	return fmt.Sprintf("%s %s %x", method, path, sum[:8])
}

// decide makes the deterministic draw for the key's next occurrence.
func (in *Injector) decide(key string) decision {
	in.mu.Lock()
	occ, tracked := in.seen[key], true
	if _, ok := in.seen[key]; !ok && len(in.seen) >= maxTrackedKeys {
		tracked = false
	}
	if tracked {
		in.seen[key] = occ + 1
	}
	in.mu.Unlock()

	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], in.plan.Seed)
	h := sha256.New()
	h.Write(buf[:])
	h.Write([]byte(key))
	binary.LittleEndian.PutUint64(buf[:], occ)
	h.Write(buf[:])
	digest := h.Sum(nil)
	lane := func(i int) float64 {
		x := binary.LittleEndian.Uint64(digest[i*8:])
		return float64(x>>11) / (1 << 53)
	}

	var d decision
	outcome := lane(0)
	switch {
	case outcome < in.plan.ErrorRate:
		d.kind = KindError
	case outcome < in.plan.ErrorRate+in.plan.TruncateRate:
		d.kind = KindTruncate
	case outcome < in.plan.ErrorRate+in.plan.TruncateRate+in.plan.CorruptRate:
		d.kind = KindCorrupt
	}
	if in.plan.LatencyRate > 0 && lane(1) < in.plan.LatencyRate {
		span := in.plan.LatencyMax - in.plan.LatencyMin
		d.latency = in.plan.LatencyMin + time.Duration(lane(2)*float64(span))
	}
	return d
}

// sleep injects d's latency, respecting ctx cancellation.
func (in *Injector) sleep(done <-chan struct{}, d decision) {
	if d.latency <= 0 {
		return
	}
	in.latencies.Add(1)
	t := time.NewTimer(d.latency)
	defer t.Stop()
	select {
	case <-t.C:
	case <-done:
	}
}

// corruptBytes deterministically flips bytes in place: every 97th byte
// XORed, positions offset by the seed so different plans corrupt
// differently.
func corruptBytes(b []byte, seed uint64) {
	if len(b) == 0 {
		return
	}
	start := int(seed % 97)
	for i := start % len(b); i < len(b); i += 97 {
		b[i] ^= 0xff
	}
}

// bufferingWriter captures a handler's response so the middleware can
// mangle the body before anything reaches the wire.
type bufferingWriter struct {
	header http.Header
	code   int
	buf    bytes.Buffer
}

func (w *bufferingWriter) Header() http.Header         { return w.header }
func (w *bufferingWriter) WriteHeader(code int)        { w.code = code }
func (w *bufferingWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

// Middleware wraps a server-side handler in the plan: in-scope requests
// may be delayed, failed with the plan's error status, or have their
// response bodies truncated/corrupted after the real handler ran. A nil
// injector returns next unchanged.
func (in *Injector) Middleware(next http.HandlerFunc) http.HandlerFunc {
	if in == nil {
		return next
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !in.inScope(r.URL.Path) {
			next(w, r)
			return
		}
		// The decision keys on request content, so the body is read (and
		// restored) before the handler sees it.
		var body []byte
		if r.Body != nil {
			body, _ = io.ReadAll(io.LimitReader(r.Body, maxFaultBody))
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		d := in.decide(requestKey(r.Method, r.URL.Path, body))
		in.sleep(r.Context().Done(), d)
		switch d.kind {
		case KindError:
			in.errors.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(in.plan.ErrorStatus)
			fmt.Fprintf(w, "{\n  \"error\": \"faultinject: injected error (plan %s)\"\n}\n", in.plan.Name)
			return
		case KindTruncate, KindCorrupt:
			bw := &bufferingWriter{header: w.Header().Clone(), code: http.StatusOK}
			next(bw, r)
			out := bw.buf.Bytes()
			if d.kind == KindTruncate {
				in.truncates.Add(1)
				out = out[:len(out)/2]
			} else {
				in.corrupts.Add(1)
				out = bytes.Clone(out)
				corruptBytes(out, in.plan.Seed)
			}
			clear(w.Header())
			for _, k := range slices.Sorted(maps.Keys(bw.header)) {
				for _, v := range bw.header[k] {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(bw.code)
			w.Write(out)
			return
		}
		next(w, r)
	}
}

// transport is the client-side injector: a RoundTripper that fails,
// delays, truncates, or corrupts in-scope exchanges.
type transport struct {
	in   *Injector
	base http.RoundTripper
}

// RoundTripper wraps a client transport in the plan: injected errors
// surface as transport failures (what a dead replica looks like),
// latency as slow replicas, truncation/corruption as garbage responses.
// A nil injector returns base unchanged (http.DefaultTransport when
// base is also nil).
func (in *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if in == nil {
		return base
	}
	return &transport{in: in, base: base}
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if !in.inScope(req.URL.Path) {
		return t.base.RoundTrip(req)
	}
	var body []byte
	if req.Body != nil {
		body, _ = io.ReadAll(io.LimitReader(req.Body, maxFaultBody))
		req.Body.Close()
		req.Body = io.NopCloser(bytes.NewReader(body))
	}
	d := in.decide(requestKey(req.Method, req.URL.Path, body))
	in.sleep(req.Context().Done(), d)
	if d.kind == KindError {
		in.errors.Add(1)
		return nil, fmt.Errorf("faultinject: injected transport error (plan %s)", in.plan.Name)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || d.kind == "" {
		return resp, err
	}
	payload, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	if d.kind == KindTruncate {
		in.truncates.Add(1)
		payload = payload[:len(payload)/2]
	} else {
		in.corrupts.Add(1)
		corruptBytes(payload, in.plan.Seed)
	}
	resp.Body = io.NopCloser(bytes.NewReader(payload))
	resp.ContentLength = int64(len(payload))
	resp.Header.Set("Content-Length", fmt.Sprint(len(payload)))
	return resp, nil
}
