package faultinject

import (
	"testing"
	"time"
)

// FuzzParseFaultPlan drives the plan parser with arbitrary bytes: it
// must never panic, must only return errors (no partial-success states
// that validate out of range), and — the boundedparse contract — must
// never allocate proportionally to a hostile input's claimed sizes.
func FuzzParseFaultPlan(f *testing.F) {
	f.Add([]byte("plan drill\nseed 42\nerror-rate 0.25\n"))
	f.Add([]byte("scope /v1/predict\nlatency 1ms 20ms\nlatency-rate 0.5\n"))
	f.Add([]byte("# comment only\n\n"))
	f.Add([]byte("error-rate 2\n"))
	f.Add([]byte("truncate-rate 0.5\ncorrupt-rate 0.6\n"))
	f.Fuzz(func(t *testing.T, src []byte) {
		p, err := ParseFaultPlan(src)
		if err != nil {
			return
		}
		// A successful parse must be internally valid: the injector
		// trusts these invariants.
		for _, rate := range []float64{p.ErrorRate, p.LatencyRate, p.TruncateRate, p.CorruptRate} {
			if rate < 0 || rate > 1 || rate != rate {
				t.Fatalf("parsed rate %g out of [0,1]", rate)
			}
		}
		if p.ErrorRate+p.TruncateRate+p.CorruptRate > 1 {
			t.Fatalf("outcome rates sum past 1: %+v", p)
		}
		if p.Seed == 0 {
			t.Fatal("parsed seed 0")
		}
		if p.ErrorStatus < 400 || p.ErrorStatus > 599 {
			t.Fatalf("parsed error status %d", p.ErrorStatus)
		}
		if len(p.Scopes) > maxPlanScopes {
			t.Fatalf("parsed %d scopes past the cap", len(p.Scopes))
		}
		if p.LatencyMin < 0 || p.LatencyMax < p.LatencyMin || p.LatencyMax > 10*time.Second {
			t.Fatalf("parsed latency bounds %v %v", p.LatencyMin, p.LatencyMax)
		}
	})
}
