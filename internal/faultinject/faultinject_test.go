package faultinject

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseFaultPlan(t *testing.T) {
	src := []byte(`
# chaos drill for the gateway suite
plan drill
seed 42
scope /v1/predict
scope /v1/simulate
error-rate 0.25
error-status 503
latency-rate 0.5
latency 1ms 20ms
truncate-rate 0.1
corrupt-rate 0.05
`)
	p, err := ParseFaultPlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "drill" || p.Seed != 42 || p.ErrorRate != 0.25 || p.ErrorStatus != 503 {
		t.Fatalf("parsed plan %+v", p)
	}
	if len(p.Scopes) != 2 || p.Scopes[0] != "/v1/predict" {
		t.Fatalf("scopes %v", p.Scopes)
	}
	if p.LatencyMin != time.Millisecond || p.LatencyMax != 20*time.Millisecond {
		t.Fatalf("latency bounds %v %v", p.LatencyMin, p.LatencyMax)
	}
	if p.TruncateRate != 0.1 || p.CorruptRate != 0.05 {
		t.Fatalf("mangle rates %g %g", p.TruncateRate, p.CorruptRate)
	}
}

func TestParseFaultPlanDefaults(t *testing.T) {
	p, err := ParseFaultPlan([]byte("error-rate 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 1 || p.ErrorStatus != http.StatusInternalServerError {
		t.Fatalf("defaults not applied: %+v", p)
	}
}

func TestParseFaultPlanRejects(t *testing.T) {
	cases := map[string]string{
		"unknown directive":   "frobnicate 1\n",
		"bad rate":            "error-rate 1.5\n",
		"negative rate":       "error-rate -0.1\n",
		"nan rate":            "error-rate NaN\n",
		"bad status low":      "error-status 200\n",
		"bad status high":     "error-status 700\n",
		"zero seed":           "seed 0\n",
		"bad latency order":   "latency 10ms 1ms\n",
		"latency over cap":    "latency 1s 20s\n",
		"relative scope":      "scope v1/predict\n",
		"rates sum over 1":    "error-rate 0.5\ntruncate-rate 0.4\ncorrupt-rate 0.2\n",
		"plan extra args":     "plan a b\n",
		"too many scopes":     strings.Repeat("scope /x\n", maxPlanScopes+1),
		"oversized input":     strings.Repeat(" ", maxPlanBytes+1),
		"line count over cap": strings.Repeat("\n", maxPlanLines+1),
	}
	for name, src := range cases {
		if _, err := ParseFaultPlan([]byte(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src[:min(len(src), 40)])
		}
	}
}

// handler returning a fixed JSON-ish body for mangle tests.
func okHandler(body string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	}
}

func TestMiddlewareInjectsErrors(t *testing.T) {
	in := New(&Plan{Seed: 7, ErrorRate: 1, ErrorStatus: 503})
	h := in.Middleware(okHandler(`{"ok":true}`))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(`{}`)))
	if rec.Code != 503 {
		t.Fatalf("status %d, want injected 503", rec.Code)
	}
	if got := in.Totals()[KindError]; got != 1 {
		t.Fatalf("error total %d, want 1", got)
	}
}

func TestMiddlewareTruncates(t *testing.T) {
	body := `{"schema":"krak/result/v1","total":1.5}` + "\n"
	in := New(&Plan{Seed: 7, TruncateRate: 1})
	h := in.Middleware(okHandler(body))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(`{}`)))
	if got := rec.Body.String(); len(got) != len(body)/2 || got != body[:len(body)/2] {
		t.Fatalf("truncated body %q, want first half of %q", got, body)
	}
	if in.Totals()[KindTruncate] != 1 {
		t.Fatalf("truncate total %v", in.Totals())
	}
}

func TestMiddlewareCorrupts(t *testing.T) {
	body := `{"schema":"krak/result/v1","total":1.5}` + "\n"
	in := New(&Plan{Seed: 7, CorruptRate: 1})
	h := in.Middleware(okHandler(body))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(`{}`)))
	got := rec.Body.String()
	if len(got) != len(body) {
		t.Fatalf("corrupted body length %d, want %d", len(got), len(body))
	}
	if got == body {
		t.Fatal("corruption left the body unchanged")
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("corruption changed the status to %d", rec.Code)
	}
}

func TestMiddlewareScope(t *testing.T) {
	in := New(&Plan{Seed: 7, ErrorRate: 1, Scopes: []string{"/v1/sweep"}})
	h := in.Middleware(okHandler("ok"))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(`{}`)))
	if rec.Code != http.StatusOK || rec.Body.String() != "ok" {
		t.Fatalf("out-of-scope request was touched: %d %q", rec.Code, rec.Body.String())
	}
}

func TestNilInjectorPassthrough(t *testing.T) {
	var in *Injector
	h := in.Middleware(okHandler("ok"))
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", nil))
	if rec.Body.String() != "ok" {
		t.Fatal("nil injector altered the response")
	}
	if rt := in.RoundTripper(nil); rt != http.DefaultTransport {
		t.Fatal("nil injector wrapped the transport")
	}
}

// TestDeterministicTotals is the acceptance-criteria property: the same
// seed over the same request multiset injects the same fault sequence,
// whatever order the requests run in.
func TestDeterministicTotals(t *testing.T) {
	plan := &Plan{Seed: 99, ErrorRate: 0.3, TruncateRate: 0.2, CorruptRate: 0.1}
	bodies := []string{`{"pes":4}`, `{"pes":8}`, `{"pes":16}`, `{"pes":4}`, `{"pes":8}`, `{"pes":4}`}

	run := func(order []int) map[string]int64 {
		in := New(plan)
		h := in.Middleware(okHandler(`{"ok":true}`))
		for _, i := range order {
			rec := httptest.NewRecorder()
			h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(bodies[i])))
		}
		return in.Totals()
	}

	forward := run([]int{0, 1, 2, 3, 4, 5})
	reversed := run([]int{5, 4, 3, 2, 1, 0})
	for kind, n := range forward {
		if reversed[kind] != n {
			t.Fatalf("totals diverge across orderings: %v vs %v", forward, reversed)
		}
	}
	// And a different seed must (for this plan) not be forced to match —
	// the decisions actually depend on the seed.
	other := (func() map[string]int64 {
		p2 := *plan
		p2.Seed = 100
		in := New(&p2)
		h := in.Middleware(okHandler(`{"ok":true}`))
		for i := range bodies {
			rec := httptest.NewRecorder()
			h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(bodies[i])))
		}
		return in.Totals()
	})()
	same := true
	for kind, n := range forward {
		if other[kind] != n {
			same = false
		}
	}
	if same && forward[KindError]+forward[KindTruncate]+forward[KindCorrupt] > 0 {
		t.Log("note: seeds 99 and 100 happened to produce identical totals (possible, just unlikely)")
	}
}

// TestRepeatsDrawIndependently pins the occurrence dimension: identical
// requests draw per-occurrence, so a 50% plan does not fail either all
// or none of a repeated scenario's requests.
func TestRepeatsDrawIndependently(t *testing.T) {
	in := New(&Plan{Seed: 3, ErrorRate: 0.5})
	h := in.Middleware(okHandler("ok"))
	codes := map[int]int{}
	for i := 0; i < 64; i++ {
		rec := httptest.NewRecorder()
		h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(`{"pes":4}`)))
		codes[rec.Code]++
	}
	if codes[http.StatusOK] == 0 || codes[http.StatusInternalServerError] == 0 {
		t.Fatalf("64 repeats of one request all drew the same outcome: %v", codes)
	}
}

func TestRoundTripperInjectsTransportErrors(t *testing.T) {
	backend := httptest.NewServer(okHandler("ok"))
	defer backend.Close()
	in := New(&Plan{Seed: 7, ErrorRate: 1})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	if _, err := client.Get(backend.URL + "/v1/predict"); err == nil {
		t.Fatal("injected transport error did not surface")
	}
	if in.Totals()[KindError] != 1 {
		t.Fatalf("totals %v", in.Totals())
	}
}

func TestRoundTripperTruncates(t *testing.T) {
	body := `{"schema":"krak/result/v1","total":1.5}` + "\n"
	backend := httptest.NewServer(okHandler(body))
	defer backend.Close()
	in := New(&Plan{Seed: 7, TruncateRate: 1})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := client.Get(backend.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != body[:len(body)/2] {
		t.Fatalf("truncated body %q", got)
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(&Plan{Seed: 7, LatencyRate: 1, LatencyMin: 5 * time.Millisecond, LatencyMax: 5 * time.Millisecond})
	h := in.Middleware(okHandler("ok"))
	start := time.Now()
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", nil))
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("latency injection slept %v, want >= 5ms", d)
	}
	if in.Totals()[KindLatency] != 1 {
		t.Fatalf("totals %v", in.Totals())
	}
}

func TestInjectorPlanDefaults(t *testing.T) {
	var nilInj *Injector
	if p := nilInj.Plan(); p.Name != "" || p.Seed != 0 || len(p.Scopes) != 0 {
		t.Fatalf("nil injector plan = %+v, want zero", p)
	}
	in := New(&Plan{Name: "drill"})
	p := in.Plan()
	if p.Name != "drill" || p.Seed != 1 || p.ErrorStatus != http.StatusInternalServerError {
		t.Fatalf("armed plan = %+v, want seed/status defaulted", p)
	}
}

// TestMiddlewarePreservesStatus checks the buffering writer relays the
// handler's explicit status code untouched when no fault fires.
func TestMiddlewarePreservesStatus(t *testing.T) {
	in := New(&Plan{Seed: 7}) // armed, but every rate is zero
	h := in.Middleware(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Check", "kept")
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, `{"job":"j1"}`)
	})
	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("POST", "/v1/predict", strings.NewReader(`{}`)))
	if rec.Code != http.StatusAccepted || rec.Header().Get("X-Check") != "kept" {
		t.Fatalf("status %d headers %v, want relayed 202", rec.Code, rec.Header())
	}
	if rec.Body.String() != `{"job":"j1"}` {
		t.Fatalf("body %q mangled with no fault armed", rec.Body.String())
	}
}

func TestRoundTripperCorrupts(t *testing.T) {
	body := `{"schema":"krak/result/v1","total":1.5}` + "\n"
	backend := httptest.NewServer(okHandler(body))
	defer backend.Close()
	in := New(&Plan{Seed: 7, CorruptRate: 1})
	client := &http.Client{Transport: in.RoundTripper(nil)}
	resp, err := client.Get(backend.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) == body || len(got) != len(body) {
		t.Fatalf("corrupt fault left the body intact: %q", got)
	}
	if in.Totals()[KindCorrupt] != 1 {
		t.Fatalf("totals %v", in.Totals())
	}
}
