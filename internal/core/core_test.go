package core

import (
	"math"
	"testing"

	"krak/internal/compute"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
)

// truthProfile fabricates a noiseless "No MPI" profiling backend directly
// from a ground-truth table. Experiments use the cluster simulator instead;
// unit tests use this double to isolate the calibration math.
func truthProfile(tt *compute.TruthTable) ProfileFunc {
	return func(sum *mesh.PartitionSummary) ([phases.Count][]float64, error) {
		var out [phases.Count][]float64
		for ph := 1; ph <= phases.Count; ph++ {
			ts := make([]float64, sum.P)
			for pe := 0; pe < sum.P; pe++ {
				ts[pe] = tt.PhaseTime(ph, sum.CellsByMaterial[pe])
			}
			out[ph-1] = ts
		}
		return out, nil
	}
}

// table3Boundary mirrors the Figure 4 / Table 3 example.
func table3Boundary() *mesh.PairBoundary {
	b := &mesh.PairBoundary{Key: mesh.MakePairKey(0, 1)}
	b.FacesByMaterial[mesh.HEGas] = 3
	b.FacesByMaterial[mesh.AluminumInner] = 2
	b.FacesByMaterial[mesh.Foam] = 3
	b.FacesByMaterial[mesh.AluminumOuter] = 2
	b.FacesByGroup[mesh.GroupHEGas] = 3
	b.FacesByGroup[mesh.GroupAluminum] = 4
	b.FacesByGroup[mesh.GroupFoam] = 3
	b.TotalFaces = 10
	b.GhostNodes = 11
	b.OwnedByA = 6
	b.OwnedByB = 5
	b.MultiGroupGhosts = 3
	b.MultiGroupGhostsByGroup[mesh.GroupHEGas] = 1
	b.MultiGroupGhostsByGroup[mesh.GroupAluminum] = 3
	b.MultiGroupGhostsByGroup[mesh.GroupFoam] = 2
	return b
}

func TestBoundaryExchangeTimeMatchesMessageEnumeration(t *testing.T) {
	net := netmodel.QsNetI()
	b := table3Boundary()
	// With both refinements the model must charge exactly the sum of the
	// Table 3 message times.
	var want float64
	for _, m := range phases.BoundaryExchangeMessages(b) {
		want += net.MsgTime(m.Bytes)
	}
	got := BoundaryExchangeTime(net, b, BoundaryExchangeOptions{
		CombineIdenticalMaterials: true,
		GhostSurcharge:            true,
	})
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("BoundaryExchangeTime = %v, want %v", got, want)
	}
}

func TestBoundaryExchangePlainEquation5(t *testing.T) {
	net := netmodel.QsNetI()
	b := table3Boundary()
	// Plain Equation (5): per material (4 steps, aluminum twice), no ghost
	// surcharge: 6*Tmsg(12*faces_m) each, plus 6*Tmsg(12*total).
	var want float64
	for m := 0; m < mesh.NumMaterials; m++ {
		if f := b.FacesByMaterial[m]; f > 0 {
			want += 6 * net.MsgTime(12*f)
		}
	}
	want += 6 * net.MsgTime(12*10)
	got := BoundaryExchangeTime(net, b, BoundaryExchangeOptions{})
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("plain Eq5 = %v, want %v", got, want)
	}
	// The plain form splits aluminum and must therefore cost more than the
	// combined form (more message latencies).
	combined := BoundaryExchangeTime(net, b, BoundaryExchangeOptions{CombineIdenticalMaterials: true})
	if got <= combined {
		t.Fatalf("splitting materials (%v) should cost more than combining (%v)", got, combined)
	}
}

func TestGhostUpdateTime(t *testing.T) {
	net := netmodel.QsNetI()
	b := table3Boundary()
	want := net.MsgTime(8*6) + net.MsgTime(8*5)
	if got := GhostUpdateTime(net, b, 0, 8); math.Abs(got-want) > 1e-15 {
		t.Fatalf("GhostUpdateTime = %v, want %v", got, want)
	}
	// Symmetric from the other side.
	a := GhostUpdateTime(net, b, 0, 16)
	c := GhostUpdateTime(net, b, 1, 16)
	if math.Abs(a-c) > 1e-15 {
		t.Fatalf("ghost update time asymmetric: %v vs %v", a, c)
	}
}

func calibrated(t *testing.T) *compute.Calibrated {
	t.Helper()
	cal, err := (&Calibrator{Profile: truthProfile(compute.ES45().WithoutNoise())}).Contrived(nil)
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

func TestContrivedCalibrationRecoversTruth(t *testing.T) {
	tt := compute.ES45().WithoutNoise()
	cal := calibrated(t)
	// At the sampled sizes, the calibrated per-cell cost must match the
	// truth exactly (noiseless profiling, sample points are knots).
	for _, n := range []int{1, 64, 4096, 131072} {
		for m := 0; m < mesh.NumMaterials; m++ {
			for ph := 1; ph <= phases.Count; ph++ {
				want := tt.PerCellCost(ph, mesh.Material(m), n)
				got := cal.PerCell(ph, mesh.Material(m), n)
				if math.Abs(got-want) > 1e-12*math.Max(1, want) {
					t.Fatalf("phase %d %v n=%d: calibrated %v, truth %v",
						ph, mesh.Material(m), n, got, want)
				}
			}
		}
	}
	// Between knots, log-space interpolation keeps the error under ~15%.
	for _, n := range []int{3, 48, 3000, 100000} {
		for ph := 1; ph <= phases.Count; ph++ {
			want := tt.PerCellCost(ph, mesh.HEGas, n)
			got := cal.PerCell(ph, mesh.HEGas, n)
			if rel := math.Abs(got-want) / want; rel > 0.15 {
				t.Fatalf("phase %d n=%d: interpolation error %.1f%%", ph, n, rel*100)
			}
		}
	}
}

func TestMeshSpecificPrediction(t *testing.T) {
	d, err := mesh.BuildLayeredDeck(80, 40)
	if err != nil {
		t.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(1).Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := mesh.Summarize(d.Mesh, part, 16)
	if err != nil {
		t.Fatal(err)
	}
	cal := calibrated(t)
	net := netmodel.QsNetI()
	m := NewMeshSpecific(cal, net)
	pred, err := m.Predict(sum)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Total <= 0 || pred.P != 16 {
		t.Fatalf("prediction = %+v", pred)
	}
	// Total equals the sum of phase totals.
	var s float64
	for ph := 1; ph <= phases.Count; ph++ {
		s += pred.PhaseTotal(ph)
	}
	if math.Abs(s-pred.Total) > 1e-12 {
		t.Fatal("phase totals do not sum to Total")
	}
	// Compute share per phase is the max over PEs of the calibrated time.
	tt := compute.ES45().WithoutNoise()
	for ph := 1; ph <= phases.Count; ph++ {
		var want float64
		for pe := 0; pe < 16; pe++ {
			if v := tt.PhaseTime(ph, sum.CellsByMaterial[pe]); v > want {
				want = v
			}
		}
		got := pred.PhaseCompute[ph-1]
		if math.Abs(got-want)/want > 0.15 {
			t.Fatalf("phase %d compute %v far from truth max %v", ph, got, want)
		}
	}
	// Only the phases Table 1 marks with point-to-point traffic carry it.
	for i, ph := range phases.Table1() {
		if ph.HasPointToPoint() && pred.PhaseP2P[i] <= 0 {
			t.Errorf("phase %d missing p2p time", ph.Number)
		}
		if !ph.HasPointToPoint() && pred.PhaseP2P[i] != 0 {
			t.Errorf("phase %d has unexpected p2p time", ph.Number)
		}
		if pred.PhaseCollective[i] <= 0 {
			t.Errorf("phase %d missing collective time", ph.Number)
		}
	}
	if pred.Compute()+pred.Communication()-pred.Total > 1e-12 {
		t.Fatal("compute+comm != total")
	}
}

func TestMeshSpecificValidation(t *testing.T) {
	cal := calibrated(t)
	net := netmodel.QsNetI()
	if _, err := (&MeshSpecific{Costs: cal, Net: net}).Predict(nil); err == nil {
		t.Fatal("nil summary accepted")
	}
	if _, err := (&MeshSpecific{Net: net}).Predict(&mesh.PartitionSummary{P: 1}); err == nil {
		t.Fatal("missing costs accepted")
	}
	if _, err := (&MeshSpecific{Costs: cal}).Predict(&mesh.PartitionSummary{P: 1}); err == nil {
		t.Fatal("missing net accepted")
	}
}

func TestGeneralModelModes(t *testing.T) {
	cal := calibrated(t)
	net := netmodel.QsNetI()
	const cells = 204800
	for _, p := range []int{16, 128, 512} {
		het, err := NewGeneral(cal, net, Heterogeneous).Predict(cells, p)
		if err != nil {
			t.Fatal(err)
		}
		hom, err := NewGeneral(cal, net, Homogeneous).Predict(cells, p)
		if err != nil {
			t.Fatal(err)
		}
		// Homogeneous compute takes the worst material, so it cannot be
		// below the heterogeneous mixture in any phase.
		for ph := 1; ph <= phases.Count; ph++ {
			if hom.PhaseCompute[ph-1] < het.PhaseCompute[ph-1]-1e-12 {
				t.Fatalf("P=%d phase %d: homo compute %v < hetero %v",
					p, ph, hom.PhaseCompute[ph-1], het.PhaseCompute[ph-1])
			}
		}
		// Heterogeneous boundary exchange splits into more messages and
		// must cost at least as much as homogeneous.
		if het.PhaseP2P[1] < hom.PhaseP2P[1]-1e-12 {
			t.Fatalf("P=%d: hetero exchange %v < homo %v", p, het.PhaseP2P[1], hom.PhaseP2P[1])
		}
	}
	if Heterogeneous.String() != "Heterogeneous" || Homogeneous.String() != "Homogeneous" {
		t.Fatal("mode names wrong")
	}
	if MaterialMode(9).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestGeneralModelStrongScaling(t *testing.T) {
	cal := calibrated(t)
	net := netmodel.QsNetI()
	g := NewGeneral(cal, net, Homogeneous)
	prev := math.Inf(1)
	for _, p := range []int{16, 32, 64, 128, 256, 512} {
		pred, err := g.Predict(819200, p)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Total >= prev {
			t.Fatalf("general model not strong-scaling at P=%d: %v >= %v", p, pred.Total, prev)
		}
		prev = pred.Total
	}
}

func TestGeneralModelValidation(t *testing.T) {
	cal := calibrated(t)
	net := netmodel.QsNetI()
	g := NewGeneral(cal, net, Homogeneous)
	if _, err := g.Predict(0, 4); err == nil {
		t.Fatal("0 cells accepted")
	}
	if _, err := g.Predict(100, 0); err == nil {
		t.Fatal("0 PEs accepted")
	}
	bad := NewGeneral(cal, net, MaterialMode(9))
	if _, err := bad.Predict(100, 4); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestGeneralSubgridCounts(t *testing.T) {
	cal := calibrated(t)
	g := NewGeneral(cal, netmodel.QsNetI(), Heterogeneous)
	counts := g.subgridCounts(1000)
	total := 0
	for m, n := range counts {
		total += n
		wantFrac := mesh.Table2Heterogeneous[m]
		if math.Abs(float64(n)/1000-wantFrac) > 0.01 {
			t.Errorf("material %d count %d, want ~%.1f", m, n, wantFrac*1000)
		}
	}
	if total != 1000 {
		t.Fatalf("counts sum to %d, want 1000", total)
	}
}

func TestFromDeckCalibration(t *testing.T) {
	tt := compute.ES45().WithoutNoise()
	d, err := mesh.BuildLayeredDeck(160, 80) // 12,800 cells
	if err != nil {
		t.Fatal(err)
	}
	g := partition.FromMesh(d.Mesh)
	var samples []DeckSample
	for _, p := range []int{4, 8, 16, 32} {
		part, err := partition.NewMultilevel(1).Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := mesh.Summarize(d.Mesh, part, p)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, DeckSample{Summary: sum})
	}
	cal, err := (&Calibrator{Profile: truthProfile(tt)}).FromDeck(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The recovered per-cell costs at the sampled subgrid sizes should be
	// close to truth for materials with decent representation.
	for _, n := range []int{12800 / 4, 12800 / 32} {
		for ph := 1; ph <= phases.Count; ph++ {
			want := tt.PerCellCost(ph, mesh.HEGas, n)
			got := cal.PerCell(ph, mesh.HEGas, n)
			if rel := math.Abs(got-want) / want; rel > 0.30 {
				t.Fatalf("phase %d n=%d: least-squares error %.1f%% (got %v want %v)",
					ph, n, rel*100, got, want)
			}
		}
	}
}

func TestFromDeckValidation(t *testing.T) {
	c := &Calibrator{Profile: truthProfile(compute.ES45())}
	if _, err := c.FromDeck(nil); err == nil {
		t.Fatal("no samples accepted")
	}
	if _, err := c.FromDeck([]DeckSample{{Summary: &mesh.PartitionSummary{P: 1}}}); err == nil {
		t.Fatal("single-PE campaign accepted")
	}
	bad := &Calibrator{}
	if _, err := bad.Contrived(nil); err == nil {
		t.Fatal("missing profile accepted")
	}
	if _, err := bad.FromDeck(nil); err == nil {
		t.Fatal("missing profile accepted in FromDeck")
	}
}

func TestSolvePhaseFallback(t *testing.T) {
	// All PEs identical: the 5-unknown system is singular, so the solver
	// must fall back to the material-independent fit — and with identical
	// cell counts everywhere even that is degenerate, leaving pure
	// per-cell costs.
	sum := &mesh.PartitionSummary{
		P:               3,
		CellsByMaterial: make([][mesh.NumMaterials]int, 3),
		TotalCells:      []int{100, 100, 100},
	}
	for pe := 0; pe < 3; pe++ {
		sum.CellsByMaterial[pe][mesh.Foam] = 100
	}
	coeffs, err := solvePhase(sum, []float64{1e-3, 1e-3, 1e-3}, []int{int(mesh.Foam)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coeffs.perCell[mesh.Foam]-1e-5) > 1e-12 {
		t.Fatalf("fallback per-cell = %v, want 1e-5", coeffs.perCell[mesh.Foam])
	}
}
