package core

import (
	"fmt"

	"krak/internal/compute"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/phases"
)

// MeshSpecific is the paper's "mesh-specific" ("input-specific") model
// (§3.1): it consumes precise knowledge of the partition — the Cells matrix
// of per-processor material counts and every pair boundary's face and ghost
// composition — and evaluates Equations (3) and (5)-(10) exactly.
type MeshSpecific struct {
	// Costs holds the calibrated per-cell cost curves. Required.
	Costs *compute.Calibrated

	// Net is the interconnect model. Required.
	Net *netmodel.Model

	// Exchange selects the §4.1 message-size refinements. The zero value
	// is the plain Equation (5); NewMeshSpecific enables both refinements,
	// matching the application's actual messages.
	Exchange BoundaryExchangeOptions
}

// NewMeshSpecific builds a mesh-specific model with the full Table 3
// message-size rules.
func NewMeshSpecific(costs *compute.Calibrated, net *netmodel.Model) *MeshSpecific {
	return &MeshSpecific{
		Costs: costs,
		Net:   net,
		Exchange: BoundaryExchangeOptions{
			CombineIdenticalMaterials: true,
			GhostSurcharge:            true,
		},
	}
}

// Predict evaluates the model against a partition summary.
func (m *MeshSpecific) Predict(sum *mesh.PartitionSummary) (*Prediction, error) {
	if m.Costs == nil {
		return nil, fmt.Errorf("core: mesh-specific model needs calibrated costs")
	}
	if err := validateNet(m.Net); err != nil {
		return nil, err
	}
	if sum == nil || sum.P <= 0 {
		return nil, fmt.Errorf("core: empty partition summary")
	}
	pred := &Prediction{P: sum.P}
	for i, ph := range phases.Table1() {
		// Equation (3): phase computation is the max over processors of
		// the per-processor sum of per-cell costs.
		var maxComp float64
		for pe := 0; pe < sum.P; pe++ {
			if c := m.Costs.PhaseTime(ph.Number, sum.CellsByMaterial[pe]); c > maxComp {
				maxComp = c
			}
		}
		pred.PhaseCompute[i] = maxComp

		// Point-to-point communication: the slowest processor's summed
		// per-neighbor time (no overlap, per the Equation 5 note).
		if ph.HasPointToPoint() && sum.P > 1 {
			var maxComm float64
			for pe := 0; pe < sum.P; pe++ {
				var t float64
				for _, nb := range sum.NeighborsOf[pe] {
					b := sum.Boundary(pe, nb)
					if ph.BoundaryExchange {
						t += BoundaryExchangeTime(m.Net, b, m.Exchange)
					} else {
						t += GhostUpdateTime(m.Net, b, pe, ph.GhostUpdateBytes)
					}
				}
				if t > maxComm {
					maxComm = t
				}
			}
			pred.PhaseP2P[i] = maxComm
		}

		pred.PhaseCollective[i] = collectiveTime(m.Net, ph, sum.P)
	}
	pred.finalize()
	return pred, nil
}
