package core

import (
	"fmt"

	"krak/internal/netmodel"
)

// Sensitivity quantifies how the modeled iteration time responds to machine
// parameters — the quantitative basis for the procurement use case in the
// paper's introduction ("expectation of future workload performance is
// often a primary criterion in the procurement of a new large-scale
// parallel machine").
type Sensitivity struct {
	// Base is the iteration time with the unmodified machine.
	Base float64

	// LatencyGain is the relative iteration-time reduction from halving
	// every message start-up cost.
	LatencyGain float64

	// BandwidthGain is the relative reduction from doubling every link's
	// bandwidth.
	BandwidthGain float64

	// ComputeGain is the relative reduction from a 2x faster processor
	// (all per-cell computation costs halved).
	ComputeGain float64

	// CommFraction is communication's share of the base iteration.
	CommFraction float64
}

// scaleNet builds a copy of a network model with scaled latency and
// per-byte cost.
func scaleNet(net *netmodel.Model, latFactor, perByteFactor float64) (*netmodel.Model, error) {
	segs := net.Segments()
	for i := range segs {
		segs[i].Latency *= latFactor
		segs[i].PerByte *= perByteFactor
	}
	return netmodel.New(net.Name()+" (scaled)", segs)
}

// predictor abstracts the two model variants for sensitivity analysis.
type predictor interface {
	predictWith(net *netmodel.Model, computeScale float64) (*Prediction, error)
}

// generalPredictor adapts General.
type generalPredictor struct {
	model *General
	cells int
	p     int
}

func (g generalPredictor) predictWith(net *netmodel.Model, computeScale float64) (*Prediction, error) {
	m := *g.model
	m.Net = net
	pred, err := m.Predict(g.cells, g.p)
	if err != nil {
		return nil, err
	}
	for i := range pred.PhaseCompute {
		pred.PhaseCompute[i] *= computeScale
	}
	pred.finalize()
	return pred, nil
}

// AnalyzeGeneral computes machine sensitivities for a general-model
// configuration.
func AnalyzeGeneral(model *General, cells, p int) (*Sensitivity, error) {
	if model == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	return analyze(generalPredictor{model: model, cells: cells, p: p}, model.Net)
}

func analyze(pr predictor, net *netmodel.Model) (*Sensitivity, error) {
	base, err := pr.predictWith(net, 1)
	if err != nil {
		return nil, err
	}
	if base.Total <= 0 {
		return nil, fmt.Errorf("core: degenerate base prediction")
	}
	halfLat, err := scaleNet(net, 0.5, 1)
	if err != nil {
		return nil, err
	}
	latPred, err := pr.predictWith(halfLat, 1)
	if err != nil {
		return nil, err
	}
	doubleBW, err := scaleNet(net, 1, 0.5)
	if err != nil {
		return nil, err
	}
	bwPred, err := pr.predictWith(doubleBW, 1)
	if err != nil {
		return nil, err
	}
	fastCPU, err := pr.predictWith(net, 0.5)
	if err != nil {
		return nil, err
	}
	return &Sensitivity{
		Base:          base.Total,
		LatencyGain:   1 - latPred.Total/base.Total,
		BandwidthGain: 1 - bwPred.Total/base.Total,
		ComputeGain:   1 - fastCPU.Total/base.Total,
		CommFraction:  base.Communication() / base.Total,
	}, nil
}
