package core

import (
	"fmt"

	"krak/internal/compute"
	"krak/internal/linalg"
	"krak/internal/mesh"
	"krak/internal/phases"
)

// ProfileFunc measures per-phase, per-processor computation times ("No MPI"
// profiling, as in Figures 2 and 3) for a partitioned deck. The calibration
// procedures know nothing about how the measurement is taken: in this
// repository the function is backed by the cluster simulator, in the
// original work it was the real application on the real machine.
type ProfileFunc func(sum *mesh.PartitionSummary) ([phases.Count][]float64, error)

// Calibrator reconstructs per-cell cost curves from measurements, per §3.1.
type Calibrator struct {
	// Profile is the measurement campaign backend. Required.
	Profile ProfileFunc
}

// DefaultContrivedSizes is the log-spaced subgrid-size ladder used by the
// contrived-grid calibration, spanning the cells-per-processor range of
// Figure 3.
func DefaultContrivedSizes() []int {
	sizes := make([]int, 0, 18)
	for n := 1; n <= 131072; n *= 2 {
		sizes = append(sizes, n)
	}
	return sizes
}

// contrivedSummary fabricates the two-process §3.1 scenario: high-explosive
// gas isolated on processor 0 (so a detonation can occur) while processor 1
// holds n cells of the probe material.
func contrivedSummary(probe mesh.Material, n int) *mesh.PartitionSummary {
	s := &mesh.PartitionSummary{
		P:               2,
		CellsByMaterial: make([][mesh.NumMaterials]int, 2),
		TotalCells:      []int{n, n},
		Pairs:           map[mesh.PairKey]*mesh.PairBoundary{},
		NeighborsOf:     make([][]int, 2),
	}
	s.CellsByMaterial[0][mesh.HEGas] = n
	s.CellsByMaterial[1][probe] = n
	return s
}

// Contrived runs the paper's first calibration method: contrived
// single-material grids over a ladder of subgrid sizes, yielding per-cell
// cost samples t/n that become piecewise-linear curves over cells per
// processor.
func (c *Calibrator) Contrived(sizes []int) (*compute.Calibrated, error) {
	if c.Profile == nil {
		return nil, fmt.Errorf("core: calibrator needs a profile function")
	}
	if len(sizes) == 0 {
		sizes = DefaultContrivedSizes()
	}
	cal := &compute.Calibrated{}
	for m := 0; m < mesh.NumMaterials; m++ {
		xs := make([]float64, 0, len(sizes))
		ys := make([][phases.Count]float64, 0, len(sizes))
		for _, n := range sizes {
			if n <= 0 {
				return nil, fmt.Errorf("core: invalid contrived size %d", n)
			}
			times, err := c.Profile(contrivedSummary(mesh.Material(m), n))
			if err != nil {
				return nil, fmt.Errorf("core: contrived profiling failed at %v n=%d: %w", mesh.Material(m), n, err)
			}
			var perCell [phases.Count]float64
			for ph := 0; ph < phases.Count; ph++ {
				if len(times[ph]) != 2 {
					return nil, fmt.Errorf("core: profile returned %d PEs, want 2", len(times[ph]))
				}
				perCell[ph] = times[ph][1] / float64(n)
			}
			xs = append(xs, float64(n))
			ys = append(ys, perCell)
		}
		for ph := 1; ph <= phases.Count; ph++ {
			curveY := make([]float64, len(xs))
			for i := range xs {
				curveY[i] = ys[i][ph-1]
			}
			curve, err := linalg.NewPiecewise(xs, curveY)
			if err != nil {
				return nil, fmt.Errorf("core: building phase %d curve: %w", ph, err)
			}
			if err := cal.SetCurve(ph, mesh.Material(m), curve); err != nil {
				return nil, err
			}
		}
	}
	return cal, nil
}

// DeckSample is one measurement campaign for the least-squares calibration:
// a partitioned deck profiled at a given processor count.
type DeckSample struct {
	Summary *mesh.PartitionSummary
}

// FromDeck runs the paper's second calibration method: "utilizes the actual
// input domain ... and involves the construction and solution of a series
// of linear equations with four variables (the computation time per cell of
// each material)". For each phase and each campaign, the per-processor
// times t_j = a + sum_m b_m n_jm are solved by least squares; the recovered
// coefficients become per-cell cost samples b_m + a/n̄ at the campaign's
// mean subgrid size n̄, interpolated piecewise across campaigns.
func (c *Calibrator) FromDeck(samples []DeckSample) (*compute.Calibrated, error) {
	if c.Profile == nil {
		return nil, fmt.Errorf("core: calibrator needs a profile function")
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no calibration samples")
	}
	type knot struct{ x, y float64 }
	knots := [phases.Count][mesh.NumMaterials][]knot{}

	for _, s := range samples {
		sum := s.Summary
		if sum == nil || sum.P < 2 {
			return nil, fmt.Errorf("core: least-squares calibration needs >= 2 processors")
		}
		times, err := c.Profile(sum)
		if err != nil {
			return nil, fmt.Errorf("core: deck profiling failed: %w", err)
		}
		// Which materials appear anywhere in this campaign?
		var present [mesh.NumMaterials]bool
		presentList := make([]int, 0, mesh.NumMaterials)
		totalCells := 0
		for pe := 0; pe < sum.P; pe++ {
			for m, n := range sum.CellsByMaterial[pe] {
				if n > 0 && !present[m] {
					present[m] = true
				}
			}
			totalCells += sum.TotalCells[pe]
		}
		for m := 0; m < mesh.NumMaterials; m++ {
			if present[m] {
				presentList = append(presentList, m)
			}
		}
		meanCells := float64(totalCells) / float64(sum.P)
		if len(presentList) == 0 {
			return nil, fmt.Errorf("core: campaign deck has no cells")
		}

		for ph := 1; ph <= phases.Count; ph++ {
			if len(times[ph-1]) != sum.P {
				return nil, fmt.Errorf("core: profile returned %d PEs, want %d", len(times[ph-1]), sum.P)
			}
			coeffs, err := solvePhase(sum, times[ph-1], presentList)
			if err != nil {
				return nil, fmt.Errorf("core: phase %d least squares: %w", ph, err)
			}
			for _, m := range presentList {
				perCell := coeffs.perCell[m] + coeffs.fixed/meanCells
				if perCell < 0 {
					perCell = 0
				}
				knots[ph-1][m] = append(knots[ph-1][m], knot{x: meanCells, y: perCell})
			}
		}
	}

	cal := &compute.Calibrated{}
	for ph := 1; ph <= phases.Count; ph++ {
		for m := 0; m < mesh.NumMaterials; m++ {
			ks := knots[ph-1][m]
			if len(ks) == 0 {
				continue // material absent from every campaign
			}
			xs := make([]float64, 0, len(ks))
			ys := make([]float64, 0, len(ks))
			for _, k := range ks {
				// Campaigns can share a mean subgrid size; keep the first.
				dup := false
				for _, x := range xs {
					if x == k.x {
						dup = true
						break
					}
				}
				if !dup {
					xs = append(xs, k.x)
					ys = append(ys, k.y)
				}
			}
			curve, err := linalg.NewPiecewise(xs, ys)
			if err != nil {
				return nil, fmt.Errorf("core: phase %d material %d curve: %w", ph, m, err)
			}
			if err := cal.SetCurve(ph, mesh.Material(m), curve); err != nil {
				return nil, err
			}
		}
	}
	return cal, nil
}

// phaseCoeffs are the least-squares unknowns of one phase: a constant term
// plus a per-cell cost per material.
type phaseCoeffs struct {
	fixed   float64
	perCell [mesh.NumMaterials]float64
}

// solvePhase solves t_j = a + sum_m b_m n_jm over all processors j by QR
// least squares. If the system is rank deficient (e.g. every processor has
// an identical material mixture), it falls back to the material-independent
// fit t_j = a + b n_j.
func solvePhase(sum *mesh.PartitionSummary, times []float64, presentList []int) (phaseCoeffs, error) {
	rows := sum.P
	cols := 1 + len(presentList)
	var out phaseCoeffs
	if rows >= cols {
		a := linalg.NewMatrix(rows, cols)
		for pe := 0; pe < rows; pe++ {
			a.Set(pe, 0, 1)
			for ci, m := range presentList {
				a.Set(pe, 1+ci, float64(sum.CellsByMaterial[pe][m]))
			}
		}
		x, err := linalg.LeastSquares(a, times)
		if err == nil {
			out.fixed = x[0]
			for ci, m := range presentList {
				out.perCell[m] = x[1+ci]
			}
			return out, nil
		}
		if err != linalg.ErrSingular {
			return out, err
		}
	}
	// Fallback: material-independent regression on total cells.
	xs := make([]float64, rows)
	for pe := 0; pe < rows; pe++ {
		xs[pe] = float64(sum.TotalCells[pe])
	}
	fit, err := linalg.FitLinear(xs, times)
	if err != nil {
		// Last resort: all processors identical; treat everything as
		// per-cell cost with no constant term.
		n := xs[0]
		if n == 0 {
			return out, fmt.Errorf("core: degenerate calibration campaign")
		}
		for _, m := range presentList {
			out.perCell[m] = times[0] / n
		}
		return out, nil
	}
	out.fixed = fit.A
	for _, m := range presentList {
		out.perCell[m] = fit.B
	}
	return out, nil
}
