// Package core implements the paper's contribution: the analytic
// performance model of the Krak hydrodynamics application.
//
// The model separates computation from communication and models each
// individually (§2.2):
//
//   - Computation follows Equations (1)-(3): an iteration is a sequence of
//     phases separated by global synchronizations, so each phase costs the
//     maximum over processors of the sum over the processor's cells of a
//     per-cell cost T(phase, material), where T is read from piecewise
//     linear per-cell cost curves (internal/compute.Calibrated).
//
//   - Communication follows Equations (4)-(10): point-to-point messages
//     cost Tmsg(S) = L(S) + S*TB(S) (internal/netmodel); boundary
//     exchanges send six messages per neighbor per material step plus a
//     final step (Equation 5, §4.1); ghost-node updates send a local and a
//     remote message per neighbor (Equations 6-7, §4.2); and collectives
//     traverse binary trees (Equations 8-10, §4.3).
//
// Two model variants are provided, as in the paper: the mesh-specific model
// (§3.1) consumes the exact partition summary — per-processor material
// mixtures and per-pair boundary compositions — while the general model
// (§3.2) replaces the partition with an idealized geometry (equal square
// subgrids, four neighbors, boundary faces split equally among materials)
// under a heterogeneous or homogeneous material assumption.
//
// Model calibration (§3.1) is in calibrate.go: per-cell cost curves are
// recovered from measurement campaigns — either contrived single-material
// grids or least-squares fits over a real deck's processors — never from
// the simulator's ground-truth coefficients.
package core

import (
	"fmt"

	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/phases"
)

// Prediction is a modeled iteration time with its per-phase breakdown.
type Prediction struct {
	// P is the processor count the prediction is for.
	P int

	// Total is the predicted iteration time in seconds: the sum of the
	// phase totals.
	Total float64

	// PhaseCompute[ph-1] is the computation share of each phase: the
	// maximum over processors (Equation 3's max term).
	PhaseCompute [phases.Count]float64

	// PhaseP2P[ph-1] is the point-to-point communication share (boundary
	// exchange or ghost updates).
	PhaseP2P [phases.Count]float64

	// PhaseCollective[ph-1] is the collective share (broadcasts, gathers,
	// and the phase-closing all-reduces).
	PhaseCollective [phases.Count]float64
}

// PhaseTotal returns the total modeled time of a 1-based phase.
func (p *Prediction) PhaseTotal(ph int) float64 {
	return p.PhaseCompute[ph-1] + p.PhaseP2P[ph-1] + p.PhaseCollective[ph-1]
}

// Compute returns the summed computation share.
func (p *Prediction) Compute() float64 {
	var s float64
	for _, v := range p.PhaseCompute {
		s += v
	}
	return s
}

// Communication returns the summed communication share (point-to-point plus
// collectives).
func (p *Prediction) Communication() float64 {
	var s float64
	for i := range p.PhaseP2P {
		s += p.PhaseP2P[i] + p.PhaseCollective[i]
	}
	return s
}

func (p *Prediction) finalize() {
	p.Total = 0
	for ph := 1; ph <= phases.Count; ph++ {
		p.Total += p.PhaseTotal(ph)
	}
}

// collectiveTime models the collectives of one phase per Equations (8)-(10).
func collectiveTime(net *netmodel.Model, ph phases.Phase, p int) float64 {
	var t float64
	for _, b := range ph.BcastBytes {
		t += net.Bcast(p, b)
	}
	for _, b := range ph.GatherBytes {
		t += net.Gather(p, b)
	}
	for _, b := range ph.AllreduceBytes {
		t += net.Allreduce(p, b)
	}
	return t
}

// BoundaryExchangeOptions control which §4.1 refinements Equation (5) uses.
// The plain Equation (5) — the paper notes — accounts for neither combining
// identical materials nor the extra 12 bytes per multi-material ghost node;
// the mesh-specific model enables both to match the application's actual
// message sizes (Table 3).
type BoundaryExchangeOptions struct {
	// CombineIdenticalMaterials merges the two aluminum layers into one
	// exchange step.
	CombineIdenticalMaterials bool
	// GhostSurcharge adds 12 bytes per multi-material ghost node to the
	// first two messages of each material step.
	GhostSurcharge bool
}

// BoundaryExchangeTime evaluates Equation (5) for one processor exchanging
// with a single neighbor across boundary b: six messages per non-empty
// material step plus six messages of the all-materials step, with no
// overlap between messages.
func BoundaryExchangeTime(net *netmodel.Model, b *mesh.PairBoundary, opt BoundaryExchangeOptions) float64 {
	var t float64
	if opt.CombineIdenticalMaterials {
		for g := 0; g < mesh.NumExchangeGroups; g++ {
			faces := b.FacesByGroup[g]
			if faces == 0 {
				continue
			}
			first := phases.BytesPerFaceWord * faces
			if opt.GhostSurcharge {
				first += phases.BytesPerFaceWord * b.MultiGroupGhostsByGroup[g]
			}
			rest := phases.BytesPerFaceWord * faces
			t += 2*net.MsgTime(first) + 4*net.MsgTime(rest)
		}
	} else {
		for m := 0; m < mesh.NumMaterials; m++ {
			faces := b.FacesByMaterial[m]
			if faces == 0 {
				continue
			}
			first := phases.BytesPerFaceWord * faces
			if opt.GhostSurcharge {
				first += phases.BytesPerFaceWord * b.MultiGroupGhostsByGroup[mesh.Material(m).Group()]
			}
			rest := phases.BytesPerFaceWord * faces
			t += 2*net.MsgTime(first) + 4*net.MsgTime(rest)
		}
	}
	if b.TotalFaces > 0 {
		t += float64(phases.MessagesPerExchangeStep) * net.MsgTime(phases.BytesPerFaceWord*b.TotalFaces)
	}
	return t
}

// GhostUpdateTime evaluates Equations (6) and (7) for processor pe with a
// single neighbor across boundary b: one message for locally owned ghost
// nodes and one for remote ones, at bytesPerNode each.
func GhostUpdateTime(net *netmodel.Model, b *mesh.PairBoundary, pe, bytesPerNode int) float64 {
	return net.MsgTime(bytesPerNode*b.Owned(pe)) + net.MsgTime(bytesPerNode*b.Remote(pe))
}

// validateNet checks the shared required dependencies.
func validateNet(net *netmodel.Model) error {
	if net == nil {
		return fmt.Errorf("core: network model is required")
	}
	return nil
}
