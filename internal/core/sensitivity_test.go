package core

import (
	"testing"

	"krak/internal/compute"
	"krak/internal/netmodel"
)

func TestAnalyzeGeneralSensitivity(t *testing.T) {
	cal := calibrated(t)
	net := netmodel.QsNetI()
	model := NewGeneral(cal, net, Homogeneous)

	// At moderate scale the code is compute-dominated: a 2x CPU must buy
	// far more than latency or bandwidth improvements.
	s, err := AnalyzeGeneral(model, 204800, 128)
	if err != nil {
		t.Fatal(err)
	}
	if s.Base <= 0 {
		t.Fatal("no base prediction")
	}
	if s.ComputeGain <= s.LatencyGain || s.ComputeGain <= s.BandwidthGain {
		t.Errorf("compute gain %.3f should dominate latency %.3f and bandwidth %.3f at 128 PEs",
			s.ComputeGain, s.LatencyGain, s.BandwidthGain)
	}
	if s.CommFraction <= 0 || s.CommFraction >= 1 {
		t.Errorf("comm fraction = %v", s.CommFraction)
	}
	// All gains are genuine improvements, bounded by 50%.
	for name, g := range map[string]float64{
		"latency": s.LatencyGain, "bandwidth": s.BandwidthGain, "compute": s.ComputeGain,
	} {
		if g < 0 || g > 0.5+1e-9 {
			t.Errorf("%s gain out of range: %v", name, g)
		}
	}
}

func TestSensitivityCommGrowsWithScale(t *testing.T) {
	cal := calibrated(t)
	model := NewGeneral(cal, netmodel.QsNetI(), Homogeneous)
	small, err := AnalyzeGeneral(model, 204800, 16)
	if err != nil {
		t.Fatal(err)
	}
	large, err := AnalyzeGeneral(model, 204800, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if large.CommFraction <= small.CommFraction {
		t.Errorf("comm fraction should grow with P: %.3f at 16 vs %.3f at 1024",
			small.CommFraction, large.CommFraction)
	}
	// Latency matters more at scale.
	if large.LatencyGain <= small.LatencyGain {
		t.Errorf("latency gain should grow with P: %.4f vs %.4f",
			small.LatencyGain, large.LatencyGain)
	}
}

func TestAnalyzeGeneralValidation(t *testing.T) {
	if _, err := AnalyzeGeneral(nil, 100, 4); err == nil {
		t.Fatal("nil model accepted")
	}
	cal := &compute.Calibrated{} // empty curves => zero prediction
	model := NewGeneral(cal, netmodel.Zero(), Homogeneous)
	if _, err := AnalyzeGeneral(model, 100, 1); err == nil {
		t.Fatal("degenerate base accepted")
	}
}

func TestScaleNet(t *testing.T) {
	net := netmodel.QsNetI()
	half, err := scaleNet(net, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := half.Latency(8), net.Latency(8)/2; got != want {
		t.Fatalf("scaled latency = %v, want %v", got, want)
	}
	// Per-byte unchanged.
	big := 1 << 20
	origBW := net.MsgTime(big) - net.Latency(big)
	halfBW := half.MsgTime(big) - half.Latency(big)
	if origBW != halfBW {
		t.Fatalf("per-byte changed: %v vs %v", origBW, halfBW)
	}
}
