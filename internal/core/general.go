package core

import (
	"fmt"
	"math"

	"krak/internal/compute"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/phases"
)

// MaterialMode selects the general model's material assumption (§3.2,
// Table 2).
type MaterialMode int

// The two general-model material assumptions.
const (
	// Heterogeneous fixes every subgrid's material ratio at the global
	// deck ratio, regardless of processor count.
	Heterogeneous MaterialMode = iota
	// Homogeneous assumes each subgrid holds a single material and charges
	// each phase for whichever material computes longest.
	Homogeneous
)

// String names the mode as in the paper's Figure 5 legend.
func (m MaterialMode) String() string {
	switch m {
	case Heterogeneous:
		return "Heterogeneous"
	case Homogeneous:
		return "Homogeneous"
	}
	return fmt.Sprintf("MaterialMode(%d)", int(m))
}

// General is the paper's "general" model (§3.2): instead of examining each
// subgrid produced by the partitioner, the input is classified as
// heterogeneous or homogeneous, every processor holds Cells/PEs cells in a
// square subgrid with NeighborCount neighbors, each shared boundary has
// sqrt(Cells/PEs) faces divided equally among the materials in use, and
// each boundary carries one more ghost node than faces, half locally owned.
type General struct {
	// Costs holds the calibrated per-cell cost curves. Required.
	Costs *compute.Calibrated

	// Net is the interconnect model. Required.
	Net *netmodel.Model

	// Mode is the material assumption.
	Mode MaterialMode

	// Ratios is the global material ratio used in heterogeneous mode;
	// defaults to Table 2's values when all-zero.
	Ratios [mesh.NumMaterials]float64

	// NeighborCount is the assumed neighbors per processor (default 4,
	// the square-subgrid value).
	NeighborCount int

	// Exchange selects the §4.1 message-size refinements; the general
	// model defaults to the plain Equation (5) (no combining, no ghost
	// surcharge), as printed in the paper.
	Exchange BoundaryExchangeOptions
}

// NewGeneral builds a general model in the given mode with paper-default
// geometry.
func NewGeneral(costs *compute.Calibrated, net *netmodel.Model, mode MaterialMode) *General {
	return &General{Costs: costs, Net: net, Mode: mode}
}

func (g *General) neighbors() int {
	if g.NeighborCount <= 0 {
		return 4
	}
	return g.NeighborCount
}

func (g *General) ratios() [mesh.NumMaterials]float64 {
	zero := true
	for _, r := range g.Ratios {
		if r != 0 {
			zero = false
			break
		}
	}
	if zero {
		return mesh.Table2Heterogeneous
	}
	return g.Ratios
}

// subgridCounts returns the assumed per-processor material counts for a
// subgrid of n cells in heterogeneous mode.
func (g *General) subgridCounts(n int) [mesh.NumMaterials]int {
	var counts [mesh.NumMaterials]int
	r := g.ratios()
	assigned := 0
	for m := 0; m < mesh.NumMaterials-1; m++ {
		counts[m] = int(math.Round(r[m] * float64(n)))
		assigned += counts[m]
	}
	last := n - assigned
	if last < 0 {
		last = 0
	}
	counts[mesh.NumMaterials-1] = last
	return counts
}

// syntheticBoundary builds the §3.2 idealized pair boundary for a subgrid of
// n cells: sqrt(n) faces split across the materials in use, faces+1 ghost
// nodes, half owned locally. In homogeneous mode the boundary holds a
// single material.
func (g *General) syntheticBoundary(n int, homoMat mesh.Material) *mesh.PairBoundary {
	faces := int(math.Round(math.Sqrt(float64(n))))
	if faces < 1 {
		faces = 1
	}
	b := &mesh.PairBoundary{Key: mesh.MakePairKey(0, 1)}
	b.TotalFaces = faces
	if g.Mode == Homogeneous {
		b.FacesByMaterial[homoMat] = faces
		b.FacesByGroup[homoMat.Group()] = faces
	} else {
		// Divide equally among the materials in use (all four).
		per := faces / mesh.NumMaterials
		rem := faces - per*mesh.NumMaterials
		for m := 0; m < mesh.NumMaterials; m++ {
			f := per
			if m < rem {
				f++
			}
			b.FacesByMaterial[m] += f
			b.FacesByGroup[mesh.Material(m).Group()] += f
		}
	}
	ghosts := faces + 1
	b.GhostNodes = ghosts
	b.OwnedByA = ghosts / 2
	b.OwnedByB = ghosts - ghosts/2
	return b
}

// Predict evaluates the general model for a deck of totalCells on p
// processors.
func (g *General) Predict(totalCells, p int) (*Prediction, error) {
	if g.Costs == nil {
		return nil, fmt.Errorf("core: general model needs calibrated costs")
	}
	if err := validateNet(g.Net); err != nil {
		return nil, err
	}
	if totalCells <= 0 || p <= 0 {
		return nil, fmt.Errorf("core: invalid problem %d cells on %d processors", totalCells, p)
	}
	n := totalCells / p
	if n < 1 {
		n = 1
	}
	pred := &Prediction{P: p}

	for i, ph := range phases.Table1() {
		// Computation.
		switch g.Mode {
		case Heterogeneous:
			pred.PhaseCompute[i] = g.Costs.PhaseTime(ph.Number, g.subgridCounts(n))
		case Homogeneous:
			// The most computationally taxing material defines the phase.
			var worst float64
			for m := 0; m < mesh.NumMaterials; m++ {
				var counts [mesh.NumMaterials]int
				counts[m] = n
				if t := g.Costs.PhaseTime(ph.Number, counts); t > worst {
					worst = t
				}
			}
			pred.PhaseCompute[i] = worst
		default:
			return nil, fmt.Errorf("core: unknown material mode %v", g.Mode)
		}

		// Point-to-point communication over the idealized neighbors.
		if ph.HasPointToPoint() && p > 1 {
			var per float64
			if ph.BoundaryExchange {
				// Homogeneous boundaries carry the subgrid's own material;
				// the worst case over materials keeps the accounting
				// consistent with the computation's worst-material rule.
				if g.Mode == Homogeneous {
					var worst float64
					for m := 0; m < mesh.NumMaterials; m++ {
						b := g.syntheticBoundary(n, mesh.Material(m))
						if t := BoundaryExchangeTime(g.Net, b, g.Exchange); t > worst {
							worst = t
						}
					}
					per = worst
				} else {
					b := g.syntheticBoundary(n, mesh.HEGas)
					per = BoundaryExchangeTime(g.Net, b, g.Exchange)
				}
			} else {
				b := g.syntheticBoundary(n, mesh.HEGas)
				per = GhostUpdateTime(g.Net, b, 0, ph.GhostUpdateBytes)
			}
			pred.PhaseP2P[i] = float64(g.neighbors()) * per
		}

		pred.PhaseCollective[i] = collectiveTime(g.Net, ph, p)
	}
	pred.finalize()
	return pred, nil
}
