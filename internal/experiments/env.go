// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (phase structure) through Table 6 (general-model
// validation) and Figures 1 through 5, plus the ablation studies DESIGN.md
// calls out. Each experiment pairs the cluster simulator's "measured" times
// with the analytic model's predictions, exactly as the paper pairs its
// ES45 measurements with its model.
package experiments

import (
	"fmt"
	"sync"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
)

// Env carries the machine configuration and memoizes the expensive
// artifacts (decks, partitions, calibrations) that experiments share.
type Env struct {
	// Net is the interconnect model (default QsNet-I).
	Net *netmodel.Model

	// Costs is the ground-truth computation table (default ES45 with 3%
	// noise).
	Costs *compute.TruthTable

	// Seed drives the partitioner.
	Seed uint64

	// Repeats is the number of measured iterations averaged per data point
	// (default 5).
	Repeats int

	// Quick shrinks the heavyweight experiments (smaller decks, fewer
	// processor counts) so benchmarks and smoke tests stay fast. The
	// paper-faithful configuration leaves it false.
	Quick bool

	mu         sync.Mutex
	decks      map[string]*mesh.Deck
	summaries  map[string]*mesh.PartitionSummary
	contrived  *compute.Calibrated
	contrivedE error
}

// NewEnv returns a paper-faithful environment.
func NewEnv() *Env {
	return &Env{
		Net:     netmodel.QsNetI(),
		Costs:   compute.ES45(),
		Seed:    1,
		Repeats: 5,
	}
}

// NewQuickEnv returns a scaled-down environment for benchmarks and tests.
func NewQuickEnv() *Env {
	e := NewEnv()
	e.Quick = true
	e.Repeats = 2
	return e
}

func (e *Env) repeats() int {
	if e.Repeats <= 0 {
		return 5
	}
	return e.Repeats
}

// clusterConfig builds the simulator configuration.
func (e *Env) clusterConfig() cluster.Config {
	return cluster.Config{Net: e.Net, Costs: e.Costs}
}

// Deck returns (and caches) a standard deck, shrunk in Quick mode.
func (e *Env) Deck(s mesh.StandardSize) (*mesh.Deck, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := s.String()
	if e.decks == nil {
		e.decks = map[string]*mesh.Deck{}
	}
	if d, ok := e.decks[key]; ok {
		return d, nil
	}
	var d *mesh.Deck
	var err error
	if e.Quick {
		w, h := s.Dims()
		for w*h > 51200 { // cap quick decks at 51,200 cells
			w /= 2
			h /= 2
		}
		d, err = mesh.BuildLayeredDeck(w, h)
		if err == nil {
			d.Name = s.String() + "-quick"
		}
	} else {
		d, err = mesh.BuildStandardDeck(s)
	}
	if err != nil {
		return nil, err
	}
	e.decks[key] = d
	return d, nil
}

// Partition returns (and caches) the multilevel partition summary of a deck
// at p processors.
func (e *Env) Partition(d *mesh.Deck, p int) (*mesh.PartitionSummary, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := fmt.Sprintf("%s/%d", d.Name, p)
	if e.summaries == nil {
		e.summaries = map[string]*mesh.PartitionSummary{}
	}
	if s, ok := e.summaries[key]; ok {
		return s, nil
	}
	g := partition.FromMesh(d.Mesh)
	part, err := partition.NewMultilevel(e.Seed).Partition(g, p)
	if err != nil {
		return nil, fmt.Errorf("experiments: partitioning %s to %d PEs: %w", d.Name, p, err)
	}
	sum, err := mesh.Summarize(d.Mesh, part, p)
	if err != nil {
		return nil, err
	}
	e.summaries[key] = sum
	return sum, nil
}

// PartitionVector computes the raw cell-to-PE assignment (not cached; used
// by the Figure 1 visualization).
func (e *Env) PartitionVector(d *mesh.Deck, p int) ([]int, error) {
	g := partition.FromMesh(d.Mesh)
	return partition.NewMultilevel(e.Seed).Partition(g, p)
}

// Measure runs the simulator and returns the mean iteration time.
func (e *Env) Measure(sum *mesh.PartitionSummary) (float64, error) {
	_, mean, err := cluster.SimulateIterations(sum, e.clusterConfig(), e.repeats())
	return mean, err
}

// MeasureResult runs a single simulated iteration and returns its detailed
// result (noise stream 0).
func (e *Env) MeasureResult(sum *mesh.PartitionSummary) (*cluster.Result, error) {
	return cluster.Simulate(sum, e.clusterConfig())
}

// Profiler adapts the cluster simulator into the calibration interface: a
// "No MPI" computation profile averaged over the measurement repeats.
func (e *Env) Profiler() core.ProfileFunc {
	cfg := e.clusterConfig()
	reps := e.repeats()
	return func(sum *mesh.PartitionSummary) ([phases.Count][]float64, error) {
		var out [phases.Count][]float64
		for ph := 0; ph < phases.Count; ph++ {
			out[ph] = make([]float64, sum.P)
		}
		for it := 0; it < reps; it++ {
			c := cfg
			c.Iteration = it
			r, err := cluster.Simulate(sum, c)
			if err != nil {
				return out, err
			}
			for ph := 0; ph < phases.Count; ph++ {
				for pe := 0; pe < sum.P; pe++ {
					out[ph][pe] += r.ComputeTimes[ph][pe] / float64(reps)
				}
			}
		}
		return out, nil
	}
}

// ContrivedCalibration returns (and caches) the §3.1 contrived-grid
// calibration backed by the simulator.
func (e *Env) ContrivedCalibration() (*compute.Calibrated, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.contrived != nil || e.contrivedE != nil {
		return e.contrived, e.contrivedE
	}
	cal := &core.Calibrator{Profile: e.Profiler()}
	sizes := core.DefaultContrivedSizes()
	if e.Quick {
		sizes = sizes[:14] // up to 8,192 cells per PE
	}
	e.contrived, e.contrivedE = cal.Contrived(sizes)
	return e.contrived, e.contrivedE
}

// DeckCalibration runs the §3.1 least-squares calibration over campaigns of
// the given deck at the given processor counts.
func (e *Env) DeckCalibration(d *mesh.Deck, calPs []int) (*compute.Calibrated, error) {
	var samples []core.DeckSample
	for _, p := range calPs {
		sum, err := e.Partition(d, p)
		if err != nil {
			return nil, err
		}
		samples = append(samples, core.DeckSample{Summary: sum})
	}
	cal := &core.Calibrator{Profile: e.Profiler()}
	return cal.FromDeck(samples)
}
