// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (phase structure) through Table 6 (general-model
// validation) and Figures 1 through 5, plus the ablation studies
// docs/ARCHITECTURE.md calls out. Each experiment pairs the cluster
// simulator's "measured" times with the analytic model's predictions,
// exactly as the paper pairs its ES45 measurements with its model.
//
// Experiments run either one at a time (Experiment.Run) or as a batch on a
// worker pool (RunAll); either way the expensive shared artifacts — decks,
// partitions, calibrations — are memoized in the Env through single-flight
// caches, so concurrent experiments share setup instead of recomputing it
// and parallel output stays byte-identical to serial output.
package experiments

import (
	"fmt"
	"sync"

	"krak/internal/artifacts"
	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/engine"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
)

// Env carries the machine configuration and memoizes the expensive
// artifacts (decks, partitions, calibrations) that experiments share. The
// caches are single-flight: when parallel jobs request the same artifact,
// one computes it and the rest wait, so an Env is safe to share across any
// number of concurrent experiment runs. An Env must not be copied after
// first use.
type Env struct {
	// Net is the interconnect model (default QsNet-I).
	Net *netmodel.Model

	// Costs is the ground-truth computation table (default ES45 with 3%
	// noise).
	Costs *compute.TruthTable

	// Seed drives the partitioner.
	Seed uint64

	// Repeats is the number of measured iterations averaged per data point
	// (default 5).
	Repeats int

	// Quick shrinks the heavyweight experiments (smaller decks, fewer
	// processor counts) so benchmarks and smoke tests stay fast. The
	// paper-faithful configuration leaves it false.
	Quick bool

	// Pool bounds the row-level parallelism inside sweep-shaped
	// experiments (Table 5, Table 6, Figure 5); nil evaluates rows
	// serially. RunAll additionally parallelizes across experiments with
	// its own pool argument.
	Pool *engine.Pool

	// Artifacts optionally points at a shared cross-environment artifact
	// store (decks, graphs, partitions — see internal/artifacts). Nil
	// means the Env lazily creates a private store on first use. Sharing
	// is safe across environments with different cost tables or networks:
	// everything the store caches depends only on deck identity, quick
	// mode, and the partitioner seed, all of which are in its keys.
	Artifacts *artifacts.Store
	artOnce   sync.Once

	// contrived/deckCals stay per-Env: calibrations depend on the cost
	// tables and repeat count, which the artifact store does not key.
	contrived engine.Cache[struct{}, *compute.Calibrated]
	deckCals  engine.Cache[string, *compute.Calibrated]
}

// Store returns the Env's artifact store, creating a private one if none
// was injected.
func (e *Env) Store() *artifacts.Store {
	e.artOnce.Do(func() {
		if e.Artifacts == nil {
			e.Artifacts = artifacts.NewStore()
		}
	})
	return e.Artifacts
}

// NewEnv returns a paper-faithful environment.
func NewEnv() *Env {
	return &Env{
		Net:     netmodel.QsNetI(),
		Costs:   compute.ES45(),
		Seed:    1,
		Repeats: 5,
	}
}

// NewQuickEnv returns a scaled-down environment for benchmarks and tests.
func NewQuickEnv() *Env {
	e := NewEnv()
	e.Quick = true
	e.Repeats = 2
	return e
}

func (e *Env) repeats() int {
	if e.Repeats <= 0 {
		return 5
	}
	return e.Repeats
}

// pool returns the row-level worker pool, serial when unset.
func (e *Env) pool() *engine.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return engine.Serial()
}

// clusterConfig builds the simulator configuration.
func (e *Env) clusterConfig() cluster.Config {
	return cluster.Config{Net: e.Net, Costs: e.Costs}
}

// Deck returns (and caches) a standard deck, shrunk in Quick mode.
func (e *Env) Deck(s mesh.StandardSize) (*mesh.Deck, error) {
	return e.Store().StandardDeck(s, e.Quick)
}

// CustomDeck returns (and caches) the custom W x H layered deck.
func (e *Env) CustomDeck(w, h int) (*mesh.Deck, error) {
	return e.Store().LayeredDeck(w, h)
}

// Graph returns (and caches) the dual graph of a deck.
func (e *Env) Graph(d *mesh.Deck) (*partition.Graph, error) {
	return e.Store().Graph(d)
}

// Partition returns (and caches) the multilevel partition summary of a deck
// at p processors. Distinct (deck, p) keys partition concurrently;
// duplicate requests wait for the one in flight. The key includes the
// deck's content-derived CacheKey, so two decks sharing a name (possible
// with parsed decks) can never serve each other's partitions.
func (e *Env) Partition(d *mesh.Deck, p int) (*mesh.PartitionSummary, error) {
	return e.Store().Summary(d, partition.NewMultilevel(e.Seed), e.Seed, p)
}

// SummaryFor returns (and caches) the partition summary of a deck under an
// arbitrary partitioner — the façade's non-default algorithms route here
// so sweeps and repeated sessions share their partitions too. pr must be
// seeded from this Env's Seed.
func (e *Env) SummaryFor(d *mesh.Deck, pr partition.Partitioner, p int) (*mesh.PartitionSummary, error) {
	return e.Store().Summary(d, pr, e.Seed, p)
}

// PartitionVector returns (and caches) the raw multilevel cell-to-PE
// assignment (the Figure 1 visualization, the façade's Partition report,
// and parallel hydro runs all read it). Shared storage — callers must not
// mutate the returned slice.
func (e *Env) PartitionVector(d *mesh.Deck, p int) ([]int, error) {
	return e.Store().Vector(d, partition.NewMultilevel(e.Seed), e.Seed, p)
}

// VectorFor is PartitionVector for an arbitrary partitioner seeded from
// this Env's Seed.
func (e *Env) VectorFor(d *mesh.Deck, pr partition.Partitioner, p int) ([]int, error) {
	return e.Store().Vector(d, pr, e.Seed, p)
}

// Measure runs the simulator and returns the mean iteration time.
func (e *Env) Measure(sum *mesh.PartitionSummary) (float64, error) {
	_, mean, err := cluster.SimulateIterations(sum, e.clusterConfig(), e.repeats())
	return mean, err
}

// MeasureResult runs a single simulated iteration and returns its detailed
// result (noise stream 0).
func (e *Env) MeasureResult(sum *mesh.PartitionSummary) (*cluster.Result, error) {
	return cluster.Simulate(sum, e.clusterConfig())
}

// Profiler adapts the cluster simulator into the calibration interface: a
// "No MPI" computation profile averaged over the measurement repeats.
func (e *Env) Profiler() core.ProfileFunc {
	cfg := e.clusterConfig()
	reps := e.repeats()
	return func(sum *mesh.PartitionSummary) ([phases.Count][]float64, error) {
		var out [phases.Count][]float64
		for ph := 0; ph < phases.Count; ph++ {
			out[ph] = make([]float64, sum.P)
		}
		runner := cluster.NewRunner(sum)
		for it := 0; it < reps; it++ {
			c := cfg
			c.Iteration = it
			r, err := runner.Simulate(c)
			if err != nil {
				return out, err
			}
			for ph := 0; ph < phases.Count; ph++ {
				for pe := 0; pe < sum.P; pe++ {
					out[ph][pe] += r.ComputeTimes[ph][pe] / float64(reps)
				}
			}
		}
		return out, nil
	}
}

// ContrivedCalibration returns (and caches) the §3.1 contrived-grid
// calibration backed by the simulator.
func (e *Env) ContrivedCalibration() (*compute.Calibrated, error) {
	return e.contrived.Get(struct{}{}, func() (*compute.Calibrated, error) {
		cal := &core.Calibrator{Profile: e.Profiler()}
		sizes := core.DefaultContrivedSizes()
		if e.Quick {
			sizes = sizes[:14] // up to 8,192 cells per PE
		}
		return cal.Contrived(sizes)
	})
}

// DeckCalibration returns (and caches) the §3.1 least-squares calibration
// over campaigns of the given deck at the given processor counts, keyed
// by the deck's content-derived CacheKey (see Partition).
func (e *Env) DeckCalibration(d *mesh.Deck, calPs []int) (*compute.Calibrated, error) {
	key := d.CacheKey()
	for _, p := range calPs {
		key += fmt.Sprintf("/%d", p)
	}
	return e.deckCals.Get(key, func() (*compute.Calibrated, error) {
		var samples []core.DeckSample
		for _, p := range calPs {
			sum, err := e.Partition(d, p)
			if err != nil {
				return nil, err
			}
			samples = append(samples, core.DeckSample{Summary: sum})
		}
		cal := &core.Calibrator{Profile: e.Profiler()}
		return cal.FromDeck(samples)
	})
}
