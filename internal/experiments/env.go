// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (phase structure) through Table 6 (general-model
// validation) and Figures 1 through 5, plus the ablation studies
// docs/ARCHITECTURE.md calls out. Each experiment pairs the cluster
// simulator's "measured" times with the analytic model's predictions,
// exactly as the paper pairs its ES45 measurements with its model.
//
// Experiments run either one at a time (Experiment.Run) or as a batch on a
// worker pool (RunAll); either way the expensive shared artifacts — decks,
// partitions, calibrations — are memoized in the Env through single-flight
// caches, so concurrent experiments share setup instead of recomputing it
// and parallel output stays byte-identical to serial output.
package experiments

import (
	"fmt"

	"krak/internal/cluster"
	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/engine"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
	"krak/internal/phases"
)

// Env carries the machine configuration and memoizes the expensive
// artifacts (decks, partitions, calibrations) that experiments share. The
// caches are single-flight: when parallel jobs request the same artifact,
// one computes it and the rest wait, so an Env is safe to share across any
// number of concurrent experiment runs. An Env must not be copied after
// first use.
type Env struct {
	// Net is the interconnect model (default QsNet-I).
	Net *netmodel.Model

	// Costs is the ground-truth computation table (default ES45 with 3%
	// noise).
	Costs *compute.TruthTable

	// Seed drives the partitioner.
	Seed uint64

	// Repeats is the number of measured iterations averaged per data point
	// (default 5).
	Repeats int

	// Quick shrinks the heavyweight experiments (smaller decks, fewer
	// processor counts) so benchmarks and smoke tests stay fast. The
	// paper-faithful configuration leaves it false.
	Quick bool

	// Pool bounds the row-level parallelism inside sweep-shaped
	// experiments (Table 5, Table 6, Figure 5); nil evaluates rows
	// serially. RunAll additionally parallelizes across experiments with
	// its own pool argument.
	Pool *engine.Pool

	decks     engine.Cache[string, *mesh.Deck]
	summaries engine.Cache[string, *mesh.PartitionSummary]
	contrived engine.Cache[struct{}, *compute.Calibrated]
	deckCals  engine.Cache[string, *compute.Calibrated]
}

// NewEnv returns a paper-faithful environment.
func NewEnv() *Env {
	return &Env{
		Net:     netmodel.QsNetI(),
		Costs:   compute.ES45(),
		Seed:    1,
		Repeats: 5,
	}
}

// NewQuickEnv returns a scaled-down environment for benchmarks and tests.
func NewQuickEnv() *Env {
	e := NewEnv()
	e.Quick = true
	e.Repeats = 2
	return e
}

func (e *Env) repeats() int {
	if e.Repeats <= 0 {
		return 5
	}
	return e.Repeats
}

// pool returns the row-level worker pool, serial when unset.
func (e *Env) pool() *engine.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return engine.Serial()
}

// clusterConfig builds the simulator configuration.
func (e *Env) clusterConfig() cluster.Config {
	return cluster.Config{Net: e.Net, Costs: e.Costs}
}

// Deck returns (and caches) a standard deck, shrunk in Quick mode.
func (e *Env) Deck(s mesh.StandardSize) (*mesh.Deck, error) {
	return e.decks.Get(s.String(), func() (*mesh.Deck, error) {
		if e.Quick {
			w, h := s.Dims()
			for w*h > 51200 { // cap quick decks at 51,200 cells
				w /= 2
				h /= 2
			}
			d, err := mesh.BuildLayeredDeck(w, h)
			if err != nil {
				return nil, err
			}
			d.Name = s.String() + "-quick"
			return d, nil
		}
		return mesh.BuildStandardDeck(s)
	})
}

// Partition returns (and caches) the multilevel partition summary of a deck
// at p processors. Distinct (deck, p) keys partition concurrently;
// duplicate requests wait for the one in flight. The key is the deck's
// content-derived CacheKey, so two decks sharing a name (possible with
// parsed decks) can never serve each other's partitions.
func (e *Env) Partition(d *mesh.Deck, p int) (*mesh.PartitionSummary, error) {
	key := fmt.Sprintf("%s/%d", d.CacheKey(), p)
	return e.summaries.Get(key, func() (*mesh.PartitionSummary, error) {
		g := partition.FromMesh(d.Mesh)
		part, err := partition.NewMultilevel(e.Seed).Partition(g, p)
		if err != nil {
			return nil, fmt.Errorf("experiments: partitioning %s to %d PEs: %w", d.Name, p, err)
		}
		return mesh.Summarize(d.Mesh, part, p)
	})
}

// PartitionVector computes the raw cell-to-PE assignment (not cached; used
// by the Figure 1 visualization).
func (e *Env) PartitionVector(d *mesh.Deck, p int) ([]int, error) {
	g := partition.FromMesh(d.Mesh)
	return partition.NewMultilevel(e.Seed).Partition(g, p)
}

// Measure runs the simulator and returns the mean iteration time.
func (e *Env) Measure(sum *mesh.PartitionSummary) (float64, error) {
	_, mean, err := cluster.SimulateIterations(sum, e.clusterConfig(), e.repeats())
	return mean, err
}

// MeasureResult runs a single simulated iteration and returns its detailed
// result (noise stream 0).
func (e *Env) MeasureResult(sum *mesh.PartitionSummary) (*cluster.Result, error) {
	return cluster.Simulate(sum, e.clusterConfig())
}

// Profiler adapts the cluster simulator into the calibration interface: a
// "No MPI" computation profile averaged over the measurement repeats.
func (e *Env) Profiler() core.ProfileFunc {
	cfg := e.clusterConfig()
	reps := e.repeats()
	return func(sum *mesh.PartitionSummary) ([phases.Count][]float64, error) {
		var out [phases.Count][]float64
		for ph := 0; ph < phases.Count; ph++ {
			out[ph] = make([]float64, sum.P)
		}
		for it := 0; it < reps; it++ {
			c := cfg
			c.Iteration = it
			r, err := cluster.Simulate(sum, c)
			if err != nil {
				return out, err
			}
			for ph := 0; ph < phases.Count; ph++ {
				for pe := 0; pe < sum.P; pe++ {
					out[ph][pe] += r.ComputeTimes[ph][pe] / float64(reps)
				}
			}
		}
		return out, nil
	}
}

// ContrivedCalibration returns (and caches) the §3.1 contrived-grid
// calibration backed by the simulator.
func (e *Env) ContrivedCalibration() (*compute.Calibrated, error) {
	return e.contrived.Get(struct{}{}, func() (*compute.Calibrated, error) {
		cal := &core.Calibrator{Profile: e.Profiler()}
		sizes := core.DefaultContrivedSizes()
		if e.Quick {
			sizes = sizes[:14] // up to 8,192 cells per PE
		}
		return cal.Contrived(sizes)
	})
}

// DeckCalibration returns (and caches) the §3.1 least-squares calibration
// over campaigns of the given deck at the given processor counts, keyed
// by the deck's content-derived CacheKey (see Partition).
func (e *Env) DeckCalibration(d *mesh.Deck, calPs []int) (*compute.Calibrated, error) {
	key := d.CacheKey()
	for _, p := range calPs {
		key += fmt.Sprintf("/%d", p)
	}
	return e.deckCals.Get(key, func() (*compute.Calibrated, error) {
		var samples []core.DeckSample
		for _, p := range calPs {
			sum, err := e.Partition(d, p)
			if err != nil {
				return nil, err
			}
			samples = append(samples, core.DeckSample{Summary: sum})
		}
		cal := &core.Calibrator{Profile: e.Profiler()}
		return cal.FromDeck(samples)
	})
}
