package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"krak/internal/mesh"
)

// env returns a shared quick environment; experiments cache inside it.
func env(t *testing.T) *Env {
	t.Helper()
	return NewQuickEnv()
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact has an experiment.
	want := []string{"table1", "table2", "table3", "table4", "table5", "table6",
		"figure1", "figure2", "figure3", "figure4", "figure5"}
	for _, id := range want {
		if _, err := Find(id); err != nil {
			t.Errorf("missing experiment %s", id)
		}
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown id accepted")
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
}

func TestTable1(t *testing.T) {
	r, err := Table1(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(r.Rows))
	}
	if r.Rows[1][1] == "" || r.Rows[1][2] != "1" {
		t.Fatalf("phase 2 row = %v", r.Rows[1])
	}
	out := r.Render()
	if !strings.Contains(out, "Boundary exchange") {
		t.Fatal("render missing boundary exchange")
	}
}

func TestTable2RatiosClose(t *testing.T) {
	r, err := Table2(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != mesh.NumMaterials {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		diff := strings.TrimSuffix(strings.TrimSpace(strings.TrimSuffix(row[3], "pp")), " ")
		v, err := strconv.ParseFloat(strings.TrimPrefix(diff, "+"), 64)
		if err != nil {
			t.Fatalf("bad diff %q", row[3])
		}
		if v > 1.0 || v < -1.0 {
			t.Errorf("material %s ratio off by %v pp", row[0], v)
		}
	}
}

func TestTable3ExactSizes(t *testing.T) {
	r, err := Table3(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper Table 3 rows: (material, count, bytes).
	want := map[string]bool{
		"H.E. Gas/2/48":        false,
		"H.E. Gas/4/36":        false,
		"Aluminum (both)/2/84": false,
		"Aluminum (both)/4/48": false,
		"Foam/2/60":            false,
		"Foam/4/36":            false,
		"All/6/120":            false,
	}
	for _, row := range r.Rows {
		key := row[0] + "/" + row[1] + "/" + row[2]
		if _, ok := want[key]; ok {
			want[key] = true
		} else {
			t.Errorf("unexpected Table 3 row %v", row)
		}
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("missing Table 3 row %s", k)
		}
	}
}

func TestTable4ExactCounts(t *testing.T) {
	r, err := Table4(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row[1] != row[3] {
			t.Errorf("%s size %s: reproduced %s != paper %s", row[0], row[2], row[1], row[3])
		}
	}
}

func TestTable6GeneralModelAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("heavyweight validation")
	}
	r, err := Table6(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	for _, row := range r.Rows {
		errPct := parsePct(t, row[4])
		if errPct > 15 || errPct < -15 {
			t.Errorf("general model error %v%% too large in quick mode (row %v)", errPct, row)
		}
	}
}

func TestFigure1Partitioning(t *testing.T) {
	r, err := Figure1(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 PEs", len(r.Rows))
	}
	total := 0
	for _, row := range r.Rows {
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 3200 {
		t.Fatalf("cells sum to %d, want 3200", total)
	}
	if !strings.Contains(r.Text, "Material map") {
		t.Fatal("material map missing")
	}
}

func TestFigure3KneeVisible(t *testing.T) {
	r, err := Figure3(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	// First row of phase 1 is n=1; per-cell cost there must exceed the
	// cost at the largest tabulated n by >100x (the knee).
	var first, last float64
	for _, row := range r.Rows {
		if row[0] != "1" {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			first = v
		}
		last = v
	}
	if first < 100*last {
		t.Fatalf("knee not visible: cost(1)=%v vs cost(max)=%v", first, last)
	}
}

func TestFigure4Invariants(t *testing.T) {
	r, err := Figure4(context.Background(), env(t))
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, row := range r.Rows {
		vals[row[0]] = row[1]
	}
	if vals["Total shared faces"] != "10" {
		t.Fatalf("faces = %s", vals["Total shared faces"])
	}
	if vals["Boundary-exchange messages"] != "24" {
		t.Fatalf("messages = %s", vals["Boundary-exchange messages"])
	}
}

func TestCanonicalBoundaryConsistency(t *testing.T) {
	b := CanonicalFigure4Boundary()
	sumGroups := 0
	for _, f := range b.FacesByGroup {
		sumGroups += f
	}
	if sumGroups != b.TotalFaces {
		t.Fatal("group faces do not sum to total")
	}
	if b.OwnedByA+b.OwnedByB != b.GhostNodes {
		t.Fatal("ghost ownership does not sum")
	}
}

func TestEnvCaching(t *testing.T) {
	e := env(t)
	d1, err := e.Deck(mesh.Small)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.Deck(mesh.Small)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatal("deck not cached")
	}
	s1, err := e.Partition(d1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := e.Partition(d1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("partition not cached")
	}
}

func TestQuickDeckShrinks(t *testing.T) {
	e := NewQuickEnv()
	d, err := e.Deck(mesh.Large)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mesh.NumCells() > 51200 {
		t.Fatalf("quick deck too large: %d", d.Mesh.NumCells())
	}
	full := NewEnv()
	fd, err := full.Deck(mesh.Small)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Mesh.NumCells() != 3200 {
		t.Fatalf("full small deck = %d cells", fd.Mesh.NumCells())
	}
}

func TestRenderIncludesNotes(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}, Notes: "hello"}
	if !strings.Contains(r.Render(), "Notes: hello") {
		t.Fatal("notes missing from render")
	}
}

// TestPartitionCacheKeysOnContent is the regression test for the
// deck-name collision: two decks sharing a Name but differing in
// content (possible with mesh.ParseDeck inputs) must not serve each
// other's cached partitions or calibrations.
func TestPartitionCacheKeysOnContent(t *testing.T) {
	uniform, err := mesh.ParseDeck([]byte("deck twin\ngrid 16 8\nuniform h\n"))
	if err != nil {
		t.Fatal(err)
	}
	layered, err := mesh.ParseDeck([]byte("deck twin\ngrid 16 8\nlayered\n"))
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Name != layered.Name {
		t.Fatalf("test needs colliding names, got %q vs %q", uniform.Name, layered.Name)
	}
	if uniform.CacheKey() == layered.CacheKey() {
		t.Fatalf("cache keys collide for different contents: %q", uniform.CacheKey())
	}

	env := NewQuickEnv()
	su, err := env.Partition(uniform, 4)
	if err != nil {
		t.Fatal(err)
	}
	sl, err := env.Partition(layered, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The uniform deck is all H.E. gas; the layered deck is not. If the
	// second Partition call had hit the first's cache entry, the material
	// tables would be identical.
	if su.CellsByMaterial[0][mesh.Foam] != 0 {
		t.Fatalf("uniform deck reports foam cells: %v", su.CellsByMaterial[0])
	}
	foam := 0
	for pe := 0; pe < 4; pe++ {
		foam += sl.CellsByMaterial[pe][mesh.Foam]
	}
	if foam == 0 {
		t.Fatal("layered deck summary has no foam cells — it was served the uniform deck's cached partition")
	}
}
