package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"krak/internal/engine"
	"krak/internal/mesh"
	"krak/internal/phases"
	"krak/internal/stats"
	"krak/internal/textplot"
)

// Result is one regenerated table or figure.
type Result struct {
	// ID identifies the experiment ("table5", "figure2", ...).
	ID string

	// Title is the paper's caption, abbreviated.
	Title string

	// Header and Rows hold the experiment's primary table.
	Header []string
	Rows   [][]string

	// Text holds any chart or map rendering that accompanies the table.
	Text string

	// Notes records the paper-vs-reproduction comparison for
	// EXPERIMENTS.md.
	Notes string
}

// Render formats the result for a terminal.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", r.ID, r.Title)
	if len(r.Header) > 0 {
		b.WriteString(textplot.Table(r.Header, r.Rows))
		b.WriteByte('\n')
	}
	if r.Text != "" {
		b.WriteString(r.Text)
		b.WriteByte('\n')
	}
	if r.Notes != "" {
		fmt.Fprintf(&b, "Notes: %s\n", r.Notes)
	}
	return b.String()
}

// Experiment couples an ID to its runner. Runners observe ctx for
// cancellation of their internal row sweeps and may run rows on the Env's
// worker pool; their output is identical at every parallelism level.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, env *Env) (*Result, error)
}

// Registry lists every experiment in paper order.
var Registry = []Experiment{
	{ID: "table1", Title: "Summary of Krak activities by phase", Run: Table1},
	{ID: "table2", Title: "Ratio of materials in Krak general model", Run: Table2},
	{ID: "table3", Title: "Boundary exchange example", Run: Table3},
	{ID: "table4", Title: "Collective communication operations per iteration", Run: Table4},
	{ID: "table5", Title: "Validation results for mesh-specific model", Run: Table5},
	{ID: "table6", Title: "Krak validation results for general model", Run: Table6},
	{ID: "figure1", Title: "Example partitioning of 3200 cells on 16 processors", Run: Figure1},
	{ID: "figure2", Title: "Computation time by phase on 256 processors, 65,536 cells", Run: Figure2},
	{ID: "figure3", Title: "Per-cell computation times for phases 1, 2, and 7", Run: Figure3},
	{ID: "figure4", Title: "Processor boundary with four materials", Run: Figure4},
	{ID: "figure5", Title: "General model validation for medium and large problems", Run: Figure5},
	{ID: "ablation-partitioner", Title: "Ablation: partitioner choice vs iteration time", Run: AblationPartitioner},
	{ID: "ablation-overlap", Title: "Ablation: message overlap in the measured platform", Run: AblationOverlap},
	{ID: "ablation-knee", Title: "Ablation: removing the per-phase knee", Run: AblationKnee},
	{ID: "ablation-combine", Title: "Ablation: combining identical materials in Equation 5", Run: AblationCombine},
	{ID: "ablation-network", Title: "Ablation: interconnect choice (what-if)", Run: AblationNetwork},
	{ID: "sensitivity", Title: "Machine sensitivity analysis (procurement what-if)", Run: SensitivityStudy},
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// RunAll regenerates the experiments with the given ids (nil means the
// whole registry in paper order) as jobs on the pool, sharing env's
// artifact caches, and returns the results in ids order. The output of
// every experiment is byte-identical whatever the pool width; the error,
// if any, is the first failing experiment in ids order.
func RunAll(ctx context.Context, env *Env, ids []string, pool *engine.Pool) ([]*Result, error) {
	if ids == nil {
		for _, e := range Registry {
			ids = append(ids, e.ID)
		}
	}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, err := Find(id)
		if err != nil {
			return nil, err
		}
		exps[i] = e
	}
	return engine.Map(ctx, pool, len(exps), func(ctx context.Context, i int) (*Result, error) {
		r, err := exps[i].Run(ctx, env)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", exps[i].ID, err)
		}
		return r, nil
	})
}

// Table1 reproduces the phase table.
func Table1(_ context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "table1",
		Title:  "Summary of Krak activities by phase (paper Table 1)",
		Header: []string{"Phase", "Action", "Sync Points"},
	}
	for _, p := range phases.Table1() {
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", p.Number), p.Action, fmt.Sprintf("%d", p.SyncPoints),
		})
	}
	res.Notes = "Phase structure is encoded in internal/phases and drives both the simulator and the model; sync points sum to 22 (= Table 4's all-reduce count)."
	return res, nil
}

// Table2 measures the deck's material ratios against the paper's.
func Table2(_ context.Context, env *Env) (*Result, error) {
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		return nil, err
	}
	fr := d.Mesh.MaterialFractions()
	res := &Result{
		ID:     "table2",
		Title:  "Ratio of materials (paper Table 2, heterogeneous row)",
		Header: []string{"Material", "Paper", "Deck (measured)", "Diff"},
	}
	for m := 0; m < mesh.NumMaterials; m++ {
		want := mesh.Table2Heterogeneous[m]
		res.Rows = append(res.Rows, []string{
			mesh.Material(m).String(),
			fmt.Sprintf("%.1f%%", want*100),
			fmt.Sprintf("%.1f%%", fr[m]*100),
			fmt.Sprintf("%+.2f pp", (fr[m]-want)*100),
		})
	}
	res.Notes = "Deck generator lays radial material bands whose cell fractions track Table 2 within grid rounding; homogeneous mode assumes 100% per material by construction."
	return res, nil
}

// Table3 reproduces the boundary-exchange example message sizes.
func Table3(_ context.Context, env *Env) (*Result, error) {
	b := CanonicalFigure4Boundary()
	msgs := phases.BoundaryExchangeMessages(b)
	// Group messages by (step, size).
	type key struct {
		step  int
		bytes int
	}
	counts := map[key]int{}
	for _, m := range msgs {
		counts[key{m.Step, m.Bytes}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		si, sj := keys[i].step, keys[j].step
		if si == -1 {
			si = 1 << 30
		}
		if sj == -1 {
			sj = 1 << 30
		}
		if si != sj {
			return si < sj
		}
		return keys[i].bytes > keys[j].bytes
	})
	res := &Result{
		ID:     "table3",
		Title:  "Boundary exchange example (paper Table 3 / Figure 4)",
		Header: []string{"Material", "Msg. Count", "Size of Each Msg (bytes)"},
	}
	for _, k := range keys {
		name := "All"
		if k.step >= 0 {
			name = mesh.ExchangeGroup(k.step).String()
		}
		res.Rows = append(res.Rows, []string{
			name, fmt.Sprintf("%d", counts[k]), fmt.Sprintf("%d", k.bytes),
		})
	}
	res.Notes = "Exactly matches Table 3: H.E. gas 2x48+4x36, aluminum (both) 2x84+4x48, foam 2x60+4x36, final step 6x120 bytes."
	return res, nil
}

// Table4 reproduces the collective schedule.
func Table4(_ context.Context, env *Env) (*Result, error) {
	tot := phases.Table4()
	res := &Result{
		ID:     "table4",
		Title:  "Collective communication operations per iteration (paper Table 4)",
		Header: []string{"Type", "Count", "Size (bytes)", "Paper"},
	}
	paper := map[string]string{
		"MPI_Bcast/4": "3", "MPI_Bcast/8": "3",
		"MPI_Allreduce/4": "9", "MPI_Allreduce/8": "13",
		"MPI_Gather/32": "1",
	}
	add := func(op string, bySize map[int]int) {
		sizes := make([]int, 0, len(bySize))
		for s := range bySize {
			sizes = append(sizes, s)
		}
		sort.Ints(sizes)
		for _, s := range sizes {
			res.Rows = append(res.Rows, []string{
				op, fmt.Sprintf("%d", bySize[s]), fmt.Sprintf("%d", s),
				paper[fmt.Sprintf("%s/%d", op, s)],
			})
		}
	}
	add("MPI_Bcast", tot.BcastBySize)
	add("MPI_Allreduce", tot.AllreduceBySize)
	add("MPI_Gather", tot.GatherBySize)
	res.Notes = "Derived from the phase table rather than stated independently; agreement with Table 4 is a consistency check on the Table 1 encoding."
	return res, nil
}

// validationRow formats one measured-vs-predicted row.
func validationRow(label string, p int, meas, pred float64, paperErr string) []string {
	return []string{
		label,
		fmt.Sprintf("%d", p),
		fmt.Sprintf("%.0f", meas*1e3),
		fmt.Sprintf("%.0f", pred*1e3),
		stats.FormatPct(stats.RelErr(meas, pred)),
		paperErr,
	}
}

// Table5 validates the mesh-specific model, calibrated with the §3.1
// least-squares method on each deck, as the paper did ("This second method
// is used for the validation results presented below").
func Table5(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "table5",
		Title:  "Validation results for mesh-specific model (paper Table 5)",
		Header: []string{"Problem", "PEs", "Meas (ms)", "Pred (ms)", "Error", "Paper error"},
	}
	cases := []struct {
		size     mesh.StandardSize
		calPs    []int
		predPs   []int
		paperErr []string
	}{
		// The small deck's predictions sit in the per-cell cost knee, so
		// its calibration campaigns (2-32 PEs) cannot pin the curves there:
		// the paper saw -59%, +52.7%, -10.0%.
		{mesh.Small, []int{2, 8, 32}, []int{16, 64, 128}, []string{"-59.0%", "52.7%", "-10.0%"}},
		// The medium deck stays right of the knee: 5.9%, -0.8%, 4.5%.
		{mesh.Medium, []int{16, 64, 256}, []int{16, 64, 128}, []string{"5.9%", "-0.8%", "4.5%"}},
	}
	if env.Quick {
		cases[0].calPs = []int{2, 8}
		cases[1].calPs = []int{8, 32}
		cases[1].predPs = []int{16, 64, 128}
	}
	net := env.Net
	// Each deck's calibration campaign is one engine job, and each
	// validation point within it is another; rows come back in paper
	// order regardless of pool width.
	rowsByCase, err := engine.Map(ctx, env.pool(), len(cases), func(ctx context.Context, ci int) ([][]string, error) {
		c := cases[ci]
		d, err := env.Deck(c.size)
		if err != nil {
			return nil, err
		}
		cal, err := env.DeckCalibration(d, c.calPs)
		if err != nil {
			return nil, err
		}
		model := newMeshSpecific(cal, net)
		return engine.Map(ctx, env.pool(), len(c.predPs), func(_ context.Context, i int) ([]string, error) {
			p := c.predPs[i]
			sum, err := env.Partition(d, p)
			if err != nil {
				return nil, err
			}
			meas, err := env.Measure(sum)
			if err != nil {
				return nil, err
			}
			pred, err := model.Predict(sum)
			if err != nil {
				return nil, err
			}
			return validationRow(c.size.String(), p, meas, pred.Total, c.paperErr[i]), nil
		})
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range rowsByCase {
		res.Rows = append(res.Rows, rows...)
	}
	res.Notes = "Shape match: small-deck errors oscillate wildly (knee regime, as in the paper); medium-deck errors stay within ~10%. Absolute errors differ because the measured platform is a simulator."
	return res, nil
}

// Table6 validates the general model (homogeneous), calibrated with
// contrived grids.
func Table6(ctx context.Context, env *Env) (*Result, error) {
	cal, err := env.ContrivedCalibration()
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "table6",
		Title:  "Krak validation results for general model, homogeneous (paper Table 6)",
		Header: []string{"Problem", "PEs", "Meas (ms)", "Pred (ms)", "Error", "Paper error"},
	}
	cases := []struct {
		size     mesh.StandardSize
		predPs   []int
		paperErr []string
	}{
		{mesh.Medium, []int{128, 256, 512}, []string{"-8.0%", "-4.0%", "2.9%"}},
		{mesh.Large, []int{128, 256, 512}, []string{"-4.3%", "-4.6%", "-1.0%"}},
	}
	model := newGeneralHomo(cal, env.Net)
	// Flatten the (deck, PE-count) grid into one engine job per
	// validation point; every point partitions, measures, and predicts
	// independently against the shared caches.
	type point struct {
		size     mesh.StandardSize
		p        int
		paperErr string
	}
	var pts []point
	for _, c := range cases {
		for i, p := range c.predPs {
			pts = append(pts, point{c.size, p, c.paperErr[i]})
		}
	}
	rows, err := engine.Map(ctx, env.pool(), len(pts), func(_ context.Context, i int) ([]string, error) {
		pt := pts[i]
		d, err := env.Deck(pt.size)
		if err != nil {
			return nil, err
		}
		sum, err := env.Partition(d, pt.p)
		if err != nil {
			return nil, err
		}
		meas, err := env.Measure(sum)
		if err != nil {
			return nil, err
		}
		pred, err := model.Predict(d.Mesh.NumCells(), pt.p)
		if err != nil {
			return nil, err
		}
		return validationRow(pt.size.String(), pt.p, meas, pred.Total, pt.paperErr), nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = "The homogeneous general model validates within a few percent and is best at scale, matching the paper's headline 512-PE accuracy of ~3%."
	return res, nil
}
