package experiments

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGoldenRegistry -update
var update = flag.Bool("update", false, "rewrite the golden experiment outputs")

// TestGoldenRegistry pins the rendered output of every experiment
// registry id — Tables 1–6, Figures 1–5, the five ablations, and the
// sensitivity study — against checked-in golden files, so a refactor
// anywhere in the model, simulator, partitioner, or rendering stack
// cannot silently drift the paper's reproduced numbers. The quick
// environment is fully deterministic (counter-derived noise, fixed
// seed, fixed shrunken decks), so these bytes are stable across
// machines and parallelism levels.
//
// If a change is *supposed* to move the numbers (a model fix, a new
// deck), regenerate with -update and review the golden diff like any
// other code change.
func TestGoldenRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry sweep")
	}
	env := NewQuickEnv()
	ctx := context.Background()
	for _, e := range Registry {
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(ctx, env)
			if err != nil {
				t.Fatal(err)
			}
			got := res.Render()
			path := filepath.Join("testdata", "golden", e.ID+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from golden output.\nIf the change is intentional, regenerate with -update and review the diff.\n--- got ---\n%s\n--- want ---\n%s",
					e.ID, got, want)
			}
		})
	}
}

// TestGoldenFilesCoverRegistry fails if a registry id has no golden
// file or a stale golden file has no registry id — the suite must track
// the registry exactly.
func TestGoldenFilesCoverRegistry(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("reading golden dir (run TestGoldenRegistry with -update first): %v", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		onDisk[e.Name()] = true
	}
	for _, e := range Registry {
		name := e.ID + ".txt"
		if !onDisk[name] {
			t.Errorf("registry id %s has no golden file", e.ID)
		}
		delete(onDisk, name)
	}
	for name := range onDisk {
		t.Errorf("golden file %s matches no registry id", name)
	}
}
