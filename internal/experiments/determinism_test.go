package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"krak/internal/engine"
)

// TestParallelOutputByteIdentical is the determinism regression test for
// the concurrent engine: regenerating every table and figure with 8
// workers (the `krak experiments --parallel 8` path) must produce output
// byte-identical to the serial path for every artifact ID. Both runs use
// fresh environments so neither can coast on the other's caches.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full registry sweeps")
	}
	ctx := context.Background()

	serialEnv := NewQuickEnv() // Pool nil: rows evaluate serially too
	serial, err := RunAll(ctx, serialEnv, nil, engine.Serial())
	if err != nil {
		t.Fatal(err)
	}

	parEnv := NewQuickEnv()
	parEnv.Pool = engine.New(8)
	parallel, err := RunAll(ctx, parEnv, nil, engine.New(8))
	if err != nil {
		t.Fatal(err)
	}

	if len(serial) != len(parallel) || len(serial) != len(Registry) {
		t.Fatalf("result counts: serial %d, parallel %d, registry %d",
			len(serial), len(parallel), len(Registry))
	}
	for i, e := range Registry {
		s, p := serial[i], parallel[i]
		if s.ID != e.ID || p.ID != e.ID {
			t.Fatalf("ordering broken at %d: serial %s, parallel %s, want %s", i, s.ID, p.ID, e.ID)
		}
		if sr, pr := s.Render(), p.Render(); sr != pr {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				e.ID, sr, pr)
		}
	}
}

// TestRunAllUnknownID checks RunAll rejects unknown ids before running
// anything.
func TestRunAllUnknownID(t *testing.T) {
	_, err := RunAll(context.Background(), NewQuickEnv(), []string{"table1", "nope"}, engine.Serial())
	if err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestRunAllSubsetOrder checks results come back in ids order, not
// completion order.
func TestRunAllSubsetOrder(t *testing.T) {
	ids := []string{"table4", "table1", "table3"}
	rs, err := RunAll(context.Background(), NewQuickEnv(), ids, engine.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if rs[i].ID != id {
			t.Fatalf("result %d = %s, want %s", i, rs[i].ID, id)
		}
	}
}

// TestRunAllCancelled checks a pre-cancelled context aborts the batch.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunAll(ctx, NewQuickEnv(), []string{"table1"}, engine.Serial()); err == nil {
		t.Fatal("cancelled context did not abort")
	}
}

// TestOptimizedHotPathMatchesGoldens is the PR 5 seed-determinism parity
// suite: the allocation-free partitioner (scratch arena + cached-gain FM)
// and the zero-alloc simulator runner must reproduce the pre-refactor
// golden outputs byte-for-byte for every registry id, at serial and
// parallel pool widths alike (the `krak experiments -parallel N` paths).
// Unlike TestGoldenRegistry (serial) and TestParallelOutputByteIdentical
// (parallel vs serial in-process), this pins the parallel runs directly
// against the checked-in goldens, so a nondeterminism that shifted both
// in-process runs the same way would still be caught.
func TestOptimizedHotPathMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("two full registry sweeps")
	}
	ctx := context.Background()
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallel-%d", workers), func(t *testing.T) {
			env := NewQuickEnv()
			pool := engine.New(workers)
			env.Pool = pool
			rs, err := RunAll(ctx, env, nil, pool)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != len(Registry) {
				t.Fatalf("got %d results, want %d", len(rs), len(Registry))
			}
			for i, e := range Registry {
				want, err := os.ReadFile(filepath.Join("testdata", "golden", e.ID+".txt"))
				if err != nil {
					t.Fatalf("missing golden for %s: %v", e.ID, err)
				}
				if got := rs[i].Render(); got != string(want) {
					t.Errorf("%s at parallel %d drifted from golden output", e.ID, workers)
				}
			}
		})
	}
}
