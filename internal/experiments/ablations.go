package experiments

import (
	"context"
	"fmt"

	"krak/internal/cluster"
	"krak/internal/core"
	"krak/internal/engine"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/partition"
)

// ablationDeck picks a mid-sized configuration all ablations share.
func ablationDeck(env *Env) (*mesh.Deck, int, error) {
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		return nil, 0, err
	}
	p := 128
	if env.Quick {
		p = 32
	}
	return d, p, nil
}

// AblationPartitioner compares partitioners by measured iteration time —
// the "quantitatively evaluating ... alterations to the application, such
// as the data-partitioning algorithms" use case from the paper's
// introduction.
func AblationPartitioner(ctx context.Context, env *Env) (*Result, error) {
	d, p, err := ablationDeck(env)
	if err != nil {
		return nil, err
	}
	g := partition.FromMesh(d.Mesh)
	res := &Result{
		ID:     "ablation-partitioner",
		Title:  fmt.Sprintf("Partitioner ablation (%s deck, %d PEs)", d.Name, p),
		Header: []string{"Partitioner", "Edge cut", "Imbalance", "Max neighbors", "Iteration (ms)"},
	}
	parters := []partition.Partitioner{
		partition.NewMultilevel(env.Seed),
		partition.RCB{},
		partition.SFC{},
		partition.Strips{},
		partition.Random{Seed: env.Seed},
	}
	// Each partitioner's partition+measure run is one engine job; they
	// share the graph read-only.
	rows, err := engine.Map(ctx, env.pool(), len(parters), func(_ context.Context, i int) ([]string, error) {
		pr := parters[i]
		part, err := pr.Partition(g, p)
		if err != nil {
			return nil, err
		}
		sum, err := mesh.Summarize(d.Mesh, part, p)
		if err != nil {
			return nil, err
		}
		meas, err := env.Measure(sum)
		if err != nil {
			return nil, err
		}
		return []string{
			pr.Name(),
			fmt.Sprintf("%d", sum.EdgeCut()),
			fmt.Sprintf("%.3f", sum.Imbalance()),
			fmt.Sprintf("%d", sum.MaxNeighbors()),
			fmt.Sprintf("%.1f", meas*1e3),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = "The multilevel (METIS-style) partitioner minimizes edge cut and iteration time; random partitioning explodes boundary traffic."
	return res, nil
}

// AblationOverlap quantifies how much the application's asynchronous-send
// overlap buys — the effect Equation (5) deliberately ignores.
func AblationOverlap(_ context.Context, env *Env) (*Result, error) {
	d, p, err := ablationDeck(env)
	if err != nil {
		return nil, err
	}
	sum, err := env.Partition(d, p)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "ablation-overlap",
		Title:  fmt.Sprintf("Message overlap ablation (%s deck, %d PEs)", d.Name, p),
		Header: []string{"Send semantics", "Iteration (ms)"},
	}
	for _, c := range []struct {
		name      string
		serialize bool
	}{
		{"asynchronous (overlapped)", false},
		{"serialized (Equation 5 assumption)", true},
	} {
		cfg := env.clusterConfig()
		cfg.SerializeSends = c.serialize
		_, mean, err := cluster.SimulateIterations(sum, cfg, env.repeats())
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{c.name, fmt.Sprintf("%.1f", mean*1e3)})
	}
	res.Notes = "Serializing sends (what Equation 5 charges) costs more than the overlapped reality; the model over-predicts communication by roughly this gap."
	return res, nil
}

// AblationKnee removes the per-phase fixed overheads from the ground truth
// and shows the small-deck mesh-specific errors collapse — evidence that
// the Table 5 failures are a knee phenomenon.
func AblationKnee(_ context.Context, env *Env) (*Result, error) {
	d, err := env.Deck(mesh.Small)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "ablation-knee",
		Title:  "Knee ablation: small-deck mesh-specific error with and without the knee",
		Header: []string{"Ground truth", "PEs", "Meas (ms)", "Pred (ms)", "Error"},
	}
	predPs := []int{16, 64, 128}
	calPs := []int{2, 8, 32}
	if env.Quick {
		calPs = []int{2, 8}
	}
	for _, variant := range []struct {
		name   string
		useRaw bool
	}{
		{"with knee (default)", true},
		{"knee removed", false},
	} {
		sub := &Env{Net: env.Net, Seed: env.Seed, Repeats: env.Repeats, Quick: env.Quick}
		if variant.useRaw {
			sub.Costs = env.Costs
		} else {
			sub.Costs = env.Costs.WithoutKnee()
		}
		cal, err := sub.DeckCalibration(d, calPs)
		if err != nil {
			return nil, err
		}
		model := newMeshSpecific(cal, sub.Net)
		for _, p := range predPs {
			sum, err := sub.Partition(d, p)
			if err != nil {
				return nil, err
			}
			meas, err := sub.Measure(sum)
			if err != nil {
				return nil, err
			}
			pred, err := model.Predict(sum)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, []string{
				variant.name, fmt.Sprintf("%d", p),
				fmt.Sprintf("%.1f", meas*1e3),
				fmt.Sprintf("%.1f", pred.Total*1e3),
				fmt.Sprintf("%.1f%%", relErrPct(meas, pred.Total)),
			})
		}
	}
	res.Notes = "Without the fixed per-phase overheads the per-cell cost has no knee, extrapolation is safe, and the small-deck errors shrink dramatically — confirming the paper's diagnosis of its Table 5 outliers."
	return res, nil
}

// AblationCombine toggles the §4.1 combining of identical materials in the
// mesh-specific model's Equation (5).
func AblationCombine(_ context.Context, env *Env) (*Result, error) {
	d, p, err := ablationDeck(env)
	if err != nil {
		return nil, err
	}
	sum, err := env.Partition(d, p)
	if err != nil {
		return nil, err
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		return nil, err
	}
	meas, err := env.Measure(sum)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "ablation-combine",
		Title:  fmt.Sprintf("Equation 5 refinements ablation (%s deck, %d PEs)", d.Name, p),
		Header: []string{"Exchange options", "Pred (ms)", "Error vs measured"},
	}
	for _, c := range []struct {
		name string
		opt  core.BoundaryExchangeOptions
	}{
		{"combine + ghost surcharge (Table 3 rules)", core.BoundaryExchangeOptions{CombineIdenticalMaterials: true, GhostSurcharge: true}},
		{"combine only", core.BoundaryExchangeOptions{CombineIdenticalMaterials: true}},
		{"plain Equation 5", core.BoundaryExchangeOptions{}},
	} {
		m := &core.MeshSpecific{Costs: cal, Net: env.Net, Exchange: c.opt}
		pred, err := m.Predict(sum)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			c.name,
			fmt.Sprintf("%.1f", pred.Total*1e3),
			fmt.Sprintf("%.1f%%", relErrPct(meas, pred.Total)),
		})
	}
	res.Notes = "Splitting the aluminum layers into separate exchange steps adds message latencies; the paper treats identical materials as one during boundary exchanges."
	return res, nil
}

// SensitivityStudy reports how the modeled iteration time responds to
// halved latency, doubled bandwidth, and a 2x CPU across scales — the
// quantitative procurement analysis the paper's introduction motivates.
func SensitivityStudy(_ context.Context, env *Env) (*Result, error) {
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		return nil, err
	}
	cal, err := env.ContrivedCalibration()
	if err != nil {
		return nil, err
	}
	model := newGeneralHomo(cal, env.Net)
	res := &Result{
		ID:     "sensitivity",
		Title:  fmt.Sprintf("Machine sensitivity (%s deck, general homogeneous model)", d.Name),
		Header: []string{"PEs", "Base (ms)", "Comm share", "1/2 latency", "2x bandwidth", "2x CPU"},
	}
	ps := []int{16, 64, 256, 1024}
	if env.Quick {
		ps = []int{16, 128}
	}
	for _, p := range ps {
		s, err := core.AnalyzeGeneral(model, d.Mesh.NumCells(), p)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%.1f", s.Base*1e3),
			fmt.Sprintf("%.1f%%", s.CommFraction*100),
			fmt.Sprintf("-%.1f%%", s.LatencyGain*100),
			fmt.Sprintf("-%.1f%%", s.BandwidthGain*100),
			fmt.Sprintf("-%.1f%%", s.ComputeGain*100),
		})
	}
	res.Notes = "Compute upgrades dominate at every scale the paper studied; latency begins to matter at 1024 PEs as small-message collectives and exchanges pile up."
	return res, nil
}

// AblationNetwork re-runs the Table 6 medium/512 point on three
// interconnects — the procurement what-if from the paper's introduction.
func AblationNetwork(ctx context.Context, env *Env) (*Result, error) {
	d, err := env.Deck(mesh.Medium)
	if err != nil {
		return nil, err
	}
	p := 512
	if env.Quick {
		p = 64
	}
	res := &Result{
		ID:     "ablation-network",
		Title:  fmt.Sprintf("Interconnect what-if (%s deck, %d PEs)", d.Name, p),
		Header: []string{"Network", "Measured (ms)", "Homo model (ms)", "Error"},
	}
	nets := []*netmodel.Model{netmodel.GigE(), netmodel.QsNetI(), netmodel.Infiniband()}
	// Each interconnect evaluates in its own sub-environment (its caches
	// cannot be shared — the measured times differ per network), so the
	// three what-ifs are natural engine jobs.
	rows, err := engine.Map(ctx, env.pool(), len(nets), func(_ context.Context, i int) ([]string, error) {
		net := nets[i]
		sub := &Env{Net: net, Costs: env.Costs, Seed: env.Seed, Repeats: env.Repeats, Quick: env.Quick}
		sum, err := sub.Partition(d, p)
		if err != nil {
			return nil, err
		}
		meas, err := sub.Measure(sum)
		if err != nil {
			return nil, err
		}
		cal, err := sub.ContrivedCalibration()
		if err != nil {
			return nil, err
		}
		pred, err := newGeneralHomo(cal, net).Predict(d.Mesh.NumCells(), p)
		if err != nil {
			return nil, err
		}
		return []string{
			net.Name(),
			fmt.Sprintf("%.1f", meas*1e3),
			fmt.Sprintf("%.1f", pred.Total*1e3),
			fmt.Sprintf("%.1f%%", relErrPct(meas, pred.Total)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	res.Notes = "The model tracks the measured platform across interconnects, supporting the procurement use case that motivates analytic models."
	return res, nil
}
