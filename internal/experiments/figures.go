package experiments

import (
	"context"
	"fmt"
	"math"

	"krak/internal/compute"
	"krak/internal/core"
	"krak/internal/engine"
	"krak/internal/mesh"
	"krak/internal/netmodel"
	"krak/internal/phases"
	"krak/internal/textplot"
)

// newMeshSpecific and newGeneralHomo centralize model construction so the
// tables and ablations share configurations.
func newMeshSpecific(cal *compute.Calibrated, net *netmodel.Model) *core.MeshSpecific {
	return core.NewMeshSpecific(cal, net)
}

func newGeneralHomo(cal *compute.Calibrated, net *netmodel.Model) *core.General {
	return core.NewGeneral(cal, net, core.Homogeneous)
}

// CanonicalFigure4Boundary builds the processor boundary of Figure 4: 3
// faces of high-explosive gas, 2 of aluminum, 3 of foam, and 2 more of
// aluminum, with ghost nodes at the three internal material junctions.
func CanonicalFigure4Boundary() *mesh.PairBoundary {
	b := &mesh.PairBoundary{Key: mesh.MakePairKey(0, 1)}
	b.FacesByMaterial[mesh.HEGas] = 3
	b.FacesByMaterial[mesh.AluminumInner] = 2
	b.FacesByMaterial[mesh.Foam] = 3
	b.FacesByMaterial[mesh.AluminumOuter] = 2
	b.FacesByGroup[mesh.GroupHEGas] = 3
	b.FacesByGroup[mesh.GroupAluminum] = 4
	b.FacesByGroup[mesh.GroupFoam] = 3
	b.TotalFaces = 10
	b.GhostNodes = 11
	b.OwnedByA = 6
	b.OwnedByB = 5
	b.MultiGroupGhosts = 3
	b.MultiGroupGhostsByGroup[mesh.GroupHEGas] = 1
	b.MultiGroupGhostsByGroup[mesh.GroupAluminum] = 3
	b.MultiGroupGhostsByGroup[mesh.GroupFoam] = 2
	return b
}

// Figure1 partitions the small deck on 16 processors and renders the
// subgrid map with the material-layer boundaries.
func Figure1(_ context.Context, env *Env) (*Result, error) {
	d, err := env.Deck(mesh.Small)
	if err != nil {
		return nil, err
	}
	const p = 16
	part, err := env.PartitionVector(d, p)
	if err != nil {
		return nil, err
	}
	sum, err := env.Partition(d, p)
	if err != nil {
		return nil, err
	}
	w, h := d.Mesh.W, d.Mesh.H
	gridText := textplot.GridMap(
		fmt.Sprintf("Partition of %d cells on %d PEs (characters = PE ids):", d.Mesh.NumCells(), p),
		w, h, func(x, y int) int { return part[y*w+x] })
	matText := textplot.GridMap(
		"Material map (0=HE gas, 1=inner Al, 2=foam, 3=outer Al):",
		w, h, func(x, y int) int { return int(d.Mesh.CellMaterial[y*w+x]) })

	res := &Result{
		ID:     "figure1",
		Title:  "Example partitioning of 3200 cells on 16 processors (paper Figure 1)",
		Header: []string{"PE", "Cells", "HE Gas", "Al(In)", "Foam", "Al(Out)", "Neighbors"},
		Text:   gridText + "\n" + matText,
	}
	for pe := 0; pe < p; pe++ {
		c := sum.CellsByMaterial[pe]
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%d", pe),
			fmt.Sprintf("%d", sum.TotalCells[pe]),
			fmt.Sprintf("%d", c[mesh.HEGas]),
			fmt.Sprintf("%d", c[mesh.AluminumInner]),
			fmt.Sprintf("%d", c[mesh.Foam]),
			fmt.Sprintf("%d", c[mesh.AluminumOuter]),
			fmt.Sprintf("%d", len(sum.NeighborsOf[pe])),
		})
	}
	res.Notes = fmt.Sprintf(
		"Irregular Metis-style partition: edge cut %d faces, imbalance %.3f, neighbor counts vary per PE — the irregularity the paper says makes Krak hard to model.",
		sum.EdgeCut(), sum.Imbalance())
	return res, nil
}

// Figure2 simulates the 65,536-cell deck on 256 processors and reports each
// phase's computation time for one representative single-material processor
// per material ("No MPI", as the paper's figure).
func Figure2(_ context.Context, env *Env) (*Result, error) {
	d, err := env.Deck(mesh.Figure2)
	if err != nil {
		return nil, err
	}
	p := 256
	if env.Quick {
		p = 64
	}
	sum, err := env.Partition(d, p)
	if err != nil {
		return nil, err
	}
	r, err := env.MeasureResult(sum)
	if err != nil {
		return nil, err
	}
	// Pick, per material, the PE with the most cells of that material whose
	// subgrid is (nearly) pure — at 256 PEs subgrids are homogeneous.
	reps := [mesh.NumMaterials]int{-1, -1, -1, -1}
	for m := 0; m < mesh.NumMaterials; m++ {
		best := -1
		for pe := 0; pe < sum.P; pe++ {
			c := sum.CellsByMaterial[pe]
			if c[m] == sum.TotalCells[pe] && sum.TotalCells[pe] > 0 {
				if best == -1 || sum.TotalCells[pe] > sum.TotalCells[best] {
					best = pe
				}
			}
		}
		if best == -1 { // fall back to the most-of-this-material PE
			most := 0
			for pe := 0; pe < sum.P; pe++ {
				if sum.CellsByMaterial[pe][m] > most {
					most = sum.CellsByMaterial[pe][m]
					best = pe
				}
			}
		}
		reps[m] = best
	}

	res := &Result{
		ID:     "figure2",
		Title:  fmt.Sprintf("Computation time by phase, %d PEs, %d cells (paper Figure 2)", p, d.Mesh.NumCells()),
		Header: []string{"Phase", "HE Gas (ms)", "Al Inner (ms)", "Foam (ms)", "Al Outer (ms)", "Material dependent"},
	}
	labels := make([]string, phases.Count)
	heSeries := make([]float64, phases.Count)
	for i, ph := range phases.Table1() {
		row := []string{fmt.Sprintf("%d", ph.Number)}
		for m := 0; m < mesh.NumMaterials; m++ {
			t := 0.0
			if reps[m] >= 0 {
				t = r.ComputeTimes[i][reps[m]]
			}
			row = append(row, fmt.Sprintf("%.3f", t*1e3))
		}
		dep := "no"
		if ph.MaterialDependent {
			dep = "yes"
		}
		row = append(row, dep)
		res.Rows = append(res.Rows, row)
		labels[i] = fmt.Sprintf("phase %2d", ph.Number)
		if reps[mesh.HEGas] >= 0 {
			heSeries[i] = r.ComputeTimes[i][reps[mesh.HEGas]] * 1e3
		}
	}
	res.Text = textplot.Bars("HE-gas processor, computation time per phase (ms):", labels, heSeries, 48)
	res.Notes = "Material-dependent phases (2, 5, 7, 12, 14) show per-material spread; the remaining phases depend only on cell count, matching the paper's reading of its Figure 2."
	return res, nil
}

// Figure3 tabulates per-cell computation cost versus cells-per-processor
// for phases 1, 2, and 7 — ground truth and the contrived calibration.
func Figure3(_ context.Context, env *Env) (*Result, error) {
	cal, err := env.ContrivedCalibration()
	if err != nil {
		return nil, err
	}
	truth := env.Costs.WithoutNoise()
	sizes := []int{1, 10, 100, 1000, 10000, 100000, 1000000}
	if env.Quick {
		sizes = sizes[:5]
	}
	res := &Result{
		ID:     "figure3",
		Title:  "Per-cell computation times for phases 1, 2, 7 (paper Figure 3)",
		Header: []string{"Phase", "Cells/PE", "HE Gas (s)", "Al Inner (s)", "Foam (s)", "Al Outer (s)", "Calibrated HE (s)"},
	}
	var chart textplot.Chart
	chart.Title = "Per-cell time vs cells per processor (log-log), phase 2"
	chart.LogX, chart.LogY = true, true
	chart.XLabel = "cells per PE"
	chart.YLabel = "s/cell"
	for _, ph := range []int{1, 2, 7} {
		var xs, ys []float64
		for _, n := range sizes {
			row := []string{fmt.Sprintf("%d", ph), fmt.Sprintf("%d", n)}
			for m := 0; m < mesh.NumMaterials; m++ {
				row = append(row, fmt.Sprintf("%.3g", truth.PerCellCost(ph, mesh.Material(m), n)))
			}
			row = append(row, fmt.Sprintf("%.3g", cal.PerCell(ph, mesh.HEGas, n)))
			res.Rows = append(res.Rows, row)
			if ph == 2 {
				xs = append(xs, float64(n))
				ys = append(ys, truth.PerCellCost(ph, mesh.HEGas, n))
			}
		}
		if ph == 2 {
			chart.AddSeries(textplot.Series{Name: "HE gas (truth)", Marker: '*', Xs: xs, Ys: ys})
		}
	}
	res.Text = chart.Render()
	res.Notes = "Per-cell cost is flat at large subgrids and climbs as subgrids shrink (the knee), with material spread in the material-dependent phases — the paper's Figure 3 shape."
	return res, nil
}

// Figure4 renders the canonical four-material boundary and its message
// tally (the geometry behind Table 3).
func Figure4(_ context.Context, env *Env) (*Result, error) {
	b := CanonicalFigure4Boundary()
	var art = `
      Processor PA | Processor PB
   H.E. Gas   x 3  |      (the boundary runs vertically;
   Aluminum   x 2  |       each row is one shared face)
   Foam       x 3  |
   Aluminum   x 2  |
`
	res := &Result{
		ID:     "figure4",
		Title:  "Processor boundary with four materials (paper Figure 4)",
		Header: []string{"Quantity", "Value"},
		Text:   art,
	}
	res.Rows = [][]string{
		{"Total shared faces", fmt.Sprintf("%d", b.TotalFaces)},
		{"HE gas faces", fmt.Sprintf("%d", b.FacesByGroup[mesh.GroupHEGas])},
		{"Aluminum (both) faces", fmt.Sprintf("%d", b.FacesByGroup[mesh.GroupAluminum])},
		{"Foam faces", fmt.Sprintf("%d", b.FacesByGroup[mesh.GroupFoam])},
		{"Ghost nodes", fmt.Sprintf("%d", b.GhostNodes)},
		{"Multi-material ghost nodes", fmt.Sprintf("%d", b.MultiGroupGhosts)},
		{"Boundary-exchange messages", fmt.Sprintf("%d", len(phases.BoundaryExchangeMessages(b)))},
	}
	res.Notes = "Identical materials (the two aluminum layers) are combined during boundary exchange; the three material junctions each contribute a multi-material ghost node."
	return res, nil
}

// Figure5 sweeps processor counts for the medium and large decks and plots
// measured vs general-homogeneous vs general-heterogeneous iteration time.
func Figure5(ctx context.Context, env *Env) (*Result, error) {
	cal, err := env.ContrivedCalibration()
	if err != nil {
		return nil, err
	}
	sizes := []mesh.StandardSize{mesh.Medium, mesh.Large}
	ps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	if env.Quick {
		sizes = sizes[:1]
		ps = []int{1, 4, 16, 64, 256}
	}
	res := &Result{
		ID:     "figure5",
		Title:  "General model validation, iteration time vs processor count (paper Figure 5)",
		Header: []string{"Problem", "PEs", "Measured (ms)", "Homogeneous (ms)", "Heterogeneous (ms)", "Homo err", "Het err"},
	}
	homo := core.NewGeneral(cal, env.Net, core.Homogeneous)
	het := core.NewGeneral(cal, env.Net, core.Heterogeneous)
	// Each (deck, PE-count) sweep point is one engine job; the rows and
	// chart series are assembled afterwards in sweep order so the figure
	// is identical at every pool width.
	type point struct {
		meas, homoT, hetT float64
		skip              bool
	}
	var text string
	for _, sz := range sizes {
		d, err := env.Deck(sz)
		if err != nil {
			return nil, err
		}
		cells := d.Mesh.NumCells()
		pts, err := engine.Map(ctx, env.pool(), len(ps), func(_ context.Context, i int) (point, error) {
			p := ps[i]
			if p > cells {
				return point{skip: true}, nil
			}
			sum, err := env.Partition(d, p)
			if err != nil {
				return point{}, err
			}
			meas, err := env.Measure(sum)
			if err != nil {
				return point{}, err
			}
			ph, err := homo.Predict(cells, p)
			if err != nil {
				return point{}, err
			}
			pe, err := het.Predict(cells, p)
			if err != nil {
				return point{}, err
			}
			return point{meas: meas, homoT: ph.Total, hetT: pe.Total}, nil
		})
		if err != nil {
			return nil, err
		}
		var chart textplot.Chart
		chart.Title = fmt.Sprintf("%s problem: iteration time (s) vs processor count", sz)
		chart.LogX, chart.LogY = true, true
		chart.XLabel = "processors"
		var mx, my, hx, hy, ex, ey []float64
		for i, pt := range pts {
			if pt.skip {
				continue
			}
			p := ps[i]
			res.Rows = append(res.Rows, []string{
				sz.String(), fmt.Sprintf("%d", p),
				fmt.Sprintf("%.1f", pt.meas*1e3),
				fmt.Sprintf("%.1f", pt.homoT*1e3),
				fmt.Sprintf("%.1f", pt.hetT*1e3),
				fmt.Sprintf("%.1f%%", relErrPct(pt.meas, pt.homoT)),
				fmt.Sprintf("%.1f%%", relErrPct(pt.meas, pt.hetT)),
			})
			mx = append(mx, float64(p))
			my = append(my, pt.meas)
			hx = append(hx, float64(p))
			hy = append(hy, pt.homoT)
			ex = append(ex, float64(p))
			ey = append(ey, pt.hetT)
		}
		chart.AddSeries(textplot.Series{Name: "Measured", Marker: 'm', Xs: mx, Ys: my})
		chart.AddSeries(textplot.Series{Name: "Homogeneous", Marker: 'o', Xs: hx, Ys: hy})
		chart.AddSeries(textplot.Series{Name: "Heterogeneous", Marker: 'h', Xs: ex, Ys: ey})
		text += chart.Render() + "\n"
	}
	res.Text = text
	res.Notes = "Homogeneous tracks measured closely at scale; heterogeneous drifts above measured at large P because splitting boundary exchanges per material multiplies small-message latencies — the paper's explanation for Figure 5."
	return res, nil
}

func relErrPct(meas, pred float64) float64 {
	if meas == 0 {
		return math.Inf(1)
	}
	return (meas - pred) / meas * 100
}
