package artifacts

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// DiskCache is the persistent tier under the in-memory artifact caches: a
// content-addressed directory of cache entries that survives restarts and
// is shareable between replicas (writes are atomic rename-into-place, so
// two servers pointed at the same directory — or one serving while
// another warms — never observe a torn entry; last-writer-wins on the
// identical content both would write).
//
// Every entry is addressed by (kind, key): kind namespaces the artifact
// family ("vector" for partition vectors, "response" for rendered HTTP
// bodies), and key is the same content-derived string the in-memory
// caches use, so an entry is valid for exactly as long as its key would
// be. Entries are self-verifying — a schema stamp and a payload checksum
// in the header — and anything that fails verification (truncated write,
// bit rot, a format change between versions) is treated as a miss and
// silently recomputed by the caller; Get deletes such entries so they are
// rewritten fresh.
//
// A nil *DiskCache is a valid no-op tier: Get always misses, Put does
// nothing. Callers thread the cache unconditionally and the nil case
// disables persistence.
type DiskCache struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	corrupt atomic.Int64
}

// diskSchema stamps every entry. Bump it when the on-disk layout — or the
// byte layout of any persisted artifact family — changes; entries with a
// different stamp read as misses and are recomputed, which is how version
// skew between replicas sharing a directory degrades (to recompute, never
// to corruption).
const diskSchema = "krakart/v1"

// maxDiskEntryBytes bounds how large an entry Get will load: the disk
// tier stores partition vectors and rendered responses, both well under
// this; anything larger is treated as corrupt rather than trusted.
const maxDiskEntryBytes = 1 << 28 // 256 MiB

// OpenDiskCache opens (creating if needed) the content-addressed cache
// rooted at dir.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifacts: empty disk cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifacts: creating cache dir: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir reports the cache's root directory ("" for the nil cache).
func (c *DiskCache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// path maps (kind, key) to the entry's file: the key is hashed so
// arbitrary key strings (they embed deck names, fingerprints, separators)
// become fixed-length file names, with a two-hex-digit fan-out directory
// to keep listings manageable.
func (c *DiskCache) path(kind, key string) string {
	sum := sha256.Sum256([]byte(key))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, kind, name[:2], name+".art")
}

// entryHeader renders the verification header: schema stamp and kind on
// the first line, the full key on the second (collision guard and a
// debugging aid), the payload checksum on the third.
func entryHeader(kind, key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	return fmt.Appendf(nil, "%s %s\n%s\n%s\n", diskSchema, kind, key, hex.EncodeToString(sum[:]))
}

// Get returns the payload stored for (kind, key). Any verification
// failure — missing file, wrong schema stamp, key mismatch, checksum
// mismatch, oversized entry — is a miss; invalid files are removed so the
// next Put rewrites them.
func (c *DiskCache) Get(kind, key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	p := c.path(kind, key)
	fi, err := os.Stat(p)
	if err != nil || fi.Size() > maxDiskEntryBytes {
		if err == nil {
			c.drop(p)
		}
		c.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	payload, ok := verifyEntry(kind, key, data)
	if !ok {
		c.drop(p)
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return payload, true
}

// verifyEntry checks an entry's header against the expected (kind, key)
// and the payload against its checksum, returning the payload on success.
func verifyEntry(kind, key string, data []byte) ([]byte, bool) {
	rest, ok := cutLine(data, diskSchema+" "+kind)
	if !ok {
		return nil, false
	}
	rest, ok = cutLine(rest, key)
	if !ok {
		return nil, false
	}
	nl := bytes.IndexByte(rest, '\n')
	if nl < 0 {
		return nil, false
	}
	wantSum, payload := string(rest[:nl]), rest[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != wantSum {
		return nil, false
	}
	return payload, true
}

// cutLine strips a "want\n" prefix from data, reporting whether it was
// there.
func cutLine(data []byte, want string) ([]byte, bool) {
	if len(data) < len(want)+1 || string(data[:len(want)]) != want || data[len(want)] != '\n' {
		return nil, false
	}
	return data[len(want)+1:], true
}

// drop removes an invalid entry, counting it; removal errors are ignored
// (the entry keeps reading as corrupt, which is still just a miss).
func (c *DiskCache) drop(p string) {
	c.corrupt.Add(1)
	os.Remove(p)
}

// Put stores payload under (kind, key). The write is atomic: a temp file
// in the entry's directory renamed into place, so concurrent readers and
// sibling replicas never see a partial entry. Errors are swallowed — the
// disk tier is an optimization, and a failed write simply means the next
// process recomputes.
func (c *DiskCache) Put(kind, key string, payload []byte) {
	if c == nil {
		return
	}
	p := c.path(kind, key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(entryHeader(kind, key, payload))
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if cerr := tmp.Close(); werr != nil || cerr != nil {
		return
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return
	}
	c.writes.Add(1)
}

// DiskStats is a point-in-time snapshot of a DiskCache's counters.
type DiskStats struct {
	Hits, Misses, Writes, Corrupt int64
}

// Stats snapshots the cache's counters (zeros for the nil cache).
func (c *DiskCache) Stats() DiskStats {
	if c == nil {
		return DiskStats{}
	}
	return DiskStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Writes:  c.writes.Load(),
		Corrupt: c.corrupt.Load(),
	}
}

// maxVectorEntries bounds how many cells a persisted partition vector may
// claim, so a corrupt length prefix cannot demand an absurd allocation
// before the checksum would have caught it.
const maxVectorEntries = 1 << 27

// encodeVector serializes a partition vector for the disk tier:
// little-endian uint32 count then one uint32 per cell. Part indices are
// small non-negative ints (bounded by the PE count), so uint32 is exact.
func encodeVector(v []int) []byte {
	out := make([]byte, 4+4*len(v))
	binary.LittleEndian.PutUint32(out, uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint32(out[4+4*i:], uint32(x))
	}
	return out
}

// decodeVector reverses encodeVector, refusing length prefixes beyond
// maxVectorEntries or payloads that do not match their count.
func decodeVector(b []byte) ([]int, bool) {
	if len(b) < 4 {
		return nil, false
	}
	n := int(binary.LittleEndian.Uint32(b))
	if n > maxVectorEntries || len(b) != 4+4*n {
		return nil, false
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	return v, true
}
