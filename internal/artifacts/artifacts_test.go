package artifacts

import (
	"sync"
	"testing"

	"krak/internal/mesh"
	"krak/internal/partition"
)

func TestStandardDeckQuickAndFullCacheSeparately(t *testing.T) {
	s := NewStore()
	quick, err := s.StandardDeck(mesh.Small, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := s.StandardDeck(mesh.Small, false)
	if err != nil {
		t.Fatal(err)
	}
	if quick == full {
		t.Fatal("quick and full decks share a cache entry")
	}
	again, err := s.StandardDeck(mesh.Small, true)
	if err != nil {
		t.Fatal(err)
	}
	if again != quick {
		t.Fatal("quick deck was rebuilt instead of served from cache")
	}
}

func TestLayeredDeckCachesByDims(t *testing.T) {
	s := NewStore()
	a, err := s.LayeredDeck(20, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.LayeredDeck(20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical dims rebuilt the deck")
	}
	c, err := s.LayeredDeck(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct dims shared a cache entry")
	}
}

// TestPartitionArtifactsShareOneRun checks the layering contract: the
// graph, vector, and summary of one (deck, partitioner, seed, p) identity
// are each computed once, the summary derives from the cached vector, and
// different seeds or partitioners key separately.
func TestPartitionArtifactsShareOneRun(t *testing.T) {
	s := NewStore()
	d, err := s.LayeredDeck(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := s.Graph(d)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Graph(d)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("graph rebuilt for the same deck")
	}

	ml := partition.NewMultilevel(1)
	v1, err := s.Vector(d, ml, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summary(d, ml, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.P != 4 {
		t.Fatalf("summary P = %d, want 4", sum.P)
	}
	// The summary's cell counts must agree with the cached vector — it
	// was built from it, not from an independent partitioning run.
	counts := make([]int, 4)
	for _, pe := range v1 {
		counts[pe]++
	}
	for pe, want := range counts {
		if sum.TotalCells[pe] != want {
			t.Fatalf("summary cells[%d] = %d, vector says %d", pe, sum.TotalCells[pe], want)
		}
	}

	v2, err := s.Vector(d, partition.NewMultilevel(2), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if &v1[0] == &v2[0] {
		t.Fatal("different seeds shared a partition vector")
	}
	rcb := partition.RCB{}
	vr, err := s.Vector(d, rcb, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if &vr[0] == &v1[0] {
		t.Fatal("different partitioners shared a partition vector")
	}
}

// TestStoreSingleFlightConcurrent hammers one identity from many
// goroutines and checks everyone gets the same objects back.
func TestStoreSingleFlightConcurrent(t *testing.T) {
	s := NewStore()
	d, err := s.LayeredDeck(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	ml := partition.NewMultilevel(7)
	const n = 16
	sums := make([]*mesh.PartitionSummary, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sum, err := s.Summary(d, ml, 7, 8)
			if err != nil {
				t.Error(err)
				return
			}
			sums[i] = sum
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if sums[i] != sums[0] {
			t.Fatalf("goroutine %d received a different summary instance", i)
		}
	}
}

func TestVectorErrorPropagates(t *testing.T) {
	s := NewStore()
	d, err := s.LayeredDeck(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// More parts than cells is a partitioner error; it must surface (and
	// be memoized) rather than panic.
	if _, err := s.Vector(d, partition.NewMultilevel(1), 1, 1000); err == nil {
		t.Fatal("oversized part count accepted")
	}
	if _, err := s.Summary(d, partition.NewMultilevel(1), 1, 1000); err == nil {
		t.Fatal("oversized summary accepted")
	}
}
