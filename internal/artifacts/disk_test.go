package artifacts

import (
	"os"
	"path/filepath"
	"slices"
	"testing"

	"krak/internal/partition"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	dc, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get("vector", "k"); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte("hello artifact")
	dc.Put("vector", "k", payload)
	got, ok := dc.Get("vector", "k")
	if !ok || string(got) != string(payload) {
		t.Fatalf("Get = %q/%v, want %q", got, ok, payload)
	}
	// The same key under a different kind is a distinct entry.
	if _, ok := dc.Get("response", "k"); ok {
		t.Fatal("kinds share a namespace")
	}
	st := dc.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Writes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 write / 0 corrupt", st)
	}
}

// entryFile locates the single on-disk entry under the cache dir so tests
// can corrupt or rewrite it.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			found = p
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err=%v)", dir, err)
	}
	return found
}

// TestDiskCacheCorruptEntryIsMissAndDropped flips payload bytes and checks
// the checksum catches it: the read is a miss, the entry is removed, and a
// fresh Put restores it.
func TestDiskCacheCorruptEntryIsMissAndDropped(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	dc.Put("vector", "k", []byte("payload bytes"))
	p := entryFile(t, dir)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get("vector", "k"); ok {
		t.Fatal("corrupt entry verified")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not removed: %v", err)
	}
	if st := dc.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count = %d, want 1", st.Corrupt)
	}
	dc.Put("vector", "k", []byte("payload bytes"))
	if _, ok := dc.Get("vector", "k"); !ok {
		t.Fatal("rewritten entry missed")
	}
}

// TestDiskCacheVersionSkewIsMiss rewrites an entry under a future schema
// stamp and checks the current reader treats it as a miss, not an error.
func TestDiskCacheVersionSkewIsMiss(t *testing.T) {
	dir := t.TempDir()
	dc, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	dc.Put("vector", "k", []byte("old payload"))
	p := entryFile(t, dir)
	skewed := append([]byte("krakart/v999 vector\nk\n"), []byte("deadbeef\nnew payload")...)
	if err := os.WriteFile(p, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := dc.Get("vector", "k"); ok {
		t.Fatal("version-skewed entry verified")
	}
	if st := dc.Stats(); st.Corrupt != 1 {
		t.Fatalf("corrupt count = %d, want 1", st.Corrupt)
	}
}

// TestDiskCacheSharedBetweenInstances writes through one DiskCache and
// reads through another over the same directory — the replica-sharing and
// restart contract.
func TestDiskCacheSharedBetweenInstances(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	a.Put("response", "GET /v1/predict", []byte(`{"ok":true}`))
	b, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("response", "GET /v1/predict")
	if !ok || string(got) != `{"ok":true}` {
		t.Fatalf("second instance Get = %q/%v", got, ok)
	}
}

func TestOpenDiskCacheRejectsEmptyDir(t *testing.T) {
	if _, err := OpenDiskCache(""); err == nil {
		t.Fatal("empty dir accepted")
	}
}

func TestNilDiskCacheIsNoOp(t *testing.T) {
	var dc *DiskCache
	dc.Put("vector", "k", []byte("x"))
	if _, ok := dc.Get("vector", "k"); ok {
		t.Fatal("nil cache hit")
	}
	if st := dc.Stats(); st != (DiskStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	if dc.Dir() != "" {
		t.Fatal("nil cache has a dir")
	}
}

func TestVectorEncodeDecode(t *testing.T) {
	for _, v := range [][]int{nil, {0}, {3, 1, 4, 1, 5, 9, 2, 6}, make([]int, 1000)} {
		got, ok := decodeVector(encodeVector(v))
		if !ok || !slices.Equal(got, append([]int{}, v...)) {
			t.Fatalf("round trip of %v -> %v/%v", v, got, ok)
		}
	}
	if _, ok := decodeVector(nil); ok {
		t.Fatal("decoded empty bytes")
	}
	if _, ok := decodeVector([]byte{1, 0, 0, 0}); ok {
		t.Fatal("decoded truncated payload")
	}
	if _, ok := decodeVector([]byte{0xff, 0xff, 0xff, 0xff}); ok {
		t.Fatal("decoded oversized length prefix")
	}
}

// TestStoreVectorPersistsAcrossStores is the restart contract at the Store
// level: a second Store over the same cache directory serves the vector
// from disk, byte-identical, with zero partitioner runs.
func TestStoreVectorPersistsAcrossStores(t *testing.T) {
	dir := t.TempDir()
	dc1, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewStoreWithDisk(dc1)
	d1, err := s1.LayeredDeck(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	ml := partition.NewMultilevel(1)
	v1, err := s1.Vector(d1, ml, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n := s1.PartitionComputes(); n != 1 {
		t.Fatalf("first store ran %d partitions, want 1", n)
	}
	if st := dc1.Stats(); st.Writes != 1 {
		t.Fatalf("first store wrote %d entries, want 1", st.Writes)
	}

	// "Restart": a fresh store, fresh in-memory caches, same directory.
	dc2, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStoreWithDisk(dc2)
	d2, err := s2.LayeredDeck(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := s2.Vector(d2, ml, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(v1, v2) {
		t.Fatal("disk-served vector differs from computed vector")
	}
	if n := s2.PartitionComputes(); n != 0 {
		t.Fatalf("second store ran %d partitions, want 0 (disk should have served it)", n)
	}
	if st := dc2.Stats(); st.Hits != 1 {
		t.Fatalf("second store disk hits = %d, want 1", st.Hits)
	}
}
