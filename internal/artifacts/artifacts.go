// Package artifacts is the cross-layer cache of the expensive derived
// objects every evaluation path needs: built decks, their dual graphs, and
// partition vectors/summaries. The experiments environment, the pkg/krak
// façade (Predict/Simulate/Sweep/RunHydro/Partition), and the HTTP server
// all resolve these through one Store, so a deck is built once, its graph
// is extracted once, and a (deck, partitioner, seed, p) partition is
// computed once — no matter which layer asks first or how many concurrent
// jobs ask at the same time.
//
// Every cache is single-flight (engine.Cache): duplicate concurrent
// requests coalesce onto one computation, and results are immutable by
// convention — callers must never mutate a returned deck, graph, vector,
// or summary. Partition identity is (deck content, partitioner name, seed,
// parts): the partitioner's Name() must pin the algorithm and the caller
// must pass the same seed the partitioner was built with, which is what
// keys cached results to the machine configuration that produced them.
package artifacts

import (
	"fmt"
	"sync/atomic"

	"krak/internal/engine"
	"krak/internal/mesh"
	"krak/internal/partition"
)

// Store memoizes decks, graphs, and partitions in single-flight caches.
// The zero value is ready to use; a Store must not be copied after first
// use. One Store may back any number of environments/machines whose
// artifact-relevant configuration (deck quick-scaling, partitioner seeds —
// both part of the cache keys) differs: the keys keep them apart while
// letting everything shareable be shared.
type Store struct {
	decks   engine.Cache[string, *mesh.Deck]
	graphs  engine.Cache[string, *partition.Graph]
	vectors engine.Cache[string, []int]
	sums    engine.Cache[string, *mesh.PartitionSummary]

	// disk, when set, persists partition vectors under the in-memory
	// vectors cache: a vector computed by any process lands on disk, and a
	// restarted (or sibling) process loads it instead of re-running the
	// partitioner. nil disables persistence.
	disk *DiskCache

	// partitionComputes counts actual partitioner runs — misses of both
	// tiers. A restart over a warm disk cache serves every vector with
	// this counter still at zero, which is exactly what the restart tests
	// and the serving metrics pin.
	partitionComputes atomic.Int64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// NewStoreWithDisk returns an empty store persisting partition vectors to
// dc (nil dc is equivalent to NewStore).
func NewStoreWithDisk(dc *DiskCache) *Store { return &Store{disk: dc} }

// Disk returns the store's persistent tier (nil when persistence is off).
func (s *Store) Disk() *DiskCache { return s.disk }

// PartitionComputes reports how many partition vectors were computed from
// scratch — cache misses that reached the partitioner, rather than being
// served from memory or disk.
func (s *Store) PartitionComputes() int64 { return s.partitionComputes.Load() }

// quickDeckCellCap bounds quick-mode standard decks (cells), halving each
// dimension until the deck fits.
const quickDeckCellCap = 51200

// StandardDeck returns (and caches) a standard deck, shrunk under the
// quick cap when quick is set. Quick and full-size variants cache under
// distinct keys.
func (s *Store) StandardDeck(sz mesh.StandardSize, quick bool) (*mesh.Deck, error) {
	key := sz.String()
	if quick {
		key += "/quick"
	}
	return s.decks.Get(key, func() (*mesh.Deck, error) {
		if quick {
			w, h := sz.Dims()
			for w*h > quickDeckCellCap {
				w /= 2
				h /= 2
			}
			d, err := mesh.BuildLayeredDeck(w, h)
			if err != nil {
				return nil, err
			}
			d.Name = sz.String() + "-quick"
			return d, nil
		}
		return mesh.BuildStandardDeck(sz)
	})
}

// LayeredDeck returns (and caches) the custom W x H layered deck — the
// deck a WithCustomDeck scenario or a sweep over custom sizes resolves to.
func (s *Store) LayeredDeck(w, h int) (*mesh.Deck, error) {
	return s.decks.Get(fmt.Sprintf("layered/%dx%d", w, h), func() (*mesh.Deck, error) {
		return mesh.BuildLayeredDeck(w, h)
	})
}

// Graph returns (and caches) the dual graph of a deck, keyed by the deck's
// content-derived CacheKey.
func (s *Store) Graph(d *mesh.Deck) (*partition.Graph, error) {
	return s.graphs.Get(d.CacheKey(), func() (*partition.Graph, error) {
		return partition.FromMesh(d.Mesh), nil
	})
}

// partKey identifies a partition artifact: deck content, algorithm, seed,
// and part count.
func partKey(d *mesh.Deck, pr partition.Partitioner, seed uint64, p int) string {
	return fmt.Sprintf("%s/%s/%d/%d", d.CacheKey(), pr.Name(), seed, p)
}

// vectorKind namespaces partition vectors in the disk tier.
const vectorKind = "vector"

// Vector returns (and caches) the raw cell-to-part assignment of d under
// pr at p parts. The returned slice is shared — read-only for callers.
// With a disk tier attached, a vector not in memory is loaded from disk
// before falling back to the partitioner, and freshly computed vectors
// are persisted for future processes.
func (s *Store) Vector(d *mesh.Deck, pr partition.Partitioner, seed uint64, p int) ([]int, error) {
	key := partKey(d, pr, seed, p)
	return s.vectors.Get(key, func() ([]int, error) {
		if raw, ok := s.disk.Get(vectorKind, key); ok {
			if v, ok := decodeVector(raw); ok && len(v) == d.Mesh.NumCells() {
				return v, nil
			}
			// Decodable header but undecodable (or wrong-sized) payload:
			// fall through and recompute; the Put below overwrites it.
		}
		g, err := s.Graph(d)
		if err != nil {
			return nil, err
		}
		s.partitionComputes.Add(1)
		part, err := pr.Partition(g, p)
		if err != nil {
			return nil, fmt.Errorf("artifacts: partitioning %s to %d parts: %w", d.Name, p, err)
		}
		s.disk.Put(vectorKind, key, encodeVector(part))
		return part, nil
	})
}

// Summary returns (and caches) the partition summary of d under pr at p
// parts, building on the cached Vector so the quality report, the
// simulator, and the model all derive from one partitioning run.
func (s *Store) Summary(d *mesh.Deck, pr partition.Partitioner, seed uint64, p int) (*mesh.PartitionSummary, error) {
	return s.sums.Get(partKey(d, pr, seed, p), func() (*mesh.PartitionSummary, error) {
		part, err := s.Vector(d, pr, seed, p)
		if err != nil {
			return nil, err
		}
		return mesh.Summarize(d.Mesh, part, p)
	})
}
