package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreRule is the pseudo-rule name under which the framework reports
// malformed //krakcheck:ignore directives (missing rule or reason).
const ignoreRule = "ignore"

// ignoreDirective is one parsed //krakcheck:ignore comment.
type ignoreDirective struct {
	pos    token.Pos
	line   int
	file   string
	rules  []string // rule names the directive silences
	reason string
}

const ignorePrefix = "//krakcheck:ignore"

// collectIgnores extracts every //krakcheck:ignore directive from the
// package's files. Directives missing a rule or a reason are returned as
// diagnostics instead — a suppression that does not say why it is safe is
// itself a violation.
func collectIgnores(fset *token.FileSet, files []*ast.File) ([]ignoreDirective, []Diagnostic) {
	var dirs []ignoreDirective
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Rule:    ignoreRule,
						Message: "krakcheck:ignore needs a rule and a reason: //krakcheck:ignore <rule> <why this is safe>",
					})
					continue
				}
				p := fset.Position(c.Pos())
				dirs = append(dirs, ignoreDirective{
					pos:    c.Pos(),
					line:   p.Line,
					file:   p.Filename,
					rules:  strings.Split(fields[0], ","),
					reason: strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs, bad
}

// suppressed reports whether d is silenced by a directive on its own line
// or the line directly above it.
func suppressed(fset *token.FileSet, d Diagnostic, dirs []ignoreDirective) bool {
	p := fset.Position(d.Pos)
	for _, dir := range dirs {
		if dir.file != p.Filename || (dir.line != p.Line && dir.line != p.Line-1) {
			continue
		}
		for _, r := range dir.rules {
			if r == d.Rule || r == "all" {
				return true
			}
		}
	}
	return false
}
