package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one reported diagnostic bound to the file set that resolves
// its position.
type Finding struct {
	Diagnostic
	Fset *token.FileSet
	Pkg  *Package
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", Posn(f.Fset, f.Pos), f.Rule, f.Message)
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position: //krakcheck:ignore-suppressed diagnostics
// are dropped, and malformed ignore directives are reported under the
// "ignore" pseudo-rule.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs, bad := collectIgnores(pkg.Fset, pkg.Syntax)
		for _, d := range bad {
			findings = append(findings, Finding{Diagnostic: d, Fset: pkg.Fset, Pkg: pkg})
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d Diagnostic) {
				d.Rule = a.Name
				if suppressed(pkg.Fset, d, dirs) {
					return
				}
				findings = append(findings, Finding{Diagnostic: d, Fset: pkg.Fset, Pkg: pkg})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Fset.Position(findings[i].Pos), findings[j].Fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Rule < findings[j].Rule
	})
	return findings, nil
}
