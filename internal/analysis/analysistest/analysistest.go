// Package analysistest checks one analyzer against a fixture package
// annotated with `// want "regex"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest but built on the in-tree
// stdlib-only framework.
//
// A fixture is a directory of .go files loaded under an explicit import
// path (so path-scoped analyzers see the package they expect). Every
// line that should be flagged carries a trailing comment of the form
//
//	code() // want "regexp" "another regexp"
//
// with one quoted regexp per expected diagnostic on that line. The test
// fails on any finding without a matching want and any want without a
// matching finding, printing both sides.
package analysistest

import (
	"bufio"
	"os"
	"regexp"
	"testing"

	"krak/internal/analysis"
)

var (
	wantRE = regexp.MustCompile(`//\s*want\s+(.+)$`)
	// A want pattern is double-quoted, or backtick-quoted when the regexp
	// itself needs double quotes or backslashes.
	quoteRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package at dir under the import path pkgPath,
// applies the analyzer through the same pipeline the krakcheck driver
// uses (so //krakcheck:ignore filtering is in effect), and compares the
// surviving findings against the fixture's want annotations.
func Run(t *testing.T, dir, pkgPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	wants := collectWants(t, pkg.GoFiles)

	for _, f := range findings {
		p := f.Fset.Position(f.Pos)
		if !claim(wants, p.Filename, p.Line, f.Message) {
			t.Errorf("unexpected finding: %s", f.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

// collectWants scans fixture files for `// want "re"...` annotations.
func collectWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRE.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			quoted := quoteRE.FindAllStringSubmatch(m[1], -1)
			if len(quoted) == 0 {
				t.Errorf("%s:%d: want annotation without a quoted regexp", name, line)
				continue
			}
			for _, q := range quoted {
				pat := q[1]
				if q[0][0] == '`' {
					pat = q[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", name, line, pat, err)
				}
				wants = append(wants, &expectation{file: name, line: line, re: re, raw: pat})
			}
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatalf("reading fixture %s: %v", name, err)
		}
	}
	return wants
}

// claim marks the first unclaimed expectation matching (file, line,
// message) as hit.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(message) {
			w.hit = true
			return true
		}
	}
	return false
}
