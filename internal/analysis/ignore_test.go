package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The malformed-directive behavior cannot be expressed as an analysistest
// fixture: any trailing `// want` text would be swallowed as the
// directive's reason, making it well-formed. So the directive parser and
// the suppression window are pinned here directly.

func parseIgnoreSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestCollectIgnoresParsesRulesAndReason(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//krakcheck:ignore maprange,detrand integer sum is order independent
var x = 1
`)
	dirs, bad := collectIgnores(fset, files)
	if len(bad) != 0 {
		t.Fatalf("well-formed directive reported as bad: %v", bad)
	}
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	d := dirs[0]
	if len(d.rules) != 2 || d.rules[0] != "maprange" || d.rules[1] != "detrand" {
		t.Errorf("rules = %v, want [maprange detrand]", d.rules)
	}
	if d.reason != "integer sum is order independent" {
		t.Errorf("reason = %q", d.reason)
	}
	if d.line != 3 {
		t.Errorf("line = %d, want 3", d.line)
	}
}

func TestCollectIgnoresFlagsMissingReason(t *testing.T) {
	for _, src := range []string{
		"package p\n\n//krakcheck:ignore\nvar x = 1\n",
		"package p\n\n//krakcheck:ignore maprange\nvar x = 1\n",
	} {
		fset, files := parseIgnoreSrc(t, src)
		dirs, bad := collectIgnores(fset, files)
		if len(dirs) != 0 {
			t.Errorf("malformed directive accepted: %v", dirs)
		}
		if len(bad) != 1 {
			t.Fatalf("got %d diagnostics, want 1", len(bad))
		}
		if bad[0].Rule != ignoreRule {
			t.Errorf("rule = %q, want %q", bad[0].Rule, ignoreRule)
		}
		if !strings.Contains(bad[0].Message, "needs a rule and a reason") {
			t.Errorf("message = %q", bad[0].Message)
		}
	}
}

func TestSuppressedWindow(t *testing.T) {
	// Directive on line 3; diagnostics land via a synthetic position table.
	fset, files := parseIgnoreSrc(t, `package p

//krakcheck:ignore maprange reads are order independent
var a = 1
var b = 2
var c = 3
`)
	dirs, bad := collectIgnores(fset, files)
	if len(bad) != 0 || len(dirs) != 1 {
		t.Fatalf("unexpected parse: dirs=%v bad=%v", dirs, bad)
	}
	posOnLine := func(line int) token.Pos {
		f := fset.File(files[0].Pos())
		return f.LineStart(line)
	}
	cases := []struct {
		line int
		rule string
		want bool
	}{
		{3, "maprange", true},  // same line as the directive
		{4, "maprange", true},  // line directly below
		{5, "maprange", false}, // two lines below: outside the window
		{4, "detrand", false},  // different rule
	}
	for _, c := range cases {
		d := Diagnostic{Pos: posOnLine(c.line), Rule: c.rule}
		if got := suppressed(fset, d, dirs); got != c.want {
			t.Errorf("suppressed(line %d, rule %s) = %v, want %v", c.line, c.rule, got, c.want)
		}
	}
}

func TestSuppressedAllRule(t *testing.T) {
	fset, files := parseIgnoreSrc(t, `package p

//krakcheck:ignore all generated file, exempt from every rule
var a = 1
`)
	dirs, _ := collectIgnores(fset, files)
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	f := fset.File(files[0].Pos())
	d := Diagnostic{Pos: f.LineStart(4), Rule: "wraperr"}
	if !suppressed(fset, d, dirs) {
		t.Error("krakcheck:ignore all did not suppress an arbitrary rule")
	}
}
