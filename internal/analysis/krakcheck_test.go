package analysis_test

import (
	"testing"

	"krak/internal/analysis"
	"krak/internal/analysis/analyzers"
)

// TestKrakcheckRepoClean is the driver-level guarantee behind `make
// lint`: the full krakcheck suite over the whole module reports nothing.
// A new violation anywhere in the repo fails this test with the same
// file:line message the CLI would print.
func TestKrakcheckRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	findings, err := analysis.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("running krakcheck: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}
