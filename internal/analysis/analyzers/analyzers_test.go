package analyzers_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krak/internal/analysis"
	"krak/internal/analysis/analysistest"
	"krak/internal/analysis/analyzers"
)

// Each analyzer is proven against a fixture package under testdata/src
// holding both flagged lines (marked with `// want "regexp"`) and the
// clean idioms the rule must not flag.

func TestMapRange(t *testing.T) {
	analysistest.Run(t, "../testdata/src/maprange", "maprange", analyzers.MapRange)
}

func TestDetRandModelPackage(t *testing.T) {
	analysistest.Run(t, "../testdata/src/hydro", "krak/internal/hydro", analyzers.DetRand)
}

func TestDetRandNonModelPackage(t *testing.T) {
	// Same constructs, non-model import path: nothing may be flagged.
	analysistest.Run(t, "../testdata/src/tools", "krak/internal/tools", analyzers.DetRand)
}

func TestArenaEscape(t *testing.T) {
	analysistest.Run(t, "../testdata/src/arena", "arena", analyzers.ArenaEscape)
}

func TestWrapErr(t *testing.T) {
	analysistest.Run(t, "../testdata/src/krak", "krak", analyzers.WrapErr)
}

func TestBoundedParse(t *testing.T) {
	analysistest.Run(t, "../testdata/src/parse", "parse", analyzers.BoundedParse)
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "../testdata/src/flow", "flow", analyzers.CtxFlow)
}

// TestMapRangeApplyFixes runs the suggested sorted-keys rewrite end to
// end: a flagged key-only map range is rewritten in place, the imports
// are added, and re-analysis of the rewritten file is clean.
func TestMapRangeApplyFixes(t *testing.T) {
	const src = `package fixme

import "fmt"

func Print(m map[string]int) {
	for k := range m {
		fmt.Println(k, m[k])
	}
}
`
	dir := t.TempDir()
	file := filepath.Join(dir, "fixme.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	pkg, err := analysis.LoadDir(dir, "fixme")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{analyzers.MapRange})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings before fixing, want 1: %v", len(findings), findings)
	}
	if len(findings[0].Fixes) == 0 {
		t.Fatal("finding carries no suggested fix")
	}

	fixed, err := analysis.ApplyFixes(findings)
	if err != nil {
		t.Fatalf("applying fixes: %v", err)
	}
	if len(fixed) != 1 {
		t.Fatalf("ApplyFixes touched %d files, want 1", len(fixed))
	}

	out, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if !strings.Contains(text, "slices.Sorted(maps.Keys(m))") {
		t.Fatalf("rewritten file lacks sorted-keys loop:\n%s", text)
	}
	if !strings.Contains(text, `"maps"`) || !strings.Contains(text, `"slices"`) {
		t.Fatalf("rewritten file lacks added imports:\n%s", text)
	}

	repkg, err := analysis.LoadDir(dir, "fixme")
	if err != nil {
		t.Fatalf("reloading fixed fixture: %v", err)
	}
	refindings, err := analysis.Run([]*analysis.Package{repkg}, []*analysis.Analyzer{analyzers.MapRange})
	if err != nil {
		t.Fatal(err)
	}
	if len(refindings) != 0 {
		t.Fatalf("fixed file still flagged: %v", refindings)
	}
}
