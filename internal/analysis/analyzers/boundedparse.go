package analyzers

import (
	"go/ast"
	"strings"

	"krak/internal/analysis"
)

// BoundedParse enforces bounded-parse discipline (invariant 4): a parser
// fed untrusted bytes (deck files, machine files, calibration datasets,
// server request bodies) must consult an explicit cap — a Max*/max*
// constant comparison or http.MaxBytesReader — before growing memory by
// an input-derived amount. The fuzz harnesses (FuzzParseDeck,
// FuzzParseMachineFile, FuzzDecodeRequest, FuzzParseDataset) assert the
// parsers never blow up; this rule keeps the cap from being deleted or a
// new parser from shipping without one.
//
// Mechanically: in any function whose name starts with Parse/Decode/
// Unmarshal/Read (any casing), if no identifier matching max* appears in
// a size comparison and http.MaxBytesReader is never called, then every
// `make` with a non-constant size and every `append` inside a loop is
// flagged.
var BoundedParse = &analysis.Analyzer{
	Name: "boundedparse",
	Doc:  "parsers must check a Max* cap (or http.MaxBytesReader) before input-driven make/append growth",
	Run:  runBoundedParse,
}

var parserPrefixes = []string{"parse", "decode", "unmarshal", "read"}

func isParserName(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range parserPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runBoundedParse(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isParserName(fn.Name.Name) {
				continue
			}
			if consultsCap(pass, fn.Body) {
				continue
			}
			flagUnboundedGrowth(pass, fn)
		}
	}
	return nil
}

// consultsCap reports whether the body contains a comparison mentioning a
// max*-named identifier, or a call to http.MaxBytesReader.
func consultsCap(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op.String() {
			case "<", "<=", ">", ">=", "==", "!=":
				if mentionsMaxIdent(n.X) || mentionsMaxIdent(n.Y) {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "MaxBytesReader" &&
				pkgNameOf(pass.TypesInfo, sel.X) == "net/http" {
				found = true
			}
		}
		return !found
	})
	return found
}

func mentionsMaxIdent(e ast.Expr) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.HasPrefix(strings.ToLower(id.Name), "max") {
			hit = true
		}
		return !hit
	})
	return hit
}

func flagUnboundedGrowth(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Body != nil {
					walk(m.Body, true)
				}
				return false
			case *ast.RangeStmt:
				if m.Body != nil {
					walk(m.Body, true)
				}
				return false
			case *ast.CallExpr:
				if isBuiltin(info, m, "make") && len(m.Args) >= 2 {
					if tv, ok := info.Types[m.Args[1]]; ok && tv.Value == nil {
						pass.Report(analysis.Diagnostic{
							Pos: m.Pos(),
							Message: "parser " + fn.Name.Name + " makes an input-sized allocation " +
								"without consulting a Max* cap; bound the size first",
						})
					}
				}
				if inLoop && isBuiltin(info, m, "append") {
					pass.Report(analysis.Diagnostic{
						Pos: m.Pos(),
						Message: "parser " + fn.Name.Name + " grows a slice in a loop " +
							"without consulting a Max* cap; enforce a bound before appending",
					})
				}
			}
			return true
		})
	}
	walk(fn.Body, false)
}
