package analyzers

import (
	"go/ast"
	"strconv"

	"krak/internal/analysis"
)

// modelPackages are the packages whose outputs are golden-pinned and must
// be bit-reproducible at a fixed seed: everything between a deck and a
// rendered experiment table. Matched by import-path base so analysistest
// fixtures (package path "hydro") scope like the real tree
// ("krak/internal/hydro").
var modelPackages = map[string]bool{
	"partition":   true,
	"cluster":     true,
	"phases":      true,
	"hydro":       true,
	"mpisim":      true,
	"netmodel":    true,
	"experiments": true,
}

// randPackages are the randomness sources model code must not import:
// all randomized model decisions flow from seeded stats.SplitMix64
// streams so equal seeds give byte-identical partitions and simulations.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// wallClockFuncs are the time-package functions that read or depend on
// the host clock; any of them in a model package makes output depend on
// the machine the model ran on.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// DetRand enforces determinism invariant (1b): model packages take
// randomness only from seeded stats.SplitMix64 and never read the wall
// clock. The parallel==serial byte-identity suite and the 17 goldens
// assume it; this rule catches the violation at review time instead of
// as a flaky golden.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand and wall-clock reads in model packages (seeded stats.SplitMix64 only)",
	Run:  runDetRand,
}

func runDetRand(pass *analysis.Pass) error {
	if !modelPackages[pathBase(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if randPackages[path] {
				pass.Report(analysis.Diagnostic{
					Pos: imp.Pos(),
					Message: "model package imports " + path +
						"; derive randomness from a seeded stats.SplitMix64 instead",
				})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNameOf(pass.TypesInfo, sel.X) == "time" && wallClockFuncs[sel.Sel.Name] {
				pass.Report(analysis.Diagnostic{
					Pos: sel.Pos(),
					Message: "model package reads the wall clock (time." + sel.Sel.Name +
						"); model output must depend only on inputs and seed",
				})
			}
			return true
		})
	}
	return nil
}
