package analyzers

import (
	"go/ast"
	"go/types"

	"krak/internal/analysis"
)

// MapRange enforces determinism invariant (1): model and rendering code
// must not let Go's randomized map iteration order reach any output. All
// 17 experiment goldens pin byte-identical output, so a map range that
// appends, formats, or accumulates floating-point values in iteration
// order is a latent golden break that only fires when the hash seed
// changes.
//
// A range over a map is flagged unless its body is one of the two
// order-insensitive idioms:
//
//   - key collection: a single `keys = append(keys, k)` statement (the
//     standard extract-then-sort prelude), or
//   - map clearing: a single `delete(m, k)` statement.
//
// For the simple `for k := range m` form with an ordered key type the
// analyzer attaches a rewrite to `for _, k := range
// slices.Sorted(maps.Keys(m))`, which `krakcheck -fix` (and `make
// lint-fix`) applies. Order-insensitive reductions (integer counters,
// max/min) should instead carry `//krakcheck:ignore maprange <reason>`.
var MapRange = &analysis.Analyzer{
	Name: "maprange",
	Doc:  "flag map iteration whose order can reach output; require sorted keys or a reasoned ignore",
	Run:  runMapRange,
}

func runMapRange(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitiveBody(pass, rs) {
				return true
			}
			d := analysis.Diagnostic{
				Pos: rs.Pos(),
				Message: "range over map " + types.ExprString(rs.X) +
					" has nondeterministic order; extract and sort keys first",
			}
			if fix, ok := sortedKeysFix(pass, rs); ok {
				d.Fixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
			return true
		})
	}
	return nil
}

// orderInsensitiveBody recognizes the two loop bodies whose effect cannot
// depend on iteration order.
func orderInsensitiveBody(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	if rs.Body == nil || len(rs.Body.List) != 1 {
		return false
	}
	key, _ := rs.Key.(*ast.Ident)
	switch stmt := rs.Body.List[0].(type) {
	case *ast.AssignStmt:
		// keys = append(keys, k)
		if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 || key == nil {
			return false
		}
		call, ok := stmt.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass.TypesInfo, call, "append") || len(call.Args) != 2 || call.Ellipsis.IsValid() {
			return false
		}
		dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		lhs, ok2 := ast.Unparen(stmt.Lhs[0]).(*ast.Ident)
		arg, ok3 := ast.Unparen(call.Args[1]).(*ast.Ident)
		return ok && ok2 && ok3 &&
			dst.Name == lhs.Name &&
			pass.TypesInfo.Uses[arg] == pass.TypesInfo.Defs[key]
	case *ast.ExprStmt:
		// delete(m, k)
		call, ok := stmt.X.(*ast.CallExpr)
		return ok && isBuiltin(pass.TypesInfo, call, "delete")
	}
	return false
}

// sortedKeysFix rewrites `for k := range m` to
// `for _, k := range slices.Sorted(maps.Keys(m))` when the key type is
// ordered, the value is unused, and the key is a fresh definition —
// exactly the cases where the rewrite is behavior-preserving (beyond
// fixing the order).
func sortedKeysFix(pass *analysis.Pass, rs *ast.RangeStmt) (analysis.SuggestedFix, bool) {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil || !rs.TokPos.IsValid() {
		return analysis.SuggestedFix{}, false
	}
	mt := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map)
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return analysis.SuggestedFix{}, false
	}
	newText := "_, " + key.Name + " := range slices.Sorted(maps.Keys(" + types.ExprString(rs.X) + "))"
	return analysis.SuggestedFix{
		Message:    "iterate keys in sorted order",
		Edits:      []analysis.TextEdit{{Pos: rs.Key.Pos(), End: rs.X.End(), NewText: newText}},
		AddImports: []string{"maps", "slices"},
	}, true
}
