// Package analyzers holds krakcheck's rule set: one analyzer per
// invariant the codebase otherwise enforces only by convention. Each
// analyzer documents the invariant it protects and the regression suite
// that invariant backs up (goldens, alloc guards, error tables), and each
// is proven by analysistest fixtures under ../testdata/src.
package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"krak/internal/analysis"
)

// All returns the full krakcheck rule set in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapRange,
		DetRand,
		ArenaEscape,
		WrapErr,
		BoundedParse,
		CtxFlow,
	}
}

// ByName resolves a comma-separated rule list against All, returning nil
// and the offending name if one is unknown.
func ByName(list string) ([]*analysis.Analyzer, string) {
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, name
		}
	}
	return out, ""
}

// pathBase returns the last element of an import path: the unit the
// path-scoped analyzers match on, so fixture packages (import path
// "hydro") and real packages ("krak/internal/hydro") scope identically.
func pathBase(pkgPath string) string {
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// pkgNameOf returns the imported package a selector's base identifier
// refers to, or "" when the expression is not a package-qualified name.
func pkgNameOf(info *types.Info, e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleeFunc resolves a call expression to the function or method object
// it invokes, or nil for builtins, conversions, and function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
