package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"krak/internal/analysis"
)

// arenaMarker opts a struct type into ArenaEscape checking when it
// appears in the type's doc comment.
const arenaMarker = "krakcheck:arena"

// ArenaEscape enforces arena hygiene (invariant 2): the buffers of a
// scratch arena — a struct whose doc comment carries "krakcheck:arena",
// like partition.mlScratch and cluster.Runner — are owned by the call
// that borrows them and must not outlive it. The alloc-regression tests
// (TestRunnerAllocRegression, the partitioner alloc guard) measure the
// payoff of that ownership; this rule catches the aliasing bug class
// those tests cannot see: a scratch slice escaping into a longer-lived
// struct, which corrupts results on the *next* reuse of the arena.
//
// Within the arena's package, the analyzer taints expressions that alias
// a slice- or map-typed arena field (the field itself, a reslice of it,
// or a local assigned from one — one level of local aliasing is
// tracked), then flags a tainted value that
//
//   - is returned,
//   - is stored into a non-arena struct field or element,
//   - is appended as a value (not spread with ...) into another slice, or
//   - appears in a composite literal.
//
// Copying elements out (x[i], copy, append(dst, src...)) is fine — only
// the backing array escaping is the bug. The tracking is deliberately
// shallow; an escape laundered through two locals needs a human, and a
// deliberate short-lived alias (e.g. bisect's returned side vector)
// carries //krakcheck:ignore with the reason.
var ArenaEscape = &analysis.Analyzer{
	Name: "arenaescape",
	Doc:  "forbid scratch-arena buffers (krakcheck:arena structs) escaping their owning call",
	Run:  runArenaEscape,
}

func runArenaEscape(pass *analysis.Pass) error {
	arenas := markedArenaTypes(pass)
	if len(arenas) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkArenaFunc(pass, arenas, fn)
		}
	}
	return nil
}

// markedArenaTypes collects the named struct types whose doc comment
// contains the krakcheck:arena marker.
func markedArenaTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	arenas := make(map[*types.TypeName]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc == nil || !strings.Contains(doc.Text(), arenaMarker) {
					continue
				}
				if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					arenas[tn] = true
				}
			}
		}
	}
	return arenas
}

func checkArenaFunc(pass *analysis.Pass, arenas map[*types.TypeName]bool, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// isArenaExpr reports whether e is a value of (a pointer to) a marked
	// arena type — stores into the arena's own fields are its job.
	isArenaExpr := func(e ast.Expr) bool {
		t := info.TypeOf(e)
		if t == nil {
			return false
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && arenas[named.Obj()]
	}

	// arenaRooted reports whether the lvalue chain e (a.b.c, a.b[i], ...)
	// is rooted at an arena value — a store into any such path keeps the
	// buffer inside the arena that owns it.
	var arenaRooted func(e ast.Expr) bool
	arenaRooted = func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isArenaExpr(e) {
			return true
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			return arenaRooted(x.X)
		case *ast.IndexExpr:
			return arenaRooted(x.X)
		}
		return false
	}

	// scratchSel reports whether e selects a slice/map-typed field of an
	// arena value.
	scratchSel := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || !isArenaExpr(sel.X) {
			return false
		}
		switch info.TypeOf(sel).Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}

	tainted := make(map[types.Object]bool)
	var taintedExpr func(e ast.Expr) bool
	taintedExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			return taintedExpr(e.X)
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.SelectorExpr:
			return scratchSel(e)
		}
		return false
	}

	// Fixed-point pass over simple assignments to pick up one (or more,
	// via iteration) levels of local aliasing: x := scr.buf; y := x[:n].
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || !taintedExpr(as.Rhs[i]) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	report := func(pos ast.Node, what string) {
		pass.Report(analysis.Diagnostic{
			Pos: pos.Pos(),
			Message: "scratch-arena buffer " + what +
				" escapes its owning call; arena memory is reused and must not outlive the call",
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if taintedExpr(res) {
					report(res, "("+types.ExprString(res)+") returned")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if !taintedExpr(n.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if !arenaRooted(l.X) {
						report(n.Rhs[i], "("+types.ExprString(n.Rhs[i])+") stored into "+types.ExprString(l))
					}
				case *ast.IndexExpr:
					if !taintedExpr(l.X) && !scratchSel(l.X) {
						report(n.Rhs[i], "("+types.ExprString(n.Rhs[i])+") stored into "+types.ExprString(l))
					}
				}
			}
		case *ast.CallExpr:
			if isBuiltin(pass.TypesInfo, n, "append") && len(n.Args) > 1 {
				for _, arg := range n.Args[1:] {
					// append(dst, scr.buf...) copies elements and is fine;
					// append(dst, scr.buf) stores the alias.
					if n.Ellipsis.IsValid() && arg == n.Args[len(n.Args)-1] {
						continue
					}
					if taintedExpr(arg) {
						report(arg, "("+types.ExprString(arg)+") appended into another slice")
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if taintedExpr(v) {
					report(v, "("+types.ExprString(v)+") placed in a composite literal")
				}
			}
		}
		return true
	})
}
