package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"krak/internal/analysis"
)

// WrapErr enforces typed-error discipline (invariant 3): every error a
// pkg/krak function returns must be provably matchable with errors.Is
// against the package's sentinel set (the package-level Err* variables) —
// the contract pkg/krak/errors_test.go's errors.Is tables verify per
// sentinel, generalized to every return path.
//
// An error expression is "disciplined" when it is nil, an Err* sentinel,
// fmt.Errorf with a %w verb wrapping a disciplined argument,
// errors.Join of at least one disciplined argument, ctx.Err() (callers
// match context.Canceled/DeadlineExceeded directly), a call into the
// same package (whose own returns this analyzer already checks — the
// recursion the invariant asks for), or a local variable all of whose
// assignments are disciplined. Anything else — most commonly an error
// from an internal/ package returned raw — is flagged: callers cannot
// errors.Is it against the public set, so it is an undocumented API.
var WrapErr = &analysis.Analyzer{
	Name: "wraperr",
	Doc:  "pkg/krak returns must wrap a package sentinel (fmt.Errorf(\"...: %w\", ErrX)) on every path",
	Run:  runWrapErr,
}

func runWrapErr(pass *analysis.Pass) error {
	// Scope: the public facade package (pkg/krak, fixture path "krak").
	// cmd/krak shares the path base but is package main — its errors go
	// to stderr, not through errors.Is.
	if pathBase(pass.PkgPath) != "krak" || pass.Pkg.Name() != "krak" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !returnsError(pass, fn) {
				continue
			}
			checkWrapFunc(pass, fn)
		}
	}
	return nil
}

func returnsError(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func checkWrapFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// assigns records every RHS expression assigned to each local object,
	// so `return err` can be judged by what err could hold. A multi-value
	// `v, err := call()` records the call itself.
	assigns := make(map[types.Object][]ast.Expr)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			assigns[obj] = append(assigns[obj], rhs)
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else if len(n.Rhs) == 1 {
				for _, lhs := range n.Lhs {
					record(lhs, n.Rhs[0])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			} else if len(n.Values) == 1 {
				for _, name := range n.Names {
					record(name, n.Values[0])
				}
			}
		}
		return true
	})

	seen := make(map[types.Object]bool)
	var disciplined func(e ast.Expr) bool
	disciplined = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return false
			}
			if _, isNil := obj.(*types.Nil); isNil {
				return true
			}
			return disciplinedObj(pass, obj, assigns, seen, disciplined)
		case *ast.SelectorExpr:
			obj := info.Uses[e.Sel]
			if obj == nil {
				return false
			}
			return disciplinedObj(pass, obj, assigns, seen, disciplined)
		case *ast.CallExpr:
			return disciplinedCall(pass, e, disciplined)
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		results := ret.Results
		if len(results) == 0 {
			// Bare return with named results: judge the named error vars.
			for _, field := range fn.Type.Results.List {
				for _, name := range field.Names {
					obj := info.Defs[name]
					if obj == nil || !isErrorType(obj.Type()) {
						continue
					}
					if !disciplinedObj(pass, obj, assigns, seen, disciplined) {
						reportWrap(pass, ret.Pos(), name.Name)
					}
				}
			}
			return true
		}
		// return f() forwarding a (T, error) tuple: judge the call itself.
		if len(results) == 1 {
			if call, ok := ast.Unparen(results[0]).(*ast.CallExpr); ok {
				if tup, ok := info.TypeOf(call).(*types.Tuple); ok {
					hasErr := false
					for i := 0; i < tup.Len(); i++ {
						if isErrorType(tup.At(i).Type()) {
							hasErr = true
						}
					}
					if hasErr && !disciplined(results[0]) {
						reportWrap(pass, results[0].Pos(), types.ExprString(results[0]))
					}
					return true
				}
			}
		}
		for _, res := range results {
			t := info.TypeOf(res)
			if t == nil || !isErrorType(t) {
				continue
			}
			if !disciplined(res) {
				reportWrap(pass, res.Pos(), types.ExprString(res))
			}
		}
		return true
	})
}

func reportWrap(pass *analysis.Pass, pos token.Pos, what string) {
	pass.Report(analysis.Diagnostic{
		Pos: pos,
		Message: "error " + what + " is not sentinel-wrapped on every path; " +
			"wrap it: fmt.Errorf(\"...: %w\", ErrX, ...) so callers can errors.Is it",
	})
}

func disciplinedObj(pass *analysis.Pass, obj types.Object, assigns map[types.Object][]ast.Expr,
	seen map[types.Object]bool, disciplined func(ast.Expr) bool) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Package-level Err* sentinels of this package are the ground truth.
	if v.Pkg() == pass.Pkg && v.Parent() == pass.Pkg.Scope() {
		return strings.HasPrefix(v.Name(), "Err")
	}
	if seen[obj] {
		return true // cycle: optimistic, another path decides
	}
	seen[obj] = true
	defer delete(seen, obj)
	rhss := assigns[obj]
	if len(rhss) == 0 {
		return false // parameter, capture, or field: provenance unknown
	}
	for _, rhs := range rhss {
		if !disciplined(rhs) {
			return false
		}
	}
	return true
}

func disciplinedCall(pass *analysis.Pass, call *ast.CallExpr, disciplined func(ast.Expr) bool) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		// Calling a function value: trust it when its type is a named
		// function type declared in this package (MachineOption,
		// ScenarioOption, ...) — the package's own constructors produce
		// those values and are themselves checked by this analyzer.
		if t := pass.TypesInfo.TypeOf(call.Fun); t != nil {
			if named, ok := t.(*types.Named); ok {
				if _, isFunc := named.Underlying().(*types.Signature); isFunc && named.Obj().Pkg() == pass.Pkg {
					return true
				}
			}
		}
		return false
	}
	// ctx.Err(): context cancellation sentinels are part of the contract.
	if fn.Name() == "Err" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isContextType(sig.Recv().Type()) {
			return true
		}
	}
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if fn.Name() != "Errorf" || len(call.Args) < 2 {
			return false
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return false
		}
		if !strings.Contains(constant.StringVal(tv.Value), "%w") {
			return false
		}
		for _, arg := range call.Args[1:] {
			if disciplined(arg) {
				return true
			}
		}
		return false
	case "errors":
		if fn.Name() != "Join" {
			return false
		}
		for _, arg := range call.Args {
			if disciplined(arg) {
				return true
			}
		}
		return false
	}
	// A call into this package: its own returns are checked by this
	// analyzer, so trusting it here is the recursive case, not a hole.
	return fn.Pkg() == pass.Pkg
}
