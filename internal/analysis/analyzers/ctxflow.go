package analyzers

import (
	"go/ast"
	"go/types"

	"krak/internal/analysis"
)

// CtxFlow enforces context propagation (invariant 5): concurrency in this
// codebase flows through internal/engine, whose pools and caches are
// cancellation-aware, so cancellation only works end to end if every
// exported function that starts concurrent work threads a caller context
// down to it. Two mechanical checks:
//
//  1. An exported function that launches a goroutine or calls into
//     internal/engine must accept a context.Context (an *http.Request
//     parameter counts — handlers thread r.Context()).
//  2. A function that has a ctx parameter must not manufacture a fresh
//     root with context.Background()/context.TODO(); that silently
//     detaches the work the caller thinks it can cancel.
//
// internal/engine itself is exempt from check 1: it is the primitive
// layer these signatures thread ctx into. Long-lived background workers
// whose lifecycle is intentionally tied to a struct (not a call) carry a
// reasoned //krakcheck:ignore.
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported spawners must accept ctx; functions given ctx must not detach via Background/TODO",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	isEngine := pathBase(pass.PkgPath) == "engine"
	isMain := pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			hasCtx := hasCtxParam(pass, fn)
			if hasCtx {
				flagDetachedContexts(pass, fn)
			}
			if !hasCtx && !isEngine && !isMain && fn.Name.IsExported() && spawnsWork(pass, fn) {
				pass.Report(analysis.Diagnostic{
					Pos: fn.Name.Pos(),
					Message: "exported " + fn.Name.Name + " starts concurrent work but has no " +
						"context.Context parameter; accept and thread ctx so callers can cancel",
				})
			}
		}
	}
	return nil
}

// hasCtxParam reports whether the function can reach a caller context: a
// context.Context parameter, or an *http.Request parameter (r.Context()).
func hasCtxParam(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	for _, field := range fn.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) {
			return true
		}
		if p, ok := t.(*types.Pointer); ok {
			if named, ok := p.Elem().(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
					return true
				}
			}
		}
	}
	return false
}

// spawnsWork reports whether the body launches a goroutine or calls an
// internal/engine function that itself demands a context (engine.Map and
// friends) — a function without a ctx parameter can only satisfy such a
// callee by manufacturing a root context, which detaches the work.
// Engine calls that run inline and take no ctx (Cache.Get, New, Workers)
// are configuration, not spawning, and are not flagged.
func spawnsWork(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			found = true
		case *ast.CallExpr:
			callee := calleeFunc(pass.TypesInfo, n)
			if callee == nil || callee.Pkg() == nil || pathBase(callee.Pkg().Path()) != "engine" {
				break
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok {
				break
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if isContextType(sig.Params().At(i).Type()) {
					found = true
					break
				}
			}
		}
		return !found
	})
	return found
}

// flagDetachedContexts reports context.Background()/TODO() calls inside a
// function that already has a caller context to thread.
func flagDetachedContexts(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
			return true
		}
		if pkgNameOf(pass.TypesInfo, sel.X) == "context" {
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fn.Name.Name + " has a ctx parameter but creates context." + sel.Sel.Name +
					"(); thread the parameter instead of detaching the work",
			})
		}
		return true
	})
}
