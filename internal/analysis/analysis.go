// Package analysis is krak's in-tree static-analysis framework: a
// deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic,
// SuggestedFix) plus a package loader built on `go list -export` and the
// standard go/types checker.
//
// The repo cannot vendor x/tools (the build must work from a clean clone
// with no module downloads), so the framework keeps the same shape as the
// upstream API: an Analyzer here ports to a x/tools analyzer by swapping
// the import path and registering it with a multichecker. Everything an
// analyzer touches — token.FileSet, ast.File, types.Info — is the standard
// library's.
//
// The analyzers under analyzers/ encode the invariants the codebase
// otherwise enforces only by convention, comment, and golden test:
// determinism of model output, arena (scratch-buffer) hygiene, typed-error
// discipline, bounded parsing, and context propagation. `cmd/krakcheck`
// is the driver; `make lint` runs it over ./... and CI keeps it green.
//
// Suppression: a finding can be silenced with a comment on the flagged
// line or the line above it:
//
//	//krakcheck:ignore <rule> <reason>
//
// The reason is mandatory — an ignore without one is itself reported —
// so every suppression in the tree documents why the invariant does not
// apply at that site.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check. Mirrors x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name is the rule name used in diagnostics, -rules filters, and
	// //krakcheck:ignore comments. Lower-case, no spaces.
	Name string

	// Doc is a one-paragraph description: the invariant the rule protects
	// and what a violation looks like.
	Doc string

	// Run reports findings on one package via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer

	// Fset is the file set all Syntax positions resolve against.
	Fset *token.FileSet

	// Files holds the parsed non-test sources of the package.
	Files []*ast.File

	// Pkg is the type-checked package and PkgPath its import path.
	Pkg     *types.Package
	PkgPath string

	// TypesInfo records types, definitions, and uses for every
	// expression in Files.
	TypesInfo *types.Info

	// Report delivers one finding. The framework attaches the analyzer
	// name and handles //krakcheck:ignore filtering.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string

	// Rule is filled by the framework from the reporting analyzer.
	Rule string

	// Fixes holds safe rewrites the driver may apply under -fix.
	Fixes []SuggestedFix
}

// SuggestedFix is a set of edits that resolve the diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit

	// AddImports lists import paths the edited file must import for the
	// rewritten code to compile; the fix applier inserts any that are
	// missing. (x/tools expresses this as more TextEdits; a declarative
	// list keeps the analyzers simple.)
	AddImports []string
}

// TextEdit replaces the source range [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// Posn renders a token.Pos as file:line:col for driver output.
func Posn(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
