// Package flow is the ctxflow fixture: exported spawners must accept a
// context, and functions given one must not detach via Background/TODO.
package flow

import (
	"context"
	"net/http"
	"sync"

	"krak/internal/engine"
)

// Spawns launches a goroutine with no way for callers to cancel it.
func Spawns(work func()) { // want "starts concurrent work but has no"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// FansOut calls a ctx-demanding engine function without a ctx parameter.
func FansOut(p *engine.Pool, n int) ([]int, error) { // want "starts concurrent work but has no"
	return engine.Map(context.TODO(), p, n, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
}

// SpawnsWithCtx threads the caller's context: clean.
func SpawnsWithCtx(ctx context.Context, p *engine.Pool, n int) ([]int, error) {
	return engine.Map(ctx, p, n, func(_ context.Context, i int) (int, error) {
		return i + 1, nil
	})
}

// Handler reaches the caller context through *http.Request: clean.
func Handler(w http.ResponseWriter, r *http.Request) {
	ch := make(chan struct{})
	go func() {
		close(ch)
	}()
	select {
	case <-ch:
	case <-r.Context().Done():
	}
}

// Detaches has a ctx but manufactures a fresh root anyway.
func Detaches(ctx context.Context, p *engine.Pool, n int) ([]int, error) {
	return engine.Map(context.Background(), p, n, func(_ context.Context, i int) (int, error) { // want `Detaches has a ctx parameter but creates context.Background\(\)`
		return i, nil
	})
}

// unexported helpers are wiring, not API surface: clean.
func spawn(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// DetachedWorker documents why its goroutine outlives the call.
//
//krakcheck:ignore ctxflow fixture worker lifecycle is owned by the struct, not the call
func DetachedWorker(work func()) {
	go work()
}
