// Package tools is the detrand counter-fixture: its import path base is
// not a model package, so wall clocks and math/rand are allowed (CLIs
// and servers measure real time on purpose).
package tools

import (
	"math/rand"
	"time"
)

func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds()
}

func Shuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}
