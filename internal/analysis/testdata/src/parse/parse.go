// Package parse is the boundedparse fixture: Parse/Decode/Unmarshal/Read
// functions must consult a Max* cap (or http.MaxBytesReader) before
// input-driven allocation.
package parse

import (
	"net/http"
	"strings"
)

const maxItems = 1024

// ParseSized allocates input-many entries without any cap check.
func ParseSized(counts []int) [][]byte {
	out := make([][]byte, 0, len(counts))
	for _, n := range counts {
		out = append(out, make([]byte, n)) // want "makes an input-sized allocation" "grows a slice in a loop"
	}
	return out
}

// DecodeLines grows in a loop with no bound.
func DecodeLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		out = append(out, line) // want "grows a slice in a loop"
	}
	return out
}

// ParseBounded consults the cap before growing: clean.
func ParseBounded(s string) ([]string, error) {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if len(out) >= maxItems {
			return nil, errTooMany
		}
		out = append(out, line)
	}
	return out, nil
}

// ReadBody defers the bound to http.MaxBytesReader: clean.
func ReadBody(w http.ResponseWriter, r *http.Request, n int) []byte {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	return make([]byte, n)
}

// Transform is not a parser by name, so growth is not its problem.
func Transform(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		out = append(out, strings.ToUpper(line))
	}
	return out
}

// ParseTrusted reads trusted local input and says so.
func ParseTrusted(lines []string) []string {
	var out []string
	for _, line := range lines {
		//krakcheck:ignore boundedparse fixture input is trusted and statically small
		out = append(out, line)
	}
	return out
}

type sentinelError string

func (e sentinelError) Error() string { return string(e) }

const errTooMany = sentinelError("parse: too many items")
