// Package krak is the wraperr fixture for the public facade: every
// error returned must be provably errors.Is-matchable against the
// package's Err* sentinel set.
package krak

import (
	"context"
	"errors"
	"fmt"
	"os"
)

// ErrBad is the fixture's sentinel.
var ErrBad = errors.New("krak: bad")

func CleanSentinel() error {
	return ErrBad
}

func CleanWrapped(detail int) error {
	return fmt.Errorf("%w: detail %d", ErrBad, detail)
}

func CleanNil() error {
	return nil
}

func CleanJoin(err error) error {
	return errors.Join(ErrBad, err)
}

func CleanCtx(ctx context.Context) error {
	return ctx.Err()
}

// Calls into the same package are trusted: their returns are checked too.
func CleanForwarded() error {
	return CleanWrapped(1)
}

func FlaggedNew() error {
	return errors.New("raw") // want "not sentinel-wrapped"
}

func FlaggedParam(err error) error {
	return err // want "not sentinel-wrapped"
}

func FlaggedVerb() error {
	return fmt.Errorf("lost the chain: %v", ErrBad) // want "not sentinel-wrapped"
}

// A cross-package error returned raw is the classic violation.
func FlaggedCrossPackage(name string) error {
	_, err := os.ReadFile(name)
	return err // want "not sentinel-wrapped"
}

// Tuple forwarding must be judged like any other return.
func FlaggedTuple(name string) ([]byte, error) {
	return os.ReadFile(name) // want "not sentinel-wrapped"
}

func CleanTupleWrapped(name string) ([]byte, error) {
	b, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%w: reading %s: %w", ErrBad, name, err)
	}
	return b, nil
}

// A local whose every assignment is disciplined is disciplined.
func CleanLocal(flag bool) error {
	var err error
	if flag {
		err = fmt.Errorf("%w: flagged", ErrBad)
	}
	return err
}

// Option is the named-function-type pattern: values of a package-declared
// function type are produced by this package's own checked constructors.
type Option func(*config) error

type config struct{ n int }

func CleanOptionCall(opt Option) error {
	c := &config{}
	return opt(c)
}

// Named results on a bare return are judged by their assignments.
func FlaggedBareReturn(name string) (err error) {
	_, err = os.ReadFile(name)
	return // want "not sentinel-wrapped"
}
