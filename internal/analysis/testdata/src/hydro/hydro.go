// Package hydro is the detrand fixture for a model package: its import
// path base ("hydro") matches the real krak/internal/hydro, so rand
// imports and wall-clock reads are violations while seeded
// stats.SplitMix64 streams are the sanctioned randomness source.
package hydro

import (
	"math/rand" // want "model package imports math/rand"
	"time"

	"krak/internal/stats"
)

func Jitter() float64 {
	return rand.Float64()
}

func Stamp() float64 {
	t := time.Now() // want `model package reads the wall clock \(time.Now\)`
	return float64(t.Unix())
}

func Wait(d time.Duration) {
	time.Sleep(d) // want `model package reads the wall clock \(time.Sleep\)`
}

// Seeded randomness is the sanctioned source.
func CleanSeeded(seed uint64) uint64 {
	rng := stats.NewSplitMix64(seed)
	return rng.Next()
}

// time.Duration arithmetic without reading the clock is fine.
func CleanDuration(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}
