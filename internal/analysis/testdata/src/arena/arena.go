// Package arena is the arenaescape fixture: buffers of a marked scratch
// arena must not outlive the call that borrows them.
package arena

// scratch is reusable working memory.
//
// krakcheck:arena
type scratch struct {
	buf []int
	sub nested
}

type nested struct{ a []int }

// holder outlives any single call.
type holder struct{ kept []int }

func Returned(s *scratch) []int {
	return s.buf // want "returned escapes its owning call"
}

func ReturnedAlias(s *scratch) []int {
	b := s.buf[:0]
	return b // want "returned escapes its owning call"
}

func StoredOutside(s *scratch, h *holder) {
	h.kept = s.buf // want "stored into h.kept"
}

func StoredInMap(s *scratch, m map[string][]int) {
	m["k"] = s.buf // want `stored into m\["k"\]`
}

func Appended(s *scratch, lists [][]int) [][]int {
	return append(lists, s.buf) // want "appended into another slice"
}

func Composite(s *scratch) holder {
	return holder{kept: s.buf} // want "placed in a composite literal"
}

// Stores anywhere inside the arena keep the buffer with its owner.
func CleanInternalAlias(s *scratch) {
	s.sub.a = s.buf
}

// Copying elements out is the sanctioned way to publish results.
func CleanCopy(s *scratch) []int {
	out := make([]int, len(s.buf))
	copy(out, s.buf)
	return out
}

// Spread-append copies elements, not the backing array.
func CleanSpread(s *scratch, dst []int) []int {
	return append(dst, s.buf...)
}

// A deliberate short-lived borrow carries a reasoned ignore.
func CleanIgnoredBorrow(s *scratch) []int {
	//krakcheck:ignore arenaescape caller consumes the borrow before the next call reuses the arena
	return s.buf
}
