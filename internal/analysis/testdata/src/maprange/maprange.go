// Package maprange is the fixture for the maprange analyzer: map
// iteration whose order can reach output is flagged; the two
// order-insensitive idioms and reasoned ignores are not.
package maprange

import "sort"

// Formatted output in iteration order: the classic golden-breaker.
func Flagged(m map[string]int) []string {
	var out []string
	for k := range m { // want "range over map m has nondeterministic order"
		out = append(out, k+"=seen")
	}
	return out
}

// Ranging with the value is just as order-dependent.
func FlaggedWithValue(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "range over map m has nondeterministic order"
		out = append(out, v)
	}
	return out
}

// The extract-then-sort prelude is the sanctioned idiom.
func CleanSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clearing a map cannot observe iteration order.
func CleanClear(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// An order-insensitive reduction carries a reasoned ignore.
func CleanIgnored(m map[string]int) int {
	n := 0
	//krakcheck:ignore maprange integer sum over values is iteration-order independent
	for _, v := range m {
		n += v
	}
	return n
}

// Ranging a slice is never flagged.
func CleanSlice(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}
