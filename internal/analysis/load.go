package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one loaded, parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Load resolves patterns (e.g. "./...") with `go list` run in dir, then
// parses and type-checks every matched package from source. Imports —
// both standard-library and intra-module — are satisfied from compiler
// export data produced by `go list -export`, so loading needs no network
// and no pre-installed archives, only the go toolchain and its build
// cache.
//
// Only non-test files are loaded: the invariants krakcheck enforces are
// about what ships (model determinism, arena ownership, public error
// contracts); tests routinely use wall clocks and raw rand on purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(metas))
	var targets []*listPackage
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.DepOnly && m.Name != "" {
			targets = append(targets, m)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, m := range targets {
		p, err := typecheck(fset, imp, m.ImportPath, m.Dir, m.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir (its
// non-test .go files), with imports resolved from export data. pkgPath
// names the package for path-scoped analyzers; analysistest uses this to
// load fixture packages that live outside the module.
func LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".go" || isTestFile(name) {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	fset := token.NewFileSet()
	imp := newExportImporter(fset, nil)
	return typecheck(fset, imp, pkgPath, dir, files)
}

func isTestFile(name string) bool {
	return len(name) > len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

func typecheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, fileNames []string) (*Package, error) {
	pkg := &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
	}
	for _, name := range fileNames {
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", full, err)
		}
		pkg.GoFiles = append(pkg.GoFiles, full)
		pkg.Syntax = append(pkg.Syntax, f)
	}

	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, pkg.Syntax, pkg.TypesInfo)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", pkgPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []*listPackage
	for {
		var m listPackage
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// exportImporter satisfies imports from gc export data. Paths present in
// the preloaded map are opened directly; anything else (fixture imports
// of packages outside the original `go list -deps` closure) is resolved
// lazily with one `go list -export` call and memoized process-wide, so
// repeated fixture loads in tests stay cheap.
type exportImporter struct {
	delegate types.ImporterFrom
}

var lazyExports sync.Map // import path -> export file path

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			if cached, hit := lazyExports.Load(path); hit {
				file = cached.(string)
			} else {
				var err error
				file, err = resolveExport(path)
				if err != nil {
					return nil, err
				}
				lazyExports.Store(path, file)
			}
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	return &exportImporter{delegate: gc.(types.ImporterFrom)}
}

func resolveExport(path string) (string, error) {
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("analysis: resolve export data for %q: %v\n%s", path, err, stderr.String())
	}
	file := string(bytes.TrimSpace(out))
	if file == "" {
		return "", fmt.Errorf("analysis: no export data for %q", path)
	}
	return file, nil
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.delegate.ImportFrom(path, srcDir, mode)
}
