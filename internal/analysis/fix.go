package analysis

import (
	"fmt"
	"go/format"
	"maps"
	"os"
	"slices"
	"sort"
	"strings"
)

// ApplyFixes applies the first suggested fix of every finding that has
// one, rewriting files in place, and returns the paths it changed.
// Overlapping edits within a file are resolved first-come (later
// conflicting fixes are skipped — rerunning krakcheck picks them up).
func ApplyFixes(findings []Finding) ([]string, error) {
	type edit struct {
		start, end int
		text       string
	}
	fileEdits := make(map[string][]edit)
	fileImports := make(map[string][]string)
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			continue
		}
		fix := f.Fixes[0]
		for _, e := range fix.Edits {
			p0, p1 := f.Fset.Position(e.Pos), f.Fset.Position(e.End)
			if p0.Filename == "" || p1.Filename != p0.Filename {
				return nil, fmt.Errorf("analysis: fix for %q has edit spanning files", f.Message)
			}
			fileEdits[p0.Filename] = append(fileEdits[p0.Filename], edit{p0.Offset, p1.Offset, e.NewText})
		}
		if len(fix.Edits) > 0 {
			name := f.Fset.Position(fix.Edits[0].Pos).Filename
			fileImports[name] = append(fileImports[name], fix.AddImports...)
		}
	}

	var changed []string
	for _, name := range slices.Sorted(maps.Keys(fileEdits)) {
		edits := fileEdits[name]
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		// Apply back-to-front so earlier offsets stay valid; drop edits
		// that overlap an already-applied one.
		sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
		lastStart := len(src) + 1
		for _, e := range edits {
			if e.end > lastStart || e.start > e.end || e.end > len(src) {
				continue
			}
			src = append(src[:e.start], append([]byte(e.text), src[e.end:]...)...)
			lastStart = e.start
		}
		src = addImports(src, fileImports[name])
		out, err := format.Source(src)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixed %s does not format (fix left invalid code): %w", name, err)
		}
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return nil, err
		}
		changed = append(changed, name)
	}
	sort.Strings(changed)
	return changed, nil
}

// addImports textually inserts any of paths not already imported. It
// understands the two common layouts (a parenthesized import block, a
// lone import line) and otherwise inserts a new block after the package
// clause; format.Source in the caller normalizes the result.
func addImports(src []byte, paths []string) []byte {
	s := string(src)
	var missing []string
	seen := map[string]bool{}
	for _, p := range paths {
		q := `"` + p + `"`
		if seen[p] || strings.Contains(s, q) {
			continue
		}
		seen[p] = true
		missing = append(missing, q)
	}
	if len(missing) == 0 {
		return src
	}
	sort.Strings(missing)
	if i := strings.Index(s, "\nimport ("); i >= 0 {
		at := i + len("\nimport (")
		return []byte(s[:at] + "\n\t" + strings.Join(missing, "\n\t") + s[at:])
	}
	if i := strings.Index(s, "\nimport \""); i >= 0 {
		nl := strings.Index(s[i+1:], "\n")
		if nl < 0 {
			nl = len(s) - i - 1
		}
		line := s[i+1 : i+1+nl]
		existing := strings.TrimPrefix(line, "import ")
		block := "import (\n\t" + existing + "\n\t" + strings.Join(missing, "\n\t") + "\n)"
		return []byte(s[:i+1] + block + s[i+1+nl:])
	}
	// No imports yet: add a block right after the package clause line.
	if i := strings.Index(s, "package "); i >= 0 {
		if nl := strings.Index(s[i:], "\n"); nl >= 0 {
			at := i + nl + 1
			return []byte(s[:at] + "\nimport (\n\t" + strings.Join(missing, "\n\t") + "\n)\n" + s[at:])
		}
	}
	return src
}
