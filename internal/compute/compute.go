// Package compute models single-processor computation cost per phase and
// material — the quantity the paper calls "the per-cell cost from a
// piecewise linear equation given the phase and material type" (Equation 2).
//
// Two representations live here:
//
//   - TruthTable is the ground truth used by the cluster simulator (the
//     stand-in for the real Krak running on real ES45 nodes): per phase, a
//     fixed subgrid overhead plus per-material linear and square-root terms.
//     The fixed term produces exactly the behaviour of Figure 3: per-cell
//     cost is flat for large subgrids and climbs as subgrids shrink, until
//     the time per subgrid approaches a constant ("the knee").
//
//   - Calibrated is what the performance model is allowed to know: per-cell
//     cost curves reconstructed from measurement campaigns (regression over
//     contrived grids, or least squares over a real deck's processors, both
//     in internal/core). The gap between Calibrated and TruthTable is a
//     modeling error the paper also had — it is what breaks the
//     mesh-specific model near the knee in Table 5.
package compute

import (
	"fmt"
	"math"

	"krak/internal/linalg"
	"krak/internal/mesh"
	"krak/internal/phases"
	"krak/internal/stats"
)

// PhaseCoeffs holds the ground-truth cost coefficients of one phase.
type PhaseCoeffs struct {
	// Fixed is the per-subgrid overhead in seconds, paid once per phase
	// regardless of cell count (loop setup, per-phase bookkeeping).
	Fixed float64

	// PerCell is the asymptotic per-cell cost in seconds, by material.
	PerCell [mesh.NumMaterials]float64

	// PerSqrt scales a sqrt(cells) term in seconds, by material — surface-
	// like work (material interfaces, slip-line bookkeeping) that breaks
	// pure linearity and gives the calibration something to miss.
	PerSqrt [mesh.NumMaterials]float64
}

// TruthTable is the machine's ground-truth computation cost model.
type TruthTable struct {
	Name   string
	Phases [phases.Count]PhaseCoeffs

	// NoiseFrac is the relative amplitude of deterministic pseudo-random
	// run-to-run variation applied by NoisyPhaseTime (e.g. 0.03 = ±3%).
	NoiseFrac float64

	// Seed drives the noise streams.
	Seed uint64
}

// PhaseTime returns the noiseless computation time of phase ph (1-based) on
// a subgrid holding the given per-material cell counts.
func (t *TruthTable) PhaseTime(ph int, counts [mesh.NumMaterials]int) float64 {
	c := t.Phases[ph-1]
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0 // an empty subgrid does no work in any phase
	}
	s := c.Fixed
	for m, n := range counts {
		if n > 0 {
			s += c.PerCell[m]*float64(n) + c.PerSqrt[m]*math.Sqrt(float64(n))
		}
	}
	return s
}

// NoisyPhaseTime perturbs PhaseTime with deterministic noise derived from
// (Seed, phase, pe, iteration): the same arguments always yield the same
// "measurement", but distinct processors and iterations vary independently.
func (t *TruthTable) NoisyPhaseTime(ph int, counts [mesh.NumMaterials]int, pe, iteration int) float64 {
	base := t.PhaseTime(ph, counts)
	if t.NoiseFrac == 0 || base == 0 {
		return base
	}
	rng := stats.Derive(t.Seed, uint64(ph), uint64(pe), uint64(iteration))
	return base * (1 + t.NoiseFrac*rng.Sym())
}

// SingleMaterialTime returns the noiseless phase time for a subgrid of n
// cells of one material — the quantity plotted (divided by n) in Figure 3.
func (t *TruthTable) SingleMaterialTime(ph int, mat mesh.Material, n int) float64 {
	var counts [mesh.NumMaterials]int
	counts[mat] = n
	return t.PhaseTime(ph, counts)
}

// PerCellCost returns the noiseless per-cell cost of a single-material
// subgrid, i.e. SingleMaterialTime/n. It panics if n <= 0.
func (t *TruthTable) PerCellCost(ph int, mat mesh.Material, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("compute: PerCellCost with n=%d", n))
	}
	return t.SingleMaterialTime(ph, mat, n) / float64(n)
}

// IterationTime sums all phase times for one subgrid (no communication).
func (t *TruthTable) IterationTime(counts [mesh.NumMaterials]int) float64 {
	var s float64
	for ph := 1; ph <= phases.Count; ph++ {
		s += t.PhaseTime(ph, counts)
	}
	return s
}

// ES45 returns the default ground-truth table, tuned so that whole
// iterations of the paper's decks land in the same few-tens-of-milliseconds
// range as the paper's measurements on 1.25 GHz Alpha EV-68 processors
// (Tables 5 and 6), with material-dependent phases 2, 5, 7, 12, and 14:
// detonation work makes H.E. gas expensive in phase 2, foam's crush model
// dominates phase 7, and aluminum's strength model dominates phase 14.
func ES45() *TruthTable {
	const us = 1e-6
	const ms = 1e-3
	t := &TruthTable{Name: "ES45/EV-68 ground truth", NoiseFrac: 0.03, Seed: 0x5ca1ab1e}
	flat := func(fixed, percell, persqrt float64) PhaseCoeffs {
		var c PhaseCoeffs
		c.Fixed = fixed
		for m := range c.PerCell {
			c.PerCell[m] = percell
			c.PerSqrt[m] = persqrt
		}
		return c
	}
	mat := func(fixed float64, percell [mesh.NumMaterials]float64, persqrt float64) PhaseCoeffs {
		var c PhaseCoeffs
		c.Fixed = fixed
		c.PerCell = percell
		for m := range c.PerSqrt {
			c.PerSqrt[m] = persqrt
		}
		return c
	}
	t.Phases = [phases.Count]PhaseCoeffs{
		flat(0.8*ms, 0.30*us, 0.4*us), // 1
		mat(3.0*ms, [...]float64{2.20 * us, 1.50 * us, 1.80 * us, 1.50 * us}, 1.0*us), // 2
		flat(5.0*ms, 2.80*us, 1.2*us), // 3
		flat(1.2*ms, 0.50*us, 0.4*us), // 4
		mat(2.0*ms, [...]float64{1.00 * us, 0.80 * us, 0.90 * us, 0.80 * us}, 0.6*us), // 5
		flat(5.0*ms, 2.60*us, 1.2*us), // 6
		mat(2.5*ms, [...]float64{1.30 * us, 0.90 * us, 1.60 * us, 0.90 * us}, 0.8*us), // 7
		flat(1.5*ms, 0.70*us, 0.4*us), // 8
		flat(1.5*ms, 0.60*us, 0.4*us), // 9
		flat(1.2*ms, 0.50*us, 0.3*us), // 10
		flat(2.5*ms, 0.80*us, 0.5*us), // 11
		mat(1.8*ms, [...]float64{0.60 * us, 0.50 * us, 0.55 * us, 0.50 * us}, 0.4*us), // 12
		flat(1.0*ms, 0.40*us, 0.3*us), // 13
		mat(3.5*ms, [...]float64{0.80 * us, 1.40 * us, 1.00 * us, 1.50 * us}, 0.9*us), // 14
		flat(1.5*ms, 0.30*us, 0.3*us), // 15
	}
	return t
}

// WithoutKnee returns a copy of the table with all fixed and sqrt terms
// removed, leaving purely linear per-cell costs. Used by the ablation bench
// that quantifies how much of the small-grid modeling error of Table 5 is
// attributable to the knee.
func (t *TruthTable) WithoutKnee() *TruthTable {
	c := *t
	c.Name = t.Name + " (no knee)"
	for i := range c.Phases {
		c.Phases[i].Fixed = 0
		for m := range c.Phases[i].PerSqrt {
			c.Phases[i].PerSqrt[m] = 0
		}
	}
	return &c
}

// Scaled returns a copy of the table with every cost coefficient (fixed,
// per-cell, and sqrt terms) multiplied by f — a uniformly slower (f > 1)
// or faster (f < 1) processor relative to this one. Noise amplitude and
// streams are unchanged, so a scaled table's noisy measurements are
// exactly f times the original's.
func (t *TruthTable) Scaled(f float64) *TruthTable {
	c := *t
	c.Name = fmt.Sprintf("%s (x%g)", t.Name, f)
	for i := range c.Phases {
		c.Phases[i].Fixed *= f
		for m := range c.Phases[i].PerCell {
			c.Phases[i].PerCell[m] *= f
			c.Phases[i].PerSqrt[m] *= f
		}
	}
	return &c
}

// WithoutNoise returns a copy of the table with measurement noise disabled.
func (t *TruthTable) WithoutNoise() *TruthTable {
	c := *t
	c.NoiseFrac = 0
	return &c
}

// Calibrated is the model-side computation cost representation: per-cell
// cost curves by phase and material, tabulated against subgrid size
// (cells per processor) and interpolated piecewise-linearly in log-cell
// space, exactly as §3.1 describes.
type Calibrated struct {
	// Curves[ph-1][mat] maps cells-per-processor to per-cell seconds.
	Curves [phases.Count][mesh.NumMaterials]*linalg.Piecewise
}

// PerCell evaluates the calibrated per-cell cost for a phase and material on
// a subgrid of n total cells. Returns 0 when the curve is missing.
func (c *Calibrated) PerCell(ph int, mat mesh.Material, n int) float64 {
	curve := c.Curves[ph-1][mat]
	if curve == nil || n <= 0 {
		return 0
	}
	v := curve.EvalLog(float64(n))
	if v < 0 {
		return 0 // regression artifacts must not go negative
	}
	return v
}

// PhaseTime evaluates Equation (2)'s inner sum for one processor: the sum
// over that processor's cells of the per-cell cost for the cell's material,
// with the per-cell cost read at the processor's total subgrid size.
func (c *Calibrated) PhaseTime(ph int, counts [mesh.NumMaterials]int) float64 {
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	var s float64
	for m, n := range counts {
		if n > 0 {
			s += float64(n) * c.PerCell(ph, mesh.Material(m), total)
		}
	}
	return s
}

// SetCurve installs a per-cell cost curve.
func (c *Calibrated) SetCurve(ph int, mat mesh.Material, curve *linalg.Piecewise) error {
	if ph < 1 || ph > phases.Count {
		return fmt.Errorf("compute: phase %d out of range", ph)
	}
	c.Curves[ph-1][mat] = curve
	return nil
}
