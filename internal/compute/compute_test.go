package compute

import (
	"math"
	"testing"
	"testing/quick"

	"krak/internal/linalg"
	"krak/internal/mesh"
	"krak/internal/phases"
)

func TestPhaseTimeComposition(t *testing.T) {
	tt := ES45()
	var counts [mesh.NumMaterials]int
	counts[mesh.HEGas] = 1000
	c := tt.Phases[0] // phase 1
	want := c.Fixed + c.PerCell[mesh.HEGas]*1000 + c.PerSqrt[mesh.HEGas]*math.Sqrt(1000)
	if got := tt.PhaseTime(1, counts); math.Abs(got-want) > 1e-15 {
		t.Fatalf("PhaseTime = %v, want %v", got, want)
	}
}

func TestPhaseTimeEmptySubgrid(t *testing.T) {
	tt := ES45()
	var empty [mesh.NumMaterials]int
	for ph := 1; ph <= phases.Count; ph++ {
		if got := tt.PhaseTime(ph, empty); got != 0 {
			t.Fatalf("phase %d on empty subgrid = %v, want 0", ph, got)
		}
	}
}

func TestMaterialDependenceMatchesPhaseTable(t *testing.T) {
	tt := ES45()
	for ph := 1; ph <= phases.Count; ph++ {
		p := phases.MustGet(ph)
		c := tt.Phases[ph-1]
		varies := false
		for m := 1; m < mesh.NumMaterials; m++ {
			if c.PerCell[m] != c.PerCell[0] {
				varies = true
			}
		}
		if varies != p.MaterialDependent {
			t.Errorf("phase %d: truth table material dependence %v, phase table says %v",
				ph, varies, p.MaterialDependent)
		}
	}
}

func TestKneeShape(t *testing.T) {
	// Figure 3: per-cell cost decreases (weakly) with subgrid size and
	// flattens at large n.
	tt := ES45()
	for _, ph := range []int{1, 2, 7} {
		prev := math.Inf(1)
		for _, n := range []int{1, 10, 100, 1000, 10000, 100000} {
			pc := tt.PerCellCost(ph, mesh.HEGas, n)
			if pc > prev*1.0000001 {
				t.Fatalf("phase %d per-cell cost not decreasing at n=%d: %v > %v", ph, n, pc, prev)
			}
			prev = pc
		}
		// Large-n cost approaches the linear coefficient.
		asym := tt.PerCellCost(ph, mesh.HEGas, 1_000_000)
		lin := tt.Phases[ph-1].PerCell[mesh.HEGas]
		if asym > lin*1.05 {
			t.Fatalf("phase %d per-cell cost at 1M cells = %v, want within 5%% of %v", ph, asym, lin)
		}
		// Small-n cost is far above the asymptote (the knee exists).
		if tt.PerCellCost(ph, mesh.HEGas, 1) < 100*lin {
			t.Fatalf("phase %d has no knee: cost(1) = %v", ph, tt.PerCellCost(ph, mesh.HEGas, 1))
		}
	}
}

func TestPerCellCostPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PerCellCost(0) did not panic")
		}
	}()
	ES45().PerCellCost(1, mesh.HEGas, 0)
}

func TestNoiseDeterministicAndBounded(t *testing.T) {
	tt := ES45()
	var counts [mesh.NumMaterials]int
	counts[mesh.Foam] = 500
	a := tt.NoisyPhaseTime(3, counts, 7, 2)
	b := tt.NoisyPhaseTime(3, counts, 7, 2)
	if a != b {
		t.Fatal("noise not deterministic")
	}
	base := tt.PhaseTime(3, counts)
	for pe := 0; pe < 50; pe++ {
		v := tt.NoisyPhaseTime(3, counts, pe, 0)
		if math.Abs(v-base) > tt.NoiseFrac*base {
			t.Fatalf("noise exceeds %v%%: %v vs %v", tt.NoiseFrac*100, v, base)
		}
	}
	// Distinct PEs see distinct noise.
	if tt.NoisyPhaseTime(3, counts, 0, 0) == tt.NoisyPhaseTime(3, counts, 1, 0) {
		t.Fatal("noise identical across PEs (suspicious)")
	}
	if ES45().WithoutNoise().NoisyPhaseTime(3, counts, 5, 5) != base {
		t.Fatal("WithoutNoise still noisy")
	}
}

func TestIterationTimeMagnitude(t *testing.T) {
	// A medium-deck 128-PE subgrid (1600 cells, heterogeneous-ish) should
	// take tens of milliseconds per iteration — the Table 5/6 regime.
	tt := ES45()
	var counts [mesh.NumMaterials]int
	counts[mesh.HEGas] = 626
	counts[mesh.AluminumInner] = 275
	counts[mesh.Foam] = 325
	counts[mesh.AluminumOuter] = 374
	it := tt.IterationTime(counts)
	if it < 0.030 || it > 0.120 {
		t.Fatalf("iteration time = %v s, want tens of ms", it)
	}
}

func TestWithoutKnee(t *testing.T) {
	tt := ES45().WithoutKnee()
	// Per-cell cost becomes independent of n.
	a := tt.PerCellCost(2, mesh.Foam, 1)
	b := tt.PerCellCost(2, mesh.Foam, 100000)
	if math.Abs(a-b) > 1e-18 {
		t.Fatalf("no-knee table still has a knee: %v vs %v", a, b)
	}
}

func TestCalibratedPhaseTime(t *testing.T) {
	var cal Calibrated
	// Constant 2 us/cell for HE gas in phase 1.
	curve := linalg.MustPiecewise([]float64{1, 1e6}, []float64{2e-6, 2e-6})
	if err := cal.SetCurve(1, mesh.HEGas, curve); err != nil {
		t.Fatal(err)
	}
	var counts [mesh.NumMaterials]int
	counts[mesh.HEGas] = 1000
	if got, want := cal.PhaseTime(1, counts), 2e-3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("PhaseTime = %v, want %v", got, want)
	}
	// Missing curves contribute zero.
	counts[mesh.Foam] = 500
	if got := cal.PhaseTime(1, counts); math.Abs(got-2e-3) > 1e-12 {
		t.Fatalf("missing curve contributed: %v", got)
	}
	// Phase bounds.
	if err := cal.SetCurve(0, mesh.HEGas, curve); err == nil {
		t.Fatal("phase 0 accepted")
	}
	if err := cal.SetCurve(16, mesh.HEGas, curve); err == nil {
		t.Fatal("phase 16 accepted")
	}
}

func TestCalibratedNegativeClamped(t *testing.T) {
	var cal Calibrated
	curve := linalg.MustPiecewise([]float64{1, 10}, []float64{-1e-6, -1e-6})
	if err := cal.SetCurve(1, mesh.HEGas, curve); err != nil {
		t.Fatal(err)
	}
	if got := cal.PerCell(1, mesh.HEGas, 5); got != 0 {
		t.Fatalf("negative per-cell cost not clamped: %v", got)
	}
	if got := cal.PerCell(1, mesh.HEGas, 0); got != 0 {
		t.Fatalf("n=0 should cost 0, got %v", got)
	}
}

// Property: PhaseTime is monotone in every material count.
func TestPhaseTimeMonotoneProperty(t *testing.T) {
	tt := ES45()
	f := func(ph8 uint8, m8 uint8, nRaw uint16, extra uint8) bool {
		ph := int(ph8)%phases.Count + 1
		m := int(m8) % mesh.NumMaterials
		var a, b [mesh.NumMaterials]int
		a[m] = int(nRaw)
		b[m] = int(nRaw) + int(extra) + 1
		return tt.PhaseTime(ph, b) >= tt.PhaseTime(ph, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: truth PhaseTime equals the sum of single-material times minus
// the duplicated fixed overheads (additivity of the material terms).
func TestPhaseTimeAdditiveProperty(t *testing.T) {
	tt := ES45()
	f := func(ph8 uint8, n0, n1, n2, n3 uint8) bool {
		ph := int(ph8)%phases.Count + 1
		counts := [mesh.NumMaterials]int{int(n0), int(n1), int(n2), int(n3)}
		var sum float64
		nonEmpty := 0
		for m, n := range counts {
			if n > 0 {
				sum += tt.SingleMaterialTime(ph, mesh.Material(m), n)
				nonEmpty++
			}
		}
		if nonEmpty == 0 {
			return tt.PhaseTime(ph, counts) == 0
		}
		want := sum - float64(nonEmpty-1)*tt.Phases[ph-1].Fixed
		got := tt.PhaseTime(ph, counts)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
