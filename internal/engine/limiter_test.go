package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(3, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := l.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	// Queue depth 0: the fourth caller is refused instantly.
	if err := l.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestLimiterBoundedQueue saturates the slots, fills the wait queue with
// blocked callers, and checks the next caller is refused while the queued
// ones eventually run.
func TestLimiterBoundedQueue(t *testing.T) {
	l := NewLimiter(1, 2)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(ctx); err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			admitted.Add(1)
			l.Release()
		}()
	}
	// Wait until both are in the queue, then the third must be refused.
	deadline := time.Now().Add(5 * time.Second)
	for l.Waiting() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: waiting=%d", l.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-queue acquire: %v, want ErrSaturated", err)
	}
	l.Release() // let the queued pair through, one at a time
	wg.Wait()
	if n := admitted.Load(); n != 2 {
		t.Fatalf("admitted %d queued callers, want 2", n)
	}
	// Every queued caller released its own slot on the way out.
	if l.InFlight() != 0 || l.Waiting() != 0 {
		t.Fatalf("not drained: inflight=%d waiting=%d", l.InFlight(), l.Waiting())
	}
}

func TestLimiterAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1, 4)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if l.Waiting() != 0 {
		t.Fatalf("abandoned waiter still queued: %d", l.Waiting())
	}
}

// TestLimiterWaitBypassesQueueBound checks Wait blocks past a full queue
// instead of being refused — the path background jobs take.
func TestLimiterWaitBypassesQueueBound(t *testing.T) {
	l := NewLimiter(1, 0)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Acquire would be refused; Wait must block and then win.
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire: %v, want ErrSaturated", err)
	}
	got := make(chan error, 1)
	go func() { got <- l.Wait(context.Background()) }()
	select {
	case err := <-got:
		t.Fatalf("Wait returned %v before a slot freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	if err := <-got; err != nil {
		t.Fatalf("Wait: %v", err)
	}
	l.Release()
}

func TestLimiterNilIsUnlimited(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Release()
	if l.InFlight() != 0 || l.Waiting() != 0 || l.Limit() != 0 || l.QueueDepth() != 0 {
		t.Fatal("nil limiter reports occupancy")
	}
}

func TestLimiterClamps(t *testing.T) {
	l := NewLimiter(0, -3)
	if l.Limit() != 1 || l.QueueDepth() != 0 {
		t.Fatalf("limit=%d queue=%d, want 1/0", l.Limit(), l.QueueDepth())
	}
}

// TestLimiterCanceledWaiterReleasesQueueSlot is the regression test for
// queue-slot leakage: a waiter that gives up (context canceled) must
// hand its queue slot back promptly, or every abandoned request would
// permanently shrink the wait queue until the limiter refuses everyone.
func TestLimiterCanceledWaiterReleasesQueueSlot(t *testing.T) {
	l := NewLimiter(1, 1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- l.Acquire(ctx) }()
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor(func() bool { return l.Waiting() == 1 }, "the waiter to queue")

	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v", err)
	}
	waitFor(func() bool { return l.Waiting() == 0 }, "the queue slot to free")

	// The freed slot admits a fresh waiter instead of refusing it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	errc2 := make(chan error, 1)
	go func() { errc2 <- l.Acquire(ctx2) }()
	waitFor(func() bool { return l.Waiting() == 1 }, "the fresh waiter to queue")

	// And the canceled waiter did not leak a slot: one Release unblocks it.
	l.Release()
	if err := <-errc2; err != nil {
		t.Fatalf("fresh waiter: %v", err)
	}
	l.Release()
	if got := l.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d after full release, want 0", got)
	}
}

// TestLimiterCanceledWaiterStorm hammers the same property under
// contention: 64 waiters that all cancel must leave the queue empty and
// admit a full fresh complement.
func TestLimiterCanceledWaiterStorm(t *testing.T) {
	l := NewLimiter(2, 8)
	for i := 0; i < 2; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(ctx); err == nil {
				l.Release()
			}
		}()
	}
	cancel()
	wg.Wait()
	if got := l.Waiting(); got != 0 {
		t.Fatalf("Waiting = %d after every waiter canceled, want 0", got)
	}
	// The queue's full depth is available again.
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- l.Acquire(context.Background()) }()
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Waiting() != 8 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of 8 fresh waiters queued — queue capacity leaked", l.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	l.Release()
	l.Release()
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("fresh waiter %d: %v", i, err)
		}
		l.Release()
	}
}
