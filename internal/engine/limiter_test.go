package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToLimit(t *testing.T) {
	l := NewLimiter(3, 0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.Acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := l.InFlight(); got != 3 {
		t.Fatalf("InFlight = %d, want 3", got)
	}
	// Queue depth 0: the fourth caller is refused instantly.
	if err := l.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	l.Release()
	if err := l.Acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

// TestLimiterBoundedQueue saturates the slots, fills the wait queue with
// blocked callers, and checks the next caller is refused while the queued
// ones eventually run.
func TestLimiterBoundedQueue(t *testing.T) {
	l := NewLimiter(1, 2)
	ctx := context.Background()
	if err := l.Acquire(ctx); err != nil {
		t.Fatal(err)
	}

	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(ctx); err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			admitted.Add(1)
			l.Release()
		}()
	}
	// Wait until both are in the queue, then the third must be refused.
	deadline := time.Now().Add(5 * time.Second)
	for l.Waiting() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: waiting=%d", l.Waiting())
		}
		time.Sleep(time.Millisecond)
	}
	if err := l.Acquire(ctx); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-queue acquire: %v, want ErrSaturated", err)
	}
	l.Release() // let the queued pair through, one at a time
	wg.Wait()
	if n := admitted.Load(); n != 2 {
		t.Fatalf("admitted %d queued callers, want 2", n)
	}
	// Every queued caller released its own slot on the way out.
	if l.InFlight() != 0 || l.Waiting() != 0 {
		t.Fatalf("not drained: inflight=%d waiting=%d", l.InFlight(), l.Waiting())
	}
}

func TestLimiterAcquireHonorsContext(t *testing.T) {
	l := NewLimiter(1, 4)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if l.Waiting() != 0 {
		t.Fatalf("abandoned waiter still queued: %d", l.Waiting())
	}
}

// TestLimiterWaitBypassesQueueBound checks Wait blocks past a full queue
// instead of being refused — the path background jobs take.
func TestLimiterWaitBypassesQueueBound(t *testing.T) {
	l := NewLimiter(1, 0)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Acquire would be refused; Wait must block and then win.
	if err := l.Acquire(context.Background()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("acquire: %v, want ErrSaturated", err)
	}
	got := make(chan error, 1)
	go func() { got <- l.Wait(context.Background()) }()
	select {
	case err := <-got:
		t.Fatalf("Wait returned %v before a slot freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	l.Release()
	if err := <-got; err != nil {
		t.Fatalf("Wait: %v", err)
	}
	l.Release()
}

func TestLimiterNilIsUnlimited(t *testing.T) {
	var l *Limiter
	for i := 0; i < 100; i++ {
		if err := l.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	l.Release()
	if l.InFlight() != 0 || l.Waiting() != 0 || l.Limit() != 0 || l.QueueDepth() != 0 {
		t.Fatal("nil limiter reports occupancy")
	}
}

func TestLimiterClamps(t *testing.T) {
	l := NewLimiter(0, -3)
	if l.Limit() != 1 || l.QueueDepth() != 0 {
		t.Fatalf("limit=%d queue=%d, want 1/0", l.Limit(), l.QueueDepth())
	}
}
