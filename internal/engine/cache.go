package engine

import (
	"errors"
	"fmt"
	"sync"
)

// Cache is a generic single-flight memoization map: the first Get for a
// key runs compute exactly once while concurrent Gets for the same key
// block until it finishes, and every caller — then and later — receives
// the same value and error. Distinct keys compute concurrently; nothing
// holds the map lock while computing.
//
// The zero value is ready to use, so a Cache can sit directly inside a
// struct literal (the experiment env's ablation sub-environments rely on
// this). A Cache must not be copied after first use.
type Cache[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// ErrCacheFull is returned by GetBounded when the cache already holds its
// limit of distinct keys and the requested key is not among them.
var ErrCacheFull = errors.New("engine: cache at capacity")

// Get returns the cached value for key, computing and storing it with
// compute on the first call. Errors are cached too: a failed computation
// is not retried, mirroring the repo's previous memoization behavior. If
// compute panics, the panic propagates to this caller and the entry is
// poisoned with an error — later Gets for the key receive that error
// rather than a zero value masquerading as success.
func (c *Cache[K, V]) Get(key K, compute func() (V, error)) (V, error) {
	return c.GetBounded(key, 0, compute)
}

// GetBounded is Get with an atomic reserve-under-cap: when limit > 0 and
// the cache already holds limit distinct keys, a request for a new key
// returns ErrCacheFull without computing anything, while known keys keep
// serving. The existence check and the slot reservation happen under one
// lock acquisition, so concurrent first-time requests for distinct new
// keys cannot all pass a "len < limit" check and overshoot the cap — the
// TOCTOU a separate Len()/Has()/Get() sequence is exposed to. limit <= 0
// means unbounded (plain Get).
func (c *Cache[K, V]) GetBounded(key K, limit int, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*cacheEntry[V])
	}
	e, ok := c.m[key]
	if !ok {
		if limit > 0 && len(c.m) >= limit {
			c.mu.Unlock()
			var zero V
			return zero, ErrCacheFull
		}
		e = &cacheEntry[V]{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				e.err = fmt.Errorf("engine: cache compute for key %v panicked: %v", key, r)
				panic(r)
			}
		}()
		e.val, e.err = compute()
	})
	return e.val, e.err
}

// Len reports how many keys have been requested (including in-flight and
// failed computations).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Has reports whether key has been requested (including in-flight and
// failed computations), without computing anything.
func (c *Cache[K, V]) Has(key K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[key]
	return ok
}
