package engine

import (
	"container/list"
	"errors"
	"sync"
)

// LRU is a size-bounded memoization cache with single-flight fills: the
// serving-path counterpart to Cache. Where Cache remembers every key
// forever (right for a bounded artifact space — decks, partitions,
// calibrations), LRU holds at most Cap entries and evicts the least
// recently used, which is what an open-ended request space needs.
//
// Do has Cache.Get's coalescing discipline — concurrent calls for the
// same key share one computation — but the error policy differs: a
// failed computation is not cached, so the next request for the key
// retries. A server must not let one transient failure poison a key
// forever.
//
// The zero value is not ready to use; build with NewLRU. An LRU must not
// be copied after first use.
type LRU[K comparable, V any] struct {
	mu  sync.Mutex
	cap int
	m   map[K]*lruEntry[K, V]
	ll  *list.List // front = most recently used; holds only filled entries
}

type lruEntry[K comparable, V any] struct {
	key  K
	done chan struct{} // closed when the fill completes
	val  V
	err  error
	elem *list.Element // nil while the fill is in flight
}

// LRUOutcome classifies how a Do call was served. A serving layer that
// reports a hit rate needs the three-way distinction: a caller coalesced
// onto an in-flight fill waited on a fresh computation and must not be
// counted as a cache hit, but it did not run a computation of its own
// either.
type LRUOutcome int

const (
	// LRUMiss: this call ran the computation.
	LRUMiss LRUOutcome = iota
	// LRUHit: the value was already cached; nothing was computed.
	LRUHit
	// LRUCoalesced: another call's in-flight computation was joined and
	// its outcome shared.
	LRUCoalesced
)

// String names the outcome for counters and logs.
func (o LRUOutcome) String() string {
	switch o {
	case LRUMiss:
		return "miss"
	case LRUHit:
		return "hit"
	case LRUCoalesced:
		return "coalesced"
	}
	return "unknown"
}

// NewLRU returns an LRU holding at most capacity filled entries.
// capacity <= 0 selects 1.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &LRU[K, V]{
		cap: capacity,
		m:   make(map[K]*lruEntry[K, V]),
		ll:  list.New(),
	}
}

// Cap reports the capacity the LRU was built with.
func (l *LRU[K, V]) Cap() int { return l.cap }

// Len reports how many filled entries the LRU currently holds (in-flight
// fills are not counted).
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// Get returns the cached value for key without computing anything,
// marking the entry most recently used on a hit.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e, ok := l.m[key]; ok && e.elem != nil {
		l.ll.MoveToFront(e.elem)
		return e.val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for key, computing it with compute on a miss. A
// concurrent Do for the same key waits for the in-flight computation and
// shares its outcome instead of recomputing. Successful values enter the
// cache (evicting the least recently used entry beyond Cap); errors are
// returned to every waiter but not cached, so a later Do retries. If
// compute panics, the panic propagates to the caller that ran it and the
// waiters receive an error.
//
// The returned LRUOutcome says how this call was served: LRUHit for a
// filled entry, LRUMiss when this call ran compute, and LRUCoalesced when
// it joined a stranger's in-flight fill. A coalesced call waited on a
// fresh computation — counting it as a hit overreports the hit rate under
// concurrency (the serving layer's regression test pins all three).
func (l *LRU[K, V]) Do(key K, compute func() (V, error)) (V, LRUOutcome, error) {
	l.mu.Lock()
	if e, ok := l.m[key]; ok {
		if e.elem != nil { // filled: a plain hit
			l.ll.MoveToFront(e.elem)
			l.mu.Unlock()
			return e.val, LRUHit, e.err
		}
		l.mu.Unlock() // in flight: wait for the filler
		<-e.done
		return e.val, LRUCoalesced, e.err
	}
	e := &lruEntry[K, V]{key: key, done: make(chan struct{})}
	l.m[key] = e
	l.mu.Unlock()

	finished := false
	defer func() {
		if finished {
			return
		}
		// compute panicked: unpin the entry and wake waiters with an error
		// so they are not stranded, then let the panic propagate.
		e.err = errLRUPanic
		l.mu.Lock()
		delete(l.m, key)
		l.mu.Unlock()
		close(e.done)
	}()
	e.val, e.err = compute()
	finished = true

	l.mu.Lock()
	if e.err != nil {
		delete(l.m, key) // errors are not cached; the next Do retries
	} else {
		e.elem = l.ll.PushFront(e)
		for l.ll.Len() > l.cap {
			oldest := l.ll.Back()
			ev := oldest.Value.(*lruEntry[K, V])
			l.ll.Remove(oldest)
			delete(l.m, ev.key)
		}
	}
	l.mu.Unlock()
	close(e.done)
	return e.val, LRUMiss, e.err
}

// errLRUPanic is what waiters coalesced onto a panicking fill receive.
var errLRUPanic = errors.New("engine: lru compute panicked")
