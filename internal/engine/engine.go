// Package engine is the concurrent execution substrate of the repository:
// a bounded worker pool with deterministic result ordering (Pool, Map) and
// a single-flight memoization cache (Cache) that lets parallel jobs share
// expensive artifacts — decks, partitions, calibrated models — instead of
// recomputing them.
//
// The design contract, relied on by internal/experiments and pkg/krak, is
// that running a batch of jobs through Map produces results that are
// byte-for-byte identical to running the same jobs serially: results come
// back in submission order, every job computes exactly the same values it
// would compute alone (jobs share artifacts only through Cache, whose
// single-flight discipline guarantees one computation per key), and the
// first failure — by submission order, matching where a serial loop would
// have stopped — is the error reported.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Pool bounds how many jobs run concurrently. The zero value and nil
// both behave serially; use New to size one from the hardware.
//
// The bound is a shared token budget, not a set of long-lived goroutines:
// the goroutine calling Map always works through jobs itself, and helper
// goroutines join only while spare tokens exist. A nested Map (a batch
// job that itself fans out rows) therefore borrows only idle capacity —
// it can never deadlock on the pool and never multiplies concurrency.
// Within one call tree the bound is exactly Workers(); each additional
// goroutine independently calling Map on the same pool contributes its
// own calling goroutine on top of the shared helper budget.
type Pool struct {
	workers int
	// tokens has capacity workers-1: the Map caller's goroutine is the
	// implicit first worker, and each helper holds one token while it
	// runs.
	tokens chan struct{}
}

// New returns a pool running at most n jobs at once. n <= 0 selects
// runtime.GOMAXPROCS(0), i.e. "as wide as the hardware allows".
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n, tokens: make(chan struct{}, n-1)}
}

// Serial returns a pool that runs jobs one at a time in submission order —
// the exact execution the pre-engine code performed.
func Serial() *Pool { return New(1) }

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return 1
	}
	return p.workers
}

// Map evaluates fn(ctx, i) for every i in [0, n) on the pool and returns
// the results in index order. It is the engine's only scheduling
// primitive.
//
// Semantics:
//
//   - Deterministic ordering: results[i] is fn's value for index i,
//     regardless of completion order.
//   - Fail-fast: the first error cancels the context passed to in-flight
//     jobs and stops unstarted ones. The error returned is the failing
//     job with the lowest index (what a serial loop would have hit
//     first), never a secondary cancellation error it provoked.
//   - Cancellation: if ctx is cancelled externally, Map drains its
//     workers and returns ctx.Err().
//   - Bounded: the calling goroutine works through jobs itself and
//     helper goroutines spawn only while the pool has spare tokens, so a
//     call tree — however deeply its jobs nest further Maps — never
//     exceeds Workers() jobs in flight (see the Pool doc for the
//     sibling-caller accounting).
//
// A serial pool (Workers() == 1) runs everything inline on the calling
// goroutine with no channels, so the serial path is also the natural
// baseline for benchmarks.
func Map[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, ctx.Err()
	}
	w := p.Workers()
	if w > n {
		w = n
	}

	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = v
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	work := func() {
		for i := range idx {
			if err := ctx.Err(); err != nil {
				errs[i] = err
				continue
			}
			v, err := fn(ctx, i)
			if err != nil {
				errs[i] = err
				cancel()
				continue
			}
			results[i] = v
		}
	}
	// Recruit up to w-1 helpers, but only while the shared pool has spare
	// tokens; under nesting or concurrent Maps the spare capacity may be
	// zero and the batch simply runs on the calling goroutine.
	var wg sync.WaitGroup
	for k := 0; k < w-1; k++ {
		select {
		case p.tokens <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.tokens
					wg.Done()
				}()
				work()
			}()
		default:
		}
	}
	work() // the caller is always the first worker
	wg.Wait()

	// Report the lowest-index genuine failure; cancellation errors are
	// either fallout from it or an external cancel.
	var cancelErr error
	for i := 0; i < n; i++ {
		err := errs[i]
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	return results, ctx.Err()
}
