package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUHitMissEvict(t *testing.T) {
	l := NewLRU[int, string](2)
	if l.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", l.Cap())
	}
	fills := 0
	get := func(k int) string {
		v, _, err := l.Do(k, func() (string, error) {
			fills++
			return fmt.Sprintf("v%d", k), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	if get(1) != "v1" || get(2) != "v2" {
		t.Fatal("wrong values")
	}
	if fills != 2 || l.Len() != 2 {
		t.Fatalf("fills=%d len=%d, want 2/2", fills, l.Len())
	}
	get(1) // hit: 1 is now MRU
	if fills != 2 {
		t.Fatalf("hit recomputed: fills=%d", fills)
	}
	get(3) // evicts 2 (LRU)
	if l.Len() != 2 {
		t.Fatalf("len=%d, want 2", l.Len())
	}
	if _, ok := l.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	if v, ok := l.Get(1); !ok || v != "v1" {
		t.Fatalf("1 should have survived, got %q/%v", v, ok)
	}
	get(2) // refill
	if fills != 4 {
		t.Fatalf("fills=%d, want 4", fills)
	}
}

func TestLRUErrorsNotCached(t *testing.T) {
	l := NewLRU[string, int](4)
	boom := errors.New("boom")
	calls := 0
	_, _, err := l.Do("k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if l.Len() != 0 {
		t.Fatalf("failed fill cached: len=%d", l.Len())
	}
	v, _, err := l.Do("k", func() (int, error) { calls++; return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry: v=%d err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("calls=%d, want 2", calls)
	}
}

// TestLRUSingleFlight checks concurrent Dos for one key share a single
// computation and all observe its value.
func TestLRUSingleFlight(t *testing.T) {
	l := NewLRU[string, int](4)
	var fills atomic.Int32
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := l.Do("k", func() (int, error) {
				fills.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fills=%d, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
}

func TestLRUPanicPropagatesAndUnpins(t *testing.T) {
	l := NewLRU[string, int](4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		l.Do("k", func() (int, error) { panic("kaboom") })
	}()
	// The key must not be stuck in flight: a later Do computes fresh.
	v, _, err := l.Do("k", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("after panic: v=%d err=%v", v, err)
	}
}

// TestLRUOutcomes pins the three-way hit/miss/coalesced classification:
// the first Do for a key is a miss, callers that join its in-flight fill
// are coalesced (not hits — they waited on a fresh computation), and only
// a Do against the filled entry is a hit. This is the regression test for
// the serving layer's hit-rate miscount, at the primitive level.
func TestLRUOutcomes(t *testing.T) {
	l := NewLRU[string, int](4)
	started := make(chan struct{})
	release := make(chan struct{})

	var mu sync.Mutex
	counts := map[LRUOutcome]int{}
	record := func(o LRUOutcome) {
		mu.Lock()
		counts[o]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, o, err := l.Do("k", func() (int, error) {
			close(started) // entry is registered; coalescers are now guaranteed
			<-release
			return 42, nil
		})
		if err != nil {
			t.Error(err)
		}
		record(o)
	}()
	<-started

	const coalescers = 3
	var arrived sync.WaitGroup
	for i := 0; i < coalescers; i++ {
		wg.Add(1)
		arrived.Add(1)
		go func() {
			defer wg.Done()
			arrived.Done() // next instruction is Do; the fill is still blocked
			_, o, err := l.Do("k", func() (int, error) {
				t.Error("coalescer ran the fill")
				return 0, nil
			})
			if err != nil {
				t.Error(err)
			}
			record(o)
		}()
	}
	// The fill cannot complete before release, so every coalescer that
	// reaches Do first is guaranteed the in-flight path; arrived.Wait plus
	// a settle window puts them there before the release.
	arrived.Wait()
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	_, o, err := l.Do("k", func() (int, error) {
		t.Error("hit ran the fill")
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	record(o)

	if counts[LRUMiss] != 1 || counts[LRUCoalesced] != coalescers || counts[LRUHit] != 1 {
		t.Fatalf("outcomes miss=%d coalesced=%d hit=%d, want 1/%d/1",
			counts[LRUMiss], counts[LRUCoalesced], counts[LRUHit], coalescers)
	}
}

func TestLRUOutcomeString(t *testing.T) {
	for o, want := range map[LRUOutcome]string{LRUMiss: "miss", LRUHit: "hit", LRUCoalesced: "coalesced", LRUOutcome(99): "unknown"} {
		if got := o.String(); got != want {
			t.Errorf("LRUOutcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestLRUZeroCapacityClamped(t *testing.T) {
	l := NewLRU[int, int](0)
	if l.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1", l.Cap())
	}
	l.Do(1, func() (int, error) { return 1, nil })
	l.Do(2, func() (int, error) { return 2, nil })
	if l.Len() != 1 {
		t.Fatalf("len=%d, want 1", l.Len())
	}
}
