package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGetBoundedRefusesNewKeysAtCap(t *testing.T) {
	var c Cache[int, int]
	for i := 0; i < 4; i++ {
		if _, err := c.GetBounded(i, 4, func() (int, error) { return i, nil }); err != nil {
			t.Fatalf("key %d under cap: %v", i, err)
		}
	}
	if _, err := c.GetBounded(99, 4, func() (int, error) { return 0, nil }); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("new key at cap: %v, want ErrCacheFull", err)
	}
	// Known keys keep serving at the cap, without recomputing.
	v, err := c.GetBounded(2, 4, func() (int, error) {
		t.Error("known key recomputed")
		return -1, nil
	})
	if err != nil || v != 2 {
		t.Fatalf("known key at cap: v=%d err=%v", v, err)
	}
	// limit <= 0 is unbounded.
	if _, err := c.GetBounded(99, 0, func() (int, error) { return 99, nil }); err != nil {
		t.Fatalf("unbounded: %v", err)
	}
}

// TestGetBoundedConcurrentCap is the TOCTOU regression test at the
// primitive level: a burst of first-time requests for distinct new keys,
// far more than the cap, must never push the cache past it — the check
// and the slot reservation are one atomic step, not a Len()/Has() peek
// followed by a separate Get.
func TestGetBoundedConcurrentCap(t *testing.T) {
	const (
		cap     = 16
		hammers = 128
	)
	var c Cache[string, int]
	var admitted, refused atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < hammers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, err := c.GetBounded(fmt.Sprintf("key-%d", i), cap, func() (int, error) { return i, nil })
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrCacheFull):
				refused.Add(1)
			default:
				t.Errorf("key %d: unexpected error %v", i, err)
			}
		}(i)
	}
	close(start)
	wg.Wait()

	if got := c.Len(); got > cap {
		t.Fatalf("cache overshot the cap: len=%d > %d", got, cap)
	}
	if admitted.Load() != cap || refused.Load() != hammers-cap {
		t.Fatalf("admitted=%d refused=%d, want %d/%d", admitted.Load(), refused.Load(), cap, hammers-cap)
	}
}
