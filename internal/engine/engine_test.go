package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolWorkers(t *testing.T) {
	if got := New(4).Workers(); got != 4 {
		t.Errorf("New(4).Workers() = %d, want 4", got)
	}
	if got := New(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("New(0).Workers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Serial().Workers(); got != 1 {
		t.Errorf("Serial().Workers() = %d, want 1", got)
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != 1 {
		t.Errorf("nil pool Workers() = %d, want 1", got)
	}
}

// TestMapOrdering checks that results come back in submission order even
// when later indices finish first.
func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		n := 50
		got, err := Map(context.Background(), p, n, func(_ context.Context, i int) (int, error) {
			// Sleep longer for earlier indices so completion order is
			// roughly the reverse of submission order.
			time.Sleep(time.Duration(n-i) * 20 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: results[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapNilPoolSerial checks the nil pool runs inline and stops at the
// first error like a plain loop.
func TestMapNilPoolSerial(t *testing.T) {
	ran := 0
	boom := errors.New("boom")
	_, err := Map(context.Background(), nil, 10, func(_ context.Context, i int) (int, error) {
		ran++
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran != 4 {
		t.Fatalf("serial map ran %d jobs after failure at index 3, want 4", ran)
	}
}

// TestMapFirstErrorWins checks the reported error is the failing job with
// the lowest index, not whichever failure happened to land first.
func TestMapFirstErrorWins(t *testing.T) {
	p := New(8)
	errAt := func(i int) error { return fmt.Errorf("job %d failed", i) }
	// Job 5 must not fail before job 2's fn has started: a worker that has
	// claimed index 2 but not yet called fn would otherwise see the
	// cancelled context and record a cancellation instead of the genuine
	// error, legitimately making job 5 the lowest genuine failure.
	var started, release sync.WaitGroup
	started.Add(1)
	release.Add(1)
	_, err := Map(context.Background(), p, 16, func(_ context.Context, i int) (int, error) {
		switch i {
		case 2:
			// Fail late so index 5 fails first in wall-clock order.
			started.Done()
			release.Wait()
			return 0, errAt(2)
		case 5:
			started.Wait()
			defer release.Done()
			return 0, errAt(5)
		default:
			return i, nil
		}
	})
	if err == nil || err.Error() != "job 2 failed" {
		t.Fatalf("err = %v, want job 2 failed", err)
	}
}

// TestMapCancellationStopsWork checks that cancelling the parent context
// stops unstarted jobs and surfaces the context error.
func TestMapCancellationStopsWork(t *testing.T) {
	p := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := Map(ctx, p, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			cancel()
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d jobs started despite cancellation", n)
	}
}

// TestMapErrorCancelsInFlight checks fail-fast: after one job fails, the
// context handed to running jobs is cancelled and pending jobs are
// skipped.
func TestMapErrorCancelsInFlight(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	var started atomic.Int32
	_, err := Map(context.Background(), p, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		// Wait for the cancellation the failure must trigger.
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return 0, errors.New("cancellation never arrived")
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("all %d jobs started despite failure", n)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), New(4), 0, func(context.Context, int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(n=0) = %v, %v; want empty, nil", got, err)
	}
}

// TestMapNestedBounded checks the pool bound is global: outer jobs that
// themselves fan out rows on the same pool never push the number of
// concurrently executing leaf jobs past Workers().
func TestMapNestedBounded(t *testing.T) {
	const width = 4
	p := New(width)
	var inFlight, peak atomic.Int32
	leaf := func() {
		v := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			cur := peak.Load()
			if v <= cur || peak.CompareAndSwap(cur, v) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, err := Map(context.Background(), p, 6, func(ctx context.Context, i int) (int, error) {
		rows, err := Map(ctx, p, 6, func(_ context.Context, j int) (int, error) {
			leaf()
			return i*10 + j, nil
		})
		if err != nil {
			return 0, err
		}
		return rows[0], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > width {
		t.Fatalf("peak leaf concurrency %d exceeds pool width %d", got, width)
	}
}

// TestCachePanicPoisonsEntry checks a panicking compute propagates the
// panic and leaves the entry erroring, never a zero value with nil error.
func TestCachePanicPoisonsEntry(t *testing.T) {
	var c Cache[string, *int]
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_, _ = c.Get("k", func() (*int, error) { panic("boom") })
	}()
	v, err := c.Get("k", func() (*int, error) {
		t.Fatal("compute retried after panic")
		return nil, nil
	})
	if err == nil || v != nil {
		t.Fatalf("poisoned Get = %v, %v; want nil, error", v, err)
	}
}

// TestCacheSingleFlight checks that concurrent Gets for one key run the
// compute function exactly once and all observe its value.
func TestCacheSingleFlight(t *testing.T) {
	var c Cache[string, int]
	var computes atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	const goroutines = 32
	vals := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.Get("deck/medium", func() (int, error) {
				computes.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[g] = v
		}()
	}
	close(start)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for g, v := range vals {
		if v != 42 {
			t.Fatalf("goroutine %d saw %d, want 42", g, v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", c.Len())
	}
}

// TestCacheDistinctKeysConcurrent checks that different keys do not
// serialize behind one another.
func TestCacheDistinctKeysConcurrent(t *testing.T) {
	var c Cache[int, int]
	const keys = 16
	gate := make(chan struct{})
	var inFlight atomic.Int32
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = c.Get(k, func() (int, error) {
				// Every key's compute blocks until all computes have
				// started; this deadlocks if the cache holds its lock
				// while computing.
				if inFlight.Add(1) == keys {
					close(gate)
				}
				<-gate
				return k, nil
			})
		}()
	}
	wg.Wait()
	if c.Len() != keys {
		t.Fatalf("Len() = %d, want %d", c.Len(), keys)
	}
}

// TestCacheCachesErrors checks a failed compute is not retried.
func TestCacheCachesErrors(t *testing.T) {
	var c Cache[string, int]
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := c.Get("k", func() (int, error) {
			calls++
			return 0, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("Get #%d err = %v, want boom", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}

// TestCacheZeroValue checks a zero-value cache inside a struct literal
// works, as the ablation sub-environments require.
func TestCacheZeroValue(t *testing.T) {
	type holder struct {
		c Cache[string, string]
	}
	h := &holder{}
	v, err := h.c.Get("x", func() (string, error) { return "y", nil })
	if err != nil || v != "y" {
		t.Fatalf("Get = %q, %v; want y, nil", v, err)
	}
}
