package engine

import (
	"context"
	"errors"
)

// ErrSaturated is returned by Limiter.Acquire when every slot is held and
// the bounded wait queue is full — the signal a serving layer turns into
// backpressure (HTTP 429 with Retry-After) instead of letting work pile
// up without bound.
var ErrSaturated = errors.New("engine: limiter saturated")

// Limiter bounds how many callers hold a slot at once, with a bounded
// FIFO-ish wait queue behind the slots: the admission-control primitive.
// Up to limit callers run; up to queue more wait for a slot; anyone
// beyond that is refused immediately with ErrSaturated. Contrast with
// Pool, which schedules cooperative jobs the server itself submits — a
// Limiter gates hostile arrival processes (HTTP requests) that must be
// refused, not buffered, past a point.
//
// A nil *Limiter is unlimited: Acquire always succeeds instantly and
// Release is a no-op, so an endpoint class can be configured wide open
// without branching at call sites.
type Limiter struct {
	slots   chan struct{} // capacity = concurrent limit; a send acquires
	waiting chan struct{} // capacity = queue depth; occupancy while blocked
}

// NewLimiter returns a limiter admitting limit concurrent holders with a
// wait queue of depth queue. limit <= 0 selects 1; queue < 0 selects 0
// (refuse instantly when all slots are held).
func NewLimiter(limit, queue int) *Limiter {
	if limit <= 0 {
		limit = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &Limiter{
		slots:   make(chan struct{}, limit),
		waiting: make(chan struct{}, queue),
	}
}

// Acquire takes a slot, waiting in the bounded queue when all slots are
// held. It returns nil once a slot is held (the caller must Release),
// ErrSaturated immediately when the queue is also full, or ctx.Err() if
// the context ends while waiting.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	// Fast path: a free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	// Slots are all held: enter the bounded queue or be refused.
	select {
	case l.waiting <- struct{}{}:
	default:
		return ErrSaturated
	}
	defer func() { <-l.waiting }()
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait takes a slot without consuming queue capacity, blocking however
// long it takes (or until ctx ends). Background work whose queue is
// bounded elsewhere — the server's job store — uses Wait so a saturated
// interactive queue cannot refuse an already-admitted job.
func (l *Limiter) Wait(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot taken by Acquire or Wait.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	<-l.slots
}

// InFlight reports how many slots are currently held.
func (l *Limiter) InFlight() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Waiting reports how many callers are blocked in the wait queue.
func (l *Limiter) Waiting() int {
	if l == nil {
		return 0
	}
	return len(l.waiting)
}

// Limit reports the concurrent-holder bound (0 for the nil, unlimited
// limiter).
func (l *Limiter) Limit() int {
	if l == nil {
		return 0
	}
	return cap(l.slots)
}

// QueueDepth reports the wait-queue bound (0 for the nil limiter).
func (l *Limiter) QueueDepth() int {
	if l == nil {
		return 0
	}
	return cap(l.waiting)
}
