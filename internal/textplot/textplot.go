// Package textplot renders small ASCII charts and tables used to present the
// reproduced figures from the Krak paper in a terminal: log-log scatter/line
// charts (Figures 3 and 5), bar charts (Figure 2), and cell-grid maps
// (Figure 1).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named sequence of (x, y) points.
type Series struct {
	Name   string
	Marker byte
	Xs, Ys []float64
}

// Chart is a scatter/line chart with optional log axes.
type Chart struct {
	Title      string
	XLabel     string
	YLabel     string
	Width      int // plot area width in characters (default 64)
	Height     int // plot area height in characters (default 20)
	LogX, LogY bool
	serieses   []Series
}

// AddSeries appends a series; markers default to letters a, b, c...
func (c *Chart) AddSeries(s Series) {
	if s.Marker == 0 {
		s.Marker = "xo*+#@%&"[len(c.serieses)%8]
	}
	c.serieses = append(c.serieses, s)
}

func (c *Chart) dims() (w, h int) {
	w, h = c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 20
	}
	return w, h
}

func (c *Chart) transform(x, y float64) (fx, fy float64, ok bool) {
	if c.LogX {
		if x <= 0 {
			return 0, 0, false
		}
		x = math.Log10(x)
	}
	if c.LogY {
		if y <= 0 {
			return 0, 0, false
		}
		y = math.Log10(y)
	}
	return x, y, true
}

// Render draws the chart into a string. Points outside a degenerate range
// collapse to the center. Rendering never fails; an empty chart yields a
// frame with no markers.
func (c *Chart) Render() string {
	w, h := c.dims()
	// Determine the data range in (possibly log-transformed) space.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.serieses {
		for i := range s.Xs {
			fx, fy, ok := c.transform(s.Xs[i], s.Ys[i])
			if !ok {
				continue
			}
			minX = math.Min(minX, fx)
			maxX = math.Max(maxX, fx)
			minY = math.Min(minY, fy)
			maxY = math.Max(maxY, fy)
		}
	}
	if minX > maxX { // no drawable points
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.serieses {
		for i := range s.Xs {
			fx, fy, ok := c.transform(s.Xs[i], s.Ys[i])
			if !ok {
				continue
			}
			px := int(math.Round((fx - minX) / (maxX - minX) * float64(w-1)))
			py := int(math.Round((fy - minY) / (maxY - minY) * float64(h-1)))
			row := h - 1 - py
			if row >= 0 && row < h && px >= 0 && px < w {
				grid[row][px] = s.Marker
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLo, yHi := minY, maxY
	if c.LogY {
		yLo, yHi = math.Pow(10, minY), math.Pow(10, maxY)
	}
	xLo, xHi := minX, maxX
	if c.LogX {
		xLo, xHi = math.Pow(10, minX), math.Pow(10, maxX)
	}
	fmt.Fprintf(&b, "%11.3g +%s+\n", yHi, strings.Repeat("-", w))
	for i, row := range grid {
		label := strings.Repeat(" ", 11)
		if i == h/2 && c.YLabel != "" {
			label = fmt.Sprintf("%11s", trunc(c.YLabel, 11))
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%11.3g +%s+\n", yLo, strings.Repeat("-", w))
	fmt.Fprintf(&b, "%11s  %-10.3g%s%10.3g\n", "", xLo, centerPad(c.XLabel, w-20), xHi)
	for _, s := range c.serieses {
		fmt.Fprintf(&b, "%13c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

func centerPad(s string, w int) string {
	if w < len(s) {
		return s
	}
	left := (w - len(s)) / 2
	right := w - len(s) - left
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", right)
}

// Bars renders a horizontal bar chart: one row per label, bar lengths scaled
// to the maximum value. Values must be non-negative.
func Bars(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	var maxV float64
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	var maxLabel int
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for i, l := range labels {
		v := 0.0
		if i < len(values) {
			v = values[i]
		}
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %.4g\n", maxLabel, l, strings.Repeat("#", n), v)
	}
	return b.String()
}

// GridMap renders a W×H grid of small integer values (e.g. partition or
// material ids) as characters, for Figure 1-style visualizations. Values are
// mapped onto a 62-character alphabet; out-of-range values render as '?'.
// Rows are rendered top-to-bottom as y descending, matching the mesh's
// row-major layout with row 0 at the bottom.
func GridMap(title string, w, h int, value func(x, y int) int) string {
	const alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for y := h - 1; y >= 0; y-- {
		for x := 0; x < w; x++ {
			v := value(x, y)
			if v >= 0 && v < len(alphabet) {
				b.WriteByte(alphabet[v])
			} else {
				b.WriteByte('?')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders rows of cells as an aligned text table with a header rule.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, hcell := range header {
		widths[i] = len(hcell)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, wd := range widths {
		total += wd
	}
	total += 2 * (len(widths) - 1)
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
