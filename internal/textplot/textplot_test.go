package textplot

import (
	"strings"
	"testing"
)

func TestChartRenderBasics(t *testing.T) {
	var c Chart
	c.Title = "test chart"
	c.AddSeries(Series{Name: "linear", Xs: []float64{1, 2, 3}, Ys: []float64{1, 2, 3}})
	out := c.Render()
	if !strings.Contains(out, "test chart") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "linear") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "x") {
		t.Fatal("default marker missing")
	}
}

func TestChartLogAxesSkipNonPositive(t *testing.T) {
	c := Chart{LogX: true, LogY: true, Width: 20, Height: 5}
	c.AddSeries(Series{Name: "s", Marker: '*', Xs: []float64{0, 10, 100}, Ys: []float64{-1, 10, 100}})
	out := c.Render()
	// The x<=0 / y<=0 points must be silently skipped, leaving one valid area.
	if !strings.Contains(out, "*") {
		t.Fatal("valid points not drawn")
	}
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "empty") {
		t.Fatal("empty chart should still render a frame")
	}
}

func TestChartDegenerateRange(t *testing.T) {
	var c Chart
	c.AddSeries(Series{Name: "pt", Marker: 'p', Xs: []float64{5}, Ys: []float64{5}})
	out := c.Render()
	if !strings.Contains(out, "p") {
		t.Fatal("single point not drawn")
	}
}

func TestChartMultipleSeriesMarkers(t *testing.T) {
	var c Chart
	c.AddSeries(Series{Name: "a", Xs: []float64{1}, Ys: []float64{1}})
	c.AddSeries(Series{Name: "b", Xs: []float64{2}, Ys: []float64{2}})
	out := c.Render()
	if !strings.Contains(out, "x = a") || !strings.Contains(out, "o = b") {
		t.Fatalf("default markers wrong:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("phase times", []string{"p1", "p2"}, []float64{1, 2}, 10)
	if !strings.Contains(out, "phase times") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	// p2 has twice the hashes of p1.
	c1 := strings.Count(lines[1], "#")
	c2 := strings.Count(lines[2], "#")
	if c2 != 10 || c1 != 5 {
		t.Fatalf("bar lengths: p1=%d p2=%d, want 5 and 10", c1, c2)
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("zero value should draw no bar")
	}
}

func TestGridMap(t *testing.T) {
	out := GridMap("map", 3, 2, func(x, y int) int { return x + y*3 })
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "map" {
		t.Fatal("title missing")
	}
	// Row y=1 rendered first (top): values 3,4,5; then y=0: 0,1,2.
	if lines[1] != "345" || lines[2] != "012" {
		t.Fatalf("grid rows = %q, %q", lines[1], lines[2])
	}
	// Out-of-range value.
	out = GridMap("", 1, 1, func(x, y int) int { return 99 })
	if !strings.Contains(out, "?") {
		t.Fatal("out-of-range value should render '?'")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatal("header missing")
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Fatal("rule missing")
	}
	// Columns align: "alpha" and "b" rows both have value column at the same offset.
	idx1 := strings.Index(lines[2], "1")
	idx2 := strings.Index(lines[3], "22")
	if idx1 != idx2 {
		t.Fatalf("columns misaligned: %d vs %d", idx1, idx2)
	}
}
