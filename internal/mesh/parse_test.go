package mesh

import (
	"strings"
	"testing"
)

func TestParseDeckLayered(t *testing.T) {
	d, err := ParseDeck([]byte("# the standard deck, small\ndeck mini\ngrid 8 4\nlayered\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "mini" {
		t.Errorf("name = %q", d.Name)
	}
	if d.Mesh.NumCells() != 32 {
		t.Errorf("cells = %d, want 32", d.Mesh.NumCells())
	}
	// A layered parse is the same deck BuildLayeredDeck makes.
	want, err := BuildLayeredDeck(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mesh.MaterialFractions() != want.Mesh.MaterialFractions() {
		t.Errorf("material fractions %v != built %v",
			d.Mesh.MaterialFractions(), want.Mesh.MaterialFractions())
	}
	if d.DetonatorX != want.DetonatorX || d.DetonatorY != want.DetonatorY {
		t.Errorf("detonator (%g,%g) != built (%g,%g)",
			d.DetonatorX, d.DetonatorY, want.DetonatorX, want.DetonatorY)
	}
}

func TestParseDeckCells(t *testing.T) {
	src := `grid 4 2
detonator 0 0.2
cells
h a f o
hhaa
`
	d, err := ParseDeck([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Mesh.NumCells() != 8 {
		t.Fatalf("cells = %d", d.Mesh.NumCells())
	}
	if d.DetonatorY != 0.2 {
		t.Errorf("detonator y = %g", d.DetonatorY)
	}
	// Top row first in the file; mesh rows are bottom-up. Bottom row (cy=0)
	// is "hhaa", top row (cy=1) is "hafo".
	wantBottom := []Material{HEGas, HEGas, AluminumInner, AluminumInner}
	wantTop := []Material{HEGas, AluminumInner, Foam, AluminumOuter}
	for cx := 0; cx < 4; cx++ {
		if got := d.Mesh.CellMaterial[cx]; got != wantBottom[cx] {
			t.Errorf("bottom cell %d = %v, want %v", cx, got, wantBottom[cx])
		}
		if got := d.Mesh.CellMaterial[4+cx]; got != wantTop[cx] {
			t.Errorf("top cell %d = %v, want %v", cx, got, wantTop[cx])
		}
	}
}

func TestParseDeckUniform(t *testing.T) {
	d, err := ParseDeck([]byte("grid 6 3\nuniform f\n"))
	if err != nil {
		t.Fatal(err)
	}
	fr := d.Mesh.MaterialFractions()
	if fr[Foam] != 1.0 {
		t.Errorf("foam fraction = %g, want 1", fr[Foam])
	}
}

func TestParseDeckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "missing grid"},
		{"no layout", "grid 4 2\n", "missing material layout"},
		{"bad directive", "grid 4 2\nwibble\n", "unknown directive"},
		{"bad grid", "grid x 2\nlayered\n", "positive integers"},
		{"zero grid", "grid 0 2\nlayered\n", "positive integers"},
		{"negative grid", "grid 4 -2\nlayered\n", "positive integers"},
		{"huge grid", "grid 1000000 1000000\nlayered\n", "exceeds"},
		{"dup grid", "grid 4 2\ngrid 4 2\nlayered\n", "duplicate grid"},
		{"two layouts", "grid 4 2\nlayered\nuniform h\n", "already set"},
		{"bad material", "grid 4 2\nuniform z\n", "unknown material"},
		{"cells before grid", "cells\nhh\n", "requires a preceding grid"},
		{"short row", "grid 4 2\ncells\nhh\n", "2 codes, want 4"},
		{"bad cell code", "grid 2 1\ncells\nhz\n", "unknown material"},
		{"missing rows", "grid 2 2\ncells\nhh\n", "1 rows, want 2"},
		{"bad detonator", "grid 4 2\ndetonator one two\nlayered\n", "must be numbers"},
		{"grid args", "grid 4\nlayered\n", `want "grid W H"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDeck([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
