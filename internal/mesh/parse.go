package mesh

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxParsedCells bounds the grid size ParseDeck accepts, so a malformed
// or hostile deck file cannot ask for an arbitrarily large mesh.
const MaxParsedCells = 1 << 22 // 4,194,304 cells — 5x the paper's large deck

// ParseDeck parses the textual deck format into a Deck. The format is
// line-oriented; '#' starts a comment and blank lines are ignored.
// Directives, in order:
//
//	deck NAME            optional deck name (default "parsed-WxH")
//	grid W H             required, before any material directive
//	detonator X Y        optional detonation point (default: on the axis
//	                     of rotation, slightly below center, as the paper
//	                     places it)
//	layered              radial Table-2 material bands (the standard deck)
//	uniform MAT          a single material everywhere
//	cells                followed by exactly H rows of W material codes,
//	                     top row first
//
// Exactly one of layered / uniform / cells must appear. Materials are
// named h|a|f|o (H.E. gas, inner aluminum, foam, outer aluminum) or by
// digit 0-3; cells rows use the same one-character codes. ParseDeck
// never panics on malformed input: every defect is reported as an error.
func ParseDeck(src []byte) (*Deck, error) {
	p := deckParser{}
	lines := strings.Split(string(src), "\n")
	for i, raw := range lines {
		line := raw
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(strings.TrimSuffix(line, "\r"))
		if line == "" {
			continue
		}
		if err := p.directive(i+1, strings.Fields(line)); err != nil {
			return nil, err
		}
	}
	return p.finish()
}

// deckParser accumulates directives until finish assembles the Deck.
type deckParser struct {
	name       string
	w, h       int
	detX, detY float64
	hasDet     bool

	mode      string // "", "layered", "uniform", "cells"
	uniform   Material
	cellRows  [][]Material
	wantCells bool // inside a cells block
}

func (p *deckParser) directive(lineNo int, fields []string) error {
	if p.wantCells {
		return p.cellRow(lineNo, fields)
	}
	switch fields[0] {
	case "deck":
		if len(fields) != 2 {
			return fmt.Errorf("mesh: line %d: want \"deck NAME\"", lineNo)
		}
		p.name = fields[1]
	case "grid":
		if p.w != 0 {
			return fmt.Errorf("mesh: line %d: duplicate grid directive", lineNo)
		}
		if len(fields) != 3 {
			return fmt.Errorf("mesh: line %d: want \"grid W H\"", lineNo)
		}
		w, err1 := strconv.Atoi(fields[1])
		h, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || w <= 0 || h <= 0 {
			return fmt.Errorf("mesh: line %d: grid dims must be positive integers", lineNo)
		}
		// Division, not multiplication: w*h can overflow int on 32-bit
		// platforms, which would waltz past the very bound this enforces.
		if w > MaxParsedCells || h > MaxParsedCells/w {
			return fmt.Errorf("mesh: line %d: grid %dx%d exceeds %d cells", lineNo, w, h, MaxParsedCells)
		}
		p.w, p.h = w, h
	case "detonator":
		if len(fields) != 3 {
			return fmt.Errorf("mesh: line %d: want \"detonator X Y\"", lineNo)
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("mesh: line %d: detonator coordinates must be numbers", lineNo)
		}
		p.detX, p.detY, p.hasDet = x, y, true
	case "layered":
		if len(fields) != 1 {
			return fmt.Errorf("mesh: line %d: layered takes no arguments", lineNo)
		}
		return p.setMode(lineNo, "layered")
	case "uniform":
		if len(fields) != 2 {
			return fmt.Errorf("mesh: line %d: want \"uniform MAT\"", lineNo)
		}
		m, err := parseMaterial(fields[1])
		if err != nil {
			return fmt.Errorf("mesh: line %d: %v", lineNo, err)
		}
		p.uniform = m
		return p.setMode(lineNo, "uniform")
	case "cells":
		if len(fields) != 1 {
			return fmt.Errorf("mesh: line %d: cells takes no arguments", lineNo)
		}
		if p.w == 0 {
			return fmt.Errorf("mesh: line %d: cells requires a preceding grid directive", lineNo)
		}
		if err := p.setMode(lineNo, "cells"); err != nil {
			return err
		}
		p.wantCells = true
	default:
		return fmt.Errorf("mesh: line %d: unknown directive %q", lineNo, fields[0])
	}
	return nil
}

func (p *deckParser) setMode(lineNo int, mode string) error {
	if p.mode != "" {
		return fmt.Errorf("mesh: line %d: material layout already set to %s", lineNo, p.mode)
	}
	p.mode = mode
	return nil
}

// cellRow consumes one row of a cells block. Codes may be packed
// ("hhaaffoo") or space-separated ("h h a a").
func (p *deckParser) cellRow(lineNo int, fields []string) error {
	codes := strings.Join(fields, "")
	if len(codes) != p.w {
		return fmt.Errorf("mesh: line %d: cells row has %d codes, want %d", lineNo, len(codes), p.w)
	}
	row := make([]Material, p.w)
	for i := 0; i < len(codes); i++ {
		m, err := parseMaterial(codes[i : i+1])
		if err != nil {
			return fmt.Errorf("mesh: line %d: %v", lineNo, err)
		}
		row[i] = m
	}
	p.cellRows = append(p.cellRows, row)
	if len(p.cellRows) == p.h {
		p.wantCells = false
	}
	return nil
}

func (p *deckParser) finish() (*Deck, error) {
	if p.w == 0 {
		return nil, fmt.Errorf("mesh: deck spec missing grid directive")
	}
	if p.mode == "" {
		return nil, fmt.Errorf("mesh: deck spec missing material layout (layered, uniform, or cells)")
	}
	if p.mode == "cells" && len(p.cellRows) != p.h {
		return nil, fmt.Errorf("mesh: cells block has %d rows, want %d", len(p.cellRows), p.h)
	}

	var d *Deck
	var err error
	switch p.mode {
	case "layered":
		d, err = BuildLayeredDeck(p.w, p.h)
	case "uniform":
		d, err = BuildUniformDeck(p.w, p.h, p.uniform)
	case "cells":
		// Rows are written top first; mesh rows index bottom-up.
		lx := 1.0
		ly := float64(p.h) / float64(p.w)
		var m *Mesh
		m, err = BuildStructured(p.w, p.h, lx, ly, func(cx, cy int) Material {
			return p.cellRows[p.h-1-cy][cx]
		})
		if err == nil {
			d = &Deck{
				Name:       fmt.Sprintf("parsed-%dx%d", p.w, p.h),
				Mesh:       m,
				DetonatorX: 0,
				DetonatorY: 0.45 * ly,
			}
		}
	}
	if err != nil {
		return nil, fmt.Errorf("mesh: building parsed deck: %w", err)
	}
	if p.name != "" {
		d.Name = p.name
	}
	if p.hasDet {
		d.DetonatorX, d.DetonatorY = p.detX, p.detY
	}
	return d, nil
}

// parseMaterial maps a material code or digit to a Material.
func parseMaterial(s string) (Material, error) {
	switch strings.ToLower(s) {
	case "h", "0":
		return HEGas, nil
	case "a", "1":
		return AluminumInner, nil
	case "f", "2":
		return Foam, nil
	case "o", "3":
		return AluminumOuter, nil
	}
	return 0, fmt.Errorf("unknown material %q (h|a|f|o or 0-3)", s)
}
