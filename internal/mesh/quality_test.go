package mesh

import (
	"math"
	"testing"
)

func TestEdgeLengthsAndAspect(t *testing.T) {
	// 2x1 cells over a 1x1 extent: each cell is 0.5 wide, 1.0 tall.
	m, err := BuildStructured(2, 1, 1, 1, func(cx, cy int) Material { return Foam })
	if err != nil {
		t.Fatal(err)
	}
	e := m.EdgeLengths(0)
	if math.Abs(e[0]-0.5) > 1e-12 || math.Abs(e[1]-1.0) > 1e-12 {
		t.Fatalf("edges = %v", e)
	}
	if ar := m.AspectRatio(0); math.Abs(ar-2.0) > 1e-12 {
		t.Fatalf("aspect = %v, want 2", ar)
	}
}

func TestAspectRatioDegenerate(t *testing.T) {
	m, err := BuildStructured(1, 1, 1, 1, func(cx, cy int) Material { return Foam })
	if err != nil {
		t.Fatal(err)
	}
	// Collapse one edge.
	m.NodeX[1] = m.NodeX[0]
	m.NodeY[1] = m.NodeY[0]
	if ar := m.AspectRatio(0); !math.IsInf(ar, 1) {
		t.Fatalf("degenerate aspect = %v, want +Inf", ar)
	}
}

func TestQualitySummary(t *testing.T) {
	m, err := BuildStructured(4, 4, 1, 1, func(cx, cy int) Material { return Foam })
	if err != nil {
		t.Fatal(err)
	}
	q := m.Quality()
	if q.Cells != 16 || q.Inverted != 0 {
		t.Fatalf("summary = %+v", q)
	}
	if math.Abs(q.MinArea-1.0/16) > 1e-12 {
		t.Fatalf("min area = %v", q.MinArea)
	}
	if math.Abs(q.MeanAspect-1.0) > 1e-12 || math.Abs(q.MaxAspectRatio-1.0) > 1e-12 {
		t.Fatalf("aspects = %v/%v, want 1", q.MeanAspect, q.MaxAspectRatio)
	}
	// Invert a cell by swapping two nodes.
	m.CellNodes[0][1], m.CellNodes[0][3] = m.CellNodes[0][3], m.CellNodes[0][1]
	q = m.Quality()
	if q.Inverted != 1 {
		t.Fatalf("inverted = %d, want 1", q.Inverted)
	}
	// Empty mesh.
	empty := &Mesh{}
	if q := empty.Quality(); q.Cells != 0 || q.MinArea != 0 {
		t.Fatalf("empty quality = %+v", q)
	}
}
