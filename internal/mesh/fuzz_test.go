package mesh

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzParseDeck asserts the deck parser's no-panic contract: any byte
// sequence either parses into a structurally sound Deck or returns an
// error — never a panic, never a malformed mesh. Checked-in seeds live
// in testdata/fuzz/FuzzParseDeck; run with
//
//	go test -fuzz FuzzParseDeck ./internal/mesh
func FuzzParseDeck(f *testing.F) {
	seeds := []string{
		"",
		"grid 8 4\nlayered\n",
		"deck mini\ngrid 8 4\nlayered\n",
		"grid 6 3\nuniform f\n",
		"# comment\ngrid 4 2\ndetonator 0.0 0.2\ncells\nhafo\nh h a a\n",
		"grid 2 2\ncells\n01\n23\n",
		"grid 4 2\n",
		"grid 4\nlayered\n",
		"grid 99999999 99999999\nlayered\n",
		"cells\nhh\n",
		"grid 4 2\nlayered\nuniform h\n",
		"grid 2 1\ncells\nhz\n",
		"deck \xff\xfe\ngrid 2 1\nuniform o\n",
		"grid 2 1\r\nuniform a\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		// Cap the workload so the fuzzer explores syntax, not mesh-build
		// throughput: skip inputs whose grid directive asks for more than
		// 64k cells (ParseDeck itself allows up to MaxParsedCells).
		for _, line := range strings.Split(string(src), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 3 && fields[0] == "grid" {
				w, werr := strconv.Atoi(fields[1])
				h, herr := strconv.Atoi(fields[2])
				if werr == nil && herr == nil && w > 0 && h > 0 && (w > 1<<16 || h > (1<<16)/w) {
					return
				}
				break
			}
		}
		d, err := ParseDeck(src)
		if err != nil {
			if d != nil {
				t.Fatalf("non-nil deck alongside error %v", err)
			}
			return
		}
		// A successful parse must be a sound deck.
		if d == nil || d.Mesh == nil {
			t.Fatal("nil deck without error")
		}
		w, h := d.Mesh.W, d.Mesh.H
		if w <= 0 || h <= 0 || w*h > MaxParsedCells {
			t.Fatalf("out-of-bounds grid %dx%d", w, h)
		}
		if got := d.Mesh.NumCells(); got != w*h {
			t.Fatalf("cell count %d != %d*%d", got, w, h)
		}
		if len(d.Mesh.CellMaterial) != w*h {
			t.Fatalf("material count %d != %d cells", len(d.Mesh.CellMaterial), w*h)
		}
		for i, m := range d.Mesh.CellMaterial {
			if m >= NumMaterials {
				t.Fatalf("cell %d has invalid material %d", i, m)
			}
		}
		if d.Name == "" || strings.ContainsRune(d.Name, '\n') {
			t.Fatalf("bad deck name %q", d.Name)
		}
	})
}
