// Package mesh implements the spatial-grid substrate of the Krak
// reproduction: an unstructured 2-D quadrilateral mesh of cells, faces, and
// nodes, the four-material layered-cylinder input decks described in §2.1 of
// the paper, and the partition summaries (cell counts by material, boundary
// faces, ghost nodes) that both the performance model and the cluster
// simulator consume.
//
// Terminology follows the paper: objects are mapped onto a spatial grid of
// cells; each cell is defined by four faces, which are composed of
// connections between nodes. Ghost nodes are nodes whose associated faces
// comprise boundaries between processors. Each cell is assigned exactly one
// material.
package mesh

import (
	"fmt"
	"sync"
)

// Material identifies one of the four materials in the paper's input deck.
type Material uint8

// The deck materials, ordered as in Table 2 of the paper.
const (
	HEGas Material = iota
	AluminumInner
	Foam
	AluminumOuter
)

// NumMaterials is the number of distinct materials in the deck.
const NumMaterials = 4

// String returns the paper's name for the material.
func (m Material) String() string {
	switch m {
	case HEGas:
		return "H.E. Gas"
	case AluminumInner:
		return "Aluminum (Inner)"
	case Foam:
		return "Foam"
	case AluminumOuter:
		return "Aluminum (Outer)"
	}
	return fmt.Sprintf("Material(%d)", uint8(m))
}

// ExchangeGroup identifies a boundary-exchange material group. Identical
// materials — the two aluminum layers in the paper's deck — are treated as
// one material during boundary exchanges (§4.1).
type ExchangeGroup uint8

// The exchange groups for the paper's deck.
const (
	GroupHEGas ExchangeGroup = iota
	GroupAluminum
	GroupFoam
)

// NumExchangeGroups is the number of distinct boundary-exchange groups.
const NumExchangeGroups = 3

// Group maps a material to its boundary-exchange group.
func (m Material) Group() ExchangeGroup {
	switch m {
	case HEGas:
		return GroupHEGas
	case AluminumInner, AluminumOuter:
		return GroupAluminum
	default:
		return GroupFoam
	}
}

// String names the exchange group.
func (g ExchangeGroup) String() string {
	switch g {
	case GroupHEGas:
		return "H.E. Gas"
	case GroupAluminum:
		return "Aluminum (both)"
	case GroupFoam:
		return "Foam"
	}
	return fmt.Sprintf("ExchangeGroup(%d)", uint8(g))
}

// Face is an edge of the mesh shared by one or two cells.
type Face struct {
	N0, N1 int32 // node ids
	C0, C1 int32 // adjacent cell ids; C1 == -1 on the domain boundary
}

// Interior reports whether the face separates two cells.
func (f Face) Interior() bool { return f.C1 >= 0 }

// Mesh is an unstructured 2-D quadrilateral mesh. Meshes built by the
// structured generators also record their logical W×H cell layout, which the
// visualizers and some tests exploit; W and H are zero for genuinely
// unstructured meshes.
type Mesh struct {
	W, H int // structured layout in cells, or 0,0

	// Node coordinates.
	NodeX, NodeY []float64

	// CellNodes lists the four corner nodes of each cell in counter-
	// clockwise order.
	CellNodes [][4]int32

	// CellMaterial assigns exactly one material to each cell.
	CellMaterial []Material

	// Faces lists every face once; CellFaces indexes into it per cell.
	Faces     []Face
	CellFaces [][4]int32

	// nodeCells is the node -> incident cells map, built lazily under
	// nodeOnce so concurrent readers of a shared (cached) mesh are safe.
	nodeOnce  sync.Once
	nodeCells [][]int32
}

// NumCells returns the number of cells.
func (m *Mesh) NumCells() int { return len(m.CellNodes) }

// NumNodes returns the number of nodes.
func (m *Mesh) NumNodes() int { return len(m.NodeX) }

// NumFaces returns the number of faces.
func (m *Mesh) NumFaces() int { return len(m.Faces) }

// CellCenter returns the centroid of cell c.
func (m *Mesh) CellCenter(c int) (x, y float64) {
	n := m.CellNodes[c]
	for _, id := range n {
		x += m.NodeX[id]
		y += m.NodeY[id]
	}
	return x / 4, y / 4
}

// CellArea returns the signed area of cell c via the shoelace formula;
// positive for counter-clockwise node ordering.
func (m *Mesh) CellArea(c int) float64 {
	n := m.CellNodes[c]
	var a float64
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		a += m.NodeX[n[i]]*m.NodeY[n[j]] - m.NodeX[n[j]]*m.NodeY[n[i]]
	}
	return a / 2
}

// Neighbors returns the cell ids adjacent to cell c across interior faces.
// The result is freshly allocated.
func (m *Mesh) Neighbors(c int) []int32 {
	var out []int32
	for _, fi := range m.CellFaces[c] {
		f := m.Faces[fi]
		if !f.Interior() {
			continue
		}
		if f.C0 == int32(c) {
			out = append(out, f.C1)
		} else {
			out = append(out, f.C0)
		}
	}
	return out
}

// NodeCells returns the cells incident to each node, building the incidence
// table on first use. The returned slices must not be modified. NodeCells is
// safe to call from concurrent goroutines sharing one mesh — the engine's
// deck cache hands the same *Mesh to parallel jobs.
func (m *Mesh) NodeCells() [][]int32 {
	m.nodeOnce.Do(func() {
		nc := make([][]int32, m.NumNodes())
		for c, nodes := range m.CellNodes {
			for _, n := range nodes {
				nc[n] = append(nc[n], int32(c))
			}
		}
		m.nodeCells = nc
	})
	return m.nodeCells
}

// MaterialCounts returns the number of cells of each material.
func (m *Mesh) MaterialCounts() [NumMaterials]int {
	var counts [NumMaterials]int
	for _, mat := range m.CellMaterial {
		counts[mat]++
	}
	return counts
}

// MaterialFractions returns the fraction of cells of each material.
func (m *Mesh) MaterialFractions() [NumMaterials]float64 {
	counts := m.MaterialCounts()
	var out [NumMaterials]float64
	n := float64(m.NumCells())
	if n == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / n
	}
	return out
}

// Validate checks structural invariants: CCW positive areas, face-cell
// consistency, and complete cell-face incidence. It is used by tests and by
// the deck builders' own self-checks.
func (m *Mesh) Validate() error {
	if len(m.CellMaterial) != m.NumCells() || len(m.CellFaces) != m.NumCells() {
		return fmt.Errorf("mesh: inconsistent cell arrays: %d cells, %d materials, %d face lists",
			m.NumCells(), len(m.CellMaterial), len(m.CellFaces))
	}
	if len(m.NodeX) != len(m.NodeY) {
		return fmt.Errorf("mesh: node coordinate arrays differ: %d vs %d", len(m.NodeX), len(m.NodeY))
	}
	for c := range m.CellNodes {
		if a := m.CellArea(c); a <= 0 {
			return fmt.Errorf("mesh: cell %d has non-positive area %g (nodes not CCW?)", c, a)
		}
	}
	for fi, f := range m.Faces {
		if f.N0 < 0 || int(f.N0) >= m.NumNodes() || f.N1 < 0 || int(f.N1) >= m.NumNodes() {
			return fmt.Errorf("mesh: face %d references invalid nodes", fi)
		}
		if f.C0 < 0 || int(f.C0) >= m.NumCells() {
			return fmt.Errorf("mesh: face %d references invalid cell C0", fi)
		}
		if f.C1 >= int32(m.NumCells()) {
			return fmt.Errorf("mesh: face %d references invalid cell C1", fi)
		}
	}
	for c, faces := range m.CellFaces {
		for _, fi := range faces {
			if fi < 0 || int(fi) >= m.NumFaces() {
				return fmt.Errorf("mesh: cell %d lists invalid face %d", c, fi)
			}
			f := m.Faces[fi]
			if f.C0 != int32(c) && f.C1 != int32(c) {
				return fmt.Errorf("mesh: cell %d lists face %d that does not touch it", c, fi)
			}
		}
	}
	return nil
}

// BuildStructured constructs a w×h structured quad mesh over the rectangle
// [0,lx]×[0,ly], with materials assigned per cell by the mat callback
// (called with the cell's column and row). Node ids are row-major with node
// (0,0) at the origin; cell ids are row-major as well.
func BuildStructured(w, h int, lx, ly float64, mat func(cx, cy int) Material) (*Mesh, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("mesh: invalid grid %dx%d", w, h)
	}
	if lx <= 0 || ly <= 0 {
		return nil, fmt.Errorf("mesh: invalid extent %gx%g", lx, ly)
	}
	m := &Mesh{W: w, H: h}
	nx, ny := w+1, h+1
	m.NodeX = make([]float64, nx*ny)
	m.NodeY = make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			id := j*nx + i
			m.NodeX[id] = lx * float64(i) / float64(w)
			m.NodeY[id] = ly * float64(j) / float64(h)
		}
	}
	node := func(i, j int) int32 { return int32(j*nx + i) }
	cell := func(i, j int) int32 { return int32(j*w + i) }

	m.CellNodes = make([][4]int32, w*h)
	m.CellMaterial = make([]Material, w*h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			c := cell(i, j)
			m.CellNodes[c] = [4]int32{node(i, j), node(i+1, j), node(i+1, j+1), node(i, j+1)}
			m.CellMaterial[c] = mat(i, j)
		}
	}

	// Faces: vertical faces at x-index i in [0..w], horizontal at y-index j
	// in [0..h]. Each is emitted once with its adjacent cells.
	m.CellFaces = make([][4]int32, w*h)
	fill := make([]int, w*h) // next free slot per cell
	addFace := func(f Face) {
		fi := int32(len(m.Faces))
		m.Faces = append(m.Faces, f)
		c0 := f.C0
		m.CellFaces[c0][fill[c0]] = fi
		fill[c0]++
		if f.C1 >= 0 {
			m.CellFaces[f.C1][fill[f.C1]] = fi
			fill[f.C1]++
		}
	}
	// Vertical faces (between horizontally adjacent cells, plus domain sides).
	for j := 0; j < h; j++ {
		for i := 0; i <= w; i++ {
			f := Face{N0: node(i, j), N1: node(i, j+1)}
			switch {
			case i == 0:
				f.C0, f.C1 = cell(0, j), -1
			case i == w:
				f.C0, f.C1 = cell(w-1, j), -1
			default:
				f.C0, f.C1 = cell(i-1, j), cell(i, j)
			}
			addFace(f)
		}
	}
	// Horizontal faces.
	for j := 0; j <= h; j++ {
		for i := 0; i < w; i++ {
			f := Face{N0: node(i, j), N1: node(i+1, j)}
			switch {
			case j == 0:
				f.C0, f.C1 = cell(i, 0), -1
			case j == h:
				f.C0, f.C1 = cell(i, h-1), -1
			default:
				f.C0, f.C1 = cell(i, j-1), cell(i, j)
			}
			addFace(f)
		}
	}
	for c, n := range fill {
		if n != 4 {
			return nil, fmt.Errorf("mesh: cell %d has %d faces, want 4", c, n)
		}
	}
	return m, nil
}
