package mesh

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func mustStructured(t *testing.T, w, h int) *Mesh {
	t.Helper()
	m, err := BuildStructured(w, h, 1, float64(h)/float64(w), func(cx, cy int) Material { return Foam })
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildStructuredCounts(t *testing.T) {
	m := mustStructured(t, 4, 3)
	if m.NumCells() != 12 {
		t.Fatalf("cells = %d, want 12", m.NumCells())
	}
	if m.NumNodes() != 5*4 {
		t.Fatalf("nodes = %d, want 20", m.NumNodes())
	}
	// Faces: vertical (w+1)*h + horizontal w*(h+1) = 5*3 + 4*4 = 31.
	if m.NumFaces() != 31 {
		t.Fatalf("faces = %d, want 31", m.NumFaces())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildStructuredRejectsBadInput(t *testing.T) {
	if _, err := BuildStructured(0, 3, 1, 1, func(cx, cy int) Material { return Foam }); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := BuildStructured(2, 2, -1, 1, func(cx, cy int) Material { return Foam }); err == nil {
		t.Fatal("negative extent accepted")
	}
}

func TestCellGeometry(t *testing.T) {
	m := mustStructured(t, 2, 2) // extent 1 x 1, cells 0.5x0.5
	for c := 0; c < m.NumCells(); c++ {
		if a := m.CellArea(c); math.Abs(a-0.25) > 1e-12 {
			t.Fatalf("cell %d area = %v, want 0.25", c, a)
		}
	}
	x, y := m.CellCenter(0)
	if math.Abs(x-0.25) > 1e-12 || math.Abs(y-0.25) > 1e-12 {
		t.Fatalf("cell 0 center = (%v,%v), want (0.25,0.25)", x, y)
	}
}

func TestNeighborsInteriorAndCorner(t *testing.T) {
	m := mustStructured(t, 3, 3)
	// Center cell 4 has 4 neighbors; corner cell 0 has 2.
	if n := m.Neighbors(4); len(n) != 4 {
		t.Fatalf("center neighbors = %v", n)
	}
	if n := m.Neighbors(0); len(n) != 2 {
		t.Fatalf("corner neighbors = %v", n)
	}
	// Adjacency is symmetric.
	for c := 0; c < m.NumCells(); c++ {
		for _, nb := range m.Neighbors(c) {
			found := false
			for _, back := range m.Neighbors(int(nb)) {
				if int(back) == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric adjacency %d -> %d", c, nb)
			}
		}
	}
}

func TestNodeCellsIncidence(t *testing.T) {
	m := mustStructured(t, 2, 2)
	nc := m.NodeCells()
	// Center node of a 2x2 grid touches all 4 cells; node id = 1*(w+1)+1 = 4.
	if len(nc[4]) != 4 {
		t.Fatalf("center node incidence = %v", nc[4])
	}
	// Corner node touches 1 cell.
	if len(nc[0]) != 1 {
		t.Fatalf("corner node incidence = %v", nc[0])
	}
	// Cached on second call.
	if &nc[0] == nil || m.NodeCells() == nil {
		t.Fatal("NodeCells cache broken")
	}
}

// TestNodeCellsConcurrent exercises the lazy incidence build from many
// goroutines at once; run under -race it proves a shared cached mesh is
// safe for parallel engine jobs.
func TestNodeCellsConcurrent(t *testing.T) {
	m := mustStructured(t, 16, 16)
	var wg sync.WaitGroup
	results := make([][][]int32, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = m.NodeCells()
		}(g)
	}
	wg.Wait()
	for g, nc := range results {
		if len(nc) != m.NumNodes() {
			t.Fatalf("goroutine %d: %d node entries, want %d", g, len(nc), m.NumNodes())
		}
		if &nc[0] != &results[0][0] {
			t.Fatalf("goroutine %d saw a different incidence table", g)
		}
	}
}

func TestMaterialString(t *testing.T) {
	names := map[Material]string{
		HEGas:         "H.E. Gas",
		AluminumInner: "Aluminum (Inner)",
		Foam:          "Foam",
		AluminumOuter: "Aluminum (Outer)",
	}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if Material(9).String() == "" {
		t.Fatal("unknown material should still render")
	}
}

func TestExchangeGroups(t *testing.T) {
	if HEGas.Group() != GroupHEGas || Foam.Group() != GroupFoam {
		t.Fatal("HE/foam groups wrong")
	}
	if AluminumInner.Group() != GroupAluminum || AluminumOuter.Group() != GroupAluminum {
		t.Fatal("identical materials must share an exchange group (§4.1)")
	}
	if GroupAluminum.String() != "Aluminum (both)" {
		t.Fatalf("group name = %q", GroupAluminum.String())
	}
	if ExchangeGroup(9).String() == "" {
		t.Fatal("unknown group should still render")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	m := mustStructured(t, 2, 2)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Swap two nodes of a cell to flip its orientation.
	m.CellNodes[0][1], m.CellNodes[0][3] = m.CellNodes[0][3], m.CellNodes[0][1]
	if err := m.Validate(); err == nil {
		t.Fatal("clockwise cell not caught")
	}
}

// Property: every interior face's two cells are distinct and mutually
// adjacent; total face count matches the structured formula.
func TestStructuredFaceProperty(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		w := int(wRaw)%12 + 1
		h := int(hRaw)%12 + 1
		m, err := BuildStructured(w, h, 1, 1, func(cx, cy int) Material { return HEGas })
		if err != nil {
			return false
		}
		if m.NumFaces() != (w+1)*h+w*(h+1) {
			return false
		}
		interior := 0
		for _, f := range m.Faces {
			if f.Interior() {
				interior++
				if f.C0 == f.C1 {
					return false
				}
			}
		}
		return interior == (w-1)*h+w*(h-1) && m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
