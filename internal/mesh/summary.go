package mesh

import (
	"fmt"
	"sort"
)

// PairKey identifies an unordered processor pair with A < B.
type PairKey struct{ A, B int }

// MakePairKey normalizes a processor pair.
func MakePairKey(a, b int) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey{A: a, B: b}
}

// PairBoundary describes the shared boundary between two processors: the
// quantities that determine boundary-exchange and ghost-node-update message
// sizes in §4.1 and §4.2 of the paper.
type PairBoundary struct {
	Key PairKey

	// FacesByMaterial counts the shared faces attributed to each material.
	// A face whose two sides have different materials is attributed to the
	// material of its lower-numbered cell (deterministic; material
	// interfaces are a vanishing fraction of any boundary in practice).
	FacesByMaterial [NumMaterials]int

	// FacesByGroup counts shared faces per boundary-exchange group, i.e.
	// with the two aluminum materials combined as the paper prescribes.
	FacesByGroup [NumExchangeGroups]int

	// TotalFaces is the number of shared faces regardless of material.
	TotalFaces int

	// GhostNodes is the number of nodes shared by the two processors.
	GhostNodes int

	// MultiGroupGhosts counts ghost nodes on this boundary that touch faces
	// of more than one exchange group — each adds 12 bytes to the first two
	// messages of the per-material exchange step (§4.1).
	MultiGroupGhosts int

	// MultiGroupGhostsByGroup counts, per exchange group, the multi-group
	// ghost nodes touching that group: the per-material surcharge in the
	// Table 3 message sizes. Each multi-group ghost node is counted once
	// for every group it touches.
	MultiGroupGhostsByGroup [NumExchangeGroups]int

	// OwnedByA and OwnedByB split GhostNodes by owner: every ghost node is
	// "local" to exactly one processor (§4.2). Ownership goes to the lowest
	// processor id incident to the node.
	OwnedByA, OwnedByB int
}

// Owned returns the number of ghost nodes on this boundary owned by pe,
// which must be one of the pair members.
func (b *PairBoundary) Owned(pe int) int {
	switch pe {
	case b.Key.A:
		return b.OwnedByA
	case b.Key.B:
		return b.OwnedByB
	}
	return 0
}

// Remote returns the number of ghost nodes on this boundary owned by the
// other member of the pair.
func (b *PairBoundary) Remote(pe int) int {
	switch pe {
	case b.Key.A:
		return b.OwnedByB
	case b.Key.B:
		return b.OwnedByA
	}
	return 0
}

// PartitionSummary aggregates everything the performance model and the
// cluster simulator need to know about a partitioned deck. Summarize
// populates every field eagerly and nothing mutates a summary afterwards,
// so one cached summary may be read by any number of concurrent engine
// jobs.
type PartitionSummary struct {
	P int // number of processors

	// CellsByMaterial[pe][mat] is the paper's Cells matrix in aggregated
	// form: the number of cells of each material on each processor.
	CellsByMaterial [][NumMaterials]int

	// TotalCells[pe] is the processor's total cell count.
	TotalCells []int

	// Pairs maps each adjacent processor pair to its boundary description.
	Pairs map[PairKey]*PairBoundary

	// NeighborsOf[pe] lists pe's neighboring processors in ascending order.
	NeighborsOf [][]int
}

// Boundary returns the boundary between two processors, or nil if they are
// not adjacent.
func (s *PartitionSummary) Boundary(a, b int) *PairBoundary {
	return s.Pairs[MakePairKey(a, b)]
}

// MaxNeighbors returns the largest neighbor count over all processors.
func (s *PartitionSummary) MaxNeighbors() int {
	m := 0
	for _, n := range s.NeighborsOf {
		if len(n) > m {
			m = len(n)
		}
	}
	return m
}

// EdgeCut returns the number of interior mesh faces whose two cells live on
// different processors (the quantity Metis minimizes).
func (s *PartitionSummary) EdgeCut() int {
	cut := 0
	//krakcheck:ignore maprange integer sum over map values is iteration-order independent
	for _, b := range s.Pairs {
		cut += b.TotalFaces
	}
	return cut
}

// Imbalance returns max/mean cells per processor (1.0 = perfectly balanced).
func (s *PartitionSummary) Imbalance() float64 {
	if s.P == 0 {
		return 0
	}
	var sum, max int
	for _, c := range s.TotalCells {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(s.P) / float64(sum)
}

// Summarize computes the partition summary of a mesh under the given
// cell-to-processor assignment. part must assign every cell a processor in
// [0, p).
func Summarize(m *Mesh, part []int, p int) (*PartitionSummary, error) {
	if len(part) != m.NumCells() {
		return nil, fmt.Errorf("mesh: partition length %d != cell count %d", len(part), m.NumCells())
	}
	if p <= 0 {
		return nil, fmt.Errorf("mesh: invalid processor count %d", p)
	}
	s := &PartitionSummary{
		P:               p,
		CellsByMaterial: make([][NumMaterials]int, p),
		TotalCells:      make([]int, p),
		Pairs:           make(map[PairKey]*PairBoundary),
		NeighborsOf:     make([][]int, p),
	}
	for c, pe := range part {
		if pe < 0 || pe >= p {
			return nil, fmt.Errorf("mesh: cell %d assigned to invalid processor %d", c, pe)
		}
		s.CellsByMaterial[pe][m.CellMaterial[c]]++
		s.TotalCells[pe]++
	}

	// Shared faces per pair, attributed by the lower-numbered cell's material.
	for _, f := range m.Faces {
		if !f.Interior() {
			continue
		}
		pa, pb := part[f.C0], part[f.C1]
		if pa == pb {
			continue
		}
		key := MakePairKey(pa, pb)
		b := s.Pairs[key]
		if b == nil {
			b = &PairBoundary{Key: key}
			s.Pairs[key] = b
		}
		lowCell := f.C0
		if f.C1 < f.C0 {
			lowCell = f.C1
		}
		mat := m.CellMaterial[lowCell]
		b.FacesByMaterial[mat]++
		b.FacesByGroup[mat.Group()]++
		b.TotalFaces++
	}

	// Ghost nodes: nodes incident to cells of more than one processor. For
	// each pair sharing the node, the node is a ghost on that boundary.
	// Ownership goes to the lowest incident processor id. A ghost node is
	// multi-group if the boundary faces it touches span >1 exchange group;
	// we approximate "touches" with the exchange groups of its incident
	// cells on the two processors, which coincides with face groups on
	// conforming quad meshes.
	nodeCells := m.NodeCells()
	var pesHere []int
	for n, cells := range nodeCells {
		_ = n
		pesHere = pesHere[:0]
		for _, c := range cells {
			pe := part[c]
			found := false
			for _, q := range pesHere {
				if q == pe {
					found = true
					break
				}
			}
			if !found {
				pesHere = append(pesHere, pe)
			}
		}
		if len(pesHere) < 2 {
			continue
		}
		sort.Ints(pesHere)
		owner := pesHere[0]
		for i := 0; i < len(pesHere); i++ {
			for j := i + 1; j < len(pesHere); j++ {
				key := MakePairKey(pesHere[i], pesHere[j])
				b := s.Pairs[key]
				if b == nil {
					// Corner-adjacent processors share a node but no face;
					// they still exchange ghost-node updates in Krak, so
					// record the pair.
					b = &PairBoundary{Key: key}
					s.Pairs[key] = b
				}
				b.GhostNodes++
				if owner == b.Key.A {
					b.OwnedByA++
				} else if owner == b.Key.B {
					b.OwnedByB++
				} else {
					// A third, lower-numbered processor owns the node; the
					// pair still counts it as a ghost, split to the lower
					// pair member by convention.
					b.OwnedByA++
				}
				// Multi-group detection: collect the exchange groups of the
				// node's incident cells on the two pair members.
				var groups [NumExchangeGroups]bool
				ngroups := 0
				for _, c := range cells {
					pe := part[c]
					if pe != b.Key.A && pe != b.Key.B {
						continue
					}
					g := m.CellMaterial[c].Group()
					if !groups[g] {
						groups[g] = true
						ngroups++
					}
				}
				if ngroups > 1 {
					b.MultiGroupGhosts++
					for g := 0; g < NumExchangeGroups; g++ {
						if groups[g] {
							b.MultiGroupGhostsByGroup[g]++
						}
					}
				}
			}
		}
	}

	// Neighbor lists, built in sorted pair order so the appends (and any
	// future reader of the loop) are deterministic, not just the final
	// sorted slices.
	keys := make([]PairKey, 0, len(s.Pairs))
	for key := range s.Pairs {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].A != keys[j].A {
			return keys[i].A < keys[j].A
		}
		return keys[i].B < keys[j].B
	})
	for _, key := range keys {
		s.NeighborsOf[key.A] = append(s.NeighborsOf[key.A], key.B)
		s.NeighborsOf[key.B] = append(s.NeighborsOf[key.B], key.A)
	}
	for pe := range s.NeighborsOf {
		sort.Ints(s.NeighborsOf[pe])
	}
	return s, nil
}
