package mesh

import "math"

// EdgeLengths returns the four edge lengths of cell c in node order.
func (m *Mesh) EdgeLengths(c int) [4]float64 {
	n := m.CellNodes[c]
	var out [4]float64
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		out[i] = math.Hypot(m.NodeX[n[j]]-m.NodeX[n[i]], m.NodeY[n[j]]-m.NodeY[n[i]])
	}
	return out
}

// AspectRatio returns the longest-to-shortest edge ratio of cell c; 1.0 for
// a square, +Inf for a degenerate cell.
func (m *Mesh) AspectRatio(c int) float64 {
	e := m.EdgeLengths(c)
	lo, hi := e[0], e[0]
	for _, l := range e[1:] {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// QualitySummary aggregates mesh-quality statistics, used by the hydro
// diagnostics to monitor grid deformation during Lagrangian motion.
type QualitySummary struct {
	Cells          int
	MinArea        float64
	MaxAspectRatio float64
	MeanAspect     float64
	Inverted       int // cells with non-positive area
}

// Quality scans all cells.
func (m *Mesh) Quality() QualitySummary {
	q := QualitySummary{Cells: m.NumCells(), MinArea: math.Inf(1)}
	if q.Cells == 0 {
		q.MinArea = 0
		return q
	}
	var sumAspect float64
	for c := 0; c < m.NumCells(); c++ {
		a := m.CellArea(c)
		if a < q.MinArea {
			q.MinArea = a
		}
		if a <= 0 {
			q.Inverted++
		}
		ar := m.AspectRatio(c)
		if !math.IsInf(ar, 1) {
			sumAspect += ar
			if ar > q.MaxAspectRatio {
				q.MaxAspectRatio = ar
			}
		}
	}
	q.MeanAspect = sumAspect / float64(q.Cells)
	return q
}
