package mesh

import (
	"math"
	"testing"
)

func TestStandardSizesMatchPaper(t *testing.T) {
	// §2.1: small 3,200; medium 204,800; large 819,200 cells.
	if got := Small.Cells(); got != 3200 {
		t.Fatalf("Small = %d, want 3200", got)
	}
	if got := Medium.Cells(); got != 204800 {
		t.Fatalf("Medium = %d, want 204800", got)
	}
	if got := Large.Cells(); got != 819200 {
		t.Fatalf("Large = %d, want 819200", got)
	}
	if got := Figure2.Cells(); got != 65536 {
		t.Fatalf("Figure2 = %d, want 65536", got)
	}
	if Small.String() != "Small" || StandardSize(99).String() == "" {
		t.Fatal("StandardSize.String broken")
	}
}

func TestBuildStandardDeck(t *testing.T) {
	d, err := BuildStandardDeck(Small)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mesh.NumCells() != 3200 {
		t.Fatalf("cells = %d", d.Mesh.NumCells())
	}
	if d.Name != "Small" {
		t.Fatalf("name = %q", d.Name)
	}
	if err := d.Mesh.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildStandardDeck(StandardSize(99)); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestLayeredDeckRatiosMatchTable2(t *testing.T) {
	// On the medium deck the measured ratios should be within grid
	// resolution (~1 column = 1/640) of Table 2.
	d, err := BuildStandardDeck(Medium)
	if err != nil {
		t.Fatal(err)
	}
	fracs := d.Mesh.MaterialFractions()
	for m := 0; m < NumMaterials; m++ {
		if diff := math.Abs(fracs[m] - Table2Heterogeneous[m]); diff > 0.004 {
			t.Errorf("%v fraction = %.4f, want %.4f +- 0.004",
				Material(m), fracs[m], Table2Heterogeneous[m])
		}
	}
}

func TestLayeredDeckLayerOrder(t *testing.T) {
	d, err := BuildLayeredDeck(80, 40)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mesh
	// Scanning a row from the axis outward must encounter the materials in
	// deck order with no interleaving.
	prev := HEGas
	for cx := 0; cx < 80; cx++ {
		mat := m.CellMaterial[20*80+cx]
		if mat < prev {
			t.Fatalf("materials out of order at column %d: %v after %v", cx, mat, prev)
		}
		prev = mat
	}
	// The innermost column is HE gas; the outermost is outer aluminum.
	if m.CellMaterial[0] != HEGas {
		t.Fatal("first column is not HE gas")
	}
	if m.CellMaterial[79] != AluminumOuter {
		t.Fatal("last column is not outer aluminum")
	}
}

func TestDetonatorPlacement(t *testing.T) {
	d, err := BuildLayeredDeck(80, 40)
	if err != nil {
		t.Fatal(err)
	}
	if d.DetonatorX != 0 {
		t.Fatalf("detonator x = %v, want on axis (0)", d.DetonatorX)
	}
	ly := 40.0 / 80.0
	if d.DetonatorY >= ly/2 || d.DetonatorY <= 0 {
		t.Fatalf("detonator y = %v, want slightly below center (%v)", d.DetonatorY, ly/2)
	}
}

func TestBuildUniformDeck(t *testing.T) {
	d, err := BuildUniformDeck(10, 5, Foam)
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range d.Mesh.CellMaterial {
		if m != Foam {
			t.Fatalf("cell %d material = %v, want Foam", c, m)
		}
	}
	counts := d.Mesh.MaterialCounts()
	if counts[Foam] != 50 {
		t.Fatalf("foam count = %d", counts[Foam])
	}
}

func TestBuildTwoMaterialDeck(t *testing.T) {
	d, err := BuildTwoMaterialDeck(8, 4, AluminumInner)
	if err != nil {
		t.Fatal(err)
	}
	counts := d.Mesh.MaterialCounts()
	if counts[HEGas] != 16 || counts[AluminumInner] != 16 {
		t.Fatalf("counts = %v, want 16/16 split", counts)
	}
	if _, err := BuildTwoMaterialDeck(7, 4, Foam); err == nil {
		t.Fatal("odd width accepted")
	}
}

func TestMaterialFractionsEmptyMesh(t *testing.T) {
	m := &Mesh{}
	fr := m.MaterialFractions()
	for _, f := range fr {
		if f != 0 {
			t.Fatal("empty mesh should have zero fractions")
		}
	}
}

func TestGridFor(t *testing.T) {
	cases := []struct{ cells, wantW, wantH int }{
		{3200, 80, 40},
		{204800, 640, 320},
		{819200, 1280, 640},
		{0, 1, 1},
	}
	for _, c := range cases {
		w, h := GridFor(c.cells)
		if w != c.wantW || h != c.wantH {
			t.Errorf("GridFor(%d) = %dx%d, want %dx%d", c.cells, w, h, c.wantW, c.wantH)
		}
	}
	// Arbitrary sizes must cover at least the requested cell count.
	for _, n := range []int{7, 100, 65536, 12345} {
		w, h := GridFor(n)
		if w*h < n {
			t.Errorf("GridFor(%d) = %dx%d covers only %d cells", n, w, h, w*h)
		}
	}
}
