package mesh

import (
	"testing"
	"testing/quick"
)

// halfSplit partitions a w×h structured mesh into left/right halves.
func halfSplit(m *Mesh) []int {
	part := make([]int, m.NumCells())
	for c := range part {
		cx := c % m.W
		if cx >= m.W/2 {
			part[c] = 1
		}
	}
	return part
}

func TestSummarizeTwoWaySplit(t *testing.T) {
	d, err := BuildUniformDeck(8, 4, Foam)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mesh
	s, err := Summarize(m, halfSplit(m), 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalCells[0] != 16 || s.TotalCells[1] != 16 {
		t.Fatalf("cells = %v", s.TotalCells)
	}
	b := s.Boundary(0, 1)
	if b == nil {
		t.Fatal("no boundary between halves")
	}
	// Vertical split of an 8x4 grid: 4 shared faces, 5 shared nodes.
	if b.TotalFaces != 4 {
		t.Fatalf("shared faces = %d, want 4", b.TotalFaces)
	}
	if b.GhostNodes != 5 {
		t.Fatalf("ghost nodes = %d, want 5", b.GhostNodes)
	}
	// All ghost nodes owned by the lower-numbered processor.
	if b.OwnedByA != 5 || b.OwnedByB != 0 {
		t.Fatalf("ownership = %d/%d", b.OwnedByA, b.OwnedByB)
	}
	if b.Owned(0) != 5 || b.Remote(0) != 0 || b.Owned(1) != 0 || b.Remote(1) != 5 {
		t.Fatal("Owned/Remote accessors inconsistent")
	}
	if b.Owned(7) != 0 || b.Remote(7) != 0 {
		t.Fatal("non-member pe should own nothing")
	}
	// Single-material mesh: no multi-group ghosts, all faces in foam group.
	if b.MultiGroupGhosts != 0 {
		t.Fatalf("multi-group ghosts = %d, want 0", b.MultiGroupGhosts)
	}
	if b.FacesByGroup[GroupFoam] != 4 || b.FacesByMaterial[Foam] != 4 {
		t.Fatal("face material attribution wrong")
	}
	if s.EdgeCut() != 4 {
		t.Fatalf("edge cut = %d", s.EdgeCut())
	}
	if s.Imbalance() != 1.0 {
		t.Fatalf("imbalance = %v", s.Imbalance())
	}
	if s.MaxNeighbors() != 1 {
		t.Fatalf("max neighbors = %d", s.MaxNeighbors())
	}
	if len(s.NeighborsOf[0]) != 1 || s.NeighborsOf[0][0] != 1 {
		t.Fatalf("neighbors = %v", s.NeighborsOf)
	}
}

func TestSummarizeMaterialBoundarySplit(t *testing.T) {
	// Two-material deck split exactly at the material interface, then split
	// horizontally instead so the boundary crosses both materials.
	d, err := BuildTwoMaterialDeck(8, 4, Foam)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mesh
	// Horizontal split: bottom half pe 0, top half pe 1; boundary runs across
	// the domain crossing the HE|Foam interface.
	part := make([]int, m.NumCells())
	for c := range part {
		if c/m.W >= m.H/2 {
			part[c] = 1
		}
	}
	s, err := Summarize(m, part, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Boundary(0, 1)
	if b.TotalFaces != 8 {
		t.Fatalf("shared faces = %d, want 8", b.TotalFaces)
	}
	if b.FacesByMaterial[HEGas] != 4 || b.FacesByMaterial[Foam] != 4 {
		t.Fatalf("faces by material = %v", b.FacesByMaterial)
	}
	if b.GhostNodes != 9 {
		t.Fatalf("ghost nodes = %d, want 9", b.GhostNodes)
	}
	// Exactly one ghost node (at the material interface) touches two groups.
	if b.MultiGroupGhosts != 1 {
		t.Fatalf("multi-group ghosts = %d, want 1", b.MultiGroupGhosts)
	}
}

func TestSummarizeCornerAdjacency(t *testing.T) {
	// 2x2 cells on 4 PEs: diagonal PEs share only the center node.
	d, err := BuildUniformDeck(2, 2, HEGas)
	if err != nil {
		t.Fatal(err)
	}
	part := []int{0, 1, 2, 3}
	s, err := Summarize(d.Mesh, part, 4)
	if err != nil {
		t.Fatal(err)
	}
	diag := s.Boundary(0, 3)
	if diag == nil {
		t.Fatal("corner-adjacent pair not recorded")
	}
	if diag.TotalFaces != 0 {
		t.Fatalf("corner pair faces = %d, want 0", diag.TotalFaces)
	}
	if diag.GhostNodes != 1 {
		t.Fatalf("corner pair ghosts = %d, want 1", diag.GhostNodes)
	}
	// The center node is owned by PE 0, the lowest incident id; for the
	// (1,2) pair neither member owns it, so it is credited to the lower
	// pair member by convention.
	offDiag := s.Boundary(1, 2)
	if offDiag.GhostNodes != 1 || offDiag.OwnedByA != 1 {
		t.Fatalf("off-diagonal pair ghosts = %+v", offDiag)
	}
	// Every PE neighbors every other.
	if s.MaxNeighbors() != 3 {
		t.Fatalf("max neighbors = %d, want 3", s.MaxNeighbors())
	}
}

func TestSummarizeErrors(t *testing.T) {
	d, _ := BuildUniformDeck(2, 2, HEGas)
	if _, err := Summarize(d.Mesh, []int{0, 0}, 1); err == nil {
		t.Fatal("short partition accepted")
	}
	if _, err := Summarize(d.Mesh, []int{0, 0, 0, 5}, 2); err == nil {
		t.Fatal("out-of-range pe accepted")
	}
	if _, err := Summarize(d.Mesh, []int{0, 0, 0, 0}, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestMakePairKey(t *testing.T) {
	if MakePairKey(3, 1) != (PairKey{A: 1, B: 3}) {
		t.Fatal("pair not normalized")
	}
	if MakePairKey(1, 3) != MakePairKey(3, 1) {
		t.Fatal("pair keys differ by order")
	}
}

// Property: per-PE cell counts always sum to the mesh total; ghost-node
// ownership halves sum to the pair total; edge cut is symmetric data.
func TestSummarizeConservationProperty(t *testing.T) {
	d, err := BuildLayeredDeck(16, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Mesh
	f := func(seed uint32, pRaw uint8) bool {
		p := int(pRaw)%6 + 2
		part := make([]int, m.NumCells())
		state := uint64(seed)
		for c := range part {
			state = state*6364136223846793005 + 1442695040888963407
			part[c] = int(state>>33) % p
		}
		s, err := Summarize(m, part, p)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range s.TotalCells {
			total += c
		}
		if total != m.NumCells() {
			return false
		}
		for _, b := range s.Pairs {
			if b.OwnedByA+b.OwnedByB != b.GhostNodes {
				return false
			}
			sumMat := 0
			for _, n := range b.FacesByMaterial {
				sumMat += n
			}
			sumGrp := 0
			for _, n := range b.FacesByGroup {
				sumGrp += n
			}
			if sumMat != b.TotalFaces || sumGrp != b.TotalFaces {
				return false
			}
			if b.MultiGroupGhosts > b.GhostNodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
