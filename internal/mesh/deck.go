package mesh

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
)

// Table2Heterogeneous is the global material ratio of the paper's input deck
// (Table 2, "Hetero." row): the fractions of H.E. gas, inner aluminum, foam,
// and outer aluminum cells.
var Table2Heterogeneous = [NumMaterials]float64{0.391, 0.172, 0.203, 0.234}

// Deck is an input problem: a mesh with materials assigned, plus the
// metadata the hydro code needs (detonator placement). A built Deck is
// immutable apart from the mesh's internal lazily-built indices, which are
// themselves synchronized, so one cached Deck may be read by any number of
// concurrent engine jobs.
type Deck struct {
	Name string
	Mesh *Mesh

	// DetonatorX, DetonatorY is the detonation point. The paper places the
	// detonator on the axis of rotation (x = 0), slightly below center.
	DetonatorX, DetonatorY float64

	cacheKeyOnce sync.Once
	cacheKey     string
}

// CacheKey returns a content-derived identity for the deck: the name
// plus a fingerprint of the grid, detonator, and per-cell materials.
// Caches that memoize per-deck artifacts (partitions, calibrations)
// must key on this rather than Name alone, because two decks can share
// a name with different contents — e.g. distinct ParseDeck inputs whose
// "deck" directives, or default parsed-WxH names, coincide. Computed
// once and memoized; safe for concurrent callers.
func (d *Deck) CacheKey() string {
	d.cacheKeyOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		put := func(v uint64) {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
		put(uint64(d.Mesh.W))
		put(uint64(d.Mesh.H))
		put(math.Float64bits(d.DetonatorX))
		put(math.Float64bits(d.DetonatorY))
		mats := make([]byte, len(d.Mesh.CellMaterial))
		for i, m := range d.Mesh.CellMaterial {
			mats[i] = byte(m)
		}
		h.Write(mats)
		d.cacheKey = fmt.Sprintf("%s#%016x", d.Name, h.Sum64())
	})
	return d.cacheKey
}

// StandardSize identifies one of the paper's three studied decks plus the
// Figure 2 deck.
type StandardSize int

// The paper's deck sizes (§2.1 and Figure 2).
const (
	Small   StandardSize = iota // 3,200 cells  (80×40)
	Medium                      // 204,800 cells (640×320)
	Large                       // 819,200 cells (1280×640)
	Figure2                     // 65,536 cells  (512×128), used in Figure 2
)

// String names the size as in the paper.
func (s StandardSize) String() string {
	switch s {
	case Small:
		return "Small"
	case Medium:
		return "Medium"
	case Large:
		return "Large"
	case Figure2:
		return "Figure2"
	}
	return fmt.Sprintf("StandardSize(%d)", int(s))
}

// Dims returns the structured grid dimensions used for each standard size.
func (s StandardSize) Dims() (w, h int) {
	switch s {
	case Small:
		return 80, 40
	case Medium:
		return 640, 320
	case Large:
		return 1280, 640
	case Figure2:
		return 512, 128
	}
	return 0, 0
}

// Cells returns the total cell count of the standard size.
func (s StandardSize) Cells() int {
	w, h := s.Dims()
	return w * h
}

// BuildStandardDeck builds one of the paper's decks.
func BuildStandardDeck(s StandardSize) (*Deck, error) {
	w, h := s.Dims()
	if w == 0 {
		return nil, fmt.Errorf("mesh: unknown standard size %v", s)
	}
	d, err := BuildLayeredDeck(w, h)
	if err != nil {
		return nil, err
	}
	d.Name = s.String()
	return d, nil
}

// BuildLayeredDeck constructs the paper's input deck on a w×h grid: a 2-D
// rectangular grid that is conceptually rotated about the vertical axis
// (x = 0) to become a cylinder. Radial material layers run along x: a core
// of high-explosive gas, a layer of aluminum, a layer of foam, and a second
// layer of aluminum, with cell-count fractions as close as the grid allows
// to Table 2's heterogeneous ratios. The detonator sits on the axis of
// rotation slightly below the vertical center.
func BuildLayeredDeck(w, h int) (*Deck, error) {
	// Column boundaries from cumulative Table 2 fractions.
	bounds := materialColumnBounds(w)
	matOf := func(cx, cy int) Material {
		for m := 0; m < NumMaterials; m++ {
			if cx < bounds[m] {
				return Material(m)
			}
		}
		return AluminumOuter
	}
	// Physical extent: radial length 1.0, height w:h aspect.
	lx := 1.0
	ly := float64(h) / float64(w)
	m, err := BuildStructured(w, h, lx, ly, matOf)
	if err != nil {
		return nil, err
	}
	return &Deck{
		Name:       fmt.Sprintf("layered-%dx%d", w, h),
		Mesh:       m,
		DetonatorX: 0,
		DetonatorY: 0.45 * ly, // slightly below center
	}, nil
}

// materialColumnBounds returns, for each material, the exclusive upper
// column index of its radial band, chosen so cumulative cell fractions track
// Table 2 as closely as the grid resolution allows.
func materialColumnBounds(w int) [NumMaterials]int {
	var bounds [NumMaterials]int
	cum := 0.0
	for m := 0; m < NumMaterials; m++ {
		cum += Table2Heterogeneous[m]
		bounds[m] = int(math.Round(cum * float64(w)))
	}
	bounds[NumMaterials-1] = w // guard against rounding losses
	return bounds
}

// BuildUniformDeck builds a contrived single-material deck, used by the
// paper's §3.1 calibration methodology ("a contrived spatial grid is used to
// determine how computation time scales with grid size").
func BuildUniformDeck(w, h int, mat Material) (*Deck, error) {
	lx := 1.0
	ly := float64(h) / float64(w)
	m, err := BuildStructured(w, h, lx, ly, func(cx, cy int) Material { return mat })
	if err != nil {
		return nil, err
	}
	return &Deck{
		Name:       fmt.Sprintf("uniform-%v-%dx%d", mat, w, h),
		Mesh:       m,
		DetonatorX: 0,
		DetonatorY: 0.45 * ly,
	}, nil
}

// BuildTwoMaterialDeck builds the contrived two-region calibration deck from
// §3.1: high-explosive gas on the left half (so a detonation can occur,
// isolated to one process) and the probe material on the right half.
func BuildTwoMaterialDeck(w, h int, probe Material) (*Deck, error) {
	if w%2 != 0 {
		return nil, fmt.Errorf("mesh: two-material deck needs even width, got %d", w)
	}
	lx := 1.0
	ly := float64(h) / float64(w)
	m, err := BuildStructured(w, h, lx, ly, func(cx, cy int) Material {
		if cx < w/2 {
			return HEGas
		}
		return probe
	})
	if err != nil {
		return nil, err
	}
	return &Deck{
		Name:       fmt.Sprintf("two-material-%v-%dx%d", probe, w, h),
		Mesh:       m,
		DetonatorX: 0,
		DetonatorY: 0.45 * ly,
	}, nil
}

// GridFor returns grid dimensions with a 2:1 aspect ratio (matching the
// paper's decks) whose product is at least cells, preferring exact factor
// splits when cells is of the form 2*k².
func GridFor(cells int) (w, h int) {
	if cells <= 0 {
		return 1, 1
	}
	h = int(math.Sqrt(float64(cells) / 2))
	if h < 1 {
		h = 1
	}
	for h > 1 && cells%h != 0 {
		h--
	}
	w = cells / h
	if w*h < cells {
		w++
	}
	return w, h
}
