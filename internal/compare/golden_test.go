package compare

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"krak/internal/engine"
	"krak/pkg/krak"
)

// update rewrites the golden comparison outputs instead of comparing:
//
//	go test ./internal/compare -run TestGoldenCatalog -update
var update = flag.Bool("update", false, "rewrite the golden comparison outputs")

// catalogDir is the checked-in machine catalog at the repo root.
const catalogDir = "../../machines"

// catalogReport runs the default catalog comparison exactly once per
// test binary: the same request `krak compare -machines machines/`
// issues (analytic predictions on the full-size medium deck — heavier
// than the quick unit tests, but deterministic down to the byte).
var catalogReport = sync.OnceValues(func() (*Report, error) {
	specs, err := LoadPaths([]string{catalogDir})
	if err != nil {
		return nil, err
	}
	return Run(context.Background(), Request{Machines: specs},
		NewBuilder(krak.NewSharedArtifacts()), engine.New(0))
})

// goldenJSON renders v the way `krak compare --json` and the server do.
func goldenJSON(t *testing.T, v any) string {
	t.Helper()
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden output.\nIf the change is intentional, regenerate with -update and review the diff.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestGoldenCatalog pins the full-catalog knee analysis: the whole
// report as `krak compare --json` emits it, the rendered text, and one
// per-machine golden holding that machine's curve plus its crossover
// against the ES45/QsNet baseline — so a change anywhere in the
// topology math, the collective models, or a catalog file cannot
// silently move a knee or crossover.
func TestGoldenCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog sweep")
	}
	rep, err := catalogReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline != DefaultBaselineName {
		t.Fatalf("catalog baseline %q, want %s", rep.Baseline, DefaultBaselineName)
	}
	checkGolden(t, filepath.Join("testdata", "golden", "catalog.json"), goldenJSON(t, rep))
	checkGolden(t, filepath.Join("testdata", "golden", "catalog.txt"), rep.Render())

	crossovers := map[string]Crossover{}
	for _, x := range rep.Crossovers {
		crossovers[x.Machine] = x
	}
	for _, c := range rep.Curves {
		t.Run(c.Machine, func(t *testing.T) {
			entry := struct {
				Curve     Curve      `json:"curve"`
				Crossover *Crossover `json:"crossover,omitempty"` // nil for the baseline
			}{Curve: c}
			if x, ok := crossovers[c.Machine]; ok {
				entry.Crossover = &x
			}
			checkGolden(t, filepath.Join("testdata", "golden", c.Machine+".json"), goldenJSON(t, entry))
		})
	}
}

// TestGoldenFilesCoverCatalog fails if a catalog machine has no golden
// curve or a stale golden matches no catalog machine — the goldens must
// track machines/ exactly, mirroring the experiments registry check.
func TestGoldenFilesCoverCatalog(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(catalogDir, "*"+MachineFileExt))
	if err != nil || len(files) == 0 {
		t.Fatalf("reading catalog: %v (%d files)", err, len(files))
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("reading golden dir (run TestGoldenCatalog with -update first): %v", err)
	}
	onDisk := map[string]bool{}
	for _, e := range entries {
		onDisk[e.Name()] = true
	}
	for _, aggregate := range []string{"catalog.json", "catalog.txt"} {
		if !onDisk[aggregate] {
			t.Errorf("aggregate golden %s is missing", aggregate)
		}
		delete(onDisk, aggregate)
	}
	for _, f := range files {
		name := strings.TrimSuffix(filepath.Base(f), MachineFileExt) + ".json"
		if !onDisk[name] {
			t.Errorf("catalog machine %s has no golden curve", filepath.Base(f))
		}
		delete(onDisk, name)
	}
	for name := range onDisk {
		t.Errorf("golden file %s matches no catalog machine", name)
	}
}
