// Package compare is the cross-machine comparison subsystem: it sweeps
// one scenario across a set of machines (the checked-in machines/
// catalog, ad-hoc machine files, or wire specs) and reduces the per-
// machine scaling curves to the questions a procurement or porting study
// asks — where does each machine stop scaling (the knee), which machine
// is fastest at which PE count, and at what scale does a newer machine
// overtake the baseline (the crossover).
//
// The subsystem is deliberately deterministic: a Report carries no wall-
// clock timings, only modeled/simulated seconds, so `krak compare
// --json` output is byte-stable and golden-pinnable, and the server's
// POST /v1/compare can serve cached bodies byte-identical to the CLI.
package compare

import (
	"context"
	"fmt"
	"sort"

	"krak/internal/engine"
	"krak/pkg/krak"
)

// Schema stamps every Report; decoders reject anything else.
const Schema = "krak.compare/v1"

// MaxMachines bounds how many machines one comparison may sweep.
const MaxMachines = 64

// MaxPoints bounds the total (machine, PE) grid, mirroring
// krak.MaxSweepPoints.
const MaxPoints = 4096

// DefaultKneeEfficiency is the parallel-efficiency threshold that
// defines the knee when the request does not set one.
const DefaultKneeEfficiency = 0.5

// DefaultBaselineName is the machine a comparison is anchored to when
// the request names none and a machine with this name is present — the
// paper's ES45/QsNet platform as checked into the catalog.
const DefaultBaselineName = "es45-qsnet"

// Request describes one comparison: a scenario (op, deck, model, PE
// sweep) evaluated on every machine in Machines. It is both the wire
// body of POST /v1/compare and what `krak compare` builds from its
// flags.
type Request struct {
	// Op is "predict" (the analytic model, default) or "simulate" (the
	// discrete-event simulator).
	Op string `json:"op,omitempty"`

	// Deck names the scenario's deck (default "medium").
	Deck string `json:"deck,omitempty"`

	// PEs is the processor counts to sweep, sorted ascending (default
	// 16..1024 in powers of two). The first entry anchors the efficiency
	// curve.
	PEs []int `json:"pes,omitempty"`

	// Model selects the analytic model variant for predict ops (default
	// "general-homo").
	Model string `json:"model,omitempty"`

	// Partitioner and Iterations configure simulate ops (defaults:
	// "multilevel", the machine's repeat count).
	Partitioner string `json:"partitioner,omitempty"`
	Iterations  int    `json:"iterations,omitempty"`

	// Baseline names the machine the crossover and speedup columns are
	// relative to. Empty selects DefaultBaselineName if present, else the
	// first machine.
	Baseline string `json:"baseline,omitempty"`

	// KneeEfficiency is the parallel-efficiency threshold defining the
	// knee (default 0.5; must be in (0, 1]).
	KneeEfficiency float64 `json:"knee_efficiency,omitempty"`

	// Machines is the comparison set. Every spec must resolve to a named
	// machine (the machine directive, the spec's name field, or the name
	// LoadPaths derives from the file name), and names must be unique.
	Machines []krak.MachineSpec `json:"machines"`
}

// Normalized returns the request with defaults filled in and the PE
// sweep sorted and deduplicated.
func (r Request) Normalized() Request {
	if r.Op == "" {
		r.Op = "predict"
	}
	if r.Deck == "" {
		r.Deck = "medium"
	}
	if len(r.PEs) == 0 {
		r.PEs = []int{16, 32, 64, 128, 256, 512, 1024}
	} else {
		pes := append([]int(nil), r.PEs...)
		sort.Ints(pes)
		out := pes[:1]
		for _, p := range pes[1:] {
			if p != out[len(out)-1] {
				out = append(out, p)
			}
		}
		r.PEs = out
	}
	if r.Model == "" {
		r.Model = "general-homo"
	}
	if r.Partitioner == "" {
		r.Partitioner = "multilevel"
	}
	if r.KneeEfficiency == 0 {
		r.KneeEfficiency = DefaultKneeEfficiency
	}
	return r
}

// Point is one swept (PE, time) sample of a machine's scaling curve.
type Point struct {
	PEs     int     `json:"pes"`
	Seconds float64 `json:"seconds"`

	// Efficiency is the parallel efficiency relative to the sweep's
	// first PE count on the same machine: T(p0)*p0 / (T(p)*p).
	Efficiency float64 `json:"efficiency"`

	// SpeedupVsBaseline is the baseline machine's time at the same PE
	// count divided by this machine's.
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
}

// Curve is one machine's scaling curve plus its reductions.
type Curve struct {
	Machine      string  `json:"machine"`
	Network      string  `json:"network"`
	Topology     string  `json:"topology"`
	ComputeScale float64 `json:"compute_scale"`
	Points       []Point `json:"points"`

	// KneePEs is the smallest swept PE count whose efficiency fell below
	// the knee threshold; 0 if the machine never dropped below it.
	KneePEs int `json:"knee_pes,omitempty"`

	// BestPEs/BestSeconds locate the curve's minimum time.
	BestPEs     int     `json:"best_pes"`
	BestSeconds float64 `json:"best_seconds"`
}

// Crossover records where a machine overtakes the baseline: the first
// swept PE count at which it is strictly faster (0 = never within the
// sweep).
type Crossover struct {
	Machine string `json:"machine"`
	PEs     int    `json:"pes"`
}

// Report is the comparison result; byte-stable for a fixed request.
type Report struct {
	Schema         string      `json:"schema"`
	Op             string      `json:"op"`
	Deck           string      `json:"deck"`
	Model          string      `json:"model,omitempty"`
	PEs            []int       `json:"pes"`
	KneeEfficiency float64     `json:"knee_efficiency"`
	Baseline       string      `json:"baseline"`
	Curves         []Curve     `json:"curves"`
	Crossovers     []Crossover `json:"crossovers"`
}

// Builder turns a resolved machine spec into a Machine. The server
// passes its capped, cache-backed machineFor; the CLI passes NewBuilder.
type Builder func(ms krak.MachineSpec) (*krak.Machine, error)

// NewBuilder returns the standalone builder `krak compare` uses: every
// machine it builds shares one artifact store, so decks, graphs, and
// partitions are computed once across the whole comparison.
func NewBuilder(sa *krak.SharedArtifacts) Builder {
	return func(ms krak.MachineSpec) (*krak.Machine, error) {
		opts := ms.Options()
		if sa != nil {
			opts = append(opts, krak.WithSharedArtifacts(sa))
		}
		return krak.NewMachine(opts...)
	}
}

// resolved is one validated comparison entry.
type resolved struct {
	name    string
	machine *krak.Machine
}

// Run evaluates the comparison: every machine × every PE count through
// the scenario, concurrently on pool, reduced to curves, knees, and
// crossovers. Validation errors wrap the usual krak sentinels
// (ErrBadOption, ErrBadMachineSpec, ...), so callers map them the same
// way as every other subsystem's.
func Run(ctx context.Context, req Request, build Builder, pool *engine.Pool) (*Report, error) {
	req = req.Normalized()
	if build == nil {
		build = NewBuilder(nil)
	}
	if len(req.Machines) == 0 {
		return nil, fmt.Errorf("%w: compare needs at least one machine", krak.ErrBadOption)
	}
	if len(req.Machines) > MaxMachines {
		return nil, fmt.Errorf("%w: compare got %d machines, max %d", krak.ErrBadOption, len(req.Machines), MaxMachines)
	}
	if len(req.PEs) > MaxPoints/len(req.Machines) {
		return nil, fmt.Errorf("%w: compare grid %dx%d exceeds %d points",
			krak.ErrBadOption, len(req.Machines), len(req.PEs), MaxPoints)
	}
	for _, p := range req.PEs {
		if p < 1 {
			return nil, fmt.Errorf("%w: PE count %d", krak.ErrBadPE, p)
		}
	}
	if !(req.KneeEfficiency > 0 && req.KneeEfficiency <= 1) {
		return nil, fmt.Errorf("%w: knee efficiency %g out of (0, 1]", krak.ErrBadOption, req.KneeEfficiency)
	}
	op, err := krak.ParseSweepOp(req.Op)
	if err != nil {
		return nil, err
	}
	if _, err := krak.ParseModel(req.Model); err != nil {
		return nil, err
	}

	entries := make([]resolved, 0, len(req.Machines))
	seen := make(map[string]bool, len(req.Machines))
	for i, ms := range req.Machines {
		r, err := ms.Resolved()
		if err != nil {
			return nil, fmt.Errorf("machine %d: %w", i, err)
		}
		if r.Name == "" {
			return nil, fmt.Errorf("%w: machine %d has no name; comparisons key on names", krak.ErrBadMachineSpec, i)
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("%w: duplicate machine name %q", krak.ErrBadMachineSpec, r.Name)
		}
		seen[r.Name] = true
		m, err := build(r)
		if err != nil {
			return nil, fmt.Errorf("machine %q: %w", r.Name, err)
		}
		entries = append(entries, resolved{name: r.Name, machine: m})
	}

	baseIdx := 0
	switch {
	case req.Baseline != "":
		baseIdx = -1
		for i, e := range entries {
			if e.name == req.Baseline {
				baseIdx = i
			}
		}
		if baseIdx < 0 {
			return nil, fmt.Errorf("%w: baseline machine %q is not in the comparison set", krak.ErrBadOption, req.Baseline)
		}
	default:
		for i, e := range entries {
			if e.name == DefaultBaselineName {
				baseIdx = i
			}
		}
	}

	// One job per (machine, PE) pair, machines major; engine.Map keeps
	// the results in submission order so the grid reassembles plainly.
	nPE := len(req.PEs)
	times, err := engine.Map(ctx, pool, len(entries)*nPE, func(ctx context.Context, i int) (float64, error) {
		e := entries[i/nPE]
		pe := req.PEs[i%nPE]
		opts := []krak.ScenarioOption{krak.WithDeck(req.Deck), krak.WithPE(pe)}
		if op == krak.SweepPredict {
			model, err := krak.ParseModel(req.Model)
			if err != nil {
				return 0, err
			}
			opts = append(opts, krak.WithModel(model))
		} else {
			opts = append(opts, krak.WithPartitioner(req.Partitioner))
			if req.Iterations > 0 {
				opts = append(opts, krak.WithIterations(req.Iterations))
			}
		}
		sc, err := krak.NewScenario(opts...)
		if err != nil {
			return 0, err
		}
		sess, err := krak.NewSession(e.machine, sc)
		if err != nil {
			return 0, err
		}
		var res *krak.Result
		if op == krak.SweepPredict {
			res, err = sess.Predict()
		} else {
			res, err = sess.Simulate()
		}
		if err != nil {
			return 0, fmt.Errorf("machine %q at %d PEs: %w", e.name, pe, err)
		}
		return res.TotalSeconds, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Schema:         Schema,
		Op:             req.Op,
		Deck:           req.Deck,
		PEs:            req.PEs,
		KneeEfficiency: req.KneeEfficiency,
		Baseline:       entries[baseIdx].name,
	}
	if op == krak.SweepPredict {
		rep.Model = req.Model
	}
	baseTimes := times[baseIdx*nPE : (baseIdx+1)*nPE]
	for mi, e := range entries {
		row := times[mi*nPE : (mi+1)*nPE]
		c := Curve{
			Machine:      e.name,
			Network:      e.machine.NetworkName(),
			Topology:     e.machine.Topology(),
			ComputeScale: e.machine.ComputeScale(),
		}
		t0, p0 := row[0], req.PEs[0]
		best := 0
		for pi, t := range row {
			eff := 0.0
			if t > 0 {
				eff = t0 * float64(p0) / (t * float64(req.PEs[pi]))
			}
			speedup := 0.0
			if t > 0 {
				speedup = baseTimes[pi] / t
			}
			c.Points = append(c.Points, Point{
				PEs: req.PEs[pi], Seconds: t,
				Efficiency: eff, SpeedupVsBaseline: speedup,
			})
			if c.KneePEs == 0 && eff < req.KneeEfficiency {
				c.KneePEs = req.PEs[pi]
			}
			if t < row[best] {
				best = pi
			}
		}
		c.BestPEs, c.BestSeconds = req.PEs[best], row[best]
		rep.Curves = append(rep.Curves, c)
		if mi != baseIdx {
			x := Crossover{Machine: e.name}
			for pi, t := range row {
				if t < baseTimes[pi] {
					x.PEs = req.PEs[pi]
					break
				}
			}
			rep.Crossovers = append(rep.Crossovers, x)
		}
	}
	return rep, nil
}
