package compare

import (
	"fmt"
	"strings"

	"krak/internal/textplot"
)

// Render lays the report out for a terminal: a log-log scaling chart
// (one series per machine), the per-machine summary table, and the
// crossover narrative against the baseline. Deterministic for a fixed
// report, like every textplot rendering.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Comparison: deck %s, %s", r.Deck, r.Op)
	if r.Model != "" {
		fmt.Fprintf(&b, " (%s)", r.Model)
	}
	fmt.Fprintf(&b, ", baseline %s\n\n", r.Baseline)

	chart := textplot.Chart{
		Title:  "Time vs PEs (log-log)",
		XLabel: "PEs",
		YLabel: "seconds",
		LogX:   true,
		LogY:   true,
	}
	for _, c := range r.Curves {
		s := textplot.Series{Name: c.Machine}
		for _, p := range c.Points {
			s.Xs = append(s.Xs, float64(p.PEs))
			s.Ys = append(s.Ys, p.Seconds)
		}
		chart.AddSeries(s)
	}
	b.WriteString(chart.Render())
	b.WriteByte('\n')

	header := []string{"machine", "network", "topology", "best", "knee", "crossover"}
	var rows [][]string
	for _, c := range r.Curves {
		rows = append(rows, []string{
			c.Machine,
			c.Network,
			c.Topology,
			fmt.Sprintf("%.4gs @ %d", c.BestSeconds, c.BestPEs),
			kneeCell(c.KneePEs),
			crossoverCell(r, c.Machine),
		})
	}
	b.WriteString(textplot.Table(header, rows))

	for _, x := range r.Crossovers {
		if x.PEs > 0 {
			fmt.Fprintf(&b, "\n%s overtakes %s at %d PEs", x.Machine, r.Baseline, x.PEs)
		} else {
			fmt.Fprintf(&b, "\n%s never overtakes %s in this sweep", x.Machine, r.Baseline)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

func kneeCell(pe int) string {
	if pe == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", pe)
}

func crossoverCell(r *Report, machine string) string {
	if machine == r.Baseline {
		return "(baseline)"
	}
	for _, x := range r.Crossovers {
		if x.Machine == machine {
			return kneeCell(x.PEs)
		}
	}
	return "-"
}
