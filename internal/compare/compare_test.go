package compare

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"krak/internal/engine"
	"krak/pkg/krak"
)

// quickPair is a minimal two-machine comparison set on shrunken decks.
func quickPair() []krak.MachineSpec {
	return []krak.MachineSpec{
		{Name: "base", Interconnect: "qsnet", Quick: true},
		{Name: "fast", Interconnect: "infiniband", Quick: true,
			Topology: &krak.TopologySpec{Kind: "fat-tree", HopLatencyUS: 0.2, Radix: 36}},
	}
}

func runQuick(t *testing.T, req Request, pool *engine.Pool) *Report {
	t.Helper()
	rep, err := Run(context.Background(), req, NewBuilder(krak.NewSharedArtifacts()), pool)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunShapes(t *testing.T) {
	req := Request{Deck: "small", PEs: []int{2, 4, 8}, Machines: quickPair()}
	rep := runQuick(t, req, engine.Serial())

	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
	if rep.Baseline != "base" {
		t.Errorf("baseline %q, want first machine when %q is absent", rep.Baseline, DefaultBaselineName)
	}
	if len(rep.Curves) != 2 || len(rep.Crossovers) != 1 {
		t.Fatalf("%d curves, %d crossovers", len(rep.Curves), len(rep.Crossovers))
	}
	for _, c := range rep.Curves {
		if len(c.Points) != 3 {
			t.Fatalf("%s: %d points", c.Machine, len(c.Points))
		}
		if c.Points[0].Efficiency != 1 {
			t.Errorf("%s: efficiency at p0 = %g, want 1", c.Machine, c.Points[0].Efficiency)
		}
		for _, p := range c.Points {
			if !(p.Seconds > 0) {
				t.Errorf("%s at %d PEs: non-positive time %g", c.Machine, p.PEs, p.Seconds)
			}
		}
	}
	base := rep.Curves[0]
	if base.Machine != "base" {
		t.Fatalf("curve order drifted from machine order: %q first", base.Machine)
	}
	for _, p := range base.Points {
		if p.SpeedupVsBaseline != 1 {
			t.Errorf("baseline speedup vs itself = %g at %d PEs", p.SpeedupVsBaseline, p.PEs)
		}
	}
	if rep.Curves[1].Topology != "fat-tree radix 36" {
		t.Errorf("topology column %q", rep.Curves[1].Topology)
	}
}

func TestRunDefaultBaselineRule(t *testing.T) {
	machines := append(quickPair(), krak.MachineSpec{Name: DefaultBaselineName, Quick: true})
	req := Request{Deck: "small", PEs: []int{2, 4}, Machines: machines}
	rep := runQuick(t, req, engine.Serial())
	if rep.Baseline != DefaultBaselineName {
		t.Errorf("baseline %q, want the catalog baseline when present", rep.Baseline)
	}
	// An explicit baseline wins over the default rule.
	req.Baseline = "fast"
	if rep := runQuick(t, req, engine.Serial()); rep.Baseline != "fast" {
		t.Errorf("explicit baseline ignored: %q", rep.Baseline)
	}
}

// TestRunDeterministicAndParallel pins the byte-stability the goldens
// and the serving cache rely on: repeated runs and parallel runs produce
// identical JSON.
func TestRunDeterministicAndParallel(t *testing.T) {
	req := Request{Deck: "small", PEs: []int{2, 4, 8}, Machines: quickPair()}
	marshal := func(pool *engine.Pool) string {
		b, err := json.Marshal(runQuick(t, req, pool))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	serial := marshal(engine.Serial())
	if again := marshal(engine.Serial()); again != serial {
		t.Error("repeated serial runs differ")
	}
	if par := marshal(engine.New(4)); par != serial {
		t.Error("parallel run differs from serial")
	}
}

func TestRunSimulateOp(t *testing.T) {
	req := Request{Op: "simulate", Deck: "small", PEs: []int{2, 4}, Iterations: 1,
		Machines: quickPair()}
	rep := runQuick(t, req, engine.New(2))
	if rep.Op != "simulate" || rep.Model != "" {
		t.Errorf("op %q model %q", rep.Op, rep.Model)
	}
	for _, c := range rep.Curves {
		for _, p := range c.Points {
			if !(p.Seconds > 0) {
				t.Errorf("%s at %d PEs: non-positive simulated time %g", c.Machine, p.PEs, p.Seconds)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	pair := quickPair()
	cases := []struct {
		name string
		req  Request
		want error
	}{
		{"no machines", Request{}, krak.ErrBadOption},
		{"unnamed machine", Request{Machines: []krak.MachineSpec{{Interconnect: "qsnet"}}}, krak.ErrBadMachineSpec},
		{"duplicate names", Request{Machines: []krak.MachineSpec{{Name: "a"}, {Name: "a"}}}, krak.ErrBadMachineSpec},
		{"bad PE", Request{PEs: []int{-2}, Machines: pair}, krak.ErrBadPE},
		{"bad knee", Request{KneeEfficiency: 1.5, Machines: pair}, krak.ErrBadOption},
		{"bad op", Request{Op: "measure", Machines: pair}, krak.ErrBadOption},
		{"bad model", Request{Model: "oracle", Machines: pair}, krak.ErrUnknownModel},
		{"missing baseline", Request{Baseline: "nope", Machines: pair}, krak.ErrBadOption},
		{"bad machine", Request{Machines: []krak.MachineSpec{{Name: "x", Interconnect: "tokenring"}}}, krak.ErrUnknownInterconnect},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), tc.req, nil, engine.Serial())
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("error %q does not wrap %v", err, tc.want)
			}
		})
	}

	var big Request
	for i := 0; i < 2; i++ {
		big.Machines = append(big.Machines, krak.MachineSpec{Name: string(rune('a' + i))})
	}
	for p := 1; p <= MaxPoints; p++ {
		big.PEs = append(big.PEs, p)
	}
	if _, err := Run(context.Background(), big, nil, engine.Serial()); !errors.Is(err, krak.ErrBadOption) {
		t.Errorf("oversized grid accepted: %v", err)
	}
}

func TestLoadPathsCatalog(t *testing.T) {
	specs, err := LoadPaths([]string{"../../machines"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 8 {
		t.Fatalf("catalog has %d machines, want >= 8", len(specs))
	}
	names := map[string]bool{}
	for _, ms := range specs {
		if ms.Name == "" {
			t.Fatalf("catalog spec with no name: %+v", ms)
		}
		names[ms.Name] = true
	}
	if !names[DefaultBaselineName] {
		t.Errorf("catalog lacks the %s baseline", DefaultBaselineName)
	}

	if _, err := LoadPaths([]string{"no-such-path"}); !errors.Is(err, krak.ErrBadMachineSpec) {
		t.Errorf("missing path error: %v", err)
	}
	if _, err := LoadPaths(nil); !errors.Is(err, krak.ErrBadMachineSpec) {
		t.Errorf("empty path list error: %v", err)
	}
	if _, err := LoadPaths([]string{"testdata"}); err == nil ||
		!strings.Contains(err.Error(), "no .machine files") {
		t.Errorf("dir without machine files error: %v", err)
	}
}

func TestRenderMentionsEveryMachine(t *testing.T) {
	req := Request{Deck: "small", PEs: []int{2, 4}, Machines: quickPair()}
	text := runQuick(t, req, engine.Serial()).Render()
	for _, name := range []string{"base", "fast"} {
		if !strings.Contains(text, name) {
			t.Errorf("render lacks machine %q:\n%s", name, text)
		}
	}
	if !strings.Contains(text, "(baseline)") {
		t.Errorf("render lacks the baseline marker:\n%s", text)
	}
}
