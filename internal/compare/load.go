package compare

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"krak/pkg/krak"
)

// MachineFileExt is the extension catalog machine files carry.
const MachineFileExt = ".machine"

// LoadPaths expands paths — machine files and/or directories of
// *.machine files — into the comparison set, in argument order with
// directory entries sorted by name. Specs that carry no machine
// directive are named after their file's base name, so every catalog
// file participates in name-keyed comparisons without repeating itself.
func LoadPaths(paths []string) ([]krak.MachineSpec, error) {
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", krak.ErrBadMachineSpec, err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		glob, err := filepath.Glob(filepath.Join(p, "*"+MachineFileExt))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", krak.ErrBadMachineSpec, err)
		}
		if len(glob) == 0 {
			return nil, fmt.Errorf("%w: no %s files under %s", krak.ErrBadMachineSpec, MachineFileExt, p)
		}
		sort.Strings(glob)
		files = append(files, glob...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: no machine files given", krak.ErrBadMachineSpec)
	}
	if len(files) > MaxMachines {
		return nil, fmt.Errorf("%w: %d machine files, max %d", krak.ErrBadMachineSpec, len(files), MaxMachines)
	}
	specs := make([]krak.MachineSpec, 0, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", krak.ErrBadMachineSpec, err)
		}
		ms, err := krak.ParseMachineFile(src)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		if ms.Name == "" {
			ms.Name = strings.TrimSuffix(filepath.Base(f), MachineFileExt)
		}
		specs = append(specs, ms)
	}
	return specs, nil
}
