package calib

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseDataset asserts the no-panic contract of the measurement-file
// parser (mirroring mesh.FuzzParseDeck): any input either parses into a
// bounded, well-formed Dataset or is rejected with an error — never a
// panic — and every accepted dataset round-trips exactly through Format.
// Checked-in seeds live in testdata/fuzz/FuzzParseDataset; run with
//
//	go test -fuzz FuzzParseDataset ./internal/calib
func FuzzParseDataset(f *testing.F) {
	seeds := []string{
		"dataset lab\nobs small 2 0.05\nobs small 4 0.03\n",
		"# comment\nobs medium 128 0.0123\r\n",
		"obs small 0 1\n",
		"obs small 2 -1\n",
		"obs small 2 1e309\n",
		"dataset " + strings.Repeat("n", 100) + "\n",
		"obs\n",
		strings.Repeat("obs small 2 0.5\n", 64),
		"\x00\xff",
		// A PE-doubling ladder across two decks: the shape whose message
		// sizes spread enough for the piecewise form's breakpoint search.
		"dataset piecewise\n" +
			"obs small 2 0.055\nobs small 4 0.034\nobs small 8 0.022\nobs small 16 0.016\n" +
			"obs figure2 2 0.21\nobs figure2 4 0.12\nobs figure2 8 0.08\nobs figure2 16 0.05\n" +
			"obs figure2 32 0.035\nobs figure2 64 0.028\n",
		// Repeated (deck, PEs) points: legal, and they pile observations
		// onto one side of every breakpoint candidate.
		"obs small 2 0.05\nobs small 2 0.051\nobs small 2 0.049\nobs small 4 0.03\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, src []byte) {
		ds, err := ParseDataset(src)
		if err != nil {
			if ds != nil {
				t.Fatal("error with non-nil dataset")
			}
			return
		}
		if len(ds.Obs) == 0 || len(ds.Obs) > MaxObservations {
			t.Fatalf("accepted dataset with %d observations", len(ds.Obs))
		}
		for _, o := range ds.Obs {
			if o.PEs <= 0 || o.Seconds <= 0 || o.Deck == "" {
				t.Fatalf("accepted invalid observation %+v", o)
			}
		}
		back, err := ParseDataset(ds.Format())
		if err != nil {
			t.Fatalf("formatted dataset does not reparse: %v", err)
		}
		if !reflect.DeepEqual(ds, back) {
			t.Fatalf("format round trip drifted:\n%+v\n%+v", ds, back)
		}
	})
}
