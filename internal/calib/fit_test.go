package calib

import (
	"math"
	"testing"

	"krak/internal/stats"
)

// drawParams draws a random but physically plausible parameter vector
// from a seeded stream: compute scales from quarter to 4x the baseline,
// microsecond-to-100µs latencies, 10 MB/s-to-10 GB/s bandwidths, and up
// to a millisecond of fixed overhead.
func drawParams(rng *stats.SplitMix64) Params {
	return Params{
		ComputeScale: 0.25 + 3.75*rng.Float64(),
		LatencySec:   1e-6 + 99e-6*rng.Float64(),
		ByteSec:      1e-10 + 1e-7*rng.Float64(),
		FixedSec:     1e-3 * rng.Float64(),
	}
}

// drawFeatures draws a feature matrix shaped like a real sweep: compute
// shrinking and message counts growing with the point index, with
// per-point jitter so the design matrix is well conditioned.
func drawFeatures(rng *stats.SplitMix64, n int) []Features {
	out := make([]Features, n)
	for i := range out {
		scale := float64(uint(1) << (i % 8)) // PE-doubling ladder
		out[i] = Features{
			Compute:  (0.5 + rng.Float64()) * 0.2 / scale,
			Messages: (0.5 + rng.Float64()) * 100 * scale,
			Bytes:    (0.5 + rng.Float64()) * 1e6 * math.Sqrt(scale),
		}
	}
	return out
}

// relErr is |got-want|/|want| with a zero-want guard.
func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestFitRecoversKnownParamsExact is the core calibration property: for
// randomized parameter draws (seeded, deterministic), fitting on
// noiseless synthetic data generated from those parameters recovers them
// to numerical precision.
func TestFitRecoversKnownParamsExact(t *testing.T) {
	const draws = 50
	const tol = 1e-6 // documented recovery tolerance on noiseless data
	for draw := 0; draw < draws; draw++ {
		rng := stats.Derive(0xdeadbeef, uint64(draw))
		want := drawParams(rng)
		feats := drawFeatures(rng, 40)
		times := Synthesize(want, feats, 0, uint64(draw))

		fr, err := Fit(times, feats)
		if err != nil {
			t.Fatalf("draw %d: %v", draw, err)
		}
		if len(fr.Terms) != 4 {
			t.Fatalf("draw %d: fell back to terms %v", draw, fr.Terms)
		}
		got := fr.Params
		checks := []struct {
			name      string
			got, want float64
		}{
			{"compute scale", got.ComputeScale, want.ComputeScale},
			{"latency", got.LatencySec, want.LatencySec},
			{"byte cost", got.ByteSec, want.ByteSec},
			{"fixed", got.FixedSec, want.FixedSec},
		}
		for _, c := range checks {
			if relErr(c.got, c.want) > tol {
				t.Errorf("draw %d: %s %.6g, want %.6g (rel err %.2g > %.2g)",
					draw, c.name, c.got, c.want, relErr(c.got, c.want), tol)
			}
		}
		if fr.R2 < 1-1e-9 {
			t.Errorf("draw %d: R² = %.9f on noiseless data", draw, fr.R2)
		}
	}
}

// TestFitRecoversKnownParamsNoisy adds ±2% multiplicative measurement
// noise: the dominant parameters must still come back within a loose but
// documented tolerance, and the reported standard errors must bracket the
// realized estimation error at a generous multiple.
func TestFitRecoversKnownParamsNoisy(t *testing.T) {
	const draws = 25
	const tol = 0.25 // documented recovery tolerance under ±2% noise
	for draw := 0; draw < draws; draw++ {
		rng := stats.Derive(0xabad1dea, uint64(draw))
		want := drawParams(rng)
		feats := drawFeatures(rng, 64)
		times := Synthesize(want, feats, 0.02, uint64(draw))

		fr, err := Fit(times, feats)
		if err != nil {
			t.Fatalf("draw %d: %v", draw, err)
		}
		if relErr(fr.Params.ComputeScale, want.ComputeScale) > tol {
			t.Errorf("draw %d: compute scale %.4g, want %.4g", draw, fr.Params.ComputeScale, want.ComputeScale)
		}
		if relErr(fr.Params.LatencySec, want.LatencySec) > tol {
			t.Errorf("draw %d: latency %.4g, want %.4g", draw, fr.Params.LatencySec, want.LatencySec)
		}
		// The standard error must be a plausible uncertainty: nonzero, and
		// the realized error should rarely exceed ~6 sigma.
		if fr.StdErr.ComputeScale <= 0 {
			t.Errorf("draw %d: zero stderr on compute scale", draw)
		} else if e := math.Abs(fr.Params.ComputeScale - want.ComputeScale); e > 6*fr.StdErr.ComputeScale {
			t.Errorf("draw %d: compute-scale error %.3g exceeds 6 sigma (%.3g)", draw, e, fr.StdErr.ComputeScale)
		}
	}
}

// TestFitFallbackLadder exercises the rank-deficiency fall-backs: when a
// feature never varies (or the dataset is tiny) the fit must drop to a
// coarser term subset rather than fail.
func TestFitFallbackLadder(t *testing.T) {
	// All observations identical up to compute: only {compute} or
	// {compute, fixed} is resolvable.
	feats := []Features{
		{Compute: 0.1, Messages: 100, Bytes: 1e6},
		{Compute: 0.2, Messages: 100, Bytes: 1e6},
		{Compute: 0.4, Messages: 100, Bytes: 1e6},
	}
	times := []float64{0.15, 0.25, 0.45}
	fr, err := Fit(times, feats)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Terms) == 4 {
		t.Fatalf("constant messages/bytes columns fitted as full model: %v", fr.Terms)
	}
	for _, res := range fr.Residuals {
		if math.Abs(res) > 1e-9 {
			t.Errorf("fallback fit should interpolate this collinear data; residual %g", res)
		}
	}

	// Two observations can still resolve a two-term model.
	fr2, err := Fit(times[:2], feats[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(fr2.Terms) > 2 {
		t.Errorf("2 observations fitted %d terms", len(fr2.Terms))
	}

	// A single nonzero-compute observation resolves compute only.
	fr1, err := Fit([]float64{0.2}, []Features{{Compute: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fr1.Terms) != 1 || fr1.Params.ComputeScale != 2 {
		t.Errorf("single-point fit: terms %v scale %g", fr1.Terms, fr1.Params.ComputeScale)
	}
}

// TestFitDegenerate pins the error contract for unresolvable datasets.
func TestFitDegenerate(t *testing.T) {
	if _, err := Fit(nil, nil); err != ErrDegenerate {
		t.Errorf("empty fit: %v", err)
	}
	// All-zero features: no subset has full rank.
	if _, err := Fit([]float64{1, 2}, make([]Features, 2)); err != ErrDegenerate {
		t.Errorf("zero-feature fit: %v", err)
	}
	if _, err := Fit([]float64{1, 2}, make([]Features, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestCrossValidate checks the k-fold loop: deterministic for a fixed
// seed, near-zero error on noiseless synthetic data, and input
// validation on the fold count.
func TestCrossValidate(t *testing.T) {
	rng := stats.Derive(7, 7)
	want := drawParams(rng)
	feats := drawFeatures(rng, 30)
	times := Synthesize(want, feats, 0, 7)

	cv, err := CrossValidate(times, feats, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Folds != 5 {
		t.Errorf("folds = %d", cv.Folds)
	}
	if cv.RMSE > 1e-9 || cv.MAPE > 1e-9 {
		t.Errorf("noiseless CV error: rmse %g mape %g", cv.RMSE, cv.MAPE)
	}
	again, err := CrossValidate(times, feats, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if *cv != *again {
		t.Errorf("CV is not deterministic: %+v vs %+v", cv, again)
	}
	other, err := CrossValidate(times, feats, 5, 43)
	if err != nil {
		t.Fatal(err)
	}
	_ = other // different seed shuffles differently; only determinism per seed is contractual

	for _, k := range []int{0, 1, 31, -2} {
		if _, err := CrossValidate(times, feats, k, 1); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

// TestCrossValidateNoisy sanity-checks that CV error reflects the
// injected noise level rather than collapsing to zero or exploding.
func TestCrossValidateNoisy(t *testing.T) {
	rng := stats.Derive(11, 3)
	want := drawParams(rng)
	feats := drawFeatures(rng, 60)
	times := Synthesize(want, feats, 0.02, 11)

	cv, err := CrossValidate(times, feats, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cv.MAPE <= 0 {
		t.Error("noisy CV reports zero error")
	}
	if cv.MAPE > 0.10 {
		t.Errorf("±2%% noise should cross-validate well under 10%% MAPE, got %.3f", cv.MAPE)
	}
	if cv.MaxAPE < cv.MAPE {
		t.Errorf("max APE %.3g below mean %.3g", cv.MaxAPE, cv.MAPE)
	}
}
