package calib

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// MaxObservations bounds how many observations one dataset may hold, so a
// hostile measurement file cannot demand an unbounded amount of fitting
// and feature-extraction work.
const MaxObservations = 4096

// maxDatasetBytes bounds the textual input ParseDataset accepts.
const maxDatasetBytes = 1 << 20

// maxTokenLen bounds any single token (dataset or deck name).
const maxTokenLen = 64

// maxObservationPEs bounds a single observation's processor count.
const maxObservationPEs = 1 << 20

// Observation is one measured run: the deck it ran, the processor count,
// and the measured mean iteration time in seconds.
type Observation struct {
	Deck    string  `json:"deck"`
	PEs     int     `json:"pes"`
	Seconds float64 `json:"seconds"`
}

// Dataset is a named measurement campaign: the observations a calibration
// fits against.
type Dataset struct {
	Name string        `json:"name,omitempty"`
	Obs  []Observation `json:"observations"`
}

// ParseDataset parses the textual measurement format into a Dataset. The
// format is line-oriented; '#' starts a comment and blank lines are
// ignored. Directives:
//
//	dataset NAME              optional dataset name
//	obs DECK PES SECONDS      one measured run
//
// DECK is a deck name (validated by the caller against its deck
// registry), PES a positive processor count, SECONDS a positive finite
// mean iteration time. ParseDataset never panics on malformed input:
// every defect is reported as an error, and the observation count, input
// size, and token lengths are capped.
func ParseDataset(src []byte) (*Dataset, error) {
	if len(src) > maxDatasetBytes {
		return nil, fmt.Errorf("calib: dataset file is %d bytes, max %d", len(src), maxDatasetBytes)
	}
	ds := &Dataset{}
	for i, raw := range strings.Split(string(src), "\n") {
		line := raw
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(strings.TrimSuffix(line, "\r"))
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "dataset":
			if len(fields) != 2 {
				return nil, fmt.Errorf("calib: line %d: want \"dataset NAME\"", i+1)
			}
			if len(fields[1]) > maxTokenLen {
				return nil, fmt.Errorf("calib: line %d: dataset name exceeds %d bytes", i+1, maxTokenLen)
			}
			ds.Name = fields[1]
		case "obs":
			if len(fields) != 4 {
				return nil, fmt.Errorf("calib: line %d: want \"obs DECK PES SECONDS\"", i+1)
			}
			o, err := parseObservation(fields[1], fields[2], fields[3])
			if err != nil {
				return nil, fmt.Errorf("calib: line %d: %v", i+1, err)
			}
			if len(ds.Obs) >= MaxObservations {
				return nil, fmt.Errorf("calib: line %d: more than %d observations", i+1, MaxObservations)
			}
			ds.Obs = append(ds.Obs, o)
		default:
			return nil, fmt.Errorf("calib: line %d: unknown directive %q", i+1, fields[0])
		}
	}
	if len(ds.Obs) == 0 {
		return nil, fmt.Errorf("calib: dataset has no observations")
	}
	return ds, nil
}

func parseObservation(deck, pes, secs string) (Observation, error) {
	var o Observation
	if len(deck) > maxTokenLen {
		return o, fmt.Errorf("deck name exceeds %d bytes", maxTokenLen)
	}
	o.Deck = deck
	p, err := strconv.Atoi(pes)
	if err != nil || p <= 0 || p > maxObservationPEs {
		return o, fmt.Errorf("processor count %q must be a positive integer <= %d", pes, maxObservationPEs)
	}
	o.PEs = p
	t, err := strconv.ParseFloat(secs, 64)
	if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t <= 0 {
		return o, fmt.Errorf("seconds %q must be a positive finite number", secs)
	}
	o.Seconds = t
	return o, nil
}

// Format renders the dataset back into the textual measurement format
// ParseDataset reads; Format-then-Parse round-trips any valid dataset.
func (d *Dataset) Format() []byte {
	var b strings.Builder
	if d.Name != "" {
		fmt.Fprintf(&b, "dataset %s\n", d.Name)
	}
	for _, o := range d.Obs {
		fmt.Fprintf(&b, "obs %s %d %s\n", o.Deck, o.PEs, strconv.FormatFloat(o.Seconds, 'g', -1, 64))
	}
	return []byte(b.String())
}
