package calib

import (
	"fmt"
	"math"
	"slices"

	"krak/internal/linalg"
	"krak/internal/stats"
)

// The model zoo: candidate timing-model forms beyond the paper's linear
// fit, each solved by the same Householder-QR core. The Cray XE
// dense-linear-algebra study builds families of candidate regression
// models per kernel and selects by cross-validation; these are the
// krak equivalents, chosen so each maps back onto something the rest of
// the repository can execute:
//
//	linear     T = a*C + b*M + c*B + d            (the paper's model)
//	loglog     T = exp(a) * C^b * M^c * B^d       (power law)
//	interact   T = a*C + b*M + c*B + e*M*B + d    (latency-bandwidth coupling)
//	piecewise  lo/hi latency+bandwidth split at a message-size breakpoint
//	           (mirroring piecewise segment networks)
//
// C, M, B are the observation Features (baseline compute seconds,
// modeled messages, modeled bytes).

// The model form names, in registry (parsimony-tie-break) order.
const (
	FormLinear    = "linear"
	FormLogLog    = "loglog"
	FormInteract  = "interact"
	FormPiecewise = "piecewise"
)

// ModelForm is one candidate timing-model form: it fits aligned times
// and features into a FormFit by least squares.
type ModelForm interface {
	// Name is the registry name (FormLinear, ...).
	Name() string

	// Coeffs is the coefficient count — the parsimony rank model
	// selection breaks CV ties by.
	Coeffs() int

	// Describe is a one-line human description of the functional form.
	Describe() string

	// Fit solves the form over the aligned observations. Forms that the
	// dataset cannot support (too few points, non-positive values for a
	// log transform, no message traffic to split on) return an error; the
	// selection scoreboard records it and moves on.
	Fit(times []float64, feats []Features) (*FormFit, error)
}

// Forms returns the model zoo in stable registry order: ascending
// coefficient count, linear first — the order parsimony ties resolve in.
func Forms() []ModelForm {
	return []ModelForm{linearForm{}, loglogForm{}, interactForm{}, piecewiseForm{}}
}

// FormByName resolves a registry name ("linear", "loglog", "interact",
// "piecewise") to its ModelForm.
func FormByName(name string) (ModelForm, error) {
	for _, f := range Forms() {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("calib: unknown model form %q", name)
}

// FormFit is one fitted model form — enough to reconstruct the
// predictor (Form + Coeffs + Breakpoint), so a fit survives a trip
// through JSON and a registry without refitting.
type FormFit struct {
	// Form is the registry name of the fitted form.
	Form string

	// Terms names the fitted coefficients in Coeffs order.
	Terms []string

	// Coeffs are the fitted coefficients, in the form's canonical order
	// (see each form's Describe).
	Coeffs []float64

	// Breakpoint is the piecewise form's message-size split in bytes per
	// message; zero for every other form.
	Breakpoint float64

	// R2 is the coefficient of determination over the fitted data.
	R2 float64

	// RMSE is the root-mean-square residual in seconds.
	RMSE float64

	// Sigma is the degrees-of-freedom-corrected residual standard error
	// sqrt(SSR/(n-k)) in seconds. Zero when the fit leaves no spare
	// degrees of freedom.
	Sigma float64

	// SigmaRel is the dof-corrected RMS of *relative* residuals
	// (residual over observed seconds) — the scale-free stderr band
	// drift detection compares fresh residuals against. Observation
	// times span orders of magnitude, so an absolute band would be set
	// entirely by the slowest points.
	SigmaRel float64

	// Residuals[i] is observed minus fitted seconds for observation i.
	Residuals []float64

	// N is the observation count.
	N int
}

// Predict evaluates the fitted form at one observation's features.
func (ff *FormFit) Predict(f Features) float64 {
	c := ff.Coeffs
	switch ff.Form {
	case FormLinear:
		p, _ := ff.LinearParams()
		return p.Predict(f)
	case FormLogLog:
		// Evaluated in the log domain: exp(c0)·C^c1·… multiplies an
		// overflowed factor by an underflowed one on extreme inputs
		// (Inf·0 = NaN), while exp of a finite sum saturates cleanly.
		return math.Exp(c[0] + c[1]*math.Log(f.Compute) + c[2]*math.Log(f.Messages) + c[3]*math.Log(f.Bytes))
	case FormInteract:
		return c[0]*f.Compute + c[1]*f.Messages + c[2]*f.Bytes + c[3]*f.Messages*f.Bytes + c[4]
	case FormPiecewise:
		lat, byteSec := c[1], c[2]
		if meanMessageSize(f) > ff.Breakpoint {
			lat, byteSec = c[3], c[4]
		}
		return c[0]*f.Compute + lat*f.Messages + byteSec*f.Bytes + c[5]
	}
	panic("calib: unknown form " + ff.Form)
}

// LinearParams maps the fit back onto linear machine parameters when the
// form has an exact linear interpretation (only FormLinear does); the
// second return reports whether the mapping is exact.
func (ff *FormFit) LinearParams() (Params, bool) {
	if ff.Form != FormLinear || len(ff.Coeffs) != 4 {
		return Params{}, false
	}
	return Params{
		ComputeScale: ff.Coeffs[0],
		LatencySec:   ff.Coeffs[1],
		ByteSec:      ff.Coeffs[2],
		FixedSec:     ff.Coeffs[3],
	}, true
}

// meanMessageSize is the piecewise split variable: modeled bytes per
// modeled message. Observations without message traffic land on the low
// segment, like a zero-byte message would in a segment network.
func meanMessageSize(f Features) float64 {
	if f.Messages <= 0 {
		return 0
	}
	return f.Bytes / f.Messages
}

// finish fills the quality block of a FormFit from its predictor.
func (ff *FormFit) finish(times []float64, feats []Features) {
	n, k := len(times), len(ff.Coeffs)
	ff.N = n
	ff.Residuals = make([]float64, n)
	var ssr float64
	for i, f := range feats {
		ff.Residuals[i] = times[i] - ff.Predict(f)
		ssr += ff.Residuals[i] * ff.Residuals[i]
	}
	ff.RMSE = math.Sqrt(ssr / float64(n))
	mean := stats.Mean(times)
	var sst, ssrRel float64
	relScored := 0
	for i, t := range times {
		sst += (t - mean) * (t - mean)
		if t != 0 {
			r := ff.Residuals[i] / t
			ssrRel += r * r
			relScored++
		}
	}
	switch {
	case sst > 0:
		ff.R2 = 1 - ssr/sst
	case ssr == 0:
		ff.R2 = 1
	}
	if n > k {
		ff.Sigma = math.Sqrt(ssr / float64(n-k))
		if relScored > k {
			ff.SigmaRel = math.Sqrt(ssrRel / float64(relScored-k))
		}
	}
}

// solveDesign runs one Householder-QR least-squares solve over explicit
// design columns. Columns are equilibrated to unit norm before the
// solve: the zoo mixes columns of wildly different magnitudes (compute
// seconds ~0.1 against messages×bytes products ~1e11), and without
// scaling the QR rank test — relative to the largest column — would
// flag the small ones as degenerate.
func solveDesign(times []float64, feats []Features, cols []func(Features) float64) ([]float64, error) {
	n, k := len(times), len(cols)
	if n < k {
		return nil, ErrDegenerate
	}
	a := linalg.NewMatrix(n, k)
	for i, f := range feats {
		for j, col := range cols {
			a.Set(i, j, col(f))
		}
	}
	norms := make([]float64, k)
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < n; i++ {
			s += a.At(i, j) * a.At(i, j)
		}
		norms[j] = math.Sqrt(s)
		if norms[j] == 0 {
			return nil, ErrDegenerate
		}
		for i := 0; i < n; i++ {
			a.Set(i, j, a.At(i, j)/norms[j])
		}
	}
	x, err := linalg.LeastSquares(a, times)
	if err == linalg.ErrSingular {
		return nil, ErrDegenerate
	}
	if err != nil {
		return nil, fmt.Errorf("calib: least squares: %w", err)
	}
	for j := range x {
		x[j] /= norms[j]
	}
	return x, nil
}

// linearForm wraps the paper's linear model (and its rank-deficiency
// fall-back ladder) as a ModelForm.
type linearForm struct{}

func (linearForm) Name() string { return FormLinear }
func (linearForm) Coeffs() int  { return 4 }
func (linearForm) Describe() string {
	return "T = scale*C + lat*M + perbyte*B + fixed (the paper's model)"
}

func (linearForm) Fit(times []float64, feats []Features) (*FormFit, error) {
	fr, err := Fit(times, feats)
	if err != nil {
		return nil, err
	}
	p := fr.Params
	ff := &FormFit{
		Form:   FormLinear,
		Terms:  []string{termCompute, termMessages, termBytes, termFixed},
		Coeffs: []float64{p.ComputeScale, p.LatencySec, p.ByteSec, p.FixedSec},
	}
	ff.finish(times, feats)
	return ff, nil
}

// loglogForm is the power-law model fitted in the log domain; quality
// numbers (R², RMSE, Sigma) are computed back in the seconds domain so
// the scoreboard compares forms on one scale.
type loglogForm struct{}

func (loglogForm) Name() string { return FormLogLog }
func (loglogForm) Coeffs() int  { return 4 }
func (loglogForm) Describe() string {
	return "T = exp(a) * C^b * M^c * B^d (power law, fitted in log space)"
}

func (loglogForm) Fit(times []float64, feats []Features) (*FormFit, error) {
	for i, f := range feats {
		if times[i] <= 0 || f.Compute <= 0 || f.Messages <= 0 || f.Bytes <= 0 {
			return nil, fmt.Errorf("calib: loglog form needs strictly positive times and features (observation %d): %w",
				i, ErrDegenerate)
		}
	}
	logT := make([]float64, len(times))
	for i, t := range times {
		logT[i] = math.Log(t)
	}
	x, err := solveDesign(logT, feats, []func(Features) float64{
		func(Features) float64 { return 1 },
		func(f Features) float64 { return math.Log(f.Compute) },
		func(f Features) float64 { return math.Log(f.Messages) },
		func(f Features) float64 { return math.Log(f.Bytes) },
	})
	if err != nil {
		return nil, err
	}
	ff := &FormFit{
		Form:   FormLogLog,
		Terms:  []string{"log-const", "log-compute", "log-messages", "log-bytes"},
		Coeffs: x,
	}
	ff.finish(times, feats)
	return ff, nil
}

// interactForm extends the linear model with a messages×bytes coupling
// term — the cost of bandwidth contention growing with message count.
type interactForm struct{}

func (interactForm) Name() string { return FormInteract }
func (interactForm) Coeffs() int  { return 5 }
func (interactForm) Describe() string {
	return "T = scale*C + lat*M + perbyte*B + couple*M*B + fixed (interaction term)"
}

func (interactForm) Fit(times []float64, feats []Features) (*FormFit, error) {
	x, err := solveDesign(times, feats, []func(Features) float64{
		func(f Features) float64 { return f.Compute },
		func(f Features) float64 { return f.Messages },
		func(f Features) float64 { return f.Bytes },
		func(f Features) float64 { return f.Messages * f.Bytes },
		func(Features) float64 { return 1 },
	})
	if err != nil {
		return nil, err
	}
	ff := &FormFit{
		Form:   FormInteract,
		Terms:  []string{termCompute, termMessages, termBytes, "messages*bytes", termFixed},
		Coeffs: x,
	}
	ff.finish(times, feats)
	return ff, nil
}

// piecewiseForm splits the network terms at a message-size breakpoint,
// mirroring the piecewise segment networks machine files describe: small
// messages pay one latency/bandwidth pair, large messages another. The
// breakpoint is chosen by exhaustive search over candidate splits
// (midpoints between observed mean message sizes, subsampled to a
// bounded candidate set), minimizing the residual sum of squares.
type piecewiseForm struct{}

// piecewiseMinSide is the minimum observations each side of a candidate
// breakpoint must keep, and piecewiseMaxCandidates bounds the breakpoint
// search so a 4096-observation dataset cannot demand an O(n²) scan.
const (
	piecewiseMinSide       = 3
	piecewiseMaxCandidates = 32
)

func (piecewiseForm) Name() string { return FormPiecewise }
func (piecewiseForm) Coeffs() int  { return 6 }
func (piecewiseForm) Describe() string {
	return "lo/hi latency+bandwidth split at a bytes-per-message breakpoint (piecewise network)"
}

func (piecewiseForm) Fit(times []float64, feats []Features) (*FormFit, error) {
	if len(times) < 2*piecewiseMinSide+2 {
		return nil, fmt.Errorf("calib: piecewise form needs at least %d observations, got %d: %w",
			2*piecewiseMinSide+2, len(times), ErrDegenerate)
	}
	sizes := make([]float64, len(feats))
	for i, f := range feats {
		if f.Messages <= 0 {
			return nil, fmt.Errorf("calib: piecewise form needs message traffic in every observation (observation %d): %w",
				i, ErrDegenerate)
		}
		sizes[i] = meanMessageSize(f)
	}
	candidates := breakpointCandidates(sizes)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("calib: piecewise form needs varied message sizes to split on: %w", ErrDegenerate)
	}

	var best *FormFit
	bestSSE := math.Inf(1)
	for _, bp := range candidates {
		lo := func(f Features) float64 {
			if meanMessageSize(f) <= bp {
				return 1
			}
			return 0
		}
		x, err := solveDesign(times, feats, []func(Features) float64{
			func(f Features) float64 { return f.Compute },
			func(f Features) float64 { return f.Messages * lo(f) },
			func(f Features) float64 { return f.Bytes * lo(f) },
			func(f Features) float64 { return f.Messages * (1 - lo(f)) },
			func(f Features) float64 { return f.Bytes * (1 - lo(f)) },
			func(Features) float64 { return 1 },
		})
		if err != nil {
			continue
		}
		ff := &FormFit{
			Form: FormPiecewise,
			Terms: []string{termCompute, "messages-lo", "bytes-lo",
				"messages-hi", "bytes-hi", termFixed},
			Coeffs:     x,
			Breakpoint: bp,
		}
		ff.finish(times, feats)
		sse := ff.RMSE * ff.RMSE * float64(ff.N)
		if sse < bestSSE {
			best, bestSSE = ff, sse
		}
	}
	if best == nil {
		return nil, fmt.Errorf("calib: no piecewise breakpoint resolved the design: %w", ErrDegenerate)
	}
	return best, nil
}

// breakpointCandidates builds the bounded candidate-split set: midpoints
// between consecutive distinct observed message sizes that keep
// piecewiseMinSide observations on each side, evenly subsampled down to
// piecewiseMaxCandidates.
func breakpointCandidates(sizes []float64) []float64 {
	sorted := append([]float64(nil), sizes...)
	slices.Sort(sorted)
	var all []float64
	for i := piecewiseMinSide; i <= len(sorted)-piecewiseMinSide; i++ {
		if i == 0 || sorted[i-1] == sorted[i] {
			continue
		}
		all = append(all, (sorted[i-1]+sorted[i])/2)
	}
	if len(all) <= piecewiseMaxCandidates {
		return all
	}
	out := make([]float64, 0, piecewiseMaxCandidates)
	for i := 0; i < piecewiseMaxCandidates; i++ {
		out = append(out, all[i*len(all)/piecewiseMaxCandidates])
	}
	return out
}

// SynthesizeFrom generates observation times from an arbitrary predictor
// over the given features, with optional seeded multiplicative noise —
// Synthesize generalized to any model form, the ground-truth generator
// the selection property tests build on.
func SynthesizeFrom(predict func(Features) float64, feats []Features, noiseFrac float64, seed uint64) []float64 {
	rng := stats.Derive(seed, 0xca11b)
	out := make([]float64, len(feats))
	for i, f := range feats {
		t := predict(f)
		if noiseFrac != 0 {
			t *= 1 + noiseFrac*rng.Sym()
		}
		out[i] = t
	}
	return out
}
