package calib

import (
	"fmt"
	"math"

	"krak/internal/stats"
)

// Model selection over the form zoo: every candidate form is fitted and
// scored by seeded k-fold cross-validation (the same fold assignment for
// every form, so scores are comparable), and the winner is the lowest
// held-out RMSE with a parsimony tie-break — forms whose CV error is
// within selectionTieTol of the best are considered tied, and the tie
// goes to the fewest coefficients, then to registry order (linear
// first). Nested forms fit linear data exactly as well as linear does;
// the tie-break is what makes selection recover the *generating* form
// instead of the most flexible one.

// selectionTieTol is the relative CV-RMSE band within which forms are
// considered tied and parsimony decides. Wide enough that a richer form
// fitting a simpler form's noise a few percent better does not win on
// luck; real structure buys the richer forms multiples, not percents.
const selectionTieTol = 0.10

// FormScore is one row of the selection scoreboard.
type FormScore struct {
	// Form is the candidate's registry name; Coeffs its parsimony rank.
	Form   string
	Coeffs int

	// R2 and RMSE score the full-data fit; CVRMSE and CVMAPE the held-out
	// cross-validation. Zero when Err is set.
	R2     float64
	RMSE   float64
	CVRMSE float64
	CVMAPE float64

	// Selected marks the winning form.
	Selected bool

	// Err records why the form could not be fitted or cross-validated on
	// this dataset ("" when it was scored).
	Err string
}

// Selection is a SelectModel verdict: the winning fit plus the full
// scoreboard in registry order.
type Selection struct {
	Best   *FormFit
	Scores []FormScore
}

// SelectModel fits every registered model form, cross-validates each
// with the same seeded fold assignment, and picks the winner (lowest CV
// RMSE, parsimony tie-break). Forms the dataset cannot support appear in
// the scoreboard with their error instead of scores. ErrDegenerate is
// returned when no form fits at all. Requires 2 <= k <= len(times).
func SelectModel(times []float64, feats []Features, k int, seed uint64) (*Selection, error) {
	n := len(times)
	if len(feats) != n {
		return nil, fmt.Errorf("calib: %d times vs %d feature rows", n, len(feats))
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("calib: %d folds for %d observations (want 2 <= k <= n)", k, n)
	}

	sel := &Selection{}
	fits := map[string]*FormFit{}
	for _, form := range Forms() {
		score := FormScore{Form: form.Name(), Coeffs: form.Coeffs()}
		ff, err := form.Fit(times, feats)
		if err == nil {
			var cv *CVStats
			cv, err = crossValidateWith(times, feats, k, seed, form.Fit)
			if err == nil {
				fits[form.Name()] = ff
				score.R2, score.RMSE = ff.R2, ff.RMSE
				score.CVRMSE, score.CVMAPE = cv.RMSE, cv.MAPE
			}
		}
		if err != nil {
			score.Err = err.Error()
		}
		sel.Scores = append(sel.Scores, score)
	}
	if len(fits) == 0 {
		return nil, fmt.Errorf("calib: no model form fits this dataset: %w", ErrDegenerate)
	}

	// Lowest CV RMSE sets the band; within the band the fewest
	// coefficients win, and registry order settles exact ties (the
	// scoreboard is iterated in registry order, so the first qualifying
	// entry sticks). The absolute floor keeps numerically-perfect fits
	// (noiseless data, CV errors at machine epsilon) tied rather than
	// ranked by floating-point luck.
	bestCV := math.Inf(1)
	for _, sc := range sel.Scores {
		if sc.Err == "" && sc.CVRMSE < bestCV {
			bestCV = sc.CVRMSE
		}
	}
	var meanAbs float64
	for _, t := range times {
		meanAbs += math.Abs(t)
	}
	meanAbs /= float64(n)
	band := bestCV*(1+selectionTieTol) + 1e-9*meanAbs
	winner := -1
	for i, sc := range sel.Scores {
		if sc.Err != "" || sc.CVRMSE > band {
			continue
		}
		if winner < 0 || sc.Coeffs < sel.Scores[winner].Coeffs {
			winner = i
		}
	}
	sel.Scores[winner].Selected = true
	sel.Best = fits[sel.Scores[winner].Form]
	return sel, nil
}

// CrossValidateForm cross-validates a single form with the same seeded
// fold assignment SelectModel scores every candidate on, so a report for
// an explicitly chosen form matches its scoreboard row.
func CrossValidateForm(times []float64, feats []Features, k int, seed uint64, form ModelForm) (*CVStats, error) {
	return crossValidateWith(times, feats, k, seed, form.Fit)
}

// crossValidateWith is k-fold cross-validation generalized over a fit
// function: the same seeded Fisher-Yates fold assignment as
// CrossValidate (which delegates here), applied to any form.
func crossValidateWith(times []float64, feats []Features, k int, seed uint64,
	fit func([]float64, []Features) (*FormFit, error)) (*CVStats, error) {
	n := len(times)
	if len(feats) != n {
		return nil, fmt.Errorf("calib: %d times vs %d feature rows", n, len(feats))
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("calib: %d folds for %d observations (want 2 <= k <= n)", k, n)
	}

	// Deterministic Fisher-Yates shuffle of the observation order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := stats.Derive(seed, 0xf01d5)
	for i := n - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}

	cv := &CVStats{Folds: k}
	var sse float64
	scored := 0
	for fold := 0; fold < k; fold++ {
		// order[i] is held out when i ≡ fold (mod k): near-equal folds
		// without materializing index sets.
		var trT []float64
		var trF []Features
		var teIdx []int
		for i, idx := range order {
			if i%k == fold {
				teIdx = append(teIdx, idx)
			} else {
				trT = append(trT, times[idx])
				trF = append(trF, feats[idx])
			}
		}
		ff, err := fit(trT, trF)
		if err != nil {
			return nil, fmt.Errorf("calib: fold %d: %w", fold, err)
		}
		for _, idx := range teIdx {
			pred := ff.Predict(feats[idx])
			// A form can fit its training fold yet blow up on held-out
			// points (the power law extrapolates through exp). Non-finite
			// predictions disqualify the form for this dataset rather than
			// poisoning the scoreboard with NaN/Inf that JSON cannot carry.
			if math.IsNaN(pred) || math.IsInf(pred, 0) {
				return nil, fmt.Errorf("calib: fold %d: non-finite held-out prediction: %w", fold, ErrDegenerate)
			}
			e := times[idx] - pred
			sse += e * e
			if times[idx] != 0 {
				ape := math.Abs(e) / times[idx]
				cv.MAPE += ape
				if ape > cv.MaxAPE {
					cv.MaxAPE = ape
				}
			}
			scored++
		}
	}
	if scored > 0 {
		cv.RMSE = math.Sqrt(sse / float64(scored))
		cv.MAPE /= float64(scored)
	}
	return cv, nil
}
