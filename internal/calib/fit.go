package calib

import (
	"fmt"
	"math"

	"krak/internal/linalg"
	"krak/internal/stats"
)

// Features are the baseline-model descriptors of one observation, computed
// by evaluating the analytic model at unit networks: Compute is the
// baseline-predicted computation seconds (reference cost tables), Messages
// the modeled message count (point-to-point messages plus collective tree
// stages), and Bytes the modeled payload bytes on the wire.
type Features struct {
	Compute  float64 `json:"compute_s"`
	Messages float64 `json:"messages"`
	Bytes    float64 `json:"bytes"`
}

// Params are the fitted machine parameters of the linear timing model
//
//	T = ComputeScale*Compute + LatencySec*Messages + ByteSec*Bytes + FixedSec
//
// ComputeScale is the compute-rate multiplier relative to the baseline
// cost tables (1 = the baseline machine, 2 = half as fast), LatencySec the
// effective per-message latency, ByteSec the effective seconds per byte
// (1/bandwidth), and FixedSec a fixed per-iteration overhead.
type Params struct {
	ComputeScale float64 `json:"compute_scale"`
	LatencySec   float64 `json:"latency_s"`
	ByteSec      float64 `json:"byte_s"`
	FixedSec     float64 `json:"fixed_s"`
}

// Predict evaluates the linear timing model at one observation's features.
func (p Params) Predict(f Features) float64 {
	return p.ComputeScale*f.Compute + p.LatencySec*f.Messages + p.ByteSec*f.Bytes + p.FixedSec
}

// The model terms, in design-matrix column order.
const (
	termCompute  = "compute"
	termMessages = "messages"
	termBytes    = "bytes"
	termFixed    = "fixed"
)

// termSubsets are the fall-back ladder of term combinations Fit tries, in
// order: the full model first, then progressively coarser models for
// datasets whose observations cannot resolve every parameter (too few
// points, or features that never vary independently).
var termSubsets = [][]string{
	{termCompute, termMessages, termBytes, termFixed},
	{termCompute, termMessages, termBytes},
	{termCompute, termMessages},
	{termCompute, termFixed},
	{termCompute},
}

// column returns the design-matrix entry of one term for one observation.
func column(term string, f Features) float64 {
	switch term {
	case termCompute:
		return f.Compute
	case termMessages:
		return f.Messages
	case termBytes:
		return f.Bytes
	case termFixed:
		return 1
	}
	panic("calib: unknown term " + term)
}

// FitResult reports a least-squares calibration: the fitted parameters,
// their standard errors (zero for terms the fall-back ladder dropped or
// when the fit leaves no degrees of freedom), the terms actually fitted,
// and the fit quality over the observations.
type FitResult struct {
	Params Params
	StdErr Params
	Terms  []string

	// R2 is the coefficient of determination of the fit.
	R2 float64

	// RMSE is the root-mean-square residual in seconds.
	RMSE float64

	// Residuals[i] is observed minus fitted seconds for observation i.
	Residuals []float64

	// N is the observation count.
	N int
}

// Fit solves the linear timing model by Householder-QR least squares over
// the aligned times and features. When the full four-term system is rank
// deficient it retries progressively coarser term subsets (see Params for
// the model); ErrDegenerate is returned when even the compute-only model
// cannot be resolved.
func Fit(times []float64, feats []Features) (*FitResult, error) {
	if len(times) != len(feats) {
		return nil, fmt.Errorf("calib: %d times vs %d feature rows", len(times), len(feats))
	}
	n := len(times)
	if n == 0 {
		return nil, ErrDegenerate
	}
	for _, terms := range termSubsets {
		k := len(terms)
		if n < k {
			continue
		}
		a := linalg.NewMatrix(n, k)
		for i, f := range feats {
			for j, term := range terms {
				a.Set(i, j, column(term, f))
			}
		}
		x, err := linalg.LeastSquares(a, times)
		if err == linalg.ErrSingular {
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("calib: least squares: %w", err)
		}
		return assemble(terms, x, a, times, feats), nil
	}
	return nil, ErrDegenerate
}

// assemble maps a term-subset solution back onto Params and computes the
// quality report.
func assemble(terms []string, x []float64, a *linalg.Matrix, times []float64, feats []Features) *FitResult {
	fr := &FitResult{Terms: terms, N: len(times)}
	setParam(&fr.Params, terms, x)

	// Residuals, RMSE, R².
	fr.Residuals = make([]float64, len(times))
	var ssr float64
	for i, f := range feats {
		fr.Residuals[i] = times[i] - fr.Params.Predict(f)
		ssr += fr.Residuals[i] * fr.Residuals[i]
	}
	fr.RMSE = math.Sqrt(ssr / float64(len(times)))
	mean := stats.Mean(times)
	var sst float64
	for _, t := range times {
		sst += (t - mean) * (t - mean)
	}
	switch {
	case sst > 0:
		fr.R2 = 1 - ssr/sst
	case ssr == 0:
		fr.R2 = 1
	}

	// Per-parameter standard errors: sqrt(sigma² * (X'X)⁻¹_jj) with
	// sigma² = SSR/(n-k). Left at zero when there are no spare degrees of
	// freedom or X'X is numerically singular.
	n, k := len(times), len(terms)
	if n > k {
		sigma2 := ssr / float64(n-k)
		xtx := linalg.NewMatrix(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for r := 0; r < n; r++ {
					s += a.At(r, i) * a.At(r, j)
				}
				xtx.Set(i, j, s)
			}
		}
		se := make([]float64, k)
		ok := true
		for j := 0; j < k; j++ {
			e := make([]float64, k)
			e[j] = 1
			z, err := linalg.SolveLU(xtx, e)
			if err != nil || z[j] < 0 {
				ok = false
				break
			}
			se[j] = math.Sqrt(sigma2 * z[j])
		}
		if ok {
			setParam(&fr.StdErr, terms, se)
		}
	}
	return fr
}

// setParam scatters a term-subset vector into the named Params fields.
func setParam(p *Params, terms []string, x []float64) {
	for j, term := range terms {
		switch term {
		case termCompute:
			p.ComputeScale = x[j]
		case termMessages:
			p.LatencySec = x[j]
		case termBytes:
			p.ByteSec = x[j]
		case termFixed:
			p.FixedSec = x[j]
		}
	}
}

// Synthesize generates observation times from known parameters over the
// given features, with optional multiplicative noise of relative amplitude
// noiseFrac drawn from a seeded deterministic stream — the ground-truth
// generator the property tests (and any "can the fit recover a known
// machine" experiment) build on.
func Synthesize(p Params, feats []Features, noiseFrac float64, seed uint64) []float64 {
	rng := stats.Derive(seed, 0xca11b)
	out := make([]float64, len(feats))
	for i, f := range feats {
		t := p.Predict(f)
		if noiseFrac != 0 {
			t *= 1 + noiseFrac*rng.Sym()
		}
		out[i] = t
	}
	return out
}
