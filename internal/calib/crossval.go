package calib

import (
	"fmt"
	"math"

	"krak/internal/stats"
)

// CVStats reports a k-fold cross-validation of the fitted model: each
// fold is held out once, the model is fitted on the rest, and the held-out
// observations are scored against the fold's predictions.
type CVStats struct {
	// Folds is the number of folds actually used.
	Folds int `json:"folds"`

	// RMSE is the root-mean-square held-out prediction error in seconds.
	RMSE float64 `json:"rmse_s"`

	// MAPE is the mean absolute held-out prediction error relative to the
	// observed time.
	MAPE float64 `json:"mape"`

	// MaxAPE is the worst single held-out relative error.
	MaxAPE float64 `json:"max_ape"`
}

// CrossValidate runs seeded, deterministic k-fold cross-validation of the
// linear timing model over the aligned times and features: observations
// are shuffled by a deterministic stream of the seed, split into k
// near-equal folds, and each fold is predicted by a model fitted on the
// other k-1. Requires 2 <= k <= len(times).
func CrossValidate(times []float64, feats []Features, k int, seed uint64) (*CVStats, error) {
	n := len(times)
	if len(feats) != n {
		return nil, fmt.Errorf("calib: %d times vs %d feature rows", n, len(feats))
	}
	if k < 2 || k > n {
		return nil, fmt.Errorf("calib: %d folds for %d observations (want 2 <= k <= n)", k, n)
	}

	// Deterministic Fisher-Yates shuffle of the observation order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng := stats.Derive(seed, 0xf01d5)
	for i := n - 1; i > 0; i-- {
		j := int(rng.Next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}

	cv := &CVStats{Folds: k}
	var sse float64
	scored := 0
	for fold := 0; fold < k; fold++ {
		// order[i] is held out when i ≡ fold (mod k): near-equal folds
		// without materializing index sets.
		var trT []float64
		var trF []Features
		var teIdx []int
		for i, idx := range order {
			if i%k == fold {
				teIdx = append(teIdx, idx)
			} else {
				trT = append(trT, times[idx])
				trF = append(trF, feats[idx])
			}
		}
		fr, err := Fit(trT, trF)
		if err != nil {
			return nil, fmt.Errorf("calib: fold %d: %w", fold, err)
		}
		for _, idx := range teIdx {
			pred := fr.Params.Predict(feats[idx])
			e := times[idx] - pred
			sse += e * e
			if times[idx] != 0 {
				ape := math.Abs(e) / times[idx]
				cv.MAPE += ape
				if ape > cv.MaxAPE {
					cv.MaxAPE = ape
				}
			}
			scored++
		}
	}
	if scored > 0 {
		cv.RMSE = math.Sqrt(sse / float64(scored))
		cv.MAPE /= float64(scored)
	}
	return cv, nil
}
