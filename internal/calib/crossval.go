package calib

// CVStats reports a k-fold cross-validation of the fitted model: each
// fold is held out once, the model is fitted on the rest, and the held-out
// observations are scored against the fold's predictions.
type CVStats struct {
	// Folds is the number of folds actually used.
	Folds int `json:"folds"`

	// RMSE is the root-mean-square held-out prediction error in seconds.
	RMSE float64 `json:"rmse_s"`

	// MAPE is the mean absolute held-out prediction error relative to the
	// observed time.
	MAPE float64 `json:"mape"`

	// MaxAPE is the worst single held-out relative error.
	MaxAPE float64 `json:"max_ape"`
}

// CrossValidate runs seeded, deterministic k-fold cross-validation of the
// linear timing model over the aligned times and features: observations
// are shuffled by a deterministic stream of the seed, split into k
// near-equal folds, and each fold is predicted by a model fitted on the
// other k-1. Requires 2 <= k <= len(times). It is crossValidateWith
// specialized to the linear form; every other form goes through
// SelectModel's scoreboard.
func CrossValidate(times []float64, feats []Features, k int, seed uint64) (*CVStats, error) {
	return crossValidateWith(times, feats, k, seed, linearForm{}.Fit)
}
