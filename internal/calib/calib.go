// Package calib fits machine-level parameters of the Krak performance
// model to measured timing datasets — the automated counterpart of the
// paper's by-hand procedure of tuning compute rates and latency/bandwidth
// terms until the analytic model tracked the AlphaServer ES45 / QsNet-I
// measurements.
//
// The fitted model is linear in its parameters. Every observation (one
// measured mean iteration time of a deck on a processor count) is reduced
// to three baseline features by evaluating the analytic model at unit
// networks: the baseline-predicted computation seconds, the modeled
// message count (point-to-point messages plus collective tree stages),
// and the modeled bytes on the wire. The machine is then the least-squares
// solution of
//
//	T_i = ComputeScale*Compute_i + LatencySec*Messages_i +
//	      ByteSec*Bytes_i + FixedSec
//
// over all observations i: a compute-rate multiplier relative to the
// baseline cost tables, an effective per-message latency, an effective
// per-byte cost (1/bandwidth), and a fixed per-iteration overhead.
// Fit reports per-parameter standard errors, the coefficient of
// determination, and residuals; CrossValidate adds k-fold generalization
// error. Feature extraction itself lives with the façade (pkg/krak),
// which owns decks, calibrated cost curves, and network models; this
// package is the numerical core plus the bounded textual dataset format.
package calib

import "errors"

// ErrDegenerate is returned by Fit when no parameter subset can be
// resolved from the observations (e.g. every feature is zero, or there
// are no observations at all).
var ErrDegenerate = errors.New("calib: dataset is degenerate; parameters are unresolvable")
