package calib

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseDataset(t *testing.T) {
	src := []byte(`# measured on the lab cluster
dataset lab-2026-07
obs small 2 0.0521     # trailing comment
obs small 4 0.0312

obs medium 128 0.0123
`)
	ds, err := ParseDataset(src)
	if err != nil {
		t.Fatal(err)
	}
	want := &Dataset{Name: "lab-2026-07", Obs: []Observation{
		{Deck: "small", PEs: 2, Seconds: 0.0521},
		{Deck: "small", PEs: 4, Seconds: 0.0312},
		{Deck: "medium", PEs: 128, Seconds: 0.0123},
	}}
	if !reflect.DeepEqual(ds, want) {
		t.Errorf("parsed %+v, want %+v", ds, want)
	}
}

func TestParseDatasetErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", "", "no observations"},
		{"comment only", "# nothing\n", "no observations"},
		{"unknown directive", "observe small 2 1\n", "unknown directive"},
		{"short obs", "obs small 2\n", "want \"obs DECK PES SECONDS\""},
		{"bad pes", "obs small zero 1\n", "positive integer"},
		{"negative pes", "obs small -4 1\n", "positive integer"},
		{"huge pes", "obs small 99999999 1\n", "positive integer"},
		{"bad seconds", "obs small 2 fast\n", "positive finite"},
		{"negative seconds", "obs small 2 -0.5\n", "positive finite"},
		{"nan seconds", "obs small 2 NaN\n", "positive finite"},
		{"inf seconds", "obs small 2 +Inf\n", "positive finite"},
		{"long deck", "obs " + strings.Repeat("x", 65) + " 2 1\n", "exceeds 64 bytes"},
		{"dataset arity", "dataset a b\n", "want \"dataset NAME\""},
		{"long name", "dataset " + strings.Repeat("n", 65) + "\n", "exceeds 64 bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseDataset([]byte(tc.src))
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "calib:") {
				t.Errorf("error %q lacks the calib: prefix", err)
			}
		})
	}
}

func TestParseDatasetCaps(t *testing.T) {
	var b strings.Builder
	for i := 0; i < MaxObservations+1; i++ {
		b.WriteString("obs small 2 0.5\n")
	}
	if _, err := ParseDataset([]byte(b.String())); err == nil ||
		!strings.Contains(err.Error(), "more than") {
		t.Errorf("observation cap not enforced: %v", err)
	}
	huge := strings.Repeat("#", maxDatasetBytes+1)
	if _, err := ParseDataset([]byte(huge)); err == nil ||
		!strings.Contains(err.Error(), "max") {
		t.Errorf("size cap not enforced: %v", err)
	}
}

// TestDatasetFormatRoundTrip pins Format as the exact inverse of
// ParseDataset, the property the fuzz harness also checks.
func TestDatasetFormatRoundTrip(t *testing.T) {
	ds := &Dataset{Name: "rt", Obs: []Observation{
		{Deck: "small", PEs: 2, Seconds: 0.052134567891234},
		{Deck: "large", PEs: 1024, Seconds: 1e-9},
	}}
	back, err := ParseDataset(ds.Format())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds, back) {
		t.Errorf("round trip drifted: %+v vs %+v", ds, back)
	}
}
