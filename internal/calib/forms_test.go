package calib

import (
	"fmt"
	"math"
	"testing"

	"krak/internal/stats"
)

// formFeatures draws a feature matrix with enough spread for every form
// in the zoo: a PE-doubling compute/message ladder like drawFeatures,
// plus mean message sizes sweeping 256 B – 128 KB so the piecewise
// split variable actually varies.
func formFeatures(rng *stats.SplitMix64, n int) []Features {
	out := make([]Features, n)
	for i := range out {
		scale := float64(uint(1) << (i % 6))
		msgs := (0.5 + rng.Float64()) * 50 * scale
		msize := 256 * math.Pow(2, 9*rng.Float64())
		out[i] = Features{
			Compute:  (0.5 + rng.Float64()) * 0.2 / scale,
			Messages: msgs,
			Bytes:    msgs * msize,
		}
	}
	return out
}

// generator is one ground-truth model the selection battery must
// recover: a predictor in a known form, with the coefficients the fitted
// FormFit should reproduce.
type generator struct {
	form    string
	predict func(Features) float64
}

func generators() []generator {
	linear := Params{ComputeScale: 1.7, LatencySec: 2e-5, ByteSec: 2e-9, FixedSec: 1e-3}
	const (
		pwBreak                 = 8192.0
		pwScale, pwFixed        = 1.5, 5e-4
		pwLatLo, pwByteLo       = 5e-6, 5e-9
		pwLatHi, pwByteHi       = 4e-5, 1e-9
		llConst, llC, llM, llB  = 1e-3, 0.8, 0.35, 0.25
		inLat, inByte, inCouple = 2e-5, 2e-9, 2e-12
		inScale, inFixed        = 1.7, 1e-3
	)
	return []generator{
		{FormLinear, linear.Predict},
		{FormLogLog, func(f Features) float64 {
			return llConst * math.Pow(f.Compute, llC) * math.Pow(f.Messages, llM) * math.Pow(f.Bytes, llB)
		}},
		{FormInteract, func(f Features) float64 {
			return inScale*f.Compute + inLat*f.Messages + inByte*f.Bytes + inCouple*f.Messages*f.Bytes + inFixed
		}},
		{FormPiecewise, func(f Features) float64 {
			lat, byteSec := pwLatLo, pwByteLo
			if meanMessageSize(f) > pwBreak {
				lat, byteSec = pwLatHi, pwByteHi
			}
			return pwScale*f.Compute + lat*f.Messages + byteSec*f.Bytes + pwFixed
		}},
	}
}

// TestSelectModelRecoversGeneratingForm is the tentpole property: for
// every form in the zoo, on seeded synthetic data generated from that
// form — noiseless and with ±2% multiplicative noise, across fold
// counts — cross-validated selection picks the generating form, and the
// winning fit reproduces the generator within tolerance.
func TestSelectModelRecoversGeneratingForm(t *testing.T) {
	const n = 28
	for _, gen := range generators() {
		for _, noise := range []float64{0, 0.02} {
			for _, folds := range []int{3, 5} {
				name := fmt.Sprintf("%s/noise=%g/k=%d", gen.form, noise, folds)
				t.Run(name, func(t *testing.T) {
					rng := stats.Derive(0x5e1ec7, uint64(folds))
					feats := formFeatures(rng, n)
					times := SynthesizeFrom(gen.predict, feats, noise, 0xfeed)

					sel, err := SelectModel(times, feats, folds, 0xabc)
					if err != nil {
						t.Fatalf("SelectModel: %v", err)
					}
					if got := sel.Best.Form; got != gen.form {
						t.Fatalf("selected %q, want %q\nscoreboard: %+v", got, gen.form, sel.Scores)
					}

					// The scoreboard covers the whole zoo, in registry
					// order, with exactly one winner.
					if len(sel.Scores) != len(Forms()) {
						t.Fatalf("scoreboard has %d rows, want %d", len(sel.Scores), len(Forms()))
					}
					selected := 0
					for i, form := range Forms() {
						if sel.Scores[i].Form != form.Name() {
							t.Errorf("scoreboard row %d is %q, want %q", i, sel.Scores[i].Form, form.Name())
						}
						if sel.Scores[i].Selected {
							selected++
						}
					}
					if selected != 1 {
						t.Errorf("%d scoreboard rows selected, want 1", selected)
					}

					// Parameter recovery, expressed as prediction accuracy
					// against the noiseless ground truth (coefficients are
					// compared directly for the linear form below).
					tol := 1e-6
					if noise > 0 {
						tol = 0.10
					}
					for i, f := range feats {
						truth := gen.predict(f)
						got := sel.Best.Predict(f)
						if relErr(got, truth) > tol {
							t.Fatalf("observation %d: predicted %.6g, truth %.6g (rel err %.2g > %.2g)",
								i, got, truth, relErr(got, truth), tol)
						}
					}
				})
			}
		}
	}
}

// TestSelectModelRecoversLinearCoefficients pins coefficient-level
// recovery for the form with a direct machine-parameter interpretation.
func TestSelectModelRecoversLinearCoefficients(t *testing.T) {
	want := Params{ComputeScale: 1.7, LatencySec: 2e-5, ByteSec: 2e-9, FixedSec: 1e-3}
	rng := stats.Derive(0x5e1ec7, 99)
	feats := formFeatures(rng, 32)
	times := Synthesize(want, feats, 0, 7)

	sel, err := SelectModel(times, feats, 4, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := sel.Best.LinearParams()
	if !ok {
		t.Fatalf("selected %q has no linear interpretation", sel.Best.Form)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"compute scale", got.ComputeScale, want.ComputeScale},
		{"latency", got.LatencySec, want.LatencySec},
		{"byte cost", got.ByteSec, want.ByteSec},
		{"fixed", got.FixedSec, want.FixedSec},
	} {
		if relErr(c.got, c.want) > 1e-6 {
			t.Errorf("%s: %.6g, want %.6g", c.name, c.got, c.want)
		}
	}
}

// TestPiecewiseRecoversSegments pins the piecewise form's breakpoint and
// per-segment coefficients on a clean split.
func TestPiecewiseRecoversSegments(t *testing.T) {
	gen := generators()[3]
	rng := stats.Derive(0x5e1ec7, 3)
	feats := formFeatures(rng, 28)
	times := SynthesizeFrom(gen.predict, feats, 0, 0xfeed)

	ff, err := (piecewiseForm{}).Fit(times, feats)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted breakpoint must classify every observation exactly as
	// the generator's 8192 B/msg split does.
	for i, f := range feats {
		if (meanMessageSize(f) > 8192) != (meanMessageSize(f) > ff.Breakpoint) {
			t.Fatalf("observation %d (%.0f B/msg) lands on the wrong side of fitted breakpoint %.0f",
				i, meanMessageSize(f), ff.Breakpoint)
		}
	}
	want := []float64{1.5, 5e-6, 5e-9, 4e-5, 1e-9, 5e-4}
	for j, w := range want {
		if relErr(ff.Coeffs[j], w) > 1e-6 {
			t.Errorf("coeff %s: %.6g, want %.6g", ff.Terms[j], ff.Coeffs[j], w)
		}
	}
}

// TestFormsRegistry pins the zoo's registry contract: stable order,
// ascending parsimony rank, resolvable names, and distinct describes.
func TestFormsRegistry(t *testing.T) {
	forms := Forms()
	wantOrder := []string{FormLinear, FormLogLog, FormInteract, FormPiecewise}
	if len(forms) != len(wantOrder) {
		t.Fatalf("registry has %d forms, want %d", len(forms), len(wantOrder))
	}
	seen := map[string]bool{}
	for i, f := range forms {
		if f.Name() != wantOrder[i] {
			t.Errorf("registry[%d] = %q, want %q", i, f.Name(), wantOrder[i])
		}
		if i > 0 && f.Coeffs() < forms[i-1].Coeffs() {
			t.Errorf("registry order is not ascending parsimony: %q (%d) after %q (%d)",
				f.Name(), f.Coeffs(), forms[i-1].Name(), forms[i-1].Coeffs())
		}
		if f.Describe() == "" || seen[f.Describe()] {
			t.Errorf("form %q has an empty or duplicate description", f.Name())
		}
		seen[f.Describe()] = true
		got, err := FormByName(f.Name())
		if err != nil || got.Name() != f.Name() {
			t.Errorf("FormByName(%q) = %v, %v", f.Name(), got, err)
		}
	}
	if _, err := FormByName("auto"); err == nil {
		t.Error(`FormByName("auto") resolved; "auto" is selection, not a form`)
	}
}

// TestSelectModelDegradedForms asserts forms a dataset cannot support
// appear on the scoreboard with errors instead of failing selection:
// observations without message traffic rule out piecewise and loglog,
// and linear still wins.
func TestSelectModelDegradedForms(t *testing.T) {
	want := Params{ComputeScale: 2, FixedSec: 1e-3}
	rng := stats.Derive(0x5e1ec7, 17)
	feats := make([]Features, 12)
	for i := range feats {
		feats[i] = Features{Compute: (0.5 + rng.Float64()) * 0.1}
	}
	times := Synthesize(want, feats, 0, 3)

	sel, err := SelectModel(times, feats, 3, 0xabc)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Best.Form != FormLinear {
		t.Fatalf("selected %q, want linear", sel.Best.Form)
	}
	for _, sc := range sel.Scores {
		switch sc.Form {
		case FormLogLog, FormPiecewise:
			if sc.Err == "" {
				t.Errorf("form %q fitted message-free data; want a scoreboard error", sc.Form)
			}
		}
	}
}

// TestDetectDrift is the stderr-band contract: fresh data from the
// fitted machine stays quiet, fresh data from a different machine flags,
// noiseless base fits do not flag on rounding noise.
func TestDetectDrift(t *testing.T) {
	machineA := Params{ComputeScale: 1.7, LatencySec: 2e-5, ByteSec: 2e-9, FixedSec: 1e-3}
	machineB := Params{ComputeScale: 1.7, LatencySec: 8e-5, ByteSec: 6e-9, FixedSec: 1e-3}
	rng := stats.Derive(0xd21f7, 0)
	feats := formFeatures(rng, 24)
	fresh := formFeatures(rng, 12)

	for _, noise := range []float64{0, 0.02} {
		base, err := (linearForm{}).Fit(Synthesize(machineA, feats, noise, 1), feats)
		if err != nil {
			t.Fatal(err)
		}
		same := DetectDrift(base, Synthesize(machineA, fresh, noise, 2), fresh)
		if same.Flagged {
			t.Errorf("noise=%g: same-machine append flagged: fresh RMSE %.3g vs band %.3g",
				noise, same.FreshRMSE, same.Band)
		}
		moved := DetectDrift(base, Synthesize(machineB, fresh, noise, 2), fresh)
		if !moved.Flagged {
			t.Errorf("noise=%g: changed-machine append not flagged: fresh RMSE %.3g vs band %.3g",
				noise, moved.FreshRMSE, moved.Band)
		}
		if moved.FreshN != len(fresh) || moved.Sigma != base.SigmaRel {
			t.Errorf("noise=%g: drift report bookkeeping wrong: %+v", noise, moved)
		}
	}
}
