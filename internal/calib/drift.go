package calib

import "math"

// Drift detection: when fresh measurements arrive for a machine that
// already has a stored fit, their residuals under that fit are compared
// against the fit's own stderr band. A healthy machine's new runs
// scatter inside the band; a machine that changed (an upgraded
// interconnect, a different compute node, OMI4papps' generational drift)
// pushes the fresh residuals far outside it. The comparison is on
// *relative* residuals (residual over observed seconds): observation
// times span orders of magnitude, so an absolute band would be set
// entirely by the slowest points and a fresh batch of large runs would
// flag on scale alone.

// driftBandSigmas is how many residual standard errors wide the
// acceptance band is — the usual 3-sigma rule.
const driftBandSigmas = 3

// driftRelFloor keeps the band meaningful for numerically-perfect base
// fits: a noiseless synthetic fit has SigmaRel at machine epsilon, and
// without a floor any fresh observation would flag on rounding noise.
const driftRelFloor = 1e-6

// Drift reports a fresh-data residual check against a stored fit.
type Drift struct {
	// Flagged is true when the fresh relative residuals left the band.
	Flagged bool

	// FreshN counts the fresh observations checked.
	FreshN int

	// FreshRMSE is the RMS absolute residual of the fresh observations
	// under the stored fit, in seconds (reported for context; the flag
	// statistic is FreshRelRMS).
	FreshRMSE float64

	// FreshRelRMS is the RMS relative residual of the fresh observations
	// under the stored fit — the statistic compared against Band.
	FreshRelRMS float64

	// Band is the acceptance threshold on FreshRelRMS: driftBandSigmas
	// times the stored fit's (floored) relative residual stderr.
	Band float64

	// Sigma is the stored fit's relative residual stderr (FormFit's
	// SigmaRel) the band is built from.
	Sigma float64
}

// DetectDrift scores fresh observations against a stored fit: the RMS
// relative residual of the fresh data under the stored predictor,
// compared to a band of driftBandSigmas relative residual standard
// errors (with a floor so noiseless base fits do not flag on rounding
// noise).
func DetectDrift(ff *FormFit, times []float64, feats []Features) Drift {
	d := Drift{FreshN: len(times), Sigma: ff.SigmaRel}
	d.Band = driftBandSigmas * math.Max(ff.SigmaRel, driftRelFloor)
	if len(times) == 0 {
		return d
	}
	var sse, sseRel float64
	relScored := 0
	blewUp := false
	for i, f := range feats {
		e := times[i] - ff.Predict(f)
		// A stored fit that predicts a non-finite time for a fresh point
		// (the power law extrapolating through exp) cannot explain the
		// point at all — that is drift by definition. Flag it, but keep
		// the non-finite residual out of the statistics so the report
		// stays JSON-representable.
		if math.IsNaN(e) || math.IsInf(e, 0) {
			blewUp = true
			continue
		}
		sse += e * e
		if times[i] != 0 {
			r := e / times[i]
			sseRel += r * r
			relScored++
		}
	}
	d.FreshRMSE = math.Sqrt(sse / float64(len(times)))
	if relScored > 0 {
		d.FreshRelRMS = math.Sqrt(sseRel / float64(relScored))
	}
	d.Flagged = blewUp || d.FreshRelRMS > d.Band
	return d
}
