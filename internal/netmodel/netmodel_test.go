package netmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSegments(t *testing.T) {
	if _, err := New("x", nil); err == nil {
		t.Fatal("empty segment list accepted")
	}
	if _, err := New("x", []Segment{{MinBytes: 8, Latency: 1e-6}}); err == nil {
		t.Fatal("model without 0-byte segment accepted")
	}
	if _, err := New("x", []Segment{{MinBytes: 0}, {MinBytes: 0}}); err == nil {
		t.Fatal("duplicate boundary accepted")
	}
	if _, err := New("x", []Segment{{MinBytes: 0, Latency: -1}}); err == nil {
		t.Fatal("negative latency accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew("bad", nil)
}

func TestMsgTimeEquation4(t *testing.T) {
	m := MustNew("test", []Segment{
		{MinBytes: 0, Latency: 10e-6, PerByte: 1e-8},
		{MinBytes: 100, Latency: 20e-6, PerByte: 1e-9},
	})
	// In the first segment: L + S*TB.
	if got, want := m.MsgTime(50), 10e-6+50*1e-8; math.Abs(got-want) > 1e-15 {
		t.Fatalf("MsgTime(50) = %v, want %v", got, want)
	}
	// Exactly at the boundary the second segment applies.
	if got, want := m.MsgTime(100), 20e-6+100*1e-9; math.Abs(got-want) > 1e-15 {
		t.Fatalf("MsgTime(100) = %v, want %v", got, want)
	}
	// Negative sizes are clamped to zero.
	if got := m.MsgTime(-5); got != 10e-6 {
		t.Fatalf("MsgTime(-5) = %v, want latency only", got)
	}
}

func TestLatencyAndBandwidth(t *testing.T) {
	m := QsNetI()
	if m.Latency(8) <= 0 {
		t.Fatal("latency must be positive")
	}
	if m.Bandwidth(0) != 0 {
		t.Fatal("bandwidth of empty message should be 0")
	}
	// Effective bandwidth should approach, but not exceed, the asymptotic rate.
	bw := m.Bandwidth(10 << 20)
	if bw < 250e6 || bw > 320e6 {
		t.Fatalf("10 MiB effective bandwidth = %.0f B/s, want ~305 MB/s", bw)
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct{ p, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{128, 7}, {512, 9}, {1024, 10},
	}
	for _, c := range cases {
		if got := TreeDepth(c.p); got != c.want {
			t.Errorf("TreeDepth(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestCollectiveEquations(t *testing.T) {
	m := MustNew("flat", []Segment{{MinBytes: 0, Latency: 1e-6}})
	const p = 512 // log2 = 9
	if got, want := m.Bcast(p, 4), 9e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("Bcast = %v, want %v", got, want)
	}
	if got, want := m.Allreduce(p, 8), 18e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("Allreduce = %v, want %v", got, want)
	}
	if got, want := m.Gather(p, 32), 9e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("Gather = %v, want %v", got, want)
	}
	// Single processor: all collectives are free.
	if m.Bcast(1, 8) != 0 || m.Allreduce(1, 8) != 0 || m.Gather(1, 8) != 0 {
		t.Fatal("collectives on 1 PE should cost 0")
	}
}

func TestPresetsAreOrdered(t *testing.T) {
	// For an 8-byte message: InfiniBand < QsNet < GigE latency ordering.
	ib, qs, ge := Infiniband(), QsNetI(), GigE()
	if !(ib.MsgTime(8) < qs.MsgTime(8) && qs.MsgTime(8) < ge.MsgTime(8)) {
		t.Fatalf("unexpected latency ordering: ib=%v qs=%v ge=%v",
			ib.MsgTime(8), qs.MsgTime(8), ge.MsgTime(8))
	}
	if Zero().MsgTime(1<<20) != 0 {
		t.Fatal("zero model should be free")
	}
}

func TestSegmentsCopy(t *testing.T) {
	m := QsNetI()
	segs := m.Segments()
	segs[0].Latency = 999
	if m.Latency(0) == 999 {
		t.Fatal("Segments returned internal storage")
	}
	if m.Name() == "" {
		t.Fatal("name missing")
	}
}

// Property: MsgTime is monotonically non-decreasing in S for all presets.
// This is the property the paper's piecewise model relies on when it argues
// that splitting a boundary exchange into per-material messages costs more.
func TestMsgTimeMonotoneProperty(t *testing.T) {
	models := []*Model{QsNetI(), GigE(), Infiniband()}
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		for _, m := range models {
			if m.MsgTime(x) > m.MsgTime(y)+1e-18 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: collectives scale with ceil(log2 P): doubling P adds at most one
// more tree level's cost.
func TestCollectiveLogScalingProperty(t *testing.T) {
	m := QsNetI()
	f := func(pRaw uint8) bool {
		p := int(pRaw)%1000 + 2
		t1 := m.Bcast(p, 8)
		t2 := m.Bcast(2*p, 8)
		diff := t2 - t1
		// Doubling P adds exactly one level (within rounding of ceil).
		return diff >= 0 && diff <= 2*m.MsgTime(8)+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
