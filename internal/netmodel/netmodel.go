// Package netmodel implements the communication-time models from Section 4
// of the Krak paper.
//
// Point-to-point message time follows Equation (4):
//
//	Tmsg(S) = L(S) + S * TB(S)
//
// where both the start-up cost L and the per-byte cost TB are piecewise
// functions of the message size S in bytes. Collective operations follow
// Equations (8)-(10): messages traverse a binary tree, so a one-to-all
// operation costs log2(P) message times and a synchronizing all-reduce costs
// 2*log2(P) (fan-in plus fan-out).
//
// The package also carries machine presets. The paper's validation platform
// was a 256-node AlphaServer ES45 cluster with a Quadrics QsNet-I fat-tree
// interconnect; QsNetI approximates that network's MPI-level behaviour
// (few-microsecond latency, ~300 MB/s asymptotic bandwidth, an eager/
// rendezvous switch around 4 KiB).
package netmodel

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Segment describes message-time coefficients valid for sizes >= MinBytes
// (until the next segment takes over).
type Segment struct {
	MinBytes int     // first message size (bytes) this segment applies to
	Latency  float64 // L(S): start-up cost in seconds
	PerByte  float64 // TB(S): seconds per byte
}

// Model is a piecewise-linear point-to-point message-time model plus the
// collective patterns built on it. The zero value is unusable; construct
// with New or a preset.
type Model struct {
	name     string
	segments []Segment // sorted by MinBytes, first entry must be MinBytes=0
	topo     Topology  // zero value = flat (the paper's collectives)
}

// New validates and builds a model from segments. Segments may be given in
// any order; one of them must start at 0 bytes.
func New(name string, segments []Segment) (*Model, error) {
	if len(segments) == 0 {
		return nil, errors.New("netmodel: no segments")
	}
	segs := make([]Segment, len(segments))
	copy(segs, segments)
	sort.Slice(segs, func(i, j int) bool { return segs[i].MinBytes < segs[j].MinBytes })
	if segs[0].MinBytes != 0 {
		return nil, fmt.Errorf("netmodel: first segment must start at 0 bytes, got %d", segs[0].MinBytes)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].MinBytes == segs[i-1].MinBytes {
			return nil, fmt.Errorf("netmodel: duplicate segment boundary at %d bytes", segs[i].MinBytes)
		}
	}
	for _, s := range segs {
		if s.Latency < 0 || s.PerByte < 0 {
			return nil, fmt.Errorf("netmodel: negative cost in segment starting at %d bytes", s.MinBytes)
		}
	}
	return &Model{name: name, segments: segs}, nil
}

// MustNew is New but panics on error; for statically known presets.
func MustNew(name string, segments []Segment) *Model {
	m, err := New(name, segments)
	if err != nil {
		panic(err)
	}
	return m
}

// Name returns the human-readable model name.
func (m *Model) Name() string { return m.name }

// segmentFor returns the segment applicable to a message of size bytes.
func (m *Model) segmentFor(bytes int) Segment {
	if bytes < 0 {
		bytes = 0
	}
	i := sort.Search(len(m.segments), func(i int) bool { return m.segments[i].MinBytes > bytes })
	return m.segments[i-1]
}

// MsgTime returns Tmsg(S) in seconds per Equation (4).
func (m *Model) MsgTime(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	s := m.segmentFor(bytes)
	return s.Latency + float64(bytes)*s.PerByte
}

// Latency returns L(S) alone, in seconds.
func (m *Model) Latency(bytes int) float64 { return m.segmentFor(bytes).Latency }

// Bandwidth returns the effective bandwidth S/Tmsg(S) in bytes/second.
func (m *Model) Bandwidth(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / m.MsgTime(bytes)
}

// TreeDepth returns ceil(log2(p)), the number of binary-tree levels used by
// the collective models; 0 for p <= 1.
func TreeDepth(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}

// Bcast returns the modeled time for a single one-to-all broadcast of the
// given payload over P processors: log2(P) * Tmsg(S), with each stage
// carrying the topology's distance and contention terms when the model has
// a non-flat Topology (see topology.go).
func (m *Model) Bcast(p, bytes int) float64 {
	return float64(TreeDepth(p)) * m.stageTime(p, bytes)
}

// Allreduce returns the modeled time for a synchronizing all-reduce of the
// given payload: fan-in plus fan-out, 2 * log2(P) * Tmsg(S), stages
// topology-adjusted like Bcast.
func (m *Model) Allreduce(p, bytes int) float64 {
	return 2 * float64(TreeDepth(p)) * m.stageTime(p, bytes)
}

// Gather returns the modeled time for an all-to-one gather per Equation (10):
// log2(P) * Tmsg(S), stages topology-adjusted like Bcast. (The paper models
// the gather as a fan-in of fixed-size messages.)
func (m *Model) Gather(p, bytes int) float64 {
	return float64(TreeDepth(p)) * m.stageTime(p, bytes)
}

// Segments returns a copy of the model's segments (sorted by MinBytes).
func (m *Model) Segments() []Segment {
	out := make([]Segment, len(m.segments))
	copy(out, m.segments)
	return out
}

// QsNetI models the paper's validation network: Quadrics QsNet-I (Elan3) as
// seen by MPI on AlphaServer ES45 nodes. Small messages ride an eager path
// with ~4.7 us latency; large messages switch to rendezvous with higher
// start-up but ~305 MB/s sustained bandwidth.
func QsNetI() *Model {
	const mb = 1e6
	return MustNew("QsNet-I (Elan3) / ES45", []Segment{
		{MinBytes: 0, Latency: 5.2e-6, PerByte: 1 / (190 * mb)},
		{MinBytes: 64, Latency: 5.6e-6, PerByte: 1 / (230 * mb)},
		{MinBytes: 512, Latency: 6.2e-6, PerByte: 1 / (280 * mb)},
		{MinBytes: 4096, Latency: 10.0e-6, PerByte: 1 / (305 * mb)},
		{MinBytes: 65536, Latency: 14.5e-6, PerByte: 1 / (310 * mb)},
	})
}

// GigE models a commodity gigabit-Ethernet cluster of the same era: ~45 us
// MPI latency and ~110 MB/s sustained bandwidth. Used by what-if studies.
func GigE() *Model {
	const mb = 1e6
	return MustNew("Gigabit Ethernet", []Segment{
		{MinBytes: 0, Latency: 45e-6, PerByte: 1 / (70 * mb)},
		{MinBytes: 1024, Latency: 50e-6, PerByte: 1 / (100 * mb)},
		{MinBytes: 16384, Latency: 65e-6, PerByte: 1 / (110 * mb)},
	})
}

// Infiniband models a later-generation low-latency interconnect (~1.3 us,
// ~900 MB/s): the "what would a faster network buy" preset.
func Infiniband() *Model {
	const mb = 1e6
	return MustNew("InfiniBand DDR", []Segment{
		{MinBytes: 0, Latency: 1.3e-6, PerByte: 1 / (700 * mb)},
		{MinBytes: 2048, Latency: 2.0e-6, PerByte: 1 / (900 * mb)},
	})
}

// Zero returns a model in which communication is free. Useful for isolating
// computation in tests and ablations.
func Zero() *Model {
	return MustNew("zero-cost network", []Segment{{MinBytes: 0}})
}
