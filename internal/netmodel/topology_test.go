package netmodel

import (
	"math"
	"testing"

	"krak/internal/stats"
)

// topologies returns a representative non-flat topology set plus the flat
// baseline, all with a visible hop latency so distance terms matter.
func testTopologies() []Topology {
	return []Topology{
		{}, // flat
		FatTree(8, 0.5e-6),
		FatTree(36, 0.2e-6),
		Dragonfly(4, 0.3e-6),
		Dragonfly(16, 0.3e-6),
		Torus3D(0, 0, 0, 0.5e-6),
		Torus3D(8, 8, 8, 0.5e-6),
	}
}

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{Kind: TopoFatTree, Radix: 2},
		{Kind: TopoFatTree, Radix: 2048},
		{Kind: TopoDragonfly, GroupSize: 1},
		{Kind: TopoTorus3D, DimX: 4, DimY: 0, DimZ: 4},
		{Kind: TopoTorus3D, DimX: 4, DimY: 4, DimZ: 5000},
		{Kind: "hypercube"},
		{Kind: TopoFlat, HopLatency: -1},
		{Kind: TopoFatTree, Radix: 36, HopLatency: math.NaN()},
	}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted an invalid topology", tp)
		}
	}
	for _, tp := range testTopologies() {
		if err := tp.Validate(); err != nil {
			t.Errorf("Validate(%+v) rejected a valid topology: %v", tp, err)
		}
	}
}

// TestTopologyReducesToFlatAtSmallP pins the flat reduction: while the
// machine fits one switch (fat-tree), one group (dragonfly), or a
// sub-bisection box (torus), every collective must equal the paper's flat
// model exactly.
func TestTopologyReducesToFlatAtSmallP(t *testing.T) {
	flat := QsNetI()
	cases := []struct {
		topo Topology
		maxP int // largest p that must still be flat
	}{
		{FatTree(8, 1e-6), 4},       // one radix-8 edge switch serves 4 nodes
		{FatTree(36, 1e-6), 18},     // radix 36: 18 nodes per switch
		{Dragonfly(16, 1e-6), 16},   // one group
		{Torus3D(0, 0, 0, 1e-6), 2}, // 2x1x1 box: avg distance still <= 1 hop
	}
	for _, c := range cases {
		m := QsNetI().MustTopology(c.topo)
		for p := 1; p <= c.maxP; p++ {
			for _, bytes := range []int{0, 64, 4096, 1 << 20} {
				if got, want := m.Bcast(p, bytes), flat.Bcast(p, bytes); got != want {
					t.Errorf("%s: Bcast(p=%d, %dB) = %g, want flat %g", c.topo, p, bytes, got, want)
				}
				if got, want := m.Allreduce(p, bytes), flat.Allreduce(p, bytes); got != want {
					t.Errorf("%s: Allreduce(p=%d, %dB) = %g, want flat %g", c.topo, p, bytes, got, want)
				}
				if got, want := m.Gather(p, bytes), flat.Gather(p, bytes); got != want {
					t.Errorf("%s: Gather(p=%d, %dB) = %g, want flat %g", c.topo, p, bytes, got, want)
				}
			}
		}
	}
}

// TestTopologyFlatModelUnchanged pins that a model without an explicit
// topology and one with the explicit flat topology agree everywhere —
// the regression guard for the paper's goldens.
func TestTopologyFlatModelUnchanged(t *testing.T) {
	base := QsNetI()
	flat := QsNetI().MustTopology(Topology{Kind: TopoFlat})
	for _, p := range []int{1, 2, 7, 64, 1024} {
		for _, b := range []int{0, 100, 65536} {
			if base.Bcast(p, b) != flat.Bcast(p, b) ||
				base.Allreduce(p, b) != flat.Allreduce(p, b) ||
				base.Gather(p, b) != flat.Gather(p, b) {
				t.Fatalf("explicit flat topology drifted from the implicit one at p=%d bytes=%d", p, b)
			}
		}
	}
}

// TestTopologyHopsCongestionMonotone pins the structural guarantees the
// collective properties rest on: Hops and Congestion are >= 1 and
// non-decreasing in p for every topology.
func TestTopologyHopsCongestionMonotone(t *testing.T) {
	for _, tp := range testTopologies() {
		prevH, prevC := 0.0, 0.0
		for p := 1; p <= 4096; p++ {
			h, c := tp.Hops(p), tp.Congestion(p)
			if h < 1 || c < 1 {
				t.Fatalf("%s: Hops=%g Congestion=%g < 1 at p=%d", tp, h, c, p)
			}
			if h < prevH || c < prevC {
				t.Fatalf("%s: non-monotone at p=%d: Hops %g -> %g, Congestion %g -> %g",
					tp, p, prevH, h, prevC, c)
			}
			prevH, prevC = h, c
		}
	}
}

// TestTopologyCollectivesMonotone sweeps p and bytes over every preset
// network x topology pair: collective times must be non-decreasing in
// both arguments. (Byte-monotonicity relies on the presets' ordered
// segment tables, pinned separately by TestPresetsAreOrdered.)
func TestTopologyCollectivesMonotone(t *testing.T) {
	nets := []*Model{QsNetI(), GigE(), Infiniband()}
	ps := []int{1, 2, 3, 4, 8, 16, 17, 32, 64, 128, 256, 512, 1024, 4096}
	sizes := []int{0, 1, 63, 64, 512, 4095, 4096, 65536, 1 << 20}
	for _, net := range nets {
		for _, tp := range testTopologies() {
			m := net.MustTopology(tp)
			for _, bytes := range sizes {
				prev := -1.0
				for _, p := range ps {
					v := m.Allreduce(p, bytes)
					if v < prev {
						t.Fatalf("%s/%s: Allreduce non-monotone in p at p=%d bytes=%d: %g < %g",
							net.Name(), tp, p, bytes, v, prev)
					}
					prev = v
				}
			}
			for _, p := range ps {
				prev := -1.0
				for _, bytes := range sizes {
					v := m.Bcast(p, bytes)
					if v < prev {
						t.Fatalf("%s/%s: Bcast non-monotone in bytes at p=%d bytes=%d: %g < %g",
							net.Name(), tp, p, bytes, v, prev)
					}
					prev = v
				}
			}
		}
	}
}

// TestTopologyAllreduceLowerBounds pins the Equation (9) structure under
// every topology: an all-reduce is a fan-in plus a fan-out, so it costs
// exactly twice a broadcast and never less than one.
func TestTopologyAllreduceLowerBounds(t *testing.T) {
	for _, tp := range testTopologies() {
		m := Infiniband().MustTopology(tp)
		for _, p := range []int{1, 2, 5, 64, 1000} {
			for _, bytes := range []int{0, 8, 9000, 1 << 18} {
				b, a, g := m.Bcast(p, bytes), m.Allreduce(p, bytes), m.Gather(p, bytes)
				if a < b {
					t.Fatalf("%s: Allreduce %g < Bcast %g at p=%d bytes=%d", tp, a, b, p, bytes)
				}
				if a != 2*b {
					t.Fatalf("%s: Allreduce %g != 2*Bcast %g at p=%d bytes=%d", tp, a, b, p, bytes)
				}
				if g != b {
					t.Fatalf("%s: Gather %g != Bcast %g at p=%d bytes=%d", tp, g, b, p, bytes)
				}
			}
		}
	}
}

// TestTopologyRandomSegmentsNeverNegative drives every topology over
// seeded-random piecewise segment tables: whatever the (valid) table,
// collective times are finite and non-negative for all p and sizes.
func TestTopologyRandomSegmentsNeverNegative(t *testing.T) {
	rng := stats.NewSplitMix64(0xC0FFEE)
	for trial := 0; trial < 200; trial++ {
		nseg := 1 + int(rng.Next()%6)
		segs := make([]Segment, 0, nseg)
		min := 0
		for i := 0; i < nseg; i++ {
			segs = append(segs, Segment{
				MinBytes: min,
				Latency:  rng.Float64() * 1e-3,
				PerByte:  rng.Float64() * 1e-6,
			})
			min += 1 + int(rng.Next()%100000)
		}
		net, err := New("random", segs)
		if err != nil {
			t.Fatalf("trial %d: random table rejected: %v", trial, err)
		}
		topo := testTopologies()[int(rng.Next()%uint64(len(testTopologies())))]
		m := net.MustTopology(topo)
		for _, p := range []int{1, 2, int(rng.Next()%1024) + 1, 4096} {
			for _, bytes := range []int{-5, 0, int(rng.Next() % (1 << 22)), 1 << 26} {
				for name, v := range map[string]float64{
					"Bcast":     m.Bcast(p, bytes),
					"Allreduce": m.Allreduce(p, bytes),
					"Gather":    m.Gather(p, bytes),
				} {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						t.Fatalf("trial %d %s/%s(p=%d, bytes=%d) = %g", trial, topo, name, p, bytes, v)
					}
				}
			}
		}
	}
}

// TestTopologyDistanceAndContentionBite sanity-checks that the terms do
// something: at scale, a torus collective is strictly slower than flat,
// a dragonfly sits between flat and torus contention-wise, and a
// full-bisection fat-tree adds only latency (byte-cost unchanged).
func TestTopologyDistanceAndContentionBite(t *testing.T) {
	flat := Infiniband()
	ft := Infiniband().MustTopology(FatTree(36, 0.2e-6))
	torus := Infiniband().MustTopology(Torus3D(0, 0, 0, 0.2e-6))
	const p, bytes = 1024, 1 << 20
	if !(ft.Bcast(p, bytes) > flat.Bcast(p, bytes)) {
		t.Errorf("fat-tree at p=%d should pay hop latency over flat", p)
	}
	if !(torus.Bcast(p, bytes) > ft.Bcast(p, bytes)) {
		t.Errorf("torus at p=%d should pay bisection contention over fat-tree", p)
	}
	// Fat-tree congestion is exactly 1: large-message slope matches flat.
	dFlat := flat.Bcast(p, 2*bytes) - flat.Bcast(p, bytes)
	dFT := ft.Bcast(p, 2*bytes) - ft.Bcast(p, bytes)
	if math.Abs(dFlat-dFT) > 1e-12 {
		t.Errorf("fat-tree per-byte slope %g drifted from flat %g", dFT, dFlat)
	}
}
