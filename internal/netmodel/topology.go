package netmodel

import (
	"fmt"
	"math"
)

// This file refines the paper's flat TreeDepth-based collective models
// (Equations (8)-(10)) with physical-topology terms. The paper's single
// validation platform made the flat model exact enough; comparing machine
// generations (fat-tree Infiniband clusters, dragonfly and 3D-torus
// exascale-era systems) needs the two effects a flat tree hides:
//
//   - distance: a tree-stage message traverses Hops(p) switch hops, each
//     beyond the first adding HopLatency to the stage's start-up cost;
//   - contention: payload crossing the network bisection contends for its
//     links, inflating the per-byte cost by Congestion(p) >= 1.
//
// One tree stage of a collective over p processors then costs
//
//	Tstage(S, p) = (L(S) + S * TB(S)) * Congestion(p) + (Hops(p)-1)*Lhop
//
// and the collectives keep their Equation (8)-(10) shapes on top of it:
// Bcast = log2(P)*Tstage, Allreduce = 2*log2(P)*Tstage, Gather =
// log2(P)*Tstage. The flat topology has Hops = Congestion = 1, so a model
// without an explicit topology reproduces the paper's collectives exactly,
// and every topology degrades to flat at small p (one switch, one group,
// or a sub-bisection payload).
//
// Hops and Congestion are non-decreasing in p by construction; the
// property suite in topology_test.go pins that, the flat-at-small-p
// reduction, and the Allreduce >= Bcast lower bound.

// TopologyKind names a physical interconnect topology.
type TopologyKind string

// The supported topologies.
const (
	// TopoFlat is the paper's model: every stage is one full-latency
	// message, no distance or bisection terms. The zero Topology value.
	TopoFlat TopologyKind = "flat"

	// TopoFatTree is a full-bisection folded Clos built from Radix-port
	// switches: distance grows with tier count, contention stays 1.
	TopoFatTree TopologyKind = "fat-tree"

	// TopoDragonfly groups GroupSize nodes behind local switches joined by
	// a global all-to-all: minimal routes are local-global-local, and
	// tapered global links add mild contention once traffic leaves the
	// group.
	TopoDragonfly TopologyKind = "dragonfly"

	// TopoTorus3D is a 3D torus: distance grows with the cube root of the
	// machine and the bisection grows only as p^(2/3), so contention
	// climbs at scale.
	TopoTorus3D TopologyKind = "torus"
)

// Topology describes the physical shape of the interconnect. The zero
// value is the flat (paper) topology. Construct non-flat topologies with
// the FatTree/Dragonfly/Torus3D helpers or validate literals with
// Validate.
type Topology struct {
	Kind TopologyKind

	// HopLatency is the extra start-up cost, in seconds, of each switch
	// hop beyond the first on a stage's route.
	HopLatency float64

	// Radix is the fat-tree switch port count; each edge switch serves
	// Radix/2 nodes.
	Radix int

	// GroupSize is the dragonfly group width in nodes.
	GroupSize int

	// Dims are the torus dimensions. All zero means dims are derived from
	// p as a near-cubic box; fixed dims cap the distance term at the
	// machine's physical diameter while contention keeps growing with p.
	DimX, DimY, DimZ int
}

// FatTree returns a full-bisection fat-tree topology of radix-port
// switches.
func FatTree(radix int, hopLatency float64) Topology {
	return Topology{Kind: TopoFatTree, Radix: radix, HopLatency: hopLatency}
}

// Dragonfly returns a dragonfly topology with groupSize-node groups.
func Dragonfly(groupSize int, hopLatency float64) Topology {
	return Topology{Kind: TopoDragonfly, GroupSize: groupSize, HopLatency: hopLatency}
}

// Torus3D returns a 3D-torus topology. Zero dims derive a near-cubic box
// from the processor count.
func Torus3D(x, y, z int, hopLatency float64) Topology {
	return Topology{Kind: TopoTorus3D, DimX: x, DimY: y, DimZ: z, HopLatency: hopLatency}
}

// IsFlat reports whether the topology is the paper's flat model.
func (t Topology) IsFlat() bool { return t.Kind == "" || t.Kind == TopoFlat }

// Validate checks the topology's parameters.
func (t Topology) Validate() error {
	if math.IsNaN(t.HopLatency) || t.HopLatency < 0 || t.HopLatency > 1 {
		return fmt.Errorf("netmodel: hop latency %g out of range [0, 1] seconds", t.HopLatency)
	}
	switch t.Kind {
	case "", TopoFlat:
		return nil
	case TopoFatTree:
		if t.Radix < 4 || t.Radix > 1024 {
			return fmt.Errorf("netmodel: fat-tree radix %d out of range [4, 1024]", t.Radix)
		}
	case TopoDragonfly:
		if t.GroupSize < 2 || t.GroupSize > 1<<20 {
			return fmt.Errorf("netmodel: dragonfly group size %d out of range [2, 2^20]", t.GroupSize)
		}
	case TopoTorus3D:
		fixed := t.DimX != 0 || t.DimY != 0 || t.DimZ != 0
		if fixed && (t.DimX < 1 || t.DimY < 1 || t.DimZ < 1 ||
			t.DimX > 1<<10 || t.DimY > 1<<10 || t.DimZ > 1<<10) {
			return fmt.Errorf("netmodel: torus dims %dx%dx%d must all be in [1, 1024] (or all 0 to derive from p)",
				t.DimX, t.DimY, t.DimZ)
		}
	default:
		return fmt.Errorf("netmodel: unknown topology kind %q", t.Kind)
	}
	return nil
}

// String renders the topology for display ("fat-tree radix 36", ...).
func (t Topology) String() string {
	switch t.Kind {
	case "", TopoFlat:
		return "flat"
	case TopoFatTree:
		return fmt.Sprintf("fat-tree radix %d", t.Radix)
	case TopoDragonfly:
		return fmt.Sprintf("dragonfly groups of %d", t.GroupSize)
	case TopoTorus3D:
		if t.DimX != 0 || t.DimY != 0 || t.DimZ != 0 {
			return fmt.Sprintf("%dx%dx%d torus", t.DimX, t.DimY, t.DimZ)
		}
		return "torus (derived dims)"
	}
	return string(t.Kind)
}

// Hops returns the average switch-hop count of one tree-stage message at
// scale p: >= 1, non-decreasing in p, and exactly 1 when the machine fits
// a single switch or group (the flat reduction).
func (t Topology) Hops(p int) float64 {
	if p < 1 {
		p = 1
	}
	switch t.Kind {
	case TopoFatTree:
		// Tiers multiply reach by Radix/2; a route climbs to the common
		// ancestor and back down: 2*tiers - 1 switch hops.
		down := t.Radix / 2
		tiers := 1
		reach := down
		for reach < p && tiers < 64 {
			reach *= down
			tiers++
		}
		return float64(2*tiers - 1)
	case TopoDragonfly:
		// G groups: 1/G of pairs stay local (1 hop), the rest take the
		// minimal local-global-local route (3 hops).
		g := ceilDiv(p, t.GroupSize)
		return 3 - 2/float64(g)
	case TopoTorus3D:
		// Average per-dimension distance on a ring of n nodes is n/4, so a
		// route across an nx x ny x nz torus averages (nx+ny+nz)/4 hops.
		// Fixed dims give the machine's physical diameter; derived dims use
		// the smooth near-cubic limit 3*cbrt(p)/4 (a discrete ceil-built box
		// re-shapes as p grows and is not monotone in p).
		var h float64
		if t.DimX != 0 {
			h = float64(t.DimX+t.DimY+t.DimZ) / 4
		} else {
			h = 0.75 * math.Cbrt(float64(p))
		}
		if h < 1 {
			return 1
		}
		return h
	}
	return 1
}

// Congestion returns the bisection-contention multiplier on the per-byte
// cost at scale p: >= 1 and non-decreasing in p. Full-bisection topologies
// (flat, fat-tree) stay at 1.
func (t Topology) Congestion(p int) float64 {
	if p < 1 {
		p = 1
	}
	switch t.Kind {
	case TopoDragonfly:
		// Tapered global links: contention approaches 2x as the group
		// count grows, 1 inside a single group.
		g := ceilDiv(p, t.GroupSize)
		return 2 - 1/float64(g)
	case TopoTorus3D:
		// p/2 endpoints worth of traffic cross a bisection of 2*a*b
		// wraparound links, where a and b span the cut plane across the
		// longest dimension. Derived dims use the smooth cubic limit
		// a*b = p^(2/3), giving contention cbrt(p)/4.
		var c float64
		if t.DimX != 0 {
			a, b := cutPlane(t.DimX, t.DimY, t.DimZ)
			c = float64(p) / (4 * float64(a) * float64(b))
		} else {
			c = math.Cbrt(float64(p)) / 4
		}
		if c < 1 {
			return 1
		}
		return c
	}
	return 1
}

// cutPlane returns the two smaller of the three dims — the plane of the
// bisection cut across the longest dimension.
func cutPlane(x, y, z int) (a, b int) {
	if x >= y && x >= z {
		return y, z
	}
	if y >= x && y >= z {
		return x, z
	}
	return x, y
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// WithTopology returns a copy of the model whose collectives account for
// the given physical topology; the point-to-point MsgTime (Equation (4))
// is unchanged — neighbor exchanges are modeled as near, collectives as
// machine-spanning. An invalid topology returns an error; a flat topology
// returns a model byte-identical in behaviour to the receiver.
func (m *Model) WithTopology(t Topology) (*Model, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	out := &Model{name: m.name, segments: m.segments, topo: t}
	return out, nil
}

// MustTopology is WithTopology but panics on error; for statically known
// presets.
func (m *Model) MustTopology(t Topology) *Model {
	out, err := m.WithTopology(t)
	if err != nil {
		panic(err)
	}
	return out
}

// Topology returns the model's topology (the zero value is flat).
func (m *Model) Topology() Topology { return m.topo }

// stageTime is the cost of one collective tree stage at scale p: the
// point-to-point message time plus the topology's distance and
// bisection-contention terms. With a flat topology it equals MsgTime.
func (m *Model) stageTime(p, bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	s := m.segmentFor(bytes)
	msg := s.Latency + float64(bytes)*s.PerByte
	if m.topo.IsFlat() {
		return msg
	}
	// Congestion scales the whole stage message time (service time under
	// load), not the per-byte term alone: the piecewise tables trade higher
	// start-up for better bandwidth across segment boundaries, and scaling
	// only the bandwidth term would break monotonicity in bytes there.
	return msg*m.topo.Congestion(p) + (m.topo.Hops(p)-1)*m.topo.HopLatency
}
