package gateway

import (
	"sync"
	"time"
)

// Breaker states, exported on krak_gateway_breaker_state{replica} (the
// gauge values are the iota order: 0 closed, 1 half-open, 2 open).
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is one replica's circuit breaker: closed (traffic flows)
// until threshold consecutive failures open it; open refuses traffic
// for the cooldown; after the cooldown a single half-open probe is let
// through — its success closes the breaker, its failure re-opens it for
// another cooldown. The point is to stop burning retry budget (and
// per-attempt latency) on a replica that has been failing continuously,
// while still noticing recovery without operator action.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int
	failures int       // consecutive, in closed state
	openedAt time.Time // when the breaker (re-)opened
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent through the breaker now.
// In the open state it transitions to half-open once the cooldown has
// passed — and allows exactly that one probe; further calls see
// half-open and are refused until the probe reports.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: the probe is in flight
		return false
	}
}

// success reports a completed request; it closes a half-open breaker
// and clears the consecutive-failure count.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// failure reports a failed request: the half-open probe failing re-opens
// immediately, a closed breaker opens at the threshold.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.state = breakerOpen
		b.openedAt = now
		return
	}
	b.failures++
	if b.state == breakerClosed && b.failures >= b.threshold {
		b.state = breakerOpen
		b.openedAt = now
	}
}

// value returns the state as the metric gauge value.
func (b *breaker) value() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
