// Package gateway is the multi-replica resilience layer in front of
// `krak serve`: a stdlib-only reverse proxy that makes a fleet of
// replicas drivable as one service. Requests route by consistent
// hashing of the serving tier's canonical request keys — the same
// content-derived keys the replicas' response LRUs use — so a given
// scenario always lands on the replica whose caches are already warm
// for it. Around that routing sit the failure-handling layers ROADMAP
// item 1's "millions of users" story needs: per-replica health probing,
// bounded retries with exponential backoff and full jitter on
// idempotent endpoints, per-replica circuit breakers, failover along
// the hash ring, and graceful degradation — when every replica for a
// key is unavailable the gateway serves from its own read-through disk
// cache, or evaluates the request locally in quick mode with a
// `Krak-Degraded` response header, before it will return a 503 (which
// then carries krak.ErrUnavailable semantics and a Retry-After).
//
// Everything observable is exported through the shared metrics
// registry: krak_gateway_retries_total, krak_gateway_breaker_state,
// krak_gateway_degraded_total{mode}, per-replica health gauges, and the
// standard request/latency families.
package gateway

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"krak/internal/artifacts"
	"krak/internal/engine"
	"krak/internal/faultinject"
	"krak/internal/metrics"
	"krak/internal/stats"
	"krak/pkg/krak"
)

// maxBody bounds proxied request bodies, mirroring the serving tier.
const maxBody = 1 << 20

// maxLocalMachines caps the machine cache behind local degraded
// evaluation — a last-resort tier needs far fewer than the replicas do.
const maxLocalMachines = 16

// responseKind namespaces rendered response bodies in the disk tier —
// the same namespace `krak serve` uses, so a gateway and a replica
// pointed at one directory share entries.
const responseKind = "response"

// replica is one backend: its URL, probe-maintained health, and
// breaker.
type replica struct {
	url     string
	healthy atomic.Bool
	probes  atomic.Int64
	breaker *breaker
}

// Gateway is the reverse proxy. Build with New, launch health probes
// with Start, serve it as an http.Handler, Close after the listener
// drains.
type Gateway struct {
	cfg      Config
	client   *http.Client
	faults   *faultinject.Injector
	replicas []*replica
	ring     *ring
	metrics  *metrics.Registry
	start    time.Time

	// disk is the gateway's own read-through response cache (nil
	// without a cache directory) — degradation tier one.
	disk *artifacts.DiskCache

	// artifacts/machines back local degraded evaluation — tier two.
	artifacts *krak.SharedArtifacts
	machines  engine.Cache[string, *krak.Machine]

	// rng drives retry jitter; guarded by rngMu (SplitMix64 is not
	// concurrency-safe).
	rngMu sync.Mutex
	rng   *stats.SplitMix64

	// probeWG tracks the health-probe goroutines Start launched.
	probeWG sync.WaitGroup

	requests       atomic.Int64
	retries        atomic.Int64
	failovers      atomic.Int64
	degradedCache  atomic.Int64
	degradedQuick  atomic.Int64
	unavailable    atomic.Int64
	proxiedByIndex []atomic.Int64
}

// New builds a Gateway. It spawns nothing — call Start to launch the
// health-probe loops. Faults, when non-nil, wraps the replica-facing
// transport in the fault-injection layer (chaos drills only; nil is a
// no-op).
func New(cfg Config, faults *faultinject.Injector) (*Gateway, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	var disk *artifacts.DiskCache
	sa := krak.NewSharedArtifacts()
	if cfg.CacheDir != "" {
		var err error
		if sa, err = krak.NewSharedArtifactsAt(cfg.CacheDir); err != nil {
			return nil, err
		}
		if disk, err = artifacts.OpenDiskCache(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	g := &Gateway{
		cfg:    cfg,
		faults: faults,
		client: &http.Client{
			Transport: faults.RoundTripper(http.DefaultTransport.(*http.Transport).Clone()),
		},
		ring:           newRing(cfg.Replicas, cfg.VirtualNodes),
		metrics:        metrics.NewRegistry(),
		start:          time.Now(),
		disk:           disk,
		artifacts:      sa,
		rng:            stats.NewSplitMix64(cfg.Seed),
		proxiedByIndex: make([]atomic.Int64, len(cfg.Replicas)),
	}
	for _, u := range cfg.Replicas {
		rep := &replica{url: strings.TrimRight(u, "/"), breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)}
		// Replicas start healthy: the first probe corrects within one
		// interval, and optimism just means one failed attempt that the
		// retry/failover path absorbs anyway.
		rep.healthy.Store(true)
		g.replicas = append(g.replicas, rep)
	}
	g.registerMetrics()
	return g, nil
}

// Start launches one health-probe loop per replica; the loops exit when
// ctx is canceled. Close waits for them, so cancel ctx before Close.
func (g *Gateway) Start(ctx context.Context) {
	for _, rep := range g.replicas {
		g.probeWG.Add(1)
		go g.probeLoop(ctx, rep)
	}
}

// Close waits for the probe loops to exit. Cancel the Start context
// first; Close does not interrupt anything on its own.
func (g *Gateway) Close() error {
	g.probeWG.Wait()
	return nil
}

// probeLoop probes one replica's /healthz on the configured cadence and
// publishes the verdict on rep.healthy. An unhealthy replica is skipped
// by routing entirely; the breaker handles the finer-grained case of a
// replica that answers probes but fails requests.
func (g *Gateway) probeLoop(ctx context.Context, rep *replica) {
	defer g.probeWG.Done()
	g.probe(ctx, rep)
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.probe(ctx, rep)
		}
	}
}

// probe runs one health check.
func (g *Gateway) probe(ctx context.Context, rep *replica) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := g.client.Do(req)
	ok := err == nil && resp.StatusCode == http.StatusOK
	if resp != nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	rep.healthy.Store(ok)
	rep.probes.Add(1)
}

// reqClass is the routing classification of one request: the ring key
// it hashes on, whether retry/failover across replicas is safe, and —
// for the two canonically-keyed endpoints — the response-cache key and
// a local evaluator for the degraded tiers.
type reqClass struct {
	key        string
	idempotent bool
	cacheKey   string
	local      func(ctx context.Context) ([]byte, error)
}

// classify derives a request's class from method, path, and body.
//
// Predict and simulate route by their canonical content key (the warm-
// cache routing the ring exists for) and degrade all the way to local
// evaluation. Sweep, compare, and calibrate are pure functions of their
// body, so they route by a body digest and are retried/failed over, but
// have no degraded tier (too heavy to run locally). Job endpoints all
// anchor to one ring key — the job store is per-replica state, so
// submissions and polls must land on the same backend; submission is
// the one non-idempotent POST there. Machine registry writes anchor to
// the fingerprint and are single-attempt. GETs are idempotent by
// definition and route by path.
func (g *Gateway) classify(r *http.Request, body []byte) reqClass {
	path := r.URL.Path
	if r.Method == http.MethodGet {
		if strings.HasPrefix(path, "/v1/jobs/") {
			return reqClass{key: "jobs", idempotent: true}
		}
		if strings.HasPrefix(path, "/v1/machines/") {
			return reqClass{key: "machines|" + strings.TrimPrefix(path, "/v1/machines/"), idempotent: true}
		}
		return reqClass{key: "GET " + path, idempotent: true}
	}
	digest := func() string {
		sum := sha256.Sum256(body)
		return fmt.Sprintf("%s|%x", path, sum[:8])
	}
	switch path {
	case "/v1/predict":
		var req krak.PredictRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return reqClass{key: digest(), idempotent: true}
		}
		ms, err := g.resolveSpec(req.Machine)
		if err != nil {
			return reqClass{key: digest(), idempotent: true}
		}
		req.Machine = ms
		key := req.CanonicalKey()
		return reqClass{key: key, idempotent: true, cacheKey: key,
			local: func(ctx context.Context) ([]byte, error) { return g.localPredict(req) }}
	case "/v1/simulate":
		var req krak.SimulateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return reqClass{key: digest(), idempotent: true}
		}
		ms, err := g.resolveSpec(req.Machine)
		if err != nil {
			return reqClass{key: digest(), idempotent: true}
		}
		req.Machine = ms
		key := req.CanonicalKey()
		return reqClass{key: key, idempotent: true, cacheKey: key,
			local: func(ctx context.Context) ([]byte, error) { return g.localSimulate(req) }}
	case "/v1/sweep", "/v1/compare", "/v1/calibrate":
		return reqClass{key: digest(), idempotent: true}
	case "/v1/jobs":
		return reqClass{key: "jobs", idempotent: false}
	case "/v1/calibrate/append":
		return reqClass{key: digest(), idempotent: false}
	}
	if strings.HasPrefix(path, "/v1/machines/") {
		return reqClass{key: "machines|" + strings.TrimPrefix(path, "/v1/machines/"), idempotent: false}
	}
	return reqClass{key: digest(), idempotent: false}
}

// resolveSpec mirrors the serving tier's: expand an embedded machine
// file, apply the gateway-level Quick, normalize. The gateway's view of
// a request must resolve exactly as the replicas' or the canonical keys
// would not match the bodies the replicas cache.
func (g *Gateway) resolveSpec(ms krak.MachineSpec) (krak.MachineSpec, error) {
	r, err := ms.Resolved()
	if err != nil {
		return ms, err
	}
	if g.cfg.Quick {
		r.Quick = true
	}
	return r.Normalized(), nil
}

// ServeHTTP routes one request: gateway-local observability endpoints,
// then the proxy path with retry, failover, and degradation.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		g.handleHealthz(w, r)
		return
	case r.Method == http.MethodGet && r.URL.Path == "/metrics":
		g.metrics.Handler(w, r)
		return
	}
	g.metrics.Instrument(endpointLabel(r.URL.Path), g.proxy)(w, r)
}

// endpointLabel collapses id-bearing paths onto their route patterns so
// the metric label space stays bounded.
func endpointLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/jobs/") && strings.HasSuffix(path, "/result"):
		return "/v1/jobs/{id}/result"
	case strings.HasPrefix(path, "/v1/jobs/"):
		return "/v1/jobs/{id}"
	case strings.HasPrefix(path, "/v1/machines/"):
		return "/v1/machines/{fingerprint}"
	case strings.HasPrefix(path, "/v1/experiments/"):
		return "/v1/experiments/{id}"
	}
	return path
}

// proxy is the routed path: pick the key's replica sequence, attempt
// with retry/backoff/failover as the class allows, then degrade.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("gateway: reading request body: %v", err))
		return
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("gateway: request body exceeds %d bytes", maxBody))
		return
	}
	class := g.classify(r, body)
	seq := g.ring.sequence(class.key)

	attempts := 0
	budget := 1
	if class.idempotent {
		budget = 1 + g.cfg.Retries
	}
	now := time.Now()
	for _, idx := range seq {
		if attempts >= budget {
			break
		}
		rep := g.replicas[idx]
		if !rep.healthy.Load() || !rep.breaker.allow(now) {
			continue
		}
		if attempts > 0 {
			g.retries.Add(1)
			g.failovers.Add(1)
			g.backoff(r.Context(), attempts)
		}
		attempts++
		resp, respBody, err := g.forward(r, rep, body)
		if err != nil || !acceptable(resp.StatusCode, respBody) {
			rep.breaker.failure(time.Now())
			now = time.Now()
			continue
		}
		rep.breaker.success()
		g.proxiedByIndex[idx].Add(1)
		if class.cacheKey != "" && resp.StatusCode == http.StatusOK {
			g.disk.Put(responseKind, class.cacheKey, respBody)
		}
		copyHeaders(w, resp)
		w.WriteHeader(resp.StatusCode)
		w.Write(respBody)
		return
	}
	g.degrade(w, r, class)
}

// acceptable reports whether a proxied response is servable. 5xx means
// the replica failed; a 2xx body that is not valid UTF-8 or not valid
// JSON means it was corrupted or truncated in flight (every serving-
// tier body is ASCII JSON) — both push the gateway to the next replica
// rather than relaying garbage.
func acceptable(status int, body []byte) bool {
	if status >= 500 {
		return false
	}
	if status < 300 && (!utf8.Valid(body) || !json.Valid(body)) {
		return false
	}
	return true
}

// forward sends one attempt to one replica, preserving method, path,
// query, and content type. The response body is fully read here so the
// caller can integrity-check before a byte reaches the client.
func (g *Gateway) forward(r *http.Request, rep *replica, body []byte) (*http.Response, []byte, error) {
	url := rep.url + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, nil, err
	}
	return resp, respBody, nil
}

// copyHeaders relays the response headers the serving tier's clients
// depend on; hop-by-hop noise stays behind.
func copyHeaders(w http.ResponseWriter, resp *http.Response) {
	for _, k := range []string{"Content-Type", "Location", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
}

// backoff sleeps the jittered exponential delay before retry n (n ≥ 1):
// uniform in [0, min(base·2ⁿ⁻¹, cap)) — full jitter, so a thundering
// herd of retries decorrelates. Respects ctx cancellation.
func (g *Gateway) backoff(ctx context.Context, attempt int) {
	d := g.cfg.RetryBase << (attempt - 1)
	if d > g.cfg.RetryCap || d <= 0 {
		d = g.cfg.RetryCap
	}
	g.rngMu.Lock()
	frac := float64(g.rng.Next()>>11) / (1 << 53)
	g.rngMu.Unlock()
	jittered := time.Duration(frac * float64(d))
	if jittered <= 0 {
		return
	}
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// degrade serves a request no replica could: the read-through disk tier
// first (a body some replica rendered earlier — byte-identical by
// construction), then local quick evaluation, then an honest 503
// carrying krak.ErrUnavailable and a Retry-After.
func (g *Gateway) degrade(w http.ResponseWriter, r *http.Request, class reqClass) {
	if class.cacheKey != "" {
		if body, ok := g.disk.Get(responseKind, class.cacheKey); ok {
			g.degradedCache.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Krak-Degraded", "cache")
			w.Write(body)
			return
		}
	}
	if class.local != nil && g.cfg.LocalFallback {
		body, err := class.local(r.Context())
		if err == nil {
			g.degradedQuick.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Krak-Degraded", "quick")
			w.Write(body)
			return
		}
	}
	g.unavailable.Add(1)
	writeError(w, http.StatusServiceUnavailable,
		fmt.Errorf("%w: no replica available for this request", krak.ErrUnavailable))
}

// localMachine builds (or reuses) the Machine for local degraded
// evaluation, under a tighter cap than the serving tier's — the
// fallback exists to keep known scenarios answerable, not to become a
// second fleet.
func (g *Gateway) localMachine(ms krak.MachineSpec) (*krak.Machine, error) {
	build := func() (*krak.Machine, error) {
		opts := append(ms.Options(), krak.WithSharedArtifacts(g.artifacts))
		return krak.NewMachine(opts...)
	}
	if _, err := build(); err != nil {
		return nil, err
	}
	m, err := g.machines.GetBounded(ms.Fingerprint(), maxLocalMachines, build)
	if errors.Is(err, engine.ErrCacheFull) {
		return nil, fmt.Errorf("%w: local fallback machine cache full", krak.ErrUnavailable)
	}
	return m, err
}

// localPredict evaluates a predict request in-process, rendering the
// body exactly as a replica would (same compute path, same rendering),
// so even the deepest degradation tier stays byte-compatible.
func (g *Gateway) localPredict(req krak.PredictRequest) ([]byte, error) {
	sc, err := req.Scenario()
	if err != nil {
		return nil, err
	}
	m, err := g.localMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		return nil, err
	}
	res, err := sess.Predict()
	if err != nil {
		return nil, err
	}
	return renderJSON(res)
}

// localSimulate is localPredict for the simulate endpoint.
func (g *Gateway) localSimulate(req krak.SimulateRequest) ([]byte, error) {
	sc, err := req.Scenario()
	if err != nil {
		return nil, err
	}
	m, err := g.localMachine(req.Machine)
	if err != nil {
		return nil, err
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		return nil, err
	}
	res, err := sess.Simulate()
	if err != nil {
		return nil, err
	}
	return renderJSON(res)
}

// handleHealthz renders the gateway's liveness view; like the serving
// tier's, every number is read back out of the metrics registry so
// /healthz and /metrics cannot disagree.
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	total := func(name string) int64 { return int64(g.metrics.Total(name)) }
	healthy := 0
	for _, rep := range g.replicas {
		if rep.healthy.Load() {
			healthy++
		}
	}
	writeJSON(w, map[string]any{
		"status":           "ok",
		"uptime_s":         time.Since(g.start).Seconds(),
		"replicas":         len(g.replicas),
		"replicas_healthy": healthy,
		"requests":         total("krak_gateway_requests_total"),
		"retries":          total("krak_gateway_retries_total"),
		"failovers":        total("krak_gateway_failovers_total"),
		"degraded":         total("krak_gateway_degraded_total"),
		"unavailable":      total("krak_gateway_unavailable_total"),
	})
}

// registerMetrics declares the gateway's metric families.
func (g *Gateway) registerMetrics() {
	reg := g.metrics
	counter := metrics.Counter
	reg.AddFamily("krak_http_requests_total", "counter",
		"Proxied requests by endpoint and status code.", reg.CollectRequests)
	reg.AddFamily("krak_http_request_seconds", "histogram",
		"Proxied request latency by endpoint.", reg.CollectLatency)
	reg.AddScalar("krak_gateway_requests_total", "counter",
		"Requests received by the gateway (including observability endpoints).", counter(&g.requests))
	reg.AddScalar("krak_gateway_retries_total", "counter",
		"Retry attempts beyond each request's first.", counter(&g.retries))
	reg.AddScalar("krak_gateway_failovers_total", "counter",
		"Attempts that moved to a different replica on the ring.", counter(&g.failovers))
	reg.AddScalar("krak_gateway_unavailable_total", "counter",
		"Requests no replica and no degraded tier could serve (503).", counter(&g.unavailable))
	reg.AddLabeled("krak_gateway_degraded_total", "counter",
		"Requests served by a degraded tier instead of a replica.", map[string]func() float64{
			"cache": counter(&g.degradedCache),
			"quick": counter(&g.degradedQuick),
		}, "mode")
	breakerSeries := make(map[string]func() float64, len(g.replicas))
	healthSeries := make(map[string]func() float64, len(g.replicas))
	proxiedSeries := make(map[string]func() float64, len(g.replicas))
	for i, rep := range g.replicas {
		rep := rep
		i := i
		breakerSeries[rep.url] = func() float64 { return float64(rep.breaker.value()) }
		healthSeries[rep.url] = func() float64 {
			if rep.healthy.Load() {
				return 1
			}
			return 0
		}
		proxiedSeries[rep.url] = func() float64 { return float64(g.proxiedByIndex[i].Load()) }
	}
	reg.AddLabeled("krak_gateway_breaker_state", "gauge",
		"Circuit-breaker state per replica (0 closed, 1 half-open, 2 open).", breakerSeries, "replica")
	reg.AddLabeled("krak_gateway_replica_healthy", "gauge",
		"Last health-probe verdict per replica (1 healthy).", healthSeries, "replica")
	reg.AddLabeled("krak_gateway_replica_proxied_total", "counter",
		"Requests served by each replica.", proxiedSeries, "replica")
	if g.faults != nil {
		reg.AddLabeled("krak_fault_injected_total", "counter",
			"Faults injected into the replica-facing client by the armed chaos plan, by kind.",
			g.faults.MetricSeries(), "kind")
	}
}

// writeError emits the serving tier's JSON error envelope; transient
// refusals carry a Retry-After, exactly as replicas' do.
func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON renders v CLI-identically (two-space indent, trailing
// newline) and writes it.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := renderJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// renderJSON produces the exact bytes the CLI and the replicas emit.
func renderJSON(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}
