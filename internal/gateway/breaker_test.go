package gateway

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Now()
	b := newBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		b.failure(now)
		if !b.allow(now) {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.failure(now)
	if b.allow(now) {
		t.Fatal("breaker still closed at the threshold")
	}
	if b.value() != breakerOpen {
		t.Fatalf("state %d, want open", b.value())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	now := time.Now()
	b := newBreaker(3, time.Minute)
	b.failure(now)
	b.failure(now)
	b.success()
	b.failure(now)
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Now()
	b := newBreaker(1, 100*time.Millisecond)
	b.failure(now)
	if b.allow(now) {
		t.Fatal("open breaker allowed traffic inside the cooldown")
	}
	later := now.Add(150 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("cooldown elapsed but no half-open probe allowed")
	}
	if b.value() != breakerHalfOpen {
		t.Fatalf("state %d, want half-open", b.value())
	}
	// Only one probe until it reports.
	if b.allow(later) {
		t.Fatal("second request allowed through a half-open breaker")
	}
	b.success()
	if b.value() != breakerClosed || !b.allow(later) {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Now()
	b := newBreaker(1, 100*time.Millisecond)
	b.failure(now)
	later := now.Add(150 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("no half-open probe")
	}
	b.failure(later)
	if b.value() != breakerOpen {
		t.Fatalf("state %d after failed probe, want open", b.value())
	}
	if b.allow(later.Add(50 * time.Millisecond)) {
		t.Fatal("re-opened breaker allowed traffic before a fresh cooldown")
	}
	if !b.allow(later.Add(150 * time.Millisecond)) {
		t.Fatal("re-opened breaker never recovered")
	}
}
