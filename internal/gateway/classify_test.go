package gateway

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"krak/pkg/krak"
)

// TestClassify pins the routing table: which ring key each endpoint
// hashes on, which methods are safe to retry across replicas, and
// which requests carry a canonical cache key with a local evaluator.
func TestClassify(t *testing.T) {
	g, err := New(testConfig("http://127.0.0.1:1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	classify := func(method, path string, body []byte) reqClass {
		r := httptest.NewRequest(method, path, nil)
		return g.classify(r, body)
	}

	pb := predictBody(8)
	var preq krak.PredictRequest
	if err := json.Unmarshal(pb, &preq); err != nil {
		t.Fatal(err)
	}
	spec, err := g.resolveSpec(preq.Machine)
	if err != nil {
		t.Fatal(err)
	}
	preq.Machine = spec

	sb, _ := json.Marshal(krak.SimulateRequest{Deck: "small", PEs: 4, Iterations: 1})

	cases := []struct {
		name, method, path string
		body               []byte
		wantKey            string // exact, or "|"-suffixed digest prefix
		idempotent         bool
		canonical          bool // cacheKey + local evaluator present
	}{
		{"job poll", http.MethodGet, "/v1/jobs/abc123", nil, "jobs", true, false},
		{"machine read", http.MethodGet, "/v1/machines/f00dcafe", nil, "machines|f00dcafe", true, false},
		{"plain GET", http.MethodGet, "/v1/experiments", nil, "GET /v1/experiments", true, false},
		{"predict", http.MethodPost, "/v1/predict", pb, preq.CanonicalKey(), true, true},
		{"predict bad json", http.MethodPost, "/v1/predict", []byte("{"), "/v1/predict|", true, false},
		{"simulate", http.MethodPost, "/v1/simulate", sb, "", true, true},
		{"simulate bad json", http.MethodPost, "/v1/simulate", []byte("]"), "/v1/simulate|", true, false},
		{"sweep", http.MethodPost, "/v1/sweep", []byte(`{}`), "/v1/sweep|", true, false},
		{"compare", http.MethodPost, "/v1/compare", []byte(`{}`), "/v1/compare|", true, false},
		{"calibrate", http.MethodPost, "/v1/calibrate", []byte(`{}`), "/v1/calibrate|", true, false},
		{"job submit", http.MethodPost, "/v1/jobs", []byte(`{}`), "jobs", false, false},
		{"append", http.MethodPost, "/v1/calibrate/append", []byte(`{}`), "/v1/calibrate/append|", false, false},
		{"machine register", http.MethodPut, "/v1/machines/beef", nil, "machines|beef", false, false},
		{"unknown POST", http.MethodPost, "/v1/else", nil, "/v1/else|", false, false},
	}
	for _, tc := range cases {
		c := classify(tc.method, tc.path, tc.body)
		if c.idempotent != tc.idempotent {
			t.Errorf("%s: idempotent = %v, want %v", tc.name, c.idempotent, tc.idempotent)
		}
		switch {
		case tc.wantKey == "":
		case strings.HasSuffix(tc.wantKey, "|"):
			if !strings.HasPrefix(c.key, tc.wantKey) || len(c.key) == len(tc.wantKey) {
				t.Errorf("%s: key = %q, want digest under %q", tc.name, c.key, tc.wantKey)
			}
		default:
			if c.key != tc.wantKey {
				t.Errorf("%s: key = %q, want %q", tc.name, c.key, tc.wantKey)
			}
		}
		if tc.canonical {
			if c.cacheKey == "" || c.cacheKey != c.key || c.local == nil {
				t.Errorf("%s: canonical class incomplete: cacheKey=%q local=%v", tc.name, c.cacheKey, c.local != nil)
			}
		} else if c.cacheKey != "" || c.local != nil {
			t.Errorf("%s: unexpected degraded tier: cacheKey=%q", tc.name, c.cacheKey)
		}
	}

	// Identical content always lands on the same ring key, so replica
	// caches stay warm no matter which client sent the request.
	a := classify(http.MethodPost, "/v1/predict", pb)
	b := classify(http.MethodPost, "/v1/predict", pb)
	if a.key != b.key {
		t.Fatalf("same content classified to different keys: %q vs %q", a.key, b.key)
	}
}

func TestEndpointLabel(t *testing.T) {
	cases := map[string]string{
		"/v1/jobs/abc/result":   "/v1/jobs/{id}/result",
		"/v1/jobs/abc":          "/v1/jobs/{id}",
		"/v1/machines/f00":      "/v1/machines/{fingerprint}",
		"/v1/experiments/fig_4": "/v1/experiments/{id}",
		"/v1/predict":           "/v1/predict",
		"/healthz":              "/healthz",
	}
	for path, want := range cases {
		if got := endpointLabel(path); got != want {
			t.Errorf("endpointLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestGatewayDegradedQuickSimulate is the simulate twin of the predict
// quick-tier test: with every replica dead and no cached response, the
// gateway runs the scaled-down simulator locally rather than failing.
func TestGatewayDegradedQuickSimulate(t *testing.T) {
	dead := newStubReplica()
	dead.ts.Close()
	cfg := testConfig(dead.ts.URL)
	cfg.Quick = true
	cfg.LocalFallback = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(krak.SimulateRequest{Deck: "small", PEs: 2, Iterations: 1})
	rec := post(t, g, "/v1/simulate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s, want local-fallback 200", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Krak-Degraded"); got != "quick" {
		t.Fatalf("Krak-Degraded %q, want quick", got)
	}
	var res krak.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("degraded body does not decode as a Result: %v", err)
	}
	if res.Kind != krak.KindSimulate || res.TotalSeconds <= 0 {
		t.Fatalf("implausible local simulate result: %+v", res)
	}
}
