package gateway

import (
	"strings"
	"testing"
	"time"
)

func TestParseGatewayConfig(t *testing.T) {
	src := []byte(`
# two local replicas
replica http://127.0.0.1:8081
replica http://127.0.0.1:8082
virtual-nodes 32
probe-interval 500ms
probe-timeout 250ms
retries 2
retry-base 10ms
retry-cap 200ms
breaker-threshold 4
breaker-cooldown 2s
seed 7
quick true
local-fallback false
`)
	cfg, err := ParseGatewayConfig(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Replicas) != 2 || cfg.VirtualNodes != 32 || cfg.Retries != 2 {
		t.Fatalf("parsed %+v", cfg)
	}
	if cfg.ProbeInterval != 500*time.Millisecond || cfg.BreakerThreshold != 4 || cfg.Seed != 7 {
		t.Fatalf("parsed %+v", cfg)
	}
	if !cfg.Quick || cfg.LocalFallback {
		t.Fatalf("booleans not applied: %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestParseGatewayConfigDefaults(t *testing.T) {
	cfg, err := ParseGatewayConfig([]byte("replica http://127.0.0.1:8081\n"))
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.VirtualNodes != def.VirtualNodes || cfg.Retries != def.Retries ||
		cfg.BreakerThreshold != def.BreakerThreshold || !cfg.LocalFallback {
		t.Fatalf("unset directives did not keep defaults: %+v", cfg)
	}
}

func TestParseGatewayConfigRejects(t *testing.T) {
	cases := map[string]string{
		"unknown directive": "frobnicate 1\n",
		"missing value":     "replica\n",
		"extra value":       "retries 1 2\n",
		"retries over cap":  "retries 99\n",
		"zero vnodes":       "virtual-nodes 0\n",
		"vnodes over cap":   "virtual-nodes 10000\n",
		"zero threshold":    "breaker-threshold 0\n",
		"zero duration":     "probe-interval 0s\n",
		"duration over cap": "probe-interval 2m\n",
		"zero seed":         "seed 0\n",
		"bad bool":          "quick maybe\n",
		"too many replicas": strings.Repeat("replica http://h\n", maxReplicas+1),
		"oversized input":   strings.Repeat(" ", maxConfigBytes+1),
		"too many lines":    strings.Repeat("\n", maxConfigLines+1),
	}
	for name, src := range cases {
		if _, err := ParseGatewayConfig([]byte(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err == nil {
		t.Fatal("config with no replicas validated")
	}
	cfg.Replicas = []string{"http://127.0.0.1:8081"}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config with one replica rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Config){
		"bad url":        func(c *Config) { c.Replicas = []string{"not a url"} },
		"ftp scheme":     func(c *Config) { c.Replicas = []string{"ftp://host"} },
		"duplicate":      func(c *Config) { c.Replicas = []string{"http://h:1", "http://h:1"} },
		"neg retries":    func(c *Config) { c.Retries = -1 },
		"zero cooldown":  func(c *Config) { c.BreakerCooldown = 0 },
		"huge probe":     func(c *Config) { c.ProbeInterval = time.Hour },
		"zero threshold": func(c *Config) { c.BreakerThreshold = 0 },
	} {
		c := DefaultConfig()
		c.Replicas = []string{"http://127.0.0.1:8081"}
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}
