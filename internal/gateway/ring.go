package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is a consistent-hash ring over replica indices. Each replica
// owns VirtualNodes points on a uint64 circle, placed by hashing its
// URL — so the assignment of keys to replicas depends only on the
// replica set, not on list order, and adding or removing one replica
// moves only the keys it owned. Keys are the serving tier's canonical
// request keys: the same scenario hashes to the same replica every
// time, which is what keeps that replica's response LRU and artifact
// caches warm for it.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // replica count
}

type ringPoint struct {
	hash    uint64
	replica int
}

// hash64 maps a string onto the ring circle (first 8 bytes of its
// sha256 — uniform, stable across processes and runs).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing places each replica's virtual nodes on the circle.
func newRing(replicas []string, virtual int) *ring {
	r := &ring{n: len(replicas), points: make([]ringPoint, 0, len(replicas)*virtual)}
	for i, url := range replicas {
		for v := 0; v < virtual; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", url, v)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by replica index so the
		// ring is deterministic whatever sort.Slice's internal order.
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// sequence returns every replica index in the key's failover order: the
// owner first (the key's clockwise successor on the circle), then each
// distinct replica as the walk continues. A caller that exhausts the
// sequence has tried every replica.
func (r *ring) sequence(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.n)
	out := make([]int, 0, r.n)
	for i := 0; len(out) < r.n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// owner returns the key's primary replica.
func (r *ring) owner(key string) int {
	return r.sequence(key)[0]
}
