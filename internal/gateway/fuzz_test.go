package gateway

import (
	"strings"
	"testing"
)

// FuzzParseGatewayConfig drives the config parser with arbitrary bytes:
// no panics, errors-only on bad input, and any accepted config must
// satisfy the invariants Validate enforces on the bounded fields (so an
// attacker-supplied config file cannot smuggle out-of-range knobs
// through the parser).
func FuzzParseGatewayConfig(f *testing.F) {
	f.Add([]byte("replica http://127.0.0.1:8081\nretries 2\n"))
	f.Add([]byte("virtual-nodes 64\nprobe-interval 2s\nseed 7\n"))
	f.Add([]byte("# comment\n\nquick true\n"))
	f.Add([]byte("breaker-threshold 5\nbreaker-cooldown 10s\n"))
	f.Add([]byte(strings.Repeat("replica http://h\n", 65)))
	f.Fuzz(func(t *testing.T, src []byte) {
		cfg, err := ParseGatewayConfig(src)
		if err != nil {
			return
		}
		if len(cfg.Replicas) > maxReplicas {
			t.Fatalf("parsed %d replicas past the cap", len(cfg.Replicas))
		}
		if cfg.VirtualNodes < 1 || cfg.VirtualNodes > maxVirtualNodes {
			t.Fatalf("parsed virtual-nodes %d", cfg.VirtualNodes)
		}
		if cfg.Retries < 0 || cfg.Retries > maxRetries {
			t.Fatalf("parsed retries %d", cfg.Retries)
		}
		if cfg.BreakerThreshold < 1 || cfg.BreakerThreshold > maxBreakerFails {
			t.Fatalf("parsed breaker-threshold %d", cfg.BreakerThreshold)
		}
		if cfg.Seed == 0 {
			t.Fatal("parsed seed 0")
		}
		for _, d := range []int64{int64(cfg.ProbeInterval), int64(cfg.ProbeTimeout),
			int64(cfg.RetryBase), int64(cfg.RetryCap), int64(cfg.BreakerCooldown)} {
			if d <= 0 || d > int64(maxDuration) {
				t.Fatalf("parsed duration %d out of bounds", d)
			}
		}
	})
}
