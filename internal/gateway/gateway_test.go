package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"krak/internal/artifacts"
	"krak/pkg/krak"
)

// stubReplica is a fake backend with a scriptable handler and request
// counting.
type stubReplica struct {
	ts       *httptest.Server
	requests atomic.Int64
	fail     atomic.Bool // when set, answer 500
	garbage  atomic.Bool // when set, answer 200 with invalid UTF-8
}

func newStubReplica() *stubReplica {
	s := &stubReplica{}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		s.requests.Add(1)
		switch {
		case s.fail.Load():
			http.Error(w, "boom", http.StatusInternalServerError)
		case s.garbage.Load():
			w.Header().Set("Content-Type", "application/json")
			w.Write([]byte("{\"ok\":\xff\xfe}"))
		default:
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"ok":true}`)
		}
	}))
	return s
}

// testConfig returns a fast-timing config over the stub URLs.
func testConfig(urls ...string) Config {
	cfg := DefaultConfig()
	cfg.Replicas = urls
	cfg.ProbeInterval = 20 * time.Millisecond
	cfg.ProbeTimeout = 200 * time.Millisecond
	cfg.RetryBase = time.Millisecond
	cfg.RetryCap = 2 * time.Millisecond
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 100 * time.Millisecond
	cfg.LocalFallback = false
	return cfg
}

func predictBody(pe int) []byte {
	b, _ := json.Marshal(krak.PredictRequest{Deck: "small", PEs: pe})
	return b
}

func post(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}

func TestGatewayRoutesConsistently(t *testing.T) {
	var stubs []*stubReplica
	var urls []string
	for i := 0; i < 3; i++ {
		s := newStubReplica()
		defer s.ts.Close()
		stubs = append(stubs, s)
		urls = append(urls, s.ts.URL)
	}
	g, err := New(testConfig(urls...), nil)
	if err != nil {
		t.Fatal(err)
	}
	body := predictBody(16)
	for i := 0; i < 10; i++ {
		if rec := post(t, g, "/v1/predict", body); rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
	}
	// Consistent hashing: one replica saw all ten, the others none.
	served := 0
	for _, s := range stubs {
		if n := s.requests.Load(); n > 0 {
			served++
			if n != 10 {
				t.Fatalf("owning replica served %d/10", n)
			}
		}
	}
	if served != 1 {
		t.Fatalf("one key spread over %d replicas", served)
	}
}

func TestGatewayFailsOverAndRetries(t *testing.T) {
	var stubs []*stubReplica
	var urls []string
	for i := 0; i < 3; i++ {
		s := newStubReplica()
		defer s.ts.Close()
		stubs = append(stubs, s)
		urls = append(urls, s.ts.URL)
	}
	stubs[0].fail.Store(true)
	g, err := New(testConfig(urls...), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Enough distinct keys that replica 0 owns some of them.
	for pe := 1; pe <= 32; pe++ {
		if rec := post(t, g, "/v1/predict", predictBody(pe)); rec.Code != http.StatusOK {
			t.Fatalf("pe %d: status %d body %s", pe, rec.Code, rec.Body.String())
		}
	}
	if g.retries.Load() == 0 {
		t.Fatal("no retries recorded though one replica always fails")
	}
	if g.metrics.Total("krak_gateway_retries_total") == 0 {
		t.Fatal("retry metric not exported")
	}
}

func TestGatewayRejectsCorruptBodies(t *testing.T) {
	var stubs []*stubReplica
	var urls []string
	for i := 0; i < 2; i++ {
		s := newStubReplica()
		defer s.ts.Close()
		stubs = append(stubs, s)
		urls = append(urls, s.ts.URL)
	}
	stubs[0].garbage.Store(true)
	g, err := New(testConfig(urls...), nil)
	if err != nil {
		t.Fatal(err)
	}
	for pe := 1; pe <= 16; pe++ {
		rec := post(t, g, "/v1/predict", predictBody(pe))
		if rec.Code != http.StatusOK {
			t.Fatalf("pe %d: status %d", pe, rec.Code)
		}
		if !json.Valid(rec.Body.Bytes()) {
			t.Fatalf("pe %d: gateway relayed a corrupt body %q", pe, rec.Body.String())
		}
	}
}

func TestGatewayBreakerOpensOnConsecutiveFailures(t *testing.T) {
	s := newStubReplica()
	defer s.ts.Close()
	s.fail.Store(true)
	cfg := testConfig(s.ts.URL)
	cfg.Retries = 0
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.BreakerThreshold; i++ {
		post(t, g, "/v1/predict", predictBody(4))
	}
	if got := g.replicas[0].breaker.value(); got != breakerOpen {
		t.Fatalf("breaker state %d after %d consecutive failures, want open", got, cfg.BreakerThreshold)
	}
	// With the breaker open the replica is not even attempted.
	before := s.requests.Load()
	rec := post(t, g, "/v1/predict", predictBody(4))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with every breaker open, want 503", rec.Code)
	}
	if s.requests.Load() != before {
		t.Fatal("open breaker did not stop traffic to the replica")
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

func TestGatewayDegradedCacheTier(t *testing.T) {
	dir := t.TempDir()
	// Pre-render what a replica would have cached for this request.
	req := krak.PredictRequest{Deck: "small", PEs: 8}
	ms, err := req.Machine.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	ms.Quick = true
	req.Machine = ms.Normalized()
	key := req.CanonicalKey()
	cachedBody := []byte("{\n  \"cached\": true\n}\n")
	disk, err := artifacts.OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	disk.Put("response", key, cachedBody)

	dead := newStubReplica()
	dead.ts.Close() // every attempt is a transport error
	cfg := testConfig(dead.ts.URL)
	cfg.CacheDir = dir
	cfg.Quick = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, g, "/v1/predict", predictBody(8))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want degraded 200", rec.Code)
	}
	if got := rec.Header().Get("Krak-Degraded"); got != "cache" {
		t.Fatalf("Krak-Degraded %q, want cache", got)
	}
	if !bytes.Equal(rec.Body.Bytes(), cachedBody) {
		t.Fatalf("degraded body %q, want the cached bytes", rec.Body.String())
	}
	if g.degradedCache.Load() != 1 {
		t.Fatal("degraded-cache counter not bumped")
	}
}

func TestGatewayDegradedQuickTier(t *testing.T) {
	dead := newStubReplica()
	dead.ts.Close()
	cfg := testConfig(dead.ts.URL)
	cfg.Quick = true
	cfg.LocalFallback = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, g, "/v1/predict", predictBody(4))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d body %s, want local-fallback 200", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Krak-Degraded"); got != "quick" {
		t.Fatalf("Krak-Degraded %q, want quick", got)
	}
	var res krak.Result
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("degraded body does not decode as a Result: %v", err)
	}
	if res.Kind != krak.KindPredict || res.TotalSeconds <= 0 {
		t.Fatalf("implausible local result: %+v", res)
	}
}

func TestGatewayUnavailable(t *testing.T) {
	dead := newStubReplica()
	dead.ts.Close()
	g, err := New(testConfig(dead.ts.URL), nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := post(t, g, "/v1/predict", predictBody(4))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var envelope map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("error envelope: %v", err)
	}
	if !strings.Contains(envelope["error"], "service unavailable") {
		t.Fatalf("error %q does not carry ErrUnavailable", envelope["error"])
	}
}

func TestGatewayNonIdempotentSingleAttempt(t *testing.T) {
	var stubs []*stubReplica
	var urls []string
	for i := 0; i < 3; i++ {
		s := newStubReplica()
		defer s.ts.Close()
		s.fail.Store(true)
		stubs = append(stubs, s)
		urls = append(urls, s.ts.URL)
	}
	g, err := New(testConfig(urls...), nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(krak.SweepRequest{Decks: []string{"small"}, PEs: []int{2, 4}})
	rec := post(t, g, "/v1/jobs", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	var attempts int64
	for _, s := range stubs {
		attempts += s.requests.Load()
	}
	if attempts != 1 {
		t.Fatalf("non-idempotent submit attempted %d times, want exactly 1", attempts)
	}
}

func TestGatewayHealthProbesMarkDeadReplicas(t *testing.T) {
	alive := newStubReplica()
	defer alive.ts.Close()
	dead := newStubReplica()
	dead.ts.Close()
	g, err := New(testConfig(alive.ts.URL, dead.ts.URL), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.Start(ctx)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if !g.replicas[1].healthy.Load() && g.replicas[0].healthy.Load() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if g.replicas[1].healthy.Load() {
		t.Fatal("probe never marked the dead replica unhealthy")
	}
	if !g.replicas[0].healthy.Load() {
		t.Fatal("probe marked the live replica unhealthy")
	}
}

func TestGatewayObservability(t *testing.T) {
	s := newStubReplica()
	defer s.ts.Close()
	g, err := New(testConfig(s.ts.URL), nil)
	if err != nil {
		t.Fatal(err)
	}
	post(t, g, "/v1/predict", predictBody(4))

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	text := rec.Body.String()
	for _, family := range []string{
		"krak_gateway_requests_total",
		"krak_gateway_retries_total",
		"krak_gateway_breaker_state",
		"krak_gateway_degraded_total",
		"krak_gateway_replica_healthy",
		"krak_http_requests_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing %s", family)
		}
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var view map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view["replicas"] != float64(1) {
		t.Fatalf("healthz replicas %v", view["replicas"])
	}
}

// TestGatewayReadThroughCachePopulates pins the read-through property:
// a body proxied for a canonically-keyed endpoint lands in the
// gateway's disk tier, keyed exactly as a replica would key it.
func TestGatewayReadThroughCachePopulates(t *testing.T) {
	dir := t.TempDir()
	s := newStubReplica()
	defer s.ts.Close()
	cfg := testConfig(s.ts.URL)
	cfg.CacheDir = dir
	cfg.Quick = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec := post(t, g, "/v1/predict", predictBody(8)); rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	req := krak.PredictRequest{Deck: "small", PEs: 8}
	ms, err := req.Machine.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	ms.Quick = true
	req.Machine = ms.Normalized()
	if _, ok := g.disk.Get("response", req.CanonicalKey()); !ok {
		t.Fatal("proxied response not written through to the disk tier")
	}
	// And nothing leaked as temp files.
	matches, err := filepath.Glob(filepath.Join(dir, "*", "*", ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}
