package gateway

import (
	"fmt"
	"testing"
)

func testReplicas(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 8081+i)
	}
	return out
}

func TestRingSequenceCoversAllReplicas(t *testing.T) {
	r := newRing(testReplicas(5), 64)
	seq := r.sequence("predict|small|16|general-homo|abc")
	if len(seq) != 5 {
		t.Fatalf("sequence length %d, want 5", len(seq))
	}
	seen := map[int]bool{}
	for _, idx := range seq {
		if seen[idx] {
			t.Fatalf("replica %d appears twice in %v", idx, seq)
		}
		seen[idx] = true
	}
}

func TestRingStableUnderReplicaReorder(t *testing.T) {
	urls := testReplicas(4)
	reordered := []string{urls[2], urls[0], urls[3], urls[1]}
	a := newRing(urls, 64)
	b := newRing(reordered, 64)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("predict|small|%d|general-homo|fp", 1<<uint(i%10))
		// Owners are replica indices into different lists; compare URLs.
		if urls[a.owner(key)] != reordered[b.owner(key)] {
			t.Fatalf("key %q owner moved when the replica list was reordered", key)
		}
	}
}

func TestRingDeterministicAndSpread(t *testing.T) {
	r := newRing(testReplicas(3), 64)
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("simulate|medium|%d|0|multilevel|fp%d", i, i)
		own := r.owner(key)
		if again := r.owner(key); again != own {
			t.Fatalf("owner not deterministic for %q", key)
		}
		counts[own]++
	}
	for i, c := range counts {
		// With 64 vnodes each, a replica owning under 10% of keys means
		// the ring is badly unbalanced.
		if c < 30 {
			t.Fatalf("replica %d owns only %d/300 keys: %v", i, c, counts)
		}
	}
}

func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	urls := testReplicas(4)
	full := newRing(urls, 64)
	reduced := newRing(urls[:3], 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("predict|large|%d|mesh-specific|fp%d", i, i)
		before := full.owner(key)
		after := reduced.owner(key)
		// Keys not owned by the removed replica must not move — the
		// consistency property that keeps surviving replicas' caches warm.
		if before != 3 && after != before {
			t.Fatalf("key %q moved from replica %d to %d though replica 3 was the one removed", key, before, after)
		}
	}
}
