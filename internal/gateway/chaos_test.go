package gateway

// The chaos suite is the tentpole's proof obligation: a three-replica
// in-process fleet where one replica is armed with a deterministic
// fault plan and another is killed mid-soak, and the gateway still
// loses zero idempotent requests while every served body stays
// byte-identical to a single-node reference. A second test pins the
// fault layer's reproducibility end to end: the same seed over the same
// request stream injects exactly the same fault multiset, run to run.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"krak/internal/faultinject"
	"krak/internal/server"
)

// chaosPlan corrupts a fifth of responses and fails another ~15%
// outright — far nastier than any real deploy, which is the point.
const chaosPlan = `plan chaos-soak
seed 7
error-rate 0.15
error-status 500
corrupt-rate 0.2
`

var chaosPEs = []int{2, 4, 8, 16, 32, 64}

// chaosReplica builds a real quick-mode serving replica, optionally
// armed with a fault injector, behind an httptest listener.
func chaosReplica(t *testing.T, inj *faultinject.Injector) (*httptest.Server, *server.Server) {
	t.Helper()
	h, err := server.New(server.Config{Quick: true, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts, h
}

// referenceBodies renders the ground truth once on a clean single node.
func referenceBodies(t *testing.T) map[int][]byte {
	t.Helper()
	ts, _ := chaosReplica(t, nil)
	ref := make(map[int][]byte, len(chaosPEs))
	for _, pe := range chaosPEs {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", bytes.NewReader(predictBody(pe)))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference pe %d: status %d", pe, resp.StatusCode)
		}
		ref[pe] = buf.Bytes()
	}
	return ref
}

func newChaosInjector(t *testing.T) *faultinject.Injector {
	t.Helper()
	plan, err := faultinject.ParseFaultPlan([]byte(chaosPlan))
	if err != nil {
		t.Fatal(err)
	}
	return faultinject.New(plan)
}

// TestChaosKillAndCorruptMidSoak: replica 1 injects errors and corrupt
// bodies the whole time, replica 0 is killed a third of the way in, and
// the soak still completes with every request answered 200 and every
// body byte-identical to the single-node reference.
func TestChaosKillAndCorruptMidSoak(t *testing.T) {
	ref := referenceBodies(t)
	inj := newChaosInjector(t)

	ts0, _ := chaosReplica(t, nil)
	ts1, _ := chaosReplica(t, inj)
	ts2, _ := chaosReplica(t, nil)

	cfg := testConfig(ts0.URL, ts1.URL, ts2.URL)
	cfg.Quick = true
	cfg.LocalFallback = true
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	g.Start(ctx)
	defer func() {
		cancel()
		g.Close()
	}()

	const rounds = 20
	killAt := rounds / 3
	sent := 0
	for round := 0; round < rounds; round++ {
		if round == killAt {
			ts0.Close() // SIGKILL equivalent: connections refused from here on
		}
		for _, pe := range chaosPEs {
			sent++
			rec := post(t, g, "/v1/predict", predictBody(pe))
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d pe %d: lost request, status %d body %s",
					round, pe, rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), ref[pe]) {
				t.Fatalf("round %d pe %d: body diverged from single-node reference\n got: %q\nwant: %q",
					round, pe, rec.Body.String(), ref[pe])
			}
		}
	}

	if got := int(g.metrics.Total("krak_gateway_requests_total")); got < sent {
		t.Fatalf("gateway counted %d requests, sent %d", got, sent)
	}
	if g.retries.Load() == 0 {
		t.Fatal("soak survived a dead replica and a chaos plan without a single retry — faults cannot have been exercised")
	}
	totals := inj.Totals()
	if totals[faultinject.KindError]+totals[faultinject.KindCorrupt] == 0 {
		t.Fatalf("armed injector fired nothing: %v", totals)
	}
}

// runChaosSoak runs one fixed sequential request stream through a
// gateway onto a single armed replica and returns the injector's fault
// totals. Single-replica on purpose: ring placement hashes replica
// URLs, and httptest ports differ run to run, so with a fleet the
// subset of requests reaching the armed replica would vary. With one
// replica every request deterministically attempts it first and
// degrades to local evaluation when a fault fires.
func runChaosSoak(t *testing.T) map[string]int64 {
	t.Helper()
	inj := newChaosInjector(t)
	ts, _ := chaosReplica(t, inj)

	cfg := testConfig(ts.URL)
	cfg.Quick = true
	cfg.LocalFallback = true
	// Keep time out of the loop too: no Start (health probes are
	// scheduling noise when the replica stays up) and a breaker that
	// never opens (an open breaker skips the armed replica for a
	// wall-clock cooldown, hiding a timing-dependent number of draws).
	cfg.BreakerThreshold = maxBreakerFails
	g, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		for _, pe := range chaosPEs {
			rec := post(t, g, "/v1/predict", predictBody(pe))
			if rec.Code != http.StatusOK {
				t.Fatalf("round %d pe %d: status %d", round, pe, rec.Code)
			}
		}
	}
	return inj.Totals()
}

// TestChaosFaultTotalsReproducible is the acceptance criterion from the
// issue: the same seed over the same request stream reproduces the same
// injected-fault sequence, observed as identical
// krak_fault_injected_total counters across two independent runs.
func TestChaosFaultTotalsReproducible(t *testing.T) {
	first := runChaosSoak(t)
	second := runChaosSoak(t)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("fault totals diverged across identical runs:\nfirst:  %v\nsecond: %v", first, second)
	}
	var fired int64
	for _, n := range first {
		fired += n
	}
	if fired == 0 {
		t.Fatal("determinism vacuously true: no faults fired")
	}
}

// TestChaosSeedChangesFaultSequence guards against the injector
// ignoring its seed (which would also make the reproducibility test
// meaningless).
func TestChaosSeedChangesFaultSequence(t *testing.T) {
	draw := func(seed uint64) map[string]int64 {
		plan, err := faultinject.ParseFaultPlan([]byte(fmt.Sprintf(
			"plan reseed\nseed %d\nerror-rate 0.3\ncorrupt-rate 0.3\n", seed)))
		if err != nil {
			t.Fatal(err)
		}
		inj := faultinject.New(plan)
		ts, _ := chaosReplica(t, inj)
		for i := 0; i < 24; i++ {
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				bytes.NewReader(predictBody(chaosPEs[i%len(chaosPEs)])))
			if err == nil {
				resp.Body.Close()
			}
		}
		return inj.Totals()
	}
	if a, b := draw(7), draw(1007); reflect.DeepEqual(a, b) {
		t.Logf("seeds 7 and 1007 happened to produce identical totals (%v) — suspicious but possible; trying a third", a)
		if c := draw(424242); reflect.DeepEqual(a, c) {
			t.Fatalf("three seeds, identical fault totals %v — the seed is being ignored", a)
		}
	}
}
