package gateway

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Config sizes a Gateway. Build one with DefaultConfig and override, or
// parse a textual file with ParseGatewayConfig; Validate before use.
type Config struct {
	// Replicas are the base URLs of the krak serve processes behind the
	// gateway ("http://127.0.0.1:8081"). Order does not matter: routing
	// hashes replica URLs onto the ring, so the assignment is stable
	// under list reordering.
	Replicas []string

	// VirtualNodes is how many ring points each replica owns; more
	// points smooth the key distribution. Default 64.
	VirtualNodes int

	// ProbeInterval is the health-check cadence per replica;
	// ProbeTimeout bounds each GET /healthz probe.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration

	// Retries bounds additional attempts (beyond the first) for an
	// idempotent request, across failover replicas. Default 3.
	Retries int

	// RetryBase and RetryCap shape the exponential backoff between
	// attempts: attempt n sleeps a uniformly jittered duration in
	// [0, min(RetryBase·2ⁿ, RetryCap)) — full jitter, so synchronized
	// clients spread out instead of retrying in lockstep.
	RetryBase time.Duration
	RetryCap  time.Duration

	// BreakerThreshold consecutive failures open a replica's circuit
	// breaker; BreakerCooldown is how long it stays open before a
	// half-open probe may test the replica again.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// Seed drives the retry jitter; 0 means 1. Routing and breaker
	// behavior are seed-independent — only sleep durations vary.
	Seed uint64

	// Quick applies the serving tier's -quick to the gateway's own view
	// of each request (canonical keys, local degraded evaluation). Set
	// it exactly when the replicas run -quick, or keys will not match
	// the bodies the replicas cache.
	Quick bool

	// CacheDir, when set, roots the gateway's own read-through response
	// cache: bodies proxied for predict/simulate land there, and when
	// every replica for a key is down the gateway serves from it before
	// falling back to local evaluation. "" disables the tier.
	CacheDir string

	// LocalFallback enables the last degradation tier: evaluating
	// predict/simulate requests in-process (quick mode) when no replica
	// and no cached body can answer. Responses carry Krak-Degraded.
	LocalFallback bool
}

// DefaultConfig returns the gateway defaults (no replicas).
func DefaultConfig() Config {
	return Config{
		VirtualNodes:     64,
		ProbeInterval:    2 * time.Second,
		ProbeTimeout:     time.Second,
		Retries:          3,
		RetryBase:        25 * time.Millisecond,
		RetryCap:         time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  10 * time.Second,
		Seed:             1,
		LocalFallback:    true,
	}
}

// Parse bounds. A gateway fronts at most a few dozen replicas; anything
// larger is rejected before allocation.
const (
	maxConfigBytes  = 1 << 16
	maxConfigLines  = 256
	maxReplicas     = 64
	maxVirtualNodes = 512
	maxRetries      = 10
	maxBreakerFails = 1000
	maxDuration     = time.Minute
)

// ParseGatewayConfig parses the bounded textual gateway config:
//
//	replica http://127.0.0.1:8081   # repeatable, 1..64
//	virtual-nodes 64                # ring points per replica (1..512)
//	probe-interval 2s               # health-check cadence
//	probe-timeout 1s                # per-probe bound
//	retries 3                       # extra attempts per idempotent request
//	retry-base 25ms                 # backoff base
//	retry-cap 1s                    # backoff ceiling
//	breaker-threshold 5             # consecutive failures that open a breaker
//	breaker-cooldown 10s            # open time before a half-open probe
//	seed 1                          # retry-jitter seed
//	quick true                      # replicas run -quick
//	local-fallback true             # degrade to in-process evaluation
//
// Directive-per-line, '#' comments, blank lines ignored. Unset
// directives keep their DefaultConfig values. The result still needs
// Validate (a config with zero replicas parses but does not validate).
func ParseGatewayConfig(src []byte) (Config, error) {
	cfg := DefaultConfig()
	if len(src) > maxConfigBytes {
		return cfg, fmt.Errorf("gateway: config exceeds %d bytes", maxConfigBytes)
	}
	lines := strings.Split(string(src), "\n")
	if len(lines) > maxConfigLines {
		return cfg, fmt.Errorf("gateway: config exceeds %d lines", maxConfigLines)
	}
	for i, line := range lines {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		lineErr := func(format string, args ...any) error {
			return fmt.Errorf("gateway: line %d: %s", i+1, fmt.Sprintf(format, args...))
		}
		if len(fields) != 2 {
			return cfg, lineErr("want `directive value`")
		}
		dir, val := fields[0], fields[1]
		switch dir {
		case "replica":
			if len(cfg.Replicas) >= maxReplicas {
				return cfg, lineErr("more than %d replicas", maxReplicas)
			}
			cfg.Replicas = append(cfg.Replicas, val)
		case "virtual-nodes":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > maxVirtualNodes {
				return cfg, lineErr("bad virtual-nodes %q (want 1..%d)", val, maxVirtualNodes)
			}
			cfg.VirtualNodes = n
		case "probe-interval":
			if err := parseBoundedDuration(val, &cfg.ProbeInterval); err != nil {
				return cfg, lineErr("%v", err)
			}
		case "probe-timeout":
			if err := parseBoundedDuration(val, &cfg.ProbeTimeout); err != nil {
				return cfg, lineErr("%v", err)
			}
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > maxRetries {
				return cfg, lineErr("bad retries %q (want 0..%d)", val, maxRetries)
			}
			cfg.Retries = n
		case "retry-base":
			if err := parseBoundedDuration(val, &cfg.RetryBase); err != nil {
				return cfg, lineErr("%v", err)
			}
		case "retry-cap":
			if err := parseBoundedDuration(val, &cfg.RetryCap); err != nil {
				return cfg, lineErr("%v", err)
			}
		case "breaker-threshold":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > maxBreakerFails {
				return cfg, lineErr("bad breaker-threshold %q (want 1..%d)", val, maxBreakerFails)
			}
			cfg.BreakerThreshold = n
		case "breaker-cooldown":
			if err := parseBoundedDuration(val, &cfg.BreakerCooldown); err != nil {
				return cfg, lineErr("%v", err)
			}
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil || seed == 0 {
				return cfg, lineErr("bad seed %q (want a positive integer)", val)
			}
			cfg.Seed = seed
		case "quick":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, lineErr("bad quick %q (want a boolean)", val)
			}
			cfg.Quick = b
		case "local-fallback":
			b, err := strconv.ParseBool(val)
			if err != nil {
				return cfg, lineErr("bad local-fallback %q (want a boolean)", val)
			}
			cfg.LocalFallback = b
		default:
			return cfg, lineErr("unknown directive %q", dir)
		}
	}
	return cfg, nil
}

// parseBoundedDuration parses a positive duration capped at a minute —
// every gateway timing knob lives well under it.
func parseBoundedDuration(val string, dst *time.Duration) error {
	d, err := time.ParseDuration(val)
	if err != nil || d <= 0 || d > maxDuration {
		return fmt.Errorf("bad duration %q (want 0 < d <= %v)", val, maxDuration)
	}
	*dst = d
	return nil
}

// Validate checks the config is runnable: at least one replica, every
// replica a well-formed absolute http(s) URL, and bounds on everything
// a flag could have set directly (the parser enforces the same ones).
func (cfg Config) Validate() error {
	if len(cfg.Replicas) == 0 {
		return fmt.Errorf("gateway: no replicas configured")
	}
	if len(cfg.Replicas) > maxReplicas {
		return fmt.Errorf("gateway: more than %d replicas", maxReplicas)
	}
	seen := make(map[string]bool, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		u, err := url.Parse(r)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("gateway: bad replica URL %q", r)
		}
		if seen[r] {
			return fmt.Errorf("gateway: duplicate replica %q", r)
		}
		seen[r] = true
	}
	if cfg.VirtualNodes < 1 || cfg.VirtualNodes > maxVirtualNodes {
		return fmt.Errorf("gateway: virtual-nodes %d out of range 1..%d", cfg.VirtualNodes, maxVirtualNodes)
	}
	if cfg.Retries < 0 || cfg.Retries > maxRetries {
		return fmt.Errorf("gateway: retries %d out of range 0..%d", cfg.Retries, maxRetries)
	}
	if cfg.BreakerThreshold < 1 || cfg.BreakerThreshold > maxBreakerFails {
		return fmt.Errorf("gateway: breaker-threshold %d out of range 1..%d", cfg.BreakerThreshold, maxBreakerFails)
	}
	for _, d := range []time.Duration{cfg.ProbeInterval, cfg.ProbeTimeout, cfg.RetryBase, cfg.RetryCap, cfg.BreakerCooldown} {
		if d <= 0 || d > maxDuration {
			return fmt.Errorf("gateway: duration %v out of range (0, %v]", d, maxDuration)
		}
	}
	return nil
}
