// Package mpisim is a small MPI-like message-passing runtime over
// goroutines and channels. It exists so the Krak stand-in application
// (internal/hydro) can execute with the same communication structure the
// paper describes — asynchronous sends, blocking receives, and collective
// reductions acting as global synchronization points — inside a single
// process, one goroutine per rank.
//
// Collectives are implemented over the point-to-point layer with binomial
// trees, mirroring the binary-tree cost model of §4.3.
package mpisim

import (
	"fmt"
	"sync"
)

// packet is one in-flight message.
type packet struct {
	src, tag int
	data     []float64
}

// World owns the mailboxes of a fixed-size rank group, plus a shared pool
// of payload buffers: sends draw their copy from the pool and RecvInto
// returns drained payloads to it, so steady-state point-to-point traffic
// recycles memory instead of allocating per message.
type World struct {
	size  int
	boxes []*mailbox
	bufs  sync.Pool // of []float64, stored len 0
}

// getBuf returns a payload buffer of length n, reusing pooled capacity.
func (w *World) getBuf(n int) []float64 {
	if v := w.bufs.Get(); v != nil {
		if b := v.([]float64); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// putBuf recycles a payload buffer whose contents are no longer referenced.
func (w *World) putBuf(b []float64) {
	if cap(b) > 0 {
		w.bufs.Put(b[:0]) //nolint:staticcheck // slice headers are what the pool stores
	}
}

// mailbox holds a rank's incoming messages with (src, tag) matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []packet
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(p packet) {
	m.mu.Lock()
	m.pending = append(m.pending, p)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) get(src, tag int) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, p := range m.pending {
			if p.src == src && p.tag == tag {
				m.pending = append(m.pending[:i], m.pending[i+1:]...)
				return p.data
			}
		}
		m.cond.Wait()
	}
}

// NewWorld creates a world of the given size.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpisim: invalid world size %d", size)
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
	// acc1/rbuf1 are the scalar-collective scratch buffers; a Comm serves
	// one rank goroutine, so they need no locking.
	acc1, rbuf1 [1]float64
}

// Comm returns the endpoint for a rank.
func (w *World) Comm(rank int) (*Comm, error) {
	if rank < 0 || rank >= w.size {
		return nil, fmt.Errorf("mpisim: rank %d out of range 0..%d", rank, w.size-1)
	}
	return &Comm{world: w, rank: rank}, nil
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to dst with a tag. Sends never block (asynchronous
// semantics: the payload is copied into the destination mailbox).
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("mpisim: send to invalid rank %d", dst)
	}
	if dst == c.rank {
		return fmt.Errorf("mpisim: send to self (rank %d)", c.rank)
	}
	cp := c.world.getBuf(len(data))
	copy(cp, data)
	c.world.boxes[dst].put(packet{src: c.rank, tag: tag, data: cp})
	return nil
}

// Request tracks an asynchronous send. Sends in this runtime buffer
// eagerly, so completion is immediate; the type exists so application code
// can follow the paper's structure — "asynchronous sends to each neighbor
// are posted, followed by operations to ensure the send operations have
// completed, and finally, blocking receives are posted".
type Request struct {
	err  error
	done bool
}

// Wait blocks until the operation completes and returns its error.
func (r *Request) Wait() error {
	r.done = true
	return r.err
}

// Done reports whether Wait has been called.
func (r *Request) Done() bool { return r.done }

// Isend posts an asynchronous send and returns a request to wait on.
func (c *Comm) Isend(dst, tag int, data []float64) *Request {
	return &Request{err: c.Send(dst, tag, data)}
}

// Waitall waits on every request and returns the first error.
func Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Recv blocks until a message with the given source and tag arrives. The
// returned slice is owned by the caller and is never recycled.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if src < 0 || src >= c.world.size {
		return nil, fmt.Errorf("mpisim: recv from invalid rank %d", src)
	}
	if src == c.rank {
		return nil, fmt.Errorf("mpisim: recv from self (rank %d)", c.rank)
	}
	return c.world.boxes[c.rank].get(src, tag), nil
}

// RecvInto blocks like Recv but copies the payload into dst (grown if its
// capacity is short) and recycles the transport buffer into the world's
// pool. It returns dst resized to the payload length. The hot exchange
// paths use this so steady-state traffic is allocation-free.
func (c *Comm) RecvInto(src, tag int, dst []float64) ([]float64, error) {
	if src < 0 || src >= c.world.size {
		return nil, fmt.Errorf("mpisim: recv from invalid rank %d", src)
	}
	if src == c.rank {
		return nil, fmt.Errorf("mpisim: recv from self (rank %d)", c.rank)
	}
	data := c.world.boxes[c.rank].get(src, tag)
	if cap(dst) < len(data) {
		dst = make([]float64, len(data))
	} else {
		dst = dst[:len(data)]
	}
	copy(dst, data)
	c.world.putBuf(data)
	return dst, nil
}

// Batch accumulates asynchronous sends without the per-request allocation
// Isend costs: requests live by value in a reusable slice. Waitall drains
// the batch and resets it for the next exchange.
type Batch struct{ reqs []Request }

// Isend posts an asynchronous send into the batch.
func (b *Batch) Isend(c *Comm, dst, tag int, data []float64) {
	b.reqs = append(b.reqs, Request{err: c.Send(dst, tag, data)})
}

// Waitall waits on every batched request, returns the first error, and
// resets the batch.
func (b *Batch) Waitall() error {
	var first error
	for i := range b.reqs {
		if err := b.reqs[i].Wait(); err != nil && first == nil {
			first = err
		}
	}
	b.reqs = b.reqs[:0]
	return first
}

// Internal collective tags live far above user space.
const (
	tagReduce = 1 << 28
	tagBcast  = 1 << 29
	tagGather = 1 << 27
)

// reduceOp combines two equal-length vectors elementwise.
type reduceOp func(dst, src []float64)

func opSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

func opMin(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

func opMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// allreduce runs a binomial-tree reduce to rank 0 followed by a broadcast.
// epoch distinguishes concurrent collectives issued by well-synchronized
// callers (each collective call site must be reached by every rank in the
// same order, as in MPI).
func (c *Comm) allreduce(vals []float64, op reduceOp, epoch int) ([]float64, error) {
	size := c.world.size
	acc := make([]float64, len(vals))
	copy(acc, vals)
	// Reduce: at each round, ranks with the round bit set send to their
	// partner and exit; others receive and combine.
	for bit := 1; bit < size; bit <<= 1 {
		if c.rank&bit != 0 {
			dst := c.rank &^ bit
			if err := c.Send(dst, tagReduce+epoch, acc); err != nil {
				return nil, err
			}
			break
		}
		src := c.rank | bit
		if src < size {
			got, err := c.Recv(src, tagReduce+epoch)
			if err != nil {
				return nil, err
			}
			if len(got) != len(acc) {
				return nil, fmt.Errorf("mpisim: allreduce length mismatch %d vs %d", len(got), len(acc))
			}
			op(acc, got)
		}
	}
	return c.bcastFrom0(acc, epoch)
}

// bcastFrom0 broadcasts rank 0's value down the binomial tree.
func (c *Comm) bcastFrom0(vals []float64, epoch int) ([]float64, error) {
	size := c.world.size
	// Find the highest bit of the world.
	top := 1
	for top < size {
		top <<= 1
	}
	if c.rank != 0 {
		// Receive from the parent: clear the lowest set bit.
		parent := c.rank &^ (c.rank & -c.rank)
		got, err := c.Recv(parent, tagBcast+epoch)
		if err != nil {
			return nil, err
		}
		vals = got
	}
	// Forward to children: set bits below the lowest set bit (rank 0:
	// all bits).
	low := c.rank & -c.rank
	if c.rank == 0 {
		low = top
	}
	for bit := low >> 1; bit >= 1; bit >>= 1 {
		child := c.rank | bit
		if child < size && child != c.rank {
			if err := c.Send(child, tagBcast+epoch, vals); err != nil {
				return nil, err
			}
		}
	}
	return vals, nil
}

// allreduceScalar is the alloc-free single-value variant of allreduce: the
// accumulator and receive buffer live on the Comm, and the scalar result
// needs no escaping slice. It is wire-compatible with the slice variant
// (same tags, same tree), so mixing them across ranks would even work; the
// hydro exchanger uses it for the ~15 scalar reductions every timestep.
func (c *Comm) allreduceScalar(v float64, op reduceOp, epoch int) (float64, error) {
	size := c.world.size
	c.acc1[0] = v
	acc := c.acc1[:]
	for bit := 1; bit < size; bit <<= 1 {
		if c.rank&bit != 0 {
			dst := c.rank &^ bit
			if err := c.Send(dst, tagReduce+epoch, acc); err != nil {
				return 0, err
			}
			break
		}
		src := c.rank | bit
		if src < size {
			got, err := c.RecvInto(src, tagReduce+epoch, c.rbuf1[:])
			if err != nil {
				return 0, err
			}
			if len(got) != 1 {
				return 0, fmt.Errorf("mpisim: allreduce length mismatch %d vs 1", len(got))
			}
			op(acc, got)
		}
	}
	// Scalar broadcast of rank 0's accumulator down the binomial tree.
	top := 1
	for top < size {
		top <<= 1
	}
	if c.rank != 0 {
		parent := c.rank &^ (c.rank & -c.rank)
		got, err := c.RecvInto(parent, tagBcast+epoch, acc)
		if err != nil {
			return 0, err
		}
		if len(got) != 1 {
			return 0, fmt.Errorf("mpisim: bcast length mismatch %d vs 1", len(got))
		}
	}
	low := c.rank & -c.rank
	if c.rank == 0 {
		low = top
	}
	for bit := low >> 1; bit >= 1; bit >>= 1 {
		child := c.rank | bit
		if child < size && child != c.rank {
			if err := c.Send(child, tagBcast+epoch, acc); err != nil {
				return 0, err
			}
		}
	}
	return acc[0], nil
}

// AllreduceSumScalar is the alloc-free scalar form of AllreduceSum.
func (c *Comm) AllreduceSumScalar(v float64, epoch int) (float64, error) {
	return c.allreduceScalar(v, opSum, 3*epoch)
}

// AllreduceMinScalar is the alloc-free scalar form of AllreduceMin.
func (c *Comm) AllreduceMinScalar(v float64, epoch int) (float64, error) {
	return c.allreduceScalar(v, opMin, 3*epoch+1)
}

// AllreduceMaxScalar is the alloc-free scalar form of AllreduceMax.
func (c *Comm) AllreduceMaxScalar(v float64, epoch int) (float64, error) {
	return c.allreduceScalar(v, opMax, 3*epoch+2)
}

// AllreduceSum returns the elementwise sum across ranks. The epoch must be
// unique per collective call site within a phase (any small non-negative
// integer reused consistently by all ranks).
func (c *Comm) AllreduceSum(vals []float64, epoch int) ([]float64, error) {
	return c.allreduce(vals, opSum, 3*epoch)
}

// AllreduceMin returns the elementwise minimum across ranks.
func (c *Comm) AllreduceMin(vals []float64, epoch int) ([]float64, error) {
	return c.allreduce(vals, opMin, 3*epoch+1)
}

// AllreduceMax returns the elementwise maximum across ranks.
func (c *Comm) AllreduceMax(vals []float64, epoch int) ([]float64, error) {
	return c.allreduce(vals, opMax, 3*epoch+2)
}

// Bcast broadcasts root's data to every rank (binomial tree rooted at 0;
// non-zero roots relay through 0).
func (c *Comm) Bcast(root int, data []float64, epoch int) ([]float64, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpisim: bcast from invalid root %d", root)
	}
	ep := tagGather + 2*epoch
	if root != 0 {
		if c.rank == root {
			if err := c.Send(0, ep, data); err != nil {
				return nil, err
			}
		}
		if c.rank == 0 {
			got, err := c.Recv(root, ep)
			if err != nil {
				return nil, err
			}
			data = got
		}
	}
	return c.bcastFrom0(data, tagGather-tagBcast+2*epoch+1)
}

// Gather collects every rank's equal-length contribution at the root,
// ordered by rank. Non-root ranks receive nil.
func (c *Comm) Gather(root int, data []float64, epoch int) ([][]float64, error) {
	if root < 0 || root >= c.world.size {
		return nil, fmt.Errorf("mpisim: gather to invalid root %d", root)
	}
	ep := tagGather + tagReduce + epoch
	if c.rank != root {
		return nil, c.Send(root, ep, data)
	}
	out := make([][]float64, c.world.size)
	cp := make([]float64, len(data))
	copy(cp, data)
	out[c.rank] = cp
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		got, err := c.Recv(r, ep)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// Barrier synchronizes all ranks.
func (c *Comm) Barrier(epoch int) error {
	_, err := c.AllreduceSum([]float64{0}, 1<<20+epoch)
	return err
}

// Run spawns size ranks, each executing body, and waits for completion.
// The first non-nil error is returned.
//
//krakcheck:ignore ctxflow bounded fork-join that always joins before returning; rank bodies exchange via in-memory channels and have no cancellation points to thread ctx into
func Run(size int, body func(c *Comm) error) error {
	w, err := NewWorld(size)
	if err != nil {
		return err
	}
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		comm, err := w.Comm(r)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(rank int, c *Comm) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpisim: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = body(c)
		}(r, comm)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
