package mpisim

import (
	"math"
	"sync"
	"testing"
)

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Comm(2); err == nil {
		t.Fatal("rank out of range accepted")
	}
	c, err := w.Comm(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rank() != 1 || c.Size() != 2 {
		t.Fatalf("rank/size = %d/%d", c.Rank(), c.Size())
	}
}

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []float64{1, 2, 3})
		}
		got, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if len(got) != 3 || got[2] != 3 {
			t.Errorf("got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvErrors(t *testing.T) {
	w, _ := NewWorld(2)
	c, _ := w.Comm(0)
	if err := c.Send(5, 0, nil); err == nil {
		t.Fatal("send to invalid rank accepted")
	}
	if err := c.Send(0, 0, nil); err == nil {
		t.Fatal("send to self accepted")
	}
	if _, err := c.Recv(5, 0); err == nil {
		t.Fatal("recv from invalid rank accepted")
	}
	if _, err := c.Recv(0, 0); err == nil {
		t.Fatal("recv from self accepted")
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []float64{1}); err != nil {
				return err
			}
			return c.Send(1, 2, []float64{2})
		}
		// Receive tag 2 first even though tag 1 arrived first.
		got2, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		got1, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if got1[0] != 1 || got2[0] != 2 {
			t.Errorf("tag matching broken: %v %v", got1, got2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendCopiesPayload(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			data := []float64{42}
			if err := c.Send(1, 0, data); err != nil {
				return err
			}
			data[0] = 99 // must not affect the receiver
			return nil
		}
		got, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		if got[0] != 42 {
			t.Errorf("payload aliased: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func allreduceSizes() []int { return []int{1, 2, 3, 4, 5, 7, 8, 16} }

func TestAllreduceSum(t *testing.T) {
	for _, size := range allreduceSizes() {
		var mu sync.Mutex
		results := map[int]float64{}
		err := Run(size, func(c *Comm) error {
			out, err := c.AllreduceSum([]float64{float64(c.Rank() + 1)}, 0)
			if err != nil {
				return err
			}
			mu.Lock()
			results[c.Rank()] = out[0]
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		want := float64(size*(size+1)) / 2
		for r, v := range results {
			if v != want {
				t.Fatalf("size %d rank %d: sum = %v, want %v", size, r, v, want)
			}
		}
	}
}

func TestAllreduceMinMax(t *testing.T) {
	const size = 6
	err := Run(size, func(c *Comm) error {
		mn, err := c.AllreduceMin([]float64{float64(c.Rank())}, 1)
		if err != nil {
			return err
		}
		mx, err := c.AllreduceMax([]float64{float64(c.Rank())}, 2)
		if err != nil {
			return err
		}
		if mn[0] != 0 {
			t.Errorf("min = %v", mn[0])
		}
		if mx[0] != size-1 {
			t.Errorf("max = %v", mx[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	const size = 5
	for root := 0; root < size; root++ {
		err := Run(size, func(c *Comm) error {
			var data []float64
			if c.Rank() == root {
				data = []float64{float64(100 + root)}
			} else {
				data = []float64{-1}
			}
			got, err := c.Bcast(root, data, root)
			if err != nil {
				return err
			}
			if got[0] != float64(100+root) {
				t.Errorf("root %d rank %d: got %v", root, c.Rank(), got[0])
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}

func TestGather(t *testing.T) {
	const size = 4
	err := Run(size, func(c *Comm) error {
		rows, err := c.Gather(2, []float64{float64(c.Rank() * 10)}, 0)
		if err != nil {
			return err
		}
		if c.Rank() != 2 {
			if rows != nil {
				t.Errorf("non-root got rows")
			}
			return nil
		}
		for r := 0; r < size; r++ {
			if rows[r][0] != float64(r*10) {
				t.Errorf("gather row %d = %v", r, rows[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAndSequences(t *testing.T) {
	// Back-to-back collectives with the same epoch must not interfere
	// (FIFO matching within (src, tag)).
	const size = 4
	err := Run(size, func(c *Comm) error {
		for i := 0; i < 10; i++ {
			out, err := c.AllreduceSum([]float64{1}, 0)
			if err != nil {
				return err
			}
			if out[0] != size {
				t.Errorf("iteration %d: sum = %v", i, out[0])
			}
			if err := c.Barrier(0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			// Avoid deadlock: rank 0 does nothing.
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not propagated")
	}
}

func TestAllreduceVectorPayload(t *testing.T) {
	const size = 3
	err := Run(size, func(c *Comm) error {
		out, err := c.AllreduceSum([]float64{1, 2, 3}, 0)
		if err != nil {
			return err
		}
		for i, v := range out {
			if math.Abs(v-float64(size*(i+1))) > 1e-12 {
				t.Errorf("element %d = %v", i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
