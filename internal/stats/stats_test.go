package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanMaxMinSum(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Mean(xs); got != 2.8 {
		t.Fatalf("Mean = %v, want 2.8", got)
	}
	if got := Max(xs); got != 5 {
		t.Fatalf("Max = %v, want 5", got)
	}
	if got := Min(xs); got != 1 {
		t.Fatalf("Min = %v, want 1", got)
	}
	if got := Sum(xs); got != 14 {
		t.Fatalf("Sum = %v, want 14", got)
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 || Sum(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
	if StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Fatal("StdDev of <2 samples should be 0")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("Percentile of empty should be 0")
	}
	if Imbalance(nil) != 0 || Imbalance([]float64{0, 0}) != 0 {
		t.Fatal("Imbalance of empty/zero should be 0")
	}
}

func TestStdDevKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	got := StdDev(xs)
	want := math.Sqrt(32.0 / 7.0) // sample stdev
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %v, want %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	if got := Percentile(xs, 0); got != 15 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 35 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 20 {
		t.Fatalf("P25 = %v", got)
	}
	// Does not mutate input.
	if xs[0] != 15 || xs[4] != 50 {
		t.Fatal("Percentile mutated input")
	}
}

func TestRelErrPaperConvention(t *testing.T) {
	// Table 6 row: Meas 61, Pred 66 -> -8.0% (paper convention).
	got := RelErr(61, 66)
	if math.Abs(got-(-5.0/61.0)) > 1e-12 {
		t.Fatalf("RelErr(61,66) = %v", got)
	}
	if FormatPct(got) != "-8.2%" {
		t.Fatalf("FormatPct = %q", FormatPct(got))
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(0, 1), 1) {
		t.Fatal("RelErr(0,1) should be +Inf")
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance([]float64{1, 1, 1, 1}); got != 1 {
		t.Fatalf("balanced Imbalance = %v, want 1", got)
	}
	if got := Imbalance([]float64{2, 1, 1}); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Imbalance = %v, want 1.5", got)
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

func TestSplitMix64Range(t *testing.T) {
	g := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	g = NewSplitMix64(8)
	for i := 0; i < 10000; i++ {
		s := g.Sym()
		if s < -1 || s >= 1 {
			t.Fatalf("Sym out of range: %v", s)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(1, 2, 3)
	b := Derive(1, 2, 4)
	c := Derive(1, 2, 3)
	if a.Next() != c.Next() {
		t.Fatal("Derive not deterministic")
	}
	if a.Next() == b.Next() {
		t.Fatal("distinct keys produced identical streams (suspicious)")
	}
}

func TestSplitMix64MeanProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewSplitMix64(seed)
		var s float64
		const n = 4096
		for i := 0; i < n; i++ {
			s += g.Float64()
		}
		mean := s / n
		return mean > 0.45 && mean < 0.55
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxGEMeanGEMinProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			// Skip NaN/Inf and magnitudes whose sum could overflow.
			if math.IsNaN(x) || math.Abs(x) > 1e300 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		return Max(xs) >= Mean(xs) && Mean(xs) >= Min(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
