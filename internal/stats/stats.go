// Package stats provides small statistics helpers shared by the Krak
// performance-model experiments: summary statistics, relative-error
// computation, and a deterministic splittable RNG used to inject
// reproducible measurement noise into the cluster simulator.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the sample standard deviation of xs (n-1 denominator), or 0
// when fewer than two samples are provided.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// RelErr returns (predicted-measured)/measured. By the paper's convention in
// Tables 5 and 6, a positive error means under-prediction is negative — the
// paper reports Error = (Meas - Pred) / Meas. We follow the paper.
func RelErr(measured, predicted float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (measured - predicted) / measured
}

// FormatPct renders a fraction as a signed percentage like the paper's
// validation tables ("-8.0%", "2.9%").
func FormatPct(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Imbalance returns max/mean for a slice of non-negative load values; 1.0 is
// perfectly balanced. Returns 0 for empty or all-zero input.
func Imbalance(loads []float64) float64 {
	m := Mean(loads)
	if m == 0 {
		return 0
	}
	return Max(loads) / m
}

// SplitMix64 is a tiny deterministic PRNG (the splitmix64 generator). It is
// used to derive reproducible per-(PE, phase) noise in the cluster simulator
// without any global state or lock contention.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 seeds a generator.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64-bit value.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Sym returns a uniform value in [-1, 1).
func (s *SplitMix64) Sym() float64 { return 2*s.Float64() - 1 }

// Derive returns a new generator whose stream is a deterministic function of
// the parent seed and the given keys; streams for distinct keys are
// independent for practical purposes.
func Derive(seed uint64, keys ...uint64) *SplitMix64 {
	h := seed
	for _, k := range keys {
		h ^= k + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		mix := SplitMix64{state: h}
		h = mix.Next()
	}
	return NewSplitMix64(h)
}
