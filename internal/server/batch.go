package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"krak/internal/engine"
	"krak/pkg/krak"
)

// predictBatcher micro-batches concurrent predict calls into one engine
// dispatch: the first job to arrive opens a collection window, every job
// that lands inside it joins the batch, and when the window closes (or
// the batch hits maxBatch) the whole batch is submitted as a single
// engine.Map over the server's worker pool. Analytic predictions are
// cheap per query, so under concurrent load the dispatch overhead —
// goroutine wakeups, pool token traffic — is the cost worth amortizing;
// a lone request pays at most the window in extra latency.
//
// Jobs are isolated: each records its own result and error, so one
// failing prediction cannot abort the strangers sharing its batch (the
// reason this is engine.Map with captured errors rather than
// Session.Sweep's fail-fast contract).
type predictBatcher struct {
	pool   *engine.Pool
	window time.Duration

	mu    sync.Mutex
	queue []*predictJob
	// timer is the window timer armed by the current queue's first job;
	// gen numbers queue generations. Both guard against the stale-timer
	// bug: a batch that fills to maxBatch dispatches early, and the timer
	// its first job armed must not survive to fire into the *next* batch's
	// window and flush it prematurely. The timer is stopped on early
	// dispatch, and — because Stop cannot win a race against a timer
	// already firing — flush additionally ignores timers whose generation
	// is no longer current.
	timer *time.Timer
	gen   uint64

	// batches and jobs count dispatches and the jobs they carried — the
	// coalescing ratio /healthz reports.
	batches atomic.Int64
	jobs    atomic.Int64
}

type predictJob struct {
	m    *krak.Machine
	sc   *krak.Scenario
	res  *krak.Result
	err  error
	done chan struct{}
}

// maxBatch flushes a batch early once it holds this many jobs, bounding
// the latency tail a pathological arrival burst could build up.
const maxBatch = 64

func newPredictBatcher(pool *engine.Pool, window time.Duration) *predictBatcher {
	return &predictBatcher{pool: pool, window: window}
}

// predict evaluates the scenario on the machine as part of a micro-batch
// and returns its result. Cancelling ctx abandons the wait (the batch
// still completes; the result is discarded).
func (b *predictBatcher) predict(ctx context.Context, m *krak.Machine, sc *krak.Scenario) (*krak.Result, error) {
	j := &predictJob{m: m, sc: sc, done: make(chan struct{})}
	b.mu.Lock()
	b.queue = append(b.queue, j)
	switch {
	case len(b.queue) >= maxBatch:
		// Early dispatch: take the batch AND retire its window timer, so
		// it cannot fire later and shrink the next batch's window.
		jobs := b.take()
		b.mu.Unlock()
		go b.dispatch(jobs)
	case len(b.queue) == 1:
		// First job in: open the window. The timer flushes whatever has
		// accumulated by then — but only this queue generation; a timer
		// that outlives its batch is a no-op.
		gen := b.gen
		b.timer = time.AfterFunc(b.window, func() { b.flush(gen) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}

	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// take removes and returns the queued jobs, stops the current window
// timer, and advances the generation so a timer already past Stop's reach
// (mid-fire, blocked on the mutex) recognizes itself as stale. Callers
// must hold b.mu.
func (b *predictBatcher) take() []*predictJob {
	jobs := b.queue
	b.queue = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.gen++
	return jobs
}

// flush takes the queued jobs and dispatches them as one batch. It is the
// window timer's target: gen identifies the queue generation the timer
// was armed for, and a stale timer — its batch already dispatched early —
// finds the generation advanced and does nothing.
func (b *predictBatcher) flush(gen uint64) {
	b.mu.Lock()
	if gen != b.gen {
		b.mu.Unlock()
		return
	}
	jobs := b.take()
	b.mu.Unlock()
	if len(jobs) > 0 {
		b.dispatch(jobs)
	}
}

// close flushes any batch still waiting on its window timer, running it
// synchronously. Server.Close calls it after the HTTP listener drains:
// by then no new jobs can arrive, but a batch whose window opened just
// before the drain may still be queued, and its (already-disconnected)
// waiters' compute must complete rather than leak a live timer.
func (b *predictBatcher) close() {
	b.mu.Lock()
	jobs := b.take()
	b.mu.Unlock()
	if len(jobs) > 0 {
		b.dispatch(jobs)
	}
}

// dispatch runs one batch as a single engine.Map, capturing each job's
// outcome on the job itself.
func (b *predictBatcher) dispatch(jobs []*predictJob) {
	b.batches.Add(1)
	b.jobs.Add(int64(len(jobs)))
	// The per-job error lands on the job, never on the Map, so the only
	// Map error is context cancellation — impossible with Background.
	engine.Map(context.Background(), b.pool, len(jobs), func(_ context.Context, i int) (struct{}, error) {
		j := jobs[i]
		defer close(j.done)
		sess, err := krak.NewSession(j.m, j.sc)
		if err != nil {
			j.err = err
			return struct{}{}, nil
		}
		j.res, j.err = sess.Predict()
		return struct{}{}, nil
	})
}
