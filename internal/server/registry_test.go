package server

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"krak/pkg/krak"
)

// updateGolden rewrites the machine-history golden instead of comparing:
//
//	go test ./internal/server -run TestMachineRegistryLifecycle -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the machine-history golden file")

// synthText generates a deterministic measurement file from a machine
// file: noiseless analytic-model runs over the (deck, PEs) grid.
func synthText(t *testing.T, machineFile string, decks []string, pes []int) string {
	t.Helper()
	m, err := krak.LoadMachine([]byte(machineFile))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := krak.NewScenario(krak.WithModel(krak.GeneralHeterogeneous))
	if err != nil {
		t.Fatal(err)
	}
	s, err := krak.NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.SynthesizeDataset(context.Background(), krak.SweepPredict, decks, pes)
	if err != nil {
		t.Fatal(err)
	}
	return string(ds.Format())
}

const (
	registryMachineA = "machine labA\nnetwork a-net\nsegment 0 20 200\ncompute-scale 1.7\nquick\n"
	registryMachineB = "machine labB\nnetwork b-net\nsegment 0 200 40\ncompute-scale 1.7\nquick\n"
)

// TestMachineRegistryLifecycle walks the calibration lifecycle end to
// end: calibrate → register under the fitted fingerprint → fetch the
// history (pinned against a golden) → append same-machine data (quiet)
// → append changed-machine data (drift flagged, metric bumped) → restart
// on the same cache directory and serve the history byte-identically
// without refitting.
func TestMachineRegistryLifecycle(t *testing.T) {
	dir := t.TempDir()
	s := quickServer(func(c *Config) { c.CacheDir = dir })

	baseText := synthText(t, registryMachineA, []string{"small", "figure2"}, []int{2, 4, 8, 16, 32})
	freshSame := synthText(t, registryMachineA, []string{"small"}, []int{3, 6, 12, 24})
	freshMoved := synthText(t, registryMachineB, []string{"small"}, []int{3, 6, 12, 24})

	// Calibrate and pull the fitted fingerprint off the result.
	calBody, err := json.Marshal(krak.CalibrateRequest{Dataset: baseText, Folds: 3, Model: "general-het"})
	if err != nil {
		t.Fatal(err)
	}
	w := post(t, s, "/v1/calibrate", string(calBody))
	if w.Code != http.StatusOK {
		t.Fatalf("calibrate: %d %s", w.Code, w.Body)
	}
	var cr krak.CalibrationResult
	if err := json.Unmarshal(w.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.FittedFingerprint == "" {
		t.Fatal("calibration result carries no fitted fingerprint")
	}
	fp := cr.FittedFingerprint

	// Unregistered fingerprints are 404 for history and append alike.
	if w := get(t, s, "/v1/machines/"+fp); w.Code != http.StatusNotFound {
		t.Fatalf("history before registration: %d", w.Code)
	}
	missBody, _ := json.Marshal(krak.AppendRequest{Fingerprint: fp, Dataset: freshSame, Model: "general-het"})
	if w := post(t, s, "/v1/calibrate/append", string(missBody)); w.Code != http.StatusNotFound {
		t.Fatalf("append before registration: %d %s", w.Code, w.Body)
	}

	// Registration under the wrong fingerprint is refused.
	regBody, err := json.Marshal(krak.RegisterMachineRequest{Result: &cr, Dataset: baseText})
	if err != nil {
		t.Fatal(err)
	}
	if w := post(t, s, "/v1/machines/deadbeef", string(regBody)); w.Code != http.StatusBadRequest {
		t.Fatalf("mismatched register: %d %s", w.Code, w.Body)
	}
	w = post(t, s, "/v1/machines/"+fp, string(regBody))
	if w.Code != http.StatusOK {
		t.Fatalf("register: %d %s", w.Code, w.Body)
	}

	// The stored history round-trips the schema stamp and is pinned
	// against a golden file.
	w = get(t, s, "/v1/machines/"+fp)
	if w.Code != http.StatusOK {
		t.Fatalf("history: %d %s", w.Code, w.Body)
	}
	v1Body := w.Body.String()
	var hist krak.MachineHistory
	if err := json.Unmarshal([]byte(v1Body), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Fingerprint != fp || len(hist.Versions) != 1 || hist.Versions[0].Version != 1 {
		t.Fatalf("history after registration: %+v", hist)
	}
	if hist.Versions[0].Dataset != baseText {
		t.Error("registered dataset text drifted")
	}
	goldenPath := filepath.Join("testdata", "golden", "machine_history.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(v1Body), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
		}
		if v1Body != string(want) {
			t.Errorf("machine history drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", v1Body, want)
		}
	}

	// Same-machine append: quiet drift check, byte-identical to the
	// library path (the contract the CLI's -append flag rides on).
	sameBody, _ := json.Marshal(krak.AppendRequest{Fingerprint: fp, Dataset: freshSame, Model: "general-het"})
	w = post(t, s, "/v1/calibrate/append", string(sameBody))
	if w.Code != http.StatusOK {
		t.Fatalf("append: %d %s", w.Code, w.Body)
	}
	var appended krak.CalibrationResult
	if err := json.Unmarshal(w.Body.Bytes(), &appended); err != nil {
		t.Fatal(err)
	}
	if appended.Drift == nil || appended.Drift.Flagged {
		t.Fatalf("same-machine append drift: %+v", appended.Drift)
	}
	m, err := krak.NewMachine(krak.WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := krak.NewScenario(krak.WithModel(krak.GeneralHeterogeneous))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	base, err := krak.ParseDataset([]byte(baseText))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := krak.ParseDataset([]byte(freshSame))
	if err != nil {
		t.Fatal(err)
	}
	localCR, err := sess.CalibrateAppend(context.Background(), base, fresh, krak.CalibrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	localBytes, err := renderJSON(localCR)
	if err != nil {
		t.Fatal(err)
	}
	if w.Body.String() != string(localBytes) {
		t.Error("append response is not byte-identical to Session.CalibrateAppend")
	}

	// Changed-machine append: the drift flag trips and the counter
	// metric pins it.
	movedBody, _ := json.Marshal(krak.AppendRequest{Fingerprint: fp, Dataset: freshMoved, Model: "general-het"})
	w = post(t, s, "/v1/calibrate/append", string(movedBody))
	if w.Code != http.StatusOK {
		t.Fatalf("moved append: %d %s", w.Code, w.Body)
	}
	var moved krak.CalibrationResult
	if err := json.Unmarshal(w.Body.Bytes(), &moved); err != nil {
		t.Fatal(err)
	}
	if moved.Drift == nil || !moved.Drift.Flagged {
		t.Fatalf("changed-machine append did not flag drift: %+v", moved.Drift)
	}
	metrics := get(t, s, "/metrics").Body.String()
	if !strings.Contains(metrics, "krak_calib_drift_flagged_total 1") {
		t.Errorf("drift counter not pinned at 1 in /metrics:\n%s", grepMetric(metrics, "krak_calib_drift"))
	}

	// Appends stacked two more versions under the original fingerprint.
	w = get(t, s, "/v1/machines/"+fp)
	if err := json.Unmarshal(w.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Versions) != 3 || hist.Versions[2].Version != 3 {
		t.Fatalf("history after appends: %d versions", len(hist.Versions))
	}
	finalBody := w.Body.String()

	// A restarted server on the same cache directory serves the stored
	// history byte-identically, straight from disk, without refitting.
	s2 := quickServer(func(c *Config) { c.CacheDir = dir })
	w = get(t, s2, "/v1/machines/"+fp)
	if w.Code != http.StatusOK {
		t.Fatalf("history after restart: %d %s", w.Code, w.Body)
	}
	if w.Body.String() != finalBody {
		t.Error("restarted server's history is not byte-identical")
	}
	// And the restarted registry keeps accepting appends with correct
	// version numbering.
	w = post(t, s2, "/v1/calibrate/append", string(sameBody))
	if w.Code != http.StatusOK {
		t.Fatalf("append after restart: %d %s", w.Code, w.Body)
	}
	w = get(t, s2, "/v1/machines/"+fp)
	if err := json.Unmarshal(w.Body.Bytes(), &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Versions) != 4 || hist.Versions[3].Version != 4 {
		t.Fatalf("history after restart append: %+v", hist.Versions)
	}
}

// grepMetric extracts the lines of a metrics dump mentioning a name, for
// failure messages.
func grepMetric(metrics, name string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestMachineRegistryBounds pins the registry's caps: novel fingerprints
// past maxRegistryMachines are refused while known ones keep accepting,
// and one machine's history is trimmed to maxRegistryVersions with
// version numbers still counting up.
func TestMachineRegistryBounds(t *testing.T) {
	reg := newMachineRegistry(nil)
	res := &krak.CalibrationResult{Model: "general-homo", Form: "linear"}
	for i := 0; i < maxRegistryMachines; i++ {
		if _, err := reg.register(fmt.Sprintf("fp-%03d", i), res, "obs small 2 0.05\n"); err != nil {
			t.Fatalf("register %d: %v", i, err)
		}
	}
	if _, err := reg.register("fp-novel", res, ""); err == nil {
		t.Fatal("registry accepted a novel fingerprint past the cap")
	} else if status := errorStatus(err); status != http.StatusServiceUnavailable {
		t.Fatalf("registry-full error maps to %d, want 503", status)
	}
	// Known fingerprints keep accepting versions past the cap, and the
	// history window slides while version numbers grow.
	for i := 0; i < maxRegistryVersions+3; i++ {
		if _, err := reg.register("fp-000", res, ""); err != nil {
			t.Fatalf("re-register %d: %v", i, err)
		}
	}
	v, err := reg.latest("fp-000")
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != maxRegistryVersions+4 {
		t.Fatalf("latest version %d, want %d", v.Version, maxRegistryVersions+4)
	}
	b, err := reg.history("fp-000")
	if err != nil {
		t.Fatal(err)
	}
	var hist krak.MachineHistory
	if err := json.Unmarshal(b, &hist); err != nil {
		t.Fatal(err)
	}
	if len(hist.Versions) != maxRegistryVersions {
		t.Fatalf("history holds %d versions, want %d", len(hist.Versions), maxRegistryVersions)
	}
	if hist.Versions[0].Version != 5 {
		t.Fatalf("oldest retained version %d, want 5", hist.Versions[0].Version)
	}
	if _, err := reg.history("fp-unknown"); errorStatus(err) != http.StatusNotFound {
		t.Fatalf("unknown fingerprint error maps to %d, want 404", errorStatus(err))
	}
}
