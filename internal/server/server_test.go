package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"krak/pkg/krak"
)

// quickServer builds a Server in the CI smoke configuration: quick
// machines, modest cache.
func quickServer(opts ...func(*Config)) *Server {
	cfg := Config{Quick: true, CacheSize: 64}
	for _, o := range opts {
		o(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// post sends a JSON body through the handler and returns the recorder.
func post(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestPredictByteIdenticalToCLI is the serving contract's acceptance
// test: POST /v1/predict must return exactly the bytes
// `krak predict -deck small -pe 16 -quick --json` prints — same
// MarshalIndent layout, same schema stamp, same trailing newline.
func TestPredictByteIdenticalToCLI(t *testing.T) {
	// The CLI path: machine from flags, scenario from flags, emit().
	m, err := krak.NewMachine(krak.WithInterconnect("qsnet"), krak.WithSeed(1), krak.WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := krak.NewScenario(krak.WithDeck("small"), krak.WithPE(16), krak.WithModel(krak.GeneralHomogeneous))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Predict()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	cli = append(cli, '\n') // fmt.Println in emit()

	s := quickServer()
	w := post(t, s, "/v1/predict", `{"deck":"small","pes":16}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Body.String(); got != string(cli) {
		t.Errorf("server response is not byte-identical to CLI --json output:\n--- server ---\n%s\n--- cli ---\n%s", got, cli)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}

	// A warm repeat must serve the same bytes from the cache.
	w2 := post(t, s, "/v1/predict", `{"deck":"small","pes":16}`)
	if w2.Body.String() != string(cli) {
		t.Error("cached response differs from first response")
	}
	if hits := s.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

// TestPredictResponseDecodes round-trips a response through the client
// side of the wire types, schema stamp included.
func TestPredictResponseDecodes(t *testing.T) {
	s := quickServer()
	w := post(t, s, "/v1/predict", `{"deck":"small","pes":8,"model":"general-het"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var res krak.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != krak.KindPredict || res.PEs != 8 || res.TotalSeconds <= 0 {
		t.Errorf("decoded result: %+v", res)
	}
	if res.Model != "general-het" {
		t.Errorf("model = %q", res.Model)
	}
}

// TestPredictMicroBatching opens a wide window, fires distinct cold
// predicts concurrently, and asserts they dispatched as one engine
// batch.
func TestPredictMicroBatching(t *testing.T) {
	s := quickServer(func(c *Config) { c.BatchWindow = 300 * time.Millisecond })
	// Prime the machine's artifact caches so the batched requests don't
	// serialize on the one-time calibration fill.
	post(t, s, "/v1/predict", `{"deck":"small","pes":2}`)

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"deck":"small","pes":%d}`, 4+i)
			w := post(t, s, "/v1/predict", body)
			if w.Code != http.StatusOK {
				t.Errorf("pe %d: status %d: %s", 4+i, w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()

	batches, jobs := s.batch.batches.Load(), s.batch.jobs.Load()
	// One batch for the primer, one for the concurrent burst.
	if batches != 2 || jobs != n+1 {
		t.Errorf("batches=%d jobs=%d, want 2 batches carrying %d jobs", batches, jobs, n+1)
	}
}

// TestDuplicateRequestsCoalesce fires identical cold requests
// concurrently and asserts the single-flight LRU ran one computation.
func TestDuplicateRequestsCoalesce(t *testing.T) {
	s := quickServer(func(c *Config) { c.BatchWindow = 50 * time.Millisecond })
	const n = 8
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
			bodies[i] = w.Body.String()
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if jobs := s.batch.jobs.Load(); jobs != 1 {
		t.Errorf("batcher saw %d jobs, want 1 (duplicates must coalesce before dispatch)", jobs)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := quickServer()
	w := post(t, s, "/v1/simulate", `{"deck":"small","pes":8,"iterations":2,"partitioner":"rcb"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var res krak.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != krak.KindSimulate || res.Iterations == nil || res.Iterations.Count != 2 {
		t.Errorf("decoded result: %+v", res)
	}
	if res.Partition == nil || res.Partition.Algorithm != "rcb" {
		t.Errorf("partition report: %+v", res.Partition)
	}
	// Deterministic, so cacheable: a repeat must hit.
	post(t, s, "/v1/simulate", `{"deck":"small","pes":8,"iterations":2,"partitioner":"rcb"}`)
	if hits := s.cacheHits.Load(); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}

func TestSweepEndpoint(t *testing.T) {
	s := quickServer()
	w := post(t, s, "/v1/sweep", `{"op":"predict","decks":["small"],"pes":[4,8,16]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var sr krak.SweepResult
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Op != krak.SweepPredict || len(sr.Points) != 3 {
		t.Fatalf("sweep: op=%s points=%d", sr.Op, len(sr.Points))
	}
	for i, pt := range sr.Points {
		if pt.Index != i || pt.Deck != "small" || pt.Result == nil || pt.Result.TotalSeconds <= 0 {
			t.Errorf("point %d: %+v", i, pt)
		}
	}
}

func TestExperimentEndpoints(t *testing.T) {
	s := quickServer()
	w := get(t, s, "/v1/experiments")
	if w.Code != http.StatusOK {
		t.Fatalf("list status %d", w.Code)
	}
	var infos []krak.ExperimentInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 17 {
		t.Fatalf("registry lists %d experiments, want 17", len(infos))
	}

	w = get(t, s, "/v1/experiments/table1")
	if w.Code != http.StatusOK {
		t.Fatalf("table1 status %d: %s", w.Code, w.Body.String())
	}
	var res krak.Result
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != krak.KindExperiment || res.Experiment == nil || res.Experiment.ID != "table1" {
		t.Errorf("decoded result: %+v", res.Experiment)
	}

	if w := get(t, s, "/v1/experiments/nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown experiment status %d, want 404", w.Code)
	}
}

func TestMachinesEndpoint(t *testing.T) {
	s := quickServer()
	w := get(t, s, "/v1/machines")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var infos []krak.MachineInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 || infos[0].Interconnect != "qsnet" {
		t.Errorf("machines: %+v", infos)
	}
}

func TestHealthz(t *testing.T) {
	s := quickServer()
	w := get(t, s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var h map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Errorf("status = %v", h["status"])
	}
	if h["cache_cap"] != float64(64) {
		t.Errorf("cache_cap = %v", h["cache_cap"])
	}
}

// TestErrorStatuses drives every rejection path and checks both status
// and the JSON error envelope.
func TestErrorStatuses(t *testing.T) {
	s := quickServer()
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad json", http.MethodPost, "/v1/predict", `{`, http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/predict", `{"wibble":1}`, http.StatusBadRequest},
		{"trailing data", http.MethodPost, "/v1/predict", `{} {}`, http.StatusBadRequest},
		{"bad deck", http.MethodPost, "/v1/predict", `{"deck":"tiny"}`, http.StatusBadRequest},
		{"bad pe", http.MethodPost, "/v1/predict", `{"pes":-4}`, http.StatusBadRequest},
		{"bad model", http.MethodPost, "/v1/predict", `{"model":"psychic"}`, http.StatusBadRequest},
		{"bad interconnect", http.MethodPost, "/v1/predict", `{"machine":{"interconnect":"carrier-pigeon"}}`, http.StatusBadRequest},
		{"bad partitioner", http.MethodPost, "/v1/simulate", `{"partitioner":"wishful"}`, http.StatusBadRequest},
		{"bad iterations", http.MethodPost, "/v1/simulate", `{"iterations":-1}`, http.StatusBadRequest},
		{"bad sweep op", http.MethodPost, "/v1/sweep", `{"op":"hydro"}`, http.StatusBadRequest},
		{"huge sweep", http.MethodPost, "/v1/sweep", `{"decks":["small","medium","large","figure2"],"pes":[` + bigPEList(2000) + `]}`, http.StatusBadRequest},
		{"wrong method", http.MethodGet, "/v1/predict", "", http.StatusMethodNotAllowed},
		{"unknown path", http.MethodGet, "/v1/wibble", "", http.StatusNotFound},
		{"bad seed query", http.MethodGet, "/v1/experiments/table1?seed=banana", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != tc.want {
				t.Fatalf("status %d, want %d: %s", w.Code, tc.want, w.Body.String())
			}
			if tc.want == http.StatusBadRequest {
				var env map[string]string
				if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env["error"] == "" {
					t.Errorf("missing error envelope: %s", w.Body.String())
				}
			}
		})
	}
}

func bigPEList(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", i+1)
	}
	return b.String()
}

// TestMachineCap checks the distinct-configuration cap: novel specs past
// maxMachines are refused while known ones keep serving.
func TestMachineCap(t *testing.T) {
	s := quickServer()
	for i := 0; i < maxMachines; i++ {
		ms := krak.MachineSpec{Seed: uint64(i + 1), Quick: true}.Normalized()
		if _, err := s.machineFor(ms); err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
	}
	if _, err := s.machineFor(krak.MachineSpec{Seed: 9999, Quick: true}.Normalized()); err == nil {
		t.Fatal("machine past the cap was accepted")
	}
	// A known configuration still serves.
	if _, err := s.machineFor(krak.MachineSpec{Seed: 1, Quick: true}.Normalized()); err != nil {
		t.Fatalf("known machine refused: %v", err)
	}
	// And the HTTP surface reports 503 for the novel one.
	w := post(t, s, "/v1/predict", `{"machine":{"seed":12345}}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", w.Code)
	}
}

// TestQuickDefaultApplied asserts a server started with Quick treats
// every request as quick — the contract the CI smoke job's CLI diff
// relies on.
func TestQuickDefaultApplied(t *testing.T) {
	s := quickServer()
	w := post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if s.machines.Len() != 1 {
		t.Fatalf("machines = %d", s.machines.Len())
	}
	if !s.machines.Has(krak.MachineSpec{Quick: true}.Fingerprint()) {
		t.Error("request was not served by the quick machine")
	}
}

// TestInvalidSpecsDoNotConsumeMachineCap is the regression test for the
// cap-poisoning bug: a stream of invalid machine specs must be rejected
// without entering the machine cache, leaving the cap for real
// configurations.
func TestInvalidSpecsDoNotConsumeMachineCap(t *testing.T) {
	s := quickServer()
	for i := 0; i < maxMachines+8; i++ {
		body := fmt.Sprintf(`{"machine":{"interconnect":"bogus-%d"}}`, i)
		if w := post(t, s, "/v1/predict", body); w.Code != http.StatusBadRequest {
			t.Fatalf("invalid spec %d: status %d, want 400", i, w.Code)
		}
	}
	if n := s.machines.Len(); n != 0 {
		t.Fatalf("invalid specs entered the machine cache: len=%d", n)
	}
	if w := post(t, s, "/v1/predict", `{"deck":"small","pes":4}`); w.Code != http.StatusOK {
		t.Fatalf("valid request refused after invalid stream: %d %s", w.Code, w.Body.String())
	}
}

// TestCoalescedWaitersSurviveCancel is the regression test for the
// captured-context bug: the single-flight fill must run detached, so a
// canceled first requester cannot fail the strangers coalesced onto its
// computation.
func TestCoalescedWaitersSurviveCancel(t *testing.T) {
	s := quickServer(func(c *Config) { c.BatchWindow = 100 * time.Millisecond })
	ctx, cancel := context.WithCancel(context.Background())
	first := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"deck":"small","pes":4}`)).WithContext(ctx)
	done := make(chan int, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, first)
		done <- w.Code
	}()
	time.Sleep(20 * time.Millisecond) // let the first request open the fill
	cancel()                          // first client disconnects mid-compute
	<-done

	// A fresh, healthy request for the same key must still succeed.
	w := post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
	if w.Code != http.StatusOK {
		t.Fatalf("request after canceled peer: status %d: %s", w.Code, w.Body.String())
	}
}
