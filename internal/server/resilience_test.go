package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"krak/pkg/krak"
)

// TestMachineCapFullCarriesRetryAfter pins the transient-refusal
// contract the gateway's retry layer depends on: a machine-cache-full
// 503 is advertised as retryable, not as a dead end.
func TestMachineCapFullCarriesRetryAfter(t *testing.T) {
	s := quickServer()
	for i := 0; i < maxMachines; i++ {
		ms := krak.MachineSpec{Seed: uint64(i + 1), Quick: true}.Normalized()
		if _, err := s.machineFor(ms); err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
	}
	w := post(t, s, "/v1/predict", `{"machine":{"seed":424242}}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Fatal("machine-cache-full 503 without Retry-After")
	}
	// The cached-spec fast path refuses identically: same spec again.
	w = post(t, s, "/v1/predict", `{"machine":{"seed":424242}}`)
	if w.Code != http.StatusServiceUnavailable || w.Header().Get("Retry-After") == "" {
		t.Fatalf("repeat refusal: status %d, Retry-After %q", w.Code, w.Header().Get("Retry-After"))
	}
}

// TestJobStoreFullCarriesRetryAfter: a job store full of unfinished
// jobs answers 429 with a Retry-After.
func TestJobStoreFullCarriesRetryAfter(t *testing.T) {
	s := quickServer(func(c *Config) { c.MaxJobs = 1 })
	if _, err := s.jobs.add(time.Now()); err != nil {
		t.Fatal(err)
	}
	w := post(t, s, "/v1/jobs", `{"decks":["small"],"pes":[2]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got == "" {
		t.Fatal("job-store-full 429 without Retry-After")
	}
}

// TestCloseDrainsBackgroundJobs is the graceful-shutdown regression
// test: Close returns only after every background job goroutine has
// exited, leaves no temp files in the cache directory, refuses requests
// that arrive afterwards, and stays idempotent.
func TestCloseDrainsBackgroundJobs(t *testing.T) {
	dir := t.TempDir()
	s := quickServer(func(c *Config) { c.CacheDir = dir })
	// A sweep wide enough that some of it is still running when Close
	// lands, so the test exercises the drain rather than a no-op wait.
	w := post(t, s, "/v1/jobs", `{"decks":["small","medium"],"pes":[2,4,8,16,32,64]}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body.String())
	}

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return — a background job goroutine is stuck")
	}

	// The job goroutine has exited; the store may hold a finished or a
	// canceled job, but nothing still marked running.
	s.jobs.mu.Lock()
	for id, j := range s.jobs.jobs {
		if j.doneAt.IsZero() {
			t.Errorf("job %s still running after Close", id)
		}
	}
	s.jobs.mu.Unlock()

	// No half-written cache entries left behind.
	for _, pattern := range []string{
		filepath.Join(dir, ".tmp-*"),
		filepath.Join(dir, "*", ".tmp-*"),
		filepath.Join(dir, "*", "*", ".tmp-*"),
	} {
		matches, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 0 {
			t.Errorf("temp files left in the cache dir: %v", matches)
		}
	}

	// New work is refused with the transient-refusal contract.
	w = post(t, s, "/v1/predict", `{"deck":"small","pes":4}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-Close status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("post-Close 503 without Retry-After")
	}

	// Idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseIsSafeOnIdleServer: a server that never served a request
// closes cleanly (the batcher flush and job drain must tolerate
// nothing having happened).
func TestCloseIsSafeOnIdleServer(t *testing.T) {
	s := quickServer()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseFlushesBatchWindow: predicts queued in the batcher's wait
// window when Close lands are dispatched, not abandoned — their waiters
// unblock with an answer.
func TestCloseFlushesBatchWindow(t *testing.T) {
	s := quickServer(func(c *Config) { c.BatchWindow = time.Hour })
	res := make(chan int, 1)
	go func() {
		w := post(t, s, "/v1/predict", fmt.Sprintf(`{"deck":"small","pes":%d}`, 8))
		res <- w.Code
	}()
	// Wait until the request is parked in the batch window.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s.batch.mu.Lock()
		n := len(s.batch.queue)
		s.batch.mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-res:
		if code != http.StatusOK {
			t.Fatalf("batched predict finished with %d after Close", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batched predict still parked after Close — the window was not flushed")
	}
}
