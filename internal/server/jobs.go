package server

import (
	"errors"
	"fmt"
	"maps"
	"net/http"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"krak/pkg/krak"
)

// The async job API: POST /v1/jobs accepts the same SweepRequest body as
// POST /v1/sweep but returns immediately with a job id; the sweep runs in
// the background under the heavy-class limiter (through Wait, so a burst
// of jobs queues behind interactive heavy traffic instead of being
// refused — the bounded job store is their queue). Clients poll
// GET /v1/jobs/{id} for status and fetch GET /v1/jobs/{id}/result once
// done; the stored result bytes are exactly what the synchronous endpoint
// would have written, so a client can switch between the two without
// reparsing anything differently.
//
// The store is bounded two ways: a hard cap on live jobs (submissions
// past it are refused with 429 until some finish and age out) and a TTL
// after completion, so an abandoned job's result does not pin its memory
// forever. Eviction prefers the oldest finished job.

// job is one background sweep: its terminal state is published by closing
// done after body/errMsg are set, so readers never see a half-written
// result.
type job struct {
	id      string
	created time.Time

	done    chan struct{}
	running atomic.Bool

	// body and errMsg are written once, before done closes.
	body   []byte
	errMsg error

	// doneAt is set when the job finishes (guarded by the store's mu).
	doneAt time.Time
}

// status reports the job's lifecycle state.
func (j *job) status() string {
	select {
	case <-j.done:
		if j.errMsg != nil {
			return krak.JobFailed
		}
		return krak.JobDone
	default:
		if j.running.Load() {
			return krak.JobRunning
		}
		return krak.JobPending
	}
}

// jobStore is the bounded registry of background jobs.
type jobStore struct {
	max int
	ttl time.Duration

	mu   sync.Mutex
	jobs map[string]*job
	seq  uint64

	evicted atomic.Int64
}

const (
	defaultMaxJobs = 256
	defaultJobTTL  = 15 * time.Minute
)

func newJobStore(maxJobs int, ttl time.Duration) *jobStore {
	if maxJobs <= 0 {
		maxJobs = defaultMaxJobs
	}
	if ttl <= 0 {
		ttl = defaultJobTTL
	}
	return &jobStore{max: maxJobs, ttl: ttl, jobs: make(map[string]*job)}
}

// errJobsFull is the 429 a full job store returns.
var errJobsFull = errors.New("server: job store full; poll or retry later")

// add registers a new job, evicting expired finished jobs first and, if
// the store is still at the cap, the oldest finished job. With the store
// full of unfinished jobs the submission is refused — the bound is the
// point.
func (st *jobStore) add(now time.Time) (*job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.expireLocked(now)
	if len(st.jobs) >= st.max {
		// Sorted id order makes the doneAt tie-break deterministic.
		var oldest *job
		for _, id := range slices.Sorted(maps.Keys(st.jobs)) {
			j := st.jobs[id]
			if j.doneAt.IsZero() {
				continue
			}
			if oldest == nil || j.doneAt.Before(oldest.doneAt) {
				oldest = j
			}
		}
		if oldest == nil {
			return nil, errJobsFull
		}
		delete(st.jobs, oldest.id)
		st.evicted.Add(1)
	}
	st.seq++
	j := &job{
		id:      fmt.Sprintf("job-%06d", st.seq),
		created: now,
		done:    make(chan struct{}),
	}
	st.jobs[j.id] = j
	return j, nil
}

// expireLocked removes finished jobs past their TTL. Callers hold st.mu.
func (st *jobStore) expireLocked(now time.Time) {
	for _, id := range slices.Sorted(maps.Keys(st.jobs)) {
		j := st.jobs[id]
		if !j.doneAt.IsZero() && now.Sub(j.doneAt) >= st.ttl {
			delete(st.jobs, id)
			st.evicted.Add(1)
		}
	}
}

// get looks a job up, expiring stale ones on the way (polling is the
// only traffic the store sees between submissions, so lookups double as
// the TTL sweep).
func (st *jobStore) get(id string, now time.Time) (*job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.expireLocked(now)
	j, ok := st.jobs[id]
	return j, ok
}

// finish publishes the job's terminal state.
func (st *jobStore) finish(j *job, body []byte, err error, now time.Time) {
	st.mu.Lock()
	j.doneAt = now
	st.mu.Unlock()
	j.body = body
	j.errMsg = err
	close(j.done)
}

// len reports how many jobs are live (any state).
func (st *jobStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.jobs)
}

// countByStatus tallies live jobs per lifecycle state.
func (st *jobStore) countByStatus() map[string]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[string]int{krak.JobPending: 0, krak.JobRunning: 0, krak.JobDone: 0, krak.JobFailed: 0}
	for _, id := range slices.Sorted(maps.Keys(st.jobs)) {
		out[st.jobs[id].status()]++
	}
	return out
}

// errUnknownJob is the 404 for expired or never-issued job ids.
var errUnknownJob = errors.New("server: unknown job id (expired or never issued)")

// errJobNotDone is the 409 for fetching a result that is not ready.
var errJobNotDone = errors.New("server: job not finished; poll /v1/jobs/{id}")

func jobStatusBody(j *job) krak.JobStatus {
	s := krak.JobStatus{Schema: krak.JobSchema, ID: j.id, Status: j.status()}
	if s.Status == krak.JobFailed {
		s.Error = j.errMsg.Error()
	}
	return s
}

// handleJobSubmit accepts a SweepRequest, validates it synchronously (bad
// requests fail at submission, not in a job the client must poll to see
// die), and runs the sweep in the background.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req krak.SweepRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	op, grid, err := req.Grid()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	j, err := s.jobs.add(time.Now())
	if err != nil {
		writeError(w, http.StatusTooManyRequests, err)
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		s.runJob(j, m, op, grid)
	}()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	body, err := renderJSON(jobStatusBody(j))
	if err != nil {
		return
	}
	w.Write(body)
}

// runJob executes one background sweep under the heavy-class limiter.
// The job deliberately outlives the submitting request — that is the
// point of the API — so it runs on the server's background context,
// which only Close cancels (shutdown must not wait on a sweep no one is
// left to poll).
func (s *Server) runJob(j *job, m *krak.Machine, op krak.SweepOp, grid []*krak.Scenario) {
	//krakcheck:ignore ctxflow deliberate detach: a submitted job outlives the submitting request by design
	ctx := s.bgCtx
	finish := func(body []byte, err error) {
		s.jobs.finish(j, body, err, time.Now())
	}
	if err := s.admission.heavy.Wait(ctx); err != nil {
		finish(nil, err)
		return
	}
	defer s.admission.heavy.Release()
	j.running.Store(true)
	base, err := krak.NewScenario()
	if err != nil {
		finish(nil, err)
		return
	}
	sess, err := krak.NewSession(m, base)
	if err != nil {
		finish(nil, err)
		return
	}
	sr, err := sess.Sweep(ctx, op, grid)
	if err != nil {
		finish(nil, err)
		return
	}
	body, err := renderJSON(sr)
	if err != nil {
		finish(nil, err)
		return
	}
	finish(body, nil)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"), time.Now())
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	writeJSON(w, jobStatusBody(j))
}

// handleJobResult serves a finished job's stored sweep bytes verbatim —
// byte-identical to the synchronous endpoint's response.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"), time.Now())
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownJob)
		return
	}
	switch j.status() {
	case krak.JobDone:
		writeBody(w, j.body)
	case krak.JobFailed:
		writeError(w, errorStatus(j.errMsg), j.errMsg)
	default:
		writeError(w, http.StatusConflict, errJobNotDone)
	}
}
