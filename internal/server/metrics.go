package server

import (
	"fmt"
	"maps"
	"math"
	"net/http"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the server's observability core: a small Prometheus
// text-exposition registry built on the stdlib. Every number the server
// reports — request counters, latency histograms, cache and admission
// gauges — lives in one registry; GET /metrics renders all of it, and
// GET /healthz is a thin JSON view over the same families (it reads
// registry totals, never private fields), so the two can never disagree.

// sample is one rendered metric line minus the family name: an optional
// name suffix (histograms emit _bucket/_sum/_count series), a rendered
// label set ("" or `{k="v",...}`), and the value.
type sample struct {
	suffix string
	labels string
	value  float64
}

// family is one metric family: HELP/TYPE header plus a collect hook that
// snapshots its samples at scrape time. Families registered with gauge
// and counter helpers close over the server's live atomics, which is what
// keeps /metrics and /healthz views of the same number identical.
type family struct {
	name, help, typ string
	collect         func() []sample
}

// registry holds the server's metric families in registration order, plus
// the per-endpoint request stats the instrumentation middleware feeds.
type registry struct {
	families []*family

	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

// latencyBuckets are the request-latency histogram bounds (seconds):
// cached reads land in the sub-millisecond buckets, model computes in the
// middle, cold calibrations and sweeps at the top.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// endpointStats accumulates one endpoint's request counts (by status
// code) and latency histogram. Buckets store per-bucket counts and are
// cumulated at render time.
type endpointStats struct {
	codes   map[int]*atomic.Int64 // guarded by registry.mu
	buckets []atomic.Int64        // len(latencyBuckets); overflow only in count
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the latency sum
}

func newRegistry() *registry {
	return &registry{endpoints: make(map[string]*endpointStats)}
}

// addFamily registers a family; render order is registration order.
func (reg *registry) addFamily(name, typ, help string, collect func() []sample) {
	reg.families = append(reg.families, &family{name: name, help: help, typ: typ, collect: collect})
}

// addScalar registers a single-series family (no labels) whose value is
// read at scrape time.
func (reg *registry) addScalar(name, typ, help string, fn func() float64) {
	reg.addFamily(name, typ, help, func() []sample {
		return []sample{{value: fn()}}
	})
}

// addLabeled registers a family with a fixed set of labeled series, each
// read at scrape time. The series render in the order given.
func (reg *registry) addLabeled(name, typ, help string, series map[string]func() float64, label string) {
	reg.addFamily(name, typ, help, func() []sample {
		out := make([]sample, 0, len(series))
		for _, k := range slices.Sorted(maps.Keys(series)) {
			out = append(out, sample{labels: labelSet(label, k), value: series[k]()})
		}
		return out
	})
}

// labelSet renders a one-label set.
func labelSet(k, v string) string {
	return "{" + k + "=" + strconv.Quote(v) + "}"
}

// endpoint returns (creating on first use) the stats bucket for an
// endpoint label. The instrumentation middleware calls it once per route
// at registration, so scrape-time families see a stable set.
func (reg *registry) endpoint(name string) *endpointStats {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st, ok := reg.endpoints[name]
	if !ok {
		st = &endpointStats{
			codes:   make(map[int]*atomic.Int64),
			buckets: make([]atomic.Int64, len(latencyBuckets)),
		}
		reg.endpoints[name] = st
	}
	return st
}

// observe records one finished request on the endpoint: its status code
// and wall latency.
func (reg *registry) observe(st *endpointStats, code int, seconds float64) {
	reg.mu.Lock()
	c, ok := st.codes[code]
	if !ok {
		c = &atomic.Int64{}
		st.codes[code] = c
	}
	reg.mu.Unlock()
	c.Add(1)
	for i, b := range latencyBuckets {
		if seconds <= b {
			st.buckets[i].Add(1)
			break
		}
	}
	st.count.Add(1)
	for {
		old := st.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if st.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
}

// collectRequests snapshots krak_http_requests_total: one series per
// (endpoint, code), both dimensions sorted so scrape output is stable.
func (reg *registry) collectRequests() []sample {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	var out []sample
	for _, ep := range slices.Sorted(maps.Keys(reg.endpoints)) {
		st := reg.endpoints[ep]
		for _, code := range slices.Sorted(maps.Keys(st.codes)) {
			out = append(out, sample{
				labels: fmt.Sprintf(`{endpoint=%q,code="%d"}`, ep, code),
				value:  float64(st.codes[code].Load()),
			})
		}
	}
	return out
}

// collectLatency snapshots krak_http_request_seconds: per endpoint, the
// cumulative _bucket series (ending at le="+Inf"), then _sum and _count.
func (reg *registry) collectLatency() []sample {
	reg.mu.Lock()
	endpoints := slices.Sorted(maps.Keys(reg.endpoints))
	stats := make([]*endpointStats, len(endpoints))
	for i, ep := range endpoints {
		stats[i] = reg.endpoints[ep]
	}
	reg.mu.Unlock()
	var out []sample
	for i, ep := range endpoints {
		st := stats[i]
		var cum int64
		for j, b := range latencyBuckets {
			cum += st.buckets[j].Load()
			out = append(out, sample{
				suffix: "_bucket",
				labels: fmt.Sprintf(`{endpoint=%q,le=%q}`, ep, formatFloat(b)),
				value:  float64(cum),
			})
		}
		count := st.count.Load()
		out = append(out,
			sample{suffix: "_bucket", labels: fmt.Sprintf(`{endpoint=%q,le="+Inf"}`, ep), value: float64(count)},
			sample{suffix: "_sum", labels: labelSet("endpoint", ep), value: math.Float64frombits(st.sumBits.Load())},
			sample{suffix: "_count", labels: labelSet("endpoint", ep), value: float64(count)},
		)
	}
	return out
}

// formatFloat renders a metric value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// render writes the whole registry in Prometheus text exposition format.
func (reg *registry) render() []byte {
	var b strings.Builder
	for _, f := range reg.families {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, s := range f.collect() {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatFloat(s.value))
		}
	}
	return []byte(b.String())
}

// total returns the sum of a family's base series (suffix-less samples) —
// the accessor /healthz reads the registry through.
func (reg *registry) total(name string) float64 {
	for _, f := range reg.families {
		if f.name != name {
			continue
		}
		var sum float64
		for _, s := range f.collect() {
			if s.suffix == "" {
				sum += s.value
			}
		}
		return sum
	}
	return 0
}

// statusRecorder captures the status code a handler writes so the
// instrumentation middleware can label its counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route with metrics collection: every request through
// it lands in krak_http_requests_total{endpoint,code} and the endpoint's
// latency histogram. The endpoint label is the route pattern, not the raw
// URL, so path parameters cannot explode the label space.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	st := s.metrics.endpoint(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.observe(st, rec.code, time.Since(start).Seconds())
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(s.metrics.render())
}
