package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net/http"

	"krak/internal/compare"
)

// handleCompare sweeps one scenario across the request's machine set and
// returns the comparison report — scaling curves, knees, crossovers —
// byte-identical to `krak compare --json` for the same request. Reports
// carry no wall-clock timings, so responses are cached like predictions,
// keyed by a content hash of the canonical normalized request. Every
// machine in the set goes through the shared machineFor cache, so
// repeated comparisons (and the other endpoints) reuse the same machines
// and artifact caches.
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	var req compare.Request
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	for i, ms := range req.Machines {
		resolved, err := s.resolveSpec(ms)
		if err != nil {
			writeError(w, errorStatus(err), fmt.Errorf("machine %d: %w", i, err))
			return
		}
		req.Machines[i] = resolved
	}
	canon, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	key := fmt.Sprintf("compare|%x", sha256.Sum256(canon))
	// Like predict and calibrate fills, the sweep runs detached from the
	// request context: coalesced strangers must not be failed by one
	// client disconnecting, and the report is cacheable regardless.
	s.cachedBody(w, key, func() ([]byte, error) {
		//krakcheck:ignore ctxflow deliberate detach: coalesced fill shared by other requests must survive this client disconnecting
		rep, err := compare.Run(context.Background(), req, s.machineFor, s.pool)
		if err != nil {
			return nil, err
		}
		return renderJSON(rep)
	})
}
