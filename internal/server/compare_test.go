package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"krak/internal/compare"
	"krak/internal/engine"
	"krak/pkg/krak"
)

// compareBody is a two-machine comparison request on shrunken decks,
// exercising a topology-bearing spec over the wire.
const compareBody = `{
  "deck": "small",
  "pes": [2, 4, 8],
  "machines": [
    {"name": "base", "interconnect": "qsnet"},
    {"name": "fast", "interconnect": "infiniband",
     "topology": {"kind": "fat-tree", "hop_latency_us": 0.2, "radix": 36}}
  ]
}`

// TestCompareByteIdenticalToCLI pins the endpoint's contract: the
// response must be exactly what `krak compare --json` prints for the
// same request — the property the CI compare-smoke job diffs end to end.
func TestCompareByteIdenticalToCLI(t *testing.T) {
	// The CLI path: specs with -quick applied, compare.Run, MarshalIndent.
	req := compare.Request{
		Deck: "small",
		PEs:  []int{2, 4, 8},
		Machines: []krak.MachineSpec{
			{Name: "base", Interconnect: "qsnet", Quick: true},
			{Name: "fast", Interconnect: "infiniband", Quick: true,
				Topology: &krak.TopologySpec{Kind: "fat-tree", HopLatencyUS: 0.2, Radix: 36}},
		},
	}
	rep, err := compare.Run(context.Background(), req,
		compare.NewBuilder(krak.NewSharedArtifacts()), engine.New(0))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	cli = append(cli, '\n') // fmt.Println in the CLI

	// The server path: same machines without quick; the quick server's
	// config forces it, like the CI smoke job's `krak serve -quick`.
	s := quickServer()
	w := post(t, s, "/v1/compare", compareBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Body.String(); got != string(cli) {
		t.Errorf("server response is not byte-identical to CLI --json output:\n--- server ---\n%s\n--- cli ---\n%s", got, cli)
	}
}

func TestCompareResponseCachedAndShaped(t *testing.T) {
	s := quickServer()
	first := post(t, s, "/v1/compare", compareBody)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d: %s", first.Code, first.Body.String())
	}
	var rep compare.Report
	if err := json.Unmarshal(first.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if rep.Schema != compare.Schema || len(rep.Curves) != 2 || rep.Baseline != "base" {
		t.Errorf("schema %q, %d curves, baseline %q", rep.Schema, len(rep.Curves), rep.Baseline)
	}
	if rep.Curves[1].Topology != "fat-tree radix 36" {
		t.Errorf("topology column %q", rep.Curves[1].Topology)
	}

	hits := s.cacheHits.Load()
	second := post(t, s, "/v1/compare", compareBody)
	if second.Body.String() != first.Body.String() {
		t.Error("repeated comparison returned different bytes")
	}
	if s.cacheHits.Load() != hits+1 {
		t.Errorf("second request missed the response cache (hits %d -> %d)", hits, s.cacheHits.Load())
	}
}

func TestCompareErrors(t *testing.T) {
	s := quickServer()
	cases := []struct {
		name, body string
		status     int
	}{
		{"no machines", `{"deck":"small"}`, http.StatusBadRequest},
		{"unknown field", `{"machine":[]}`, http.StatusBadRequest},
		{"bad interconnect", `{"machines":[{"name":"x","interconnect":"tokenring"}]}`, http.StatusBadRequest},
		{"bad topology", `{"machines":[{"name":"x","topology":{"kind":"hypercube"}}]}`, http.StatusBadRequest},
		{"missing baseline", `{"baseline":"nope","machines":[{"name":"x"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s, "/v1/compare", tc.body)
			if w.Code != tc.status {
				t.Errorf("status %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			var env map[string]string
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || env["error"] == "" {
				t.Errorf("error envelope: %v (%s)", err, w.Body.String())
			}
		})
	}
}

// TestCompareRespectsMachineCap pins the 503 path: a comparison whose
// machines would blow past the server's machine cap is refused, not
// allowed to evict the known configurations other requests rely on.
func TestCompareRespectsMachineCap(t *testing.T) {
	s := quickServer()
	var names []string
	for i := 0; i < maxMachines+1; i++ {
		names = append(names, `{"name":"m`+string(rune('a'+i%26))+string(rune('a'+i/26))+`","seed":`+itoa(i+1)+`}`)
	}
	body := `{"deck":"small","pes":[2],"machines":[` + strings.Join(names, ",") + `]}`
	w := post(t, s, "/v1/compare", body)
	// compare.MaxMachines == maxMachines, so the request is rejected at
	// validation (400) before any machine is built; either way it must
	// not succeed.
	if w.Code == http.StatusOK {
		t.Fatalf("oversized comparison served: %s", w.Body.String())
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
