package server

import (
	"context"
	"sync"
	"testing"
	"time"

	"krak/internal/engine"
	"krak/pkg/krak"
)

// TestEarlyDispatchRetiresWindowTimer is the regression test for the
// stale-window-timer bug: a batch that fills to maxBatch dispatches
// early, and the window timer its first job armed used to survive and
// fire mid-window into the *next* batch, flushing it prematurely and
// silently shrinking coalescing under sustained bursts.
//
// The schedule (window W = 1.5s, all margins >= 300ms so CI scheduling
// jitter cannot flip the outcome):
//
//	t0          : maxBatch jobs arrive, dispatch early; the stale timer
//	              (pre-fix) is still armed to fire at ~t0+W
//	t0+0.7s     : job A opens batch 2; its own timer fires at ~t0+2.2s
//	t0+1.5s     : the stale timer fires — pre-fix it flushes batch 2 with
//	              only job A inside, half-way through its window
//	t0+1.8s     : job B arrives — joins batch 2 (fix) or opens a third
//	              batch (bug)
//
// The assertion is on the batches/batched_jobs counters, not wall time:
// with the timer retired, batch 2 keeps its full window and carries both
// jobs, so exactly 2 batches dispatch; pre-fix the premature flush splits
// A and B into separate batches, making 3.
func TestEarlyDispatchRetiresWindowTimer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second batch-window schedule")
	}
	m, err := krak.NewMachine(krak.WithQuick())
	if err != nil {
		t.Fatal(err)
	}
	sc, err := krak.NewScenario(krak.WithDeck("small"), krak.WithPE(4))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the machine's artifact caches so batch dispatches are fast and
	// the schedule's margins hold.
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Predict(); err != nil {
		t.Fatal(err)
	}

	const window = 1500 * time.Millisecond
	b := newPredictBatcher(engine.New(4), window)
	ctx := context.Background()
	predict := func() {
		if _, err := b.predict(ctx, m, sc); err != nil {
			t.Error(err)
		}
	}

	// Fill one batch to the brim: it must dispatch early, well inside the
	// window.
	var burst sync.WaitGroup
	for i := 0; i < maxBatch; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			predict()
		}()
	}
	burst.Wait()
	if got := b.batches.Load(); got != 1 {
		t.Fatalf("burst dispatched %d batches, want 1 early dispatch", got)
	}
	b.mu.Lock()
	timerRetired := b.timer == nil
	b.mu.Unlock()
	if !timerRetired {
		t.Fatal("early dispatch left the window timer armed")
	}

	var tail sync.WaitGroup
	tail.Add(2)
	time.Sleep(700 * time.Millisecond)
	go func() { defer tail.Done(); predict() }() // job A opens batch 2
	time.Sleep(1100 * time.Millisecond)          // the stale timer would have fired by now
	go func() { defer tail.Done(); predict() }() // job B must still join batch 2
	tail.Wait()

	batches, jobs := b.batches.Load(), b.jobs.Load()
	if batches != 2 || jobs != maxBatch+2 {
		t.Fatalf("batches=%d jobs=%d, want 2 batches carrying %d jobs (a third batch means the stale timer flushed batch 2 mid-window)",
			batches, jobs, maxBatch+2)
	}
}
