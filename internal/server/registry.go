package server

import (
	"errors"
	"fmt"
	"sync"

	"krak/internal/artifacts"
	"krak/pkg/krak"
)

// The machine registry is the serving tier's calibration lifecycle
// store: fingerprint → versioned history of fitted machines. A
// calibration registered under its fitted fingerprint becomes version 1;
// recalibrations (explicit re-registration, or the append endpoint's
// refit) stack as further versions under the same fingerprint, each
// carrying the dataset text it was fitted on so the next append can
// refit from it. Histories are rendered once, served as stored bytes,
// and persisted through the content-addressed disk cache — a server
// restarted on the same -cache-dir serves registered history
// byte-identically without refitting anything.

const (
	// maxRegistryMachines caps distinct registered fingerprints, like
	// the machine cache: registration is a write amplified by disk
	// persistence, so an open-ended stream of novel fingerprints must
	// saturate rather than exhaust the store. Known fingerprints keep
	// accepting versions past the cap.
	maxRegistryMachines = 64

	// maxRegistryVersions bounds one machine's history; past it the
	// oldest versions fall off while version numbers keep counting up.
	maxRegistryVersions = 16

	// registryKind namespaces registry histories in the disk tier.
	registryKind = "registry"
)

// errRegistryFull is the 503 the registry cap returns.
var errRegistryFull = errors.New("server: machine registry is full; retry with a registered fingerprint")

// errUnknownMachine is the 404 for fingerprints never registered.
var errUnknownMachine = errors.New("server: unknown machine fingerprint")

// machineRegistry is the bounded, disk-backed fingerprint → history
// store. Safe for concurrent use.
type machineRegistry struct {
	mu   sync.Mutex
	hist map[string]*krak.MachineHistory
	body map[string][]byte
	disk *artifacts.DiskCache
}

func newMachineRegistry(disk *artifacts.DiskCache) *machineRegistry {
	return &machineRegistry{
		hist: map[string]*krak.MachineHistory{},
		body: map[string][]byte{},
		disk: disk,
	}
}

// len reports how many fingerprints are registered in memory.
func (g *machineRegistry) len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.hist)
}

// loadLocked returns the fingerprint's history, consulting the disk
// tier on a memory miss (the restart path) and repopulating memory so
// later appends keep numbering versions correctly. Callers hold g.mu.
func (g *machineRegistry) loadLocked(fp string) (*krak.MachineHistory, []byte, error) {
	if h, ok := g.hist[fp]; ok {
		return h, g.body[fp], nil
	}
	b, ok := g.disk.Get(registryKind, fp)
	if !ok {
		return nil, nil, errUnknownMachine
	}
	h := &krak.MachineHistory{}
	if err := h.UnmarshalJSON(b); err != nil {
		return nil, nil, fmt.Errorf("registry entry for %s is corrupt: %w", fp, err)
	}
	g.hist[fp] = h
	g.body[fp] = b
	return h, b, nil
}

// history returns the stored rendered history for a fingerprint.
func (g *machineRegistry) history(fp string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, b, err := g.loadLocked(fp)
	return b, err
}

// latest returns the newest registered version for a fingerprint.
func (g *machineRegistry) latest(fp string) (krak.MachineVersion, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, _, err := g.loadLocked(fp)
	if err != nil {
		return krak.MachineVersion{}, err
	}
	return h.Versions[len(h.Versions)-1], nil
}

// register records a calibration as the fingerprint's next version and
// returns the updated rendered history. New fingerprints past the cap
// are refused with errRegistryFull; known ones always accept.
func (g *machineRegistry) register(fp string, res *krak.CalibrationResult, dataset string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	h, _, err := g.loadLocked(fp)
	if errors.Is(err, errUnknownMachine) {
		if len(g.hist) >= maxRegistryMachines {
			return nil, errRegistryFull
		}
		h = &krak.MachineHistory{Fingerprint: fp}
	} else if err != nil {
		return nil, err
	}
	next := 1
	if n := len(h.Versions); n > 0 {
		next = h.Versions[n-1].Version + 1
	}
	h.Versions = append(h.Versions, krak.MachineVersion{Version: next, Dataset: dataset, Result: res})
	if len(h.Versions) > maxRegistryVersions {
		h.Versions = h.Versions[len(h.Versions)-maxRegistryVersions:]
	}
	b, err := renderJSON(h)
	if err != nil {
		return nil, err
	}
	g.hist[fp] = h
	g.body[fp] = b
	g.disk.Put(registryKind, fp, b)
	return b, nil
}
