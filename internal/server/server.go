// Package server is the serving subsystem: an http.Handler exposing the
// performance model over JSON endpoints, built directly on the
// repository's concurrent engine. It turns the one-shot CLI workflow
// into a long-running traffic-serving system:
//
//	POST /v1/predict            analytic model (micro-batched, cached)
//	POST /v1/simulate           cluster simulator (cached)
//	POST /v1/sweep              concurrent (deck, PE) grid (uncached: timings vary)
//	POST /v1/compare            one scenario across many machines (cached)
//	POST /v1/calibrate          fit machine parameters to timings (cached)
//	GET  /v1/experiments        the paper-artifact registry
//	GET  /v1/experiments/{id}   one regenerated table/figure (cached)
//	GET  /v1/machines           the interconnect presets
//	GET  /healthz               liveness + serving counters
//
// Machines are identified by the content fingerprint of their normalized
// MachineSpec, so file-defined and calibrated machines (custom networks,
// compute scales, specs arriving as embedded machine files) share the
// same capped machine cache as the interconnect presets.
//
// Request flow: a predict/simulate/experiment request is normalized to a
// canonical key and looked up in a size-bounded LRU of fully rendered
// response bodies; concurrent misses for the same key coalesce through
// the LRU's single-flight fill (the same discipline engine.Cache gives
// the machine's artifact caches below), so one computation feeds every
// duplicate in flight. A predict miss then joins a micro-batch — jobs
// arriving within a small window dispatch as one engine.Map over the
// server's worker pool — and the machines themselves are shared across
// requests, so decks, partitions, and calibrations stay warm in their
// single-flight engine.Cache instances across the whole request stream.
//
// Responses are byte-identical to the CLI: /v1/predict for a scenario
// returns exactly the bytes `krak predict --json` prints for the same
// flags, down to the trailing newline (the integration test and the CI
// smoke job both diff the two).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"krak/internal/engine"
	"krak/pkg/krak"
)

// Config sizes a Server.
type Config struct {
	// Parallel bounds the worker pool every machine and the predict
	// batcher dispatch on; 0 means as wide as the hardware allows.
	Parallel int

	// CacheSize bounds the rendered-response LRU; 0 means 1024 entries.
	CacheSize int

	// Quick applies the CLI's -quick (scaled-down decks and calibrations)
	// to every request's machine, whatever the request says — the mode
	// the CI smoke job serves in.
	Quick bool

	// BatchWindow is how long the first predict in a batch waits for
	// company before the batch dispatches; 0 means 500µs.
	BatchWindow time.Duration
}

// maxMachines caps how many distinct machine configurations the server
// memoizes. Machines hold artifact caches (decks, partitions,
// calibrations) and live forever, so an open-ended stream of novel
// (seed, repeats, ...) combinations must saturate rather than exhaust
// memory; past the cap, requests for new configurations are refused with
// 503 while known ones keep serving.
const maxMachines = 64

// Server is the HTTP serving layer. Build with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// machines memoizes Machine instances per normalized MachineSpec in a
	// single-flight cache, so every request against the same platform
	// shares one set of artifact caches.
	machines engine.Cache[string, *krak.Machine]

	// artifacts is the cross-machine artifact cache: every machine the
	// server builds shares it, so requests against different platforms
	// (networks, compute scales) still share decks, graphs, and
	// partitions — only calibrations stay per-machine.
	artifacts *krak.SharedArtifacts

	// responses is the size-bounded LRU of rendered response bodies,
	// keyed by canonical request. Its single-flight Do coalesces
	// duplicate in-flight requests.
	responses *engine.LRU[string, []byte]

	batch *predictBatcher
	pool  *engine.Pool

	requests  atomic.Int64
	cacheHits atomic.Int64
}

// New builds a Server from the config.
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 500 * time.Microsecond
	}
	pool := engine.New(cfg.Parallel)
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		responses: engine.NewLRU[string, []byte](cfg.CacheSize),
		batch:     newPredictBatcher(pool, cfg.BatchWindow),
		pool:      pool,
		artifacts: krak.NewSharedArtifacts(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/machines", s.handleMachines)
	mux.HandleFunc("POST /v1/predict", s.handlePredict)
	mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/compare", s.handleCompare)
	mux.HandleFunc("POST /v1/calibrate", s.handleCalibrate)
	mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// maxBody bounds request bodies; the wire types are a few hundred bytes.
const maxBody = 1 << 20

// decode reads a strict JSON body into v: unknown fields and trailing
// garbage are errors, exactly what the fuzz harness pounds on.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON body")
	}
	return nil
}

// errorStatus maps a typed krak error to its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, errTooManyMachines):
		// The machine cap can surface through cached fills (compare builds
		// its machines inside one), not only through machineFor call sites.
		return http.StatusServiceUnavailable
	case errors.Is(err, krak.ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, krak.ErrUnknownDeck),
		errors.Is(err, krak.ErrBadPE),
		errors.Is(err, krak.ErrUnknownModel),
		errors.Is(err, krak.ErrUnknownPartitioner),
		errors.Is(err, krak.ErrUnknownInterconnect),
		errors.Is(err, krak.ErrBadOption),
		errors.Is(err, krak.ErrBadDeckSpec),
		errors.Is(err, krak.ErrBadMachineSpec),
		errors.Is(err, krak.ErrCalibration):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// writeError emits the JSON error envelope.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON marshals v the way the CLI's emit does (indented, trailing
// newline) and writes it.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := renderJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBody(w, body)
}

func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// renderJSON produces the exact bytes `krak <subcommand> --json` prints:
// two-space indentation plus the trailing newline fmt.Println adds.
func renderJSON(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// resolveSpec expands an embedded machine file (the wire MachineSpec's
// file field), applies the server-level Quick default, and normalizes —
// after it, the spec's Fingerprint is the machine's serving identity.
func (s *Server) resolveSpec(ms krak.MachineSpec) (krak.MachineSpec, error) {
	r, err := ms.Resolved()
	if err != nil {
		return ms, err
	}
	if s.cfg.Quick {
		r.Quick = true
	}
	return r.Normalized(), nil
}

// errTooManyMachines is the 503 the machine cap returns.
var errTooManyMachines = errors.New("server: too many distinct machine configurations; retry with a known one")

// machineFor returns the shared Machine for a normalized spec, building
// it on first use. All requests against the same platform share the
// machine and therefore its single-flight artifact caches.
func (s *Server) machineFor(ms krak.MachineSpec) (*krak.Machine, error) {
	build := func() (*krak.Machine, error) {
		opts := ms.Options()
		if s.cfg.Parallel > 0 {
			opts = append(opts, krak.WithParallelism(s.cfg.Parallel))
		}
		opts = append(opts, krak.WithSharedArtifacts(s.artifacts))
		return krak.NewMachine(opts...)
	}
	// Validate before touching the cache: engine.Cache memoizes errors
	// forever and Len counts them, so letting invalid specs in would both
	// pin dead entries and let a stream of bad requests consume the
	// machine cap. Machine construction is cheap (no artifact computes),
	// so validating with a throwaway build costs nothing.
	if _, err := build(); err != nil {
		return nil, err
	}
	key := ms.Fingerprint()
	if s.machines.Len() >= maxMachines && !s.machines.Has(key) {
		// Soft cap: known configurations keep serving.
		return nil, errTooManyMachines
	}
	return s.machines.Get(key, build)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":       "ok",
		"uptime_s":     time.Since(s.start).Seconds(),
		"requests":     s.requests.Load(),
		"cache_hits":   s.cacheHits.Load(),
		"cache_len":    s.responses.Len(),
		"cache_cap":    s.responses.Cap(),
		"machines":     s.machines.Len(),
		"batches":      s.batch.batches.Load(),
		"batched_jobs": s.batch.jobs.Load(),
		"parallelism":  s.pool.Workers(),
	})
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, krak.ListMachines())
}

// cachedBody looks key up in the rendered-response LRU, filling it on a
// miss; duplicate misses in flight share the one computation.
func (s *Server) cachedBody(w http.ResponseWriter, key string, fill func() ([]byte, error)) {
	hit := true
	body, err := s.responses.Do(key, func() ([]byte, error) {
		hit = false
		return fill()
	})
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	if hit {
		s.cacheHits.Add(1)
	}
	writeBody(w, body)
}

// cachedResult is cachedBody for handlers that compute a Result,
// rendering it CLI-identically.
func (s *Server) cachedResult(w http.ResponseWriter, key string, compute func() (*krak.Result, error)) {
	s.cachedBody(w, key, func() ([]byte, error) {
		res, err := compute()
		if err != nil {
			return nil, err
		}
		return renderJSON(res)
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req krak.PredictRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	key := fmt.Sprintf("predict|%s|%d|%s|%s", req.Deck, req.PEs, req.Model, req.Machine.Fingerprint())
	// The fill runs detached from this request's context: other requests
	// may be coalesced onto it, and one client disconnecting must not
	// fail the strangers sharing the computation (predictions are short
	// and the rendered result is cacheable regardless).
	s.cachedResult(w, key, func() (*krak.Result, error) {
		//krakcheck:ignore ctxflow deliberate detach: coalesced fill shared by other requests must survive this client disconnecting
		return s.batch.predict(context.Background(), m, sc)
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req krak.SimulateRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	key := fmt.Sprintf("simulate|%s|%d|%d|%s|%s",
		req.Deck, req.PEs, req.Iterations, req.Partitioner, req.Machine.Fingerprint())
	s.cachedResult(w, key, func() (*krak.Result, error) {
		sess, err := krak.NewSession(m, sc)
		if err != nil {
			return nil, err
		}
		return sess.Simulate()
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req krak.SweepRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	op, grid, err := req.Grid()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	base, err := krak.NewScenario()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess, err := krak.NewSession(m, base)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Sweeps are not response-cached: their wall/work timing fields
	// legitimately vary run to run, and serving stale timings would
	// misreport the realized speedup. The grid points still share the
	// machine's warm artifact caches.
	sr, err := sess.Sweep(r.Context(), op, grid)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, sr)
}

// handleCalibrate fits machine parameters to the request's dataset
// (textual measurement file, structured observations, or self-generated
// runs on the request's machine) and returns a CalibrationResult whose
// body is byte-identical to `krak calibrate --json` for the same inputs.
// Calibration is deterministic for a fixed machine and dataset, so
// responses are cached like predictions, keyed by a content hash of the
// canonical request.
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	var req krak.CalibrateRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	canon, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	key := fmt.Sprintf("calibrate|%x", sha256.Sum256(canon))
	// Like predict fills, the computation runs detached from the request
	// context: coalesced strangers must not be failed by one client
	// disconnecting, and the result is cacheable regardless.
	s.cachedBody(w, key, func() ([]byte, error) {
		sess, err := krak.NewSession(m, sc)
		if err != nil {
			return nil, err
		}
		//krakcheck:ignore ctxflow deliberate detach: coalesced fill shared by other requests must survive this client disconnecting
		ds, err := req.Materialize(context.Background(), sess)
		if err != nil {
			return nil, err
		}
		//krakcheck:ignore ctxflow same deliberate detach as the Materialize call above
		cr, err := sess.Calibrate(context.Background(), ds, krak.CalibrateOptions{Folds: req.Folds})
		if err != nil {
			return nil, err
		}
		return renderJSON(cr)
	})
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, krak.ListExperiments())
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ms, err := machineSpecFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if ms, err = s.resolveSpec(ms); err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(ms)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	key := fmt.Sprintf("experiment|%s|%s", id, ms.Fingerprint())
	s.cachedResult(w, key, func() (*krak.Result, error) {
		sc, err := krak.NewScenario()
		if err != nil {
			return nil, err
		}
		sess, err := krak.NewSession(m, sc)
		if err != nil {
			return nil, err
		}
		return sess.Experiment(id)
	})
}

// machineSpecFromQuery reads the optional machine parameters GET
// endpoints accept: ?interconnect=, ?seed=, ?repeats=, ?quick=.
func machineSpecFromQuery(r *http.Request) (krak.MachineSpec, error) {
	var ms krak.MachineSpec
	q := r.URL.Query()
	ms.Interconnect = q.Get("interconnect")
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return ms, fmt.Errorf("bad seed %q: %v", v, err)
		}
		ms.Seed = n
	}
	if v := q.Get("repeats"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return ms, fmt.Errorf("bad repeats %q: %v", v, err)
		}
		ms.Repeats = n
	}
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return ms, fmt.Errorf("bad quick %q: %v", v, err)
		}
		ms.Quick = b
	}
	return ms, nil
}

// machineStatus maps machineFor errors: the cap is 503, the rest are the
// usual typed-error statuses.
func (s *Server) machineStatus(err error) int {
	if errors.Is(err, errTooManyMachines) {
		return http.StatusServiceUnavailable
	}
	return errorStatus(err)
}
