// Package server is the serving subsystem: an http.Handler exposing the
// performance model over JSON endpoints, built directly on the
// repository's concurrent engine. It turns the one-shot CLI workflow
// into a long-running traffic-serving system:
//
//	POST /v1/predict            analytic model (micro-batched, cached)
//	POST /v1/simulate           cluster simulator (cached)
//	POST /v1/sweep              concurrent (deck, PE) grid (uncached: timings vary)
//	POST /v1/compare            one scenario across many machines (cached)
//	POST /v1/calibrate          fit machine parameters to timings (cached)
//	POST /v1/calibrate/append   fold fresh timings into a registered machine (drift-checked)
//	POST /v1/jobs               submit a sweep as a background job
//	GET  /v1/jobs/{id}          poll a job's status
//	GET  /v1/jobs/{id}/result   fetch a finished job's sweep result
//	GET  /v1/experiments        the paper-artifact registry
//	GET  /v1/experiments/{id}   one regenerated table/figure (cached)
//	GET  /v1/machines           the interconnect presets
//	GET  /v1/machines/{fp}      a registered machine's calibration history
//	POST /v1/machines/{fp}      register a calibration under its fingerprint
//	GET  /healthz               liveness + serving counters (view over /metrics)
//	GET  /metrics               Prometheus text-format serving metrics
//
// Every /v1 route runs behind admission control: endpoint classes (light
// cached reads vs heavy pool-occupying computes) each have a concurrency
// limit and a bounded wait queue, and callers past both get 429 with a
// Retry-After instead of unbounded queueing (see admission.go). With a
// cache directory configured (krak serve -cache-dir), partition vectors
// and rendered response bodies also persist to a content-addressed disk
// tier that survives restarts and can be shared between replicas.
//
// Machines are identified by the content fingerprint of their normalized
// MachineSpec, so file-defined and calibrated machines (custom networks,
// compute scales, specs arriving as embedded machine files) share the
// same capped machine cache as the interconnect presets.
//
// Request flow: a predict/simulate/experiment request is normalized to a
// canonical key and looked up in a size-bounded LRU of fully rendered
// response bodies; concurrent misses for the same key coalesce through
// the LRU's single-flight fill (the same discipline engine.Cache gives
// the machine's artifact caches below), so one computation feeds every
// duplicate in flight. A predict miss then joins a micro-batch — jobs
// arriving within a small window dispatch as one engine.Map over the
// server's worker pool — and the machines themselves are shared across
// requests, so decks, partitions, and calibrations stay warm in their
// single-flight engine.Cache instances across the whole request stream.
//
// Responses are byte-identical to the CLI: /v1/predict for a scenario
// returns exactly the bytes `krak predict --json` prints for the same
// flags, down to the trailing newline (the integration test and the CI
// smoke job both diff the two).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"krak/internal/artifacts"
	"krak/internal/engine"
	"krak/internal/faultinject"
	"krak/internal/metrics"
	"krak/pkg/krak"
)

// Config sizes a Server.
type Config struct {
	// Parallel bounds the worker pool every machine and the predict
	// batcher dispatch on; 0 means as wide as the hardware allows.
	Parallel int

	// CacheSize bounds the rendered-response LRU; 0 means 1024 entries.
	CacheSize int

	// Quick applies the CLI's -quick (scaled-down decks and calibrations)
	// to every request's machine, whatever the request says — the mode
	// the CI smoke job serves in.
	Quick bool

	// BatchWindow is how long the first predict in a batch waits for
	// company before the batch dispatches; 0 means 500µs.
	BatchWindow time.Duration

	// CacheDir, when set, roots the content-addressed disk cache under
	// the artifact store: partition vectors and rendered response bodies
	// persist there, survive restarts, and may be shared between replicas
	// pointed at the same directory. "" disables persistence.
	CacheDir string

	// LightLimit/LightQueue size the light admission class (cached reads:
	// predict, simulate, experiments, machines, job polls): concurrent
	// in-flight requests and the bounded wait queue behind them. 0 means
	// the defaults (256/1024); a negative limit disables the class's
	// limiter; a negative queue means no queue (refuse once slots fill).
	LightLimit int
	LightQueue int

	// HeavyLimit/HeavyQueue size the heavy admission class (sweep,
	// compare, calibrate — endpoints that occupy the worker pool).
	// 0 means the defaults (4/16); negatives as for the light class.
	HeavyLimit int
	HeavyQueue int

	// RequestTimeout bounds how long a heavy request may run once
	// admitted; 0 means no timeout.
	RequestTimeout time.Duration

	// MaxJobs caps live background jobs (0 means 256); JobTTL is how long
	// a finished job's result stays fetchable (0 means 15m).
	MaxJobs int
	JobTTL  time.Duration

	// Faults, when non-nil, wraps every /v1 route in the deterministic
	// fault-injection middleware — chaos drills only. The CLI refuses to
	// build one unless -allow-faults is set, so it can never ship on by
	// accident; a nil injector is a no-op.
	Faults *faultinject.Injector
}

// maxMachines caps how many distinct machine configurations the server
// memoizes. Machines hold artifact caches (decks, partitions,
// calibrations) and live forever, so an open-ended stream of novel
// (seed, repeats, ...) combinations must saturate rather than exhaust
// memory; past the cap, requests for new configurations are refused with
// 503 while known ones keep serving.
const maxMachines = 64

// Server is the HTTP serving layer. Build with New; it is safe for
// concurrent use by any number of requests.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	// machines memoizes Machine instances per normalized MachineSpec in a
	// single-flight cache, so every request against the same platform
	// shares one set of artifact caches.
	machines engine.Cache[string, *krak.Machine]

	// artifacts is the cross-machine artifact cache: every machine the
	// server builds shares it, so requests against different platforms
	// (networks, compute scales) still share decks, graphs, and
	// partitions — only calibrations stay per-machine.
	artifacts *krak.SharedArtifacts

	// responses is the size-bounded LRU of rendered response bodies,
	// keyed by canonical request. Its single-flight Do coalesces
	// duplicate in-flight requests.
	responses *engine.LRU[string, []byte]

	// disk is the persistent tier for rendered response bodies (nil
	// without a cache directory); the artifact store holds its own
	// instance over the same directory for partition vectors.
	disk *artifacts.DiskCache

	batch     *predictBatcher
	pool      *engine.Pool
	metrics   *metrics.Registry
	admission *admission
	jobs      *jobStore

	// machineReg is the versioned fingerprint → fitted-machine history
	// store behind GET/POST /v1/machines/{fingerprint} and the append
	// endpoint (see registry.go).
	machineReg *machineRegistry

	// bg tracks background job goroutines; bgCtx is the context they run
	// under, canceled by Close so shutdown never waits on a sweep that no
	// one is left to poll.
	bg       sync.WaitGroup
	bgCtx    context.Context
	shutdown context.CancelFunc
	closed   atomic.Bool

	requests         atomic.Int64
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	cacheCoalesced   atomic.Int64
	machinesRejected atomic.Int64
	driftFlagged     atomic.Int64
}

// New builds a Server from the config. It fails only when a configured
// cache directory cannot be created.
func New(cfg Config) (*Server, error) {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 1024
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 500 * time.Microsecond
	}
	pool := engine.New(cfg.Parallel)
	sa := krak.NewSharedArtifacts()
	var disk *artifacts.DiskCache
	if cfg.CacheDir != "" {
		var err error
		if sa, err = krak.NewSharedArtifactsAt(cfg.CacheDir); err != nil {
			return nil, err
		}
		if disk, err = artifacts.OpenDiskCache(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		responses: engine.NewLRU[string, []byte](cfg.CacheSize),
		batch:     newPredictBatcher(pool, cfg.BatchWindow),
		pool:      pool,
		artifacts: sa,
		disk:      disk,
		metrics:   metrics.NewRegistry(),
		admission: newAdmission(cfg),
		jobs:      newJobStore(cfg.MaxJobs, cfg.JobTTL),
	}
	s.bgCtx, s.shutdown = context.WithCancel(context.Background())
	s.machineReg = newMachineRegistry(disk)
	s.registerMetrics()
	mux := http.NewServeMux()
	// Observability endpoints are neither instrumented nor admission
	// controlled: they must answer exactly when the server is saturated,
	// and a scrape counting itself would make the counters self-exciting.
	// They also bypass fault injection — a chaos drill that blinded the
	// observer would be unmeasurable.
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.metrics.Handler)
	route := func(pattern, endpoint, class string, h http.HandlerFunc) {
		h = s.withAdmission(class, h)
		if cfg.Faults != nil {
			h = cfg.Faults.Middleware(h)
		}
		mux.HandleFunc(pattern, s.metrics.Instrument(endpoint, h))
	}
	route("GET /v1/machines", "/v1/machines", classLight, s.handleMachines)
	route("GET /v1/machines/{fingerprint}", "/v1/machines/{fingerprint}", classLight, s.handleMachineHistory)
	route("POST /v1/machines/{fingerprint}", "/v1/machines/{fingerprint}", classLight, s.handleMachineRegister)
	route("POST /v1/calibrate/append", "/v1/calibrate/append", classHeavy, s.handleCalibrateAppend)
	route("POST /v1/predict", "/v1/predict", classLight, s.handlePredict)
	route("POST /v1/simulate", "/v1/simulate", classLight, s.handleSimulate)
	route("POST /v1/sweep", "/v1/sweep", classHeavy, s.handleSweep)
	route("POST /v1/compare", "/v1/compare", classHeavy, s.handleCompare)
	route("POST /v1/calibrate", "/v1/calibrate", classHeavy, s.handleCalibrate)
	route("POST /v1/jobs", "/v1/jobs", classLight, s.handleJobSubmit)
	route("GET /v1/jobs/{id}", "/v1/jobs/{id}", classLight, s.handleJobStatus)
	route("GET /v1/jobs/{id}/result", "/v1/jobs/{id}/result", classLight, s.handleJobResult)
	route("GET /v1/experiments", "/v1/experiments", classLight, s.handleExperimentList)
	route("GET /v1/experiments/{id}", "/v1/experiments/{id}", classLight, s.handleExperiment)
	s.mux = mux
	return s, nil
}

// registerMetrics declares every metric family /metrics exposes. All of
// them read the server's live counters at scrape time — the same sources
// /healthz renders — so the two views cannot drift.
func (s *Server) registerMetrics() {
	reg := s.metrics
	counter := metrics.Counter
	reg.AddFamily("krak_http_requests_total", "counter",
		"HTTP requests served, by route pattern and status code.", reg.CollectRequests)
	reg.AddFamily("krak_http_request_seconds", "histogram",
		"HTTP request latency in seconds, by route pattern.", reg.CollectLatency)
	reg.AddScalar("krak_requests_total", "counter",
		"All HTTP requests received, matched or not.", counter(&s.requests))
	reg.AddScalar("krak_uptime_seconds", "gauge",
		"Seconds since the server started.", func() float64 { return time.Since(s.start).Seconds() })
	reg.AddScalar("krak_parallelism", "gauge",
		"Worker-pool width machines and batches dispatch on.",
		func() float64 { return float64(s.pool.Workers()) })
	reg.AddScalar("krak_response_cache_hits_total", "counter",
		"Responses served from the rendered-response LRU.", counter(&s.cacheHits))
	reg.AddScalar("krak_response_cache_misses_total", "counter",
		"Responses computed because the LRU had no entry.", counter(&s.cacheMisses))
	reg.AddScalar("krak_response_cache_coalesced_total", "counter",
		"Responses served by joining another request's in-flight fill.", counter(&s.cacheCoalesced))
	reg.AddScalar("krak_response_cache_entries", "gauge",
		"Rendered responses currently cached.", func() float64 { return float64(s.responses.Len()) })
	reg.AddScalar("krak_response_cache_capacity", "gauge",
		"Rendered-response LRU capacity.", func() float64 { return float64(s.responses.Cap()) })
	reg.AddScalar("krak_machines", "gauge",
		"Distinct machine configurations memoized.", func() float64 { return float64(s.machines.Len()) })
	reg.AddScalar("krak_machines_rejected_total", "counter",
		"Requests refused because the machine cap was reached.", counter(&s.machinesRejected))
	reg.AddScalar("krak_batches_total", "counter",
		"Predict micro-batches dispatched.", counter(&s.batch.batches))
	reg.AddScalar("krak_batched_jobs_total", "counter",
		"Predict jobs carried by micro-batches.", counter(&s.batch.jobs))
	limGauge := func(fn func(*engine.Limiter) int) map[string]func() float64 {
		return map[string]func() float64{
			classLight: func() float64 { return float64(fn(s.admission.light)) },
			classHeavy: func() float64 { return float64(fn(s.admission.heavy)) },
		}
	}
	reg.AddLabeled("krak_admission_inflight", "gauge",
		"Admitted requests currently in flight, by endpoint class.",
		limGauge((*engine.Limiter).InFlight), "class")
	reg.AddLabeled("krak_admission_waiting", "gauge",
		"Requests waiting in the bounded admission queue, by endpoint class.",
		limGauge((*engine.Limiter).Waiting), "class")
	reg.AddLabeled("krak_admission_rejected_total", "counter",
		"Requests refused by admission control, by endpoint class.",
		map[string]func() float64{
			classLight: counter(&s.admission.rejectedLight),
			classHeavy: counter(&s.admission.rejectedHeavy),
		}, "class")
	jobGauge := func(state string) func() float64 {
		return func() float64 { return float64(s.jobs.countByStatus()[state]) }
	}
	reg.AddLabeled("krak_jobs", "gauge",
		"Live background jobs, by lifecycle state.",
		map[string]func() float64{
			krak.JobPending: jobGauge(krak.JobPending),
			krak.JobRunning: jobGauge(krak.JobRunning),
			krak.JobDone:    jobGauge(krak.JobDone),
			krak.JobFailed:  jobGauge(krak.JobFailed),
		}, "state")
	reg.AddScalar("krak_jobs_evicted_total", "counter",
		"Finished jobs evicted by TTL or the store cap.", counter(&s.jobs.evicted))
	reg.AddScalar("krak_registered_machines", "gauge",
		"Distinct machine fingerprints in the calibration registry.",
		func() float64 { return float64(s.machineReg.len()) })
	reg.AddScalar("krak_calib_drift_flagged_total", "counter",
		"Appended calibrations whose fresh residuals left the stored fit's stderr band.",
		counter(&s.driftFlagged))
	reg.AddScalar("krak_partition_computes_total", "counter",
		"Partition vectors computed from scratch (neither memory nor disk had them).",
		func() float64 { return float64(s.artifacts.Stats().PartitionComputes) })
	diskSeries := func(art func(krak.ArtifactStats) int64, resp func(artifacts.DiskStats) int64) map[string]func() float64 {
		return map[string]func() float64{
			"artifact": func() float64 { return float64(art(s.artifacts.Stats())) },
			"response": func() float64 { return float64(resp(s.disk.Stats())) },
		}
	}
	reg.AddLabeled("krak_disk_cache_hits_total", "counter",
		"Disk-cache entries that verified and were served, by tier.",
		diskSeries(
			func(a krak.ArtifactStats) int64 { return a.DiskHits },
			func(d artifacts.DiskStats) int64 { return d.Hits }), "tier")
	reg.AddLabeled("krak_disk_cache_misses_total", "counter",
		"Disk-cache lookups that missed, by tier.",
		diskSeries(
			func(a krak.ArtifactStats) int64 { return a.DiskMisses },
			func(d artifacts.DiskStats) int64 { return d.Misses }), "tier")
	reg.AddLabeled("krak_disk_cache_writes_total", "counter",
		"Disk-cache entries written, by tier.",
		diskSeries(
			func(a krak.ArtifactStats) int64 { return a.DiskWrites },
			func(d artifacts.DiskStats) int64 { return d.Writes }), "tier")
	reg.AddLabeled("krak_disk_cache_corrupt_total", "counter",
		"Disk-cache entries discarded as corrupt or version-skewed, by tier.",
		diskSeries(
			func(a krak.ArtifactStats) int64 { return a.DiskCorrupt },
			func(d artifacts.DiskStats) int64 { return d.Corrupt }), "tier")
	if s.cfg.Faults != nil {
		reg.AddLabeled("krak_fault_injected_total", "counter",
			"Faults injected by the armed chaos plan, by kind.",
			s.cfg.Faults.MetricSeries(), "kind")
	}
}

// ServeHTTP implements http.Handler. After Close the server answers
// only 503s: the listener should already be drained by then, so any
// straggler is a caller racing shutdown, and an honest refusal with a
// Retry-After beats dispatching onto torn-down machinery.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("%w: server is shutting down", krak.ErrUnavailable))
		return
	}
	s.mux.ServeHTTP(w, r)
}

// Close stops the server's background machinery after the HTTP listener
// has drained (call it after http.Server.Shutdown): it cancels the
// context background jobs run under, waits for every job goroutine to
// exit, and flushes the predict batcher's pending window so no queued
// job is left waiting on a window timer that will never be served.
// Idempotent; safe on a server that never served a request.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.shutdown()
	s.bg.Wait()
	s.batch.close()
	return nil
}

// maxBody bounds request bodies; the wire types are a few hundred bytes.
const maxBody = 1 << 20

// decode reads a strict JSON body into v: unknown fields and trailing
// garbage are errors, exactly what the fuzz harness pounds on.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON body")
	}
	return nil
}

// errorStatus maps a typed krak error to its HTTP status.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, errTooManyMachines):
		// The machine cap can surface through cached fills (compare builds
		// its machines inside one), not only through machineFor call sites.
		return http.StatusServiceUnavailable
	case errors.Is(err, errRegistryFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, krak.ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, errUnknownMachine):
		return http.StatusNotFound
	case errors.Is(err, krak.ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, krak.ErrUnknownDeck),
		errors.Is(err, krak.ErrBadPE),
		errors.Is(err, krak.ErrUnknownModel),
		errors.Is(err, krak.ErrUnknownPartitioner),
		errors.Is(err, krak.ErrUnknownInterconnect),
		errors.Is(err, krak.ErrBadOption),
		errors.Is(err, krak.ErrBadDeckSpec),
		errors.Is(err, krak.ErrBadMachineSpec),
		errors.Is(err, krak.ErrCalibration):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// writeError emits the JSON error envelope. Transient refusals — 503s
// like the machine-configuration cap, 429s like a full job store — all
// carry a Retry-After hint, not just the admission path: the condition
// clears on its own, and the header is what tells a well-behaved client
// to back off instead of abandoning the request.
func writeError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		if w.Header().Get("Retry-After") == "" {
			w.Header().Set("Retry-After", "1")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeJSON marshals v the way the CLI's emit does (indented, trailing
// newline) and writes it.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := renderJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBody(w, body)
}

func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// renderJSON produces the exact bytes `krak <subcommand> --json` prints:
// two-space indentation plus the trailing newline fmt.Println adds.
func renderJSON(v any) ([]byte, error) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// resolveSpec expands an embedded machine file (the wire MachineSpec's
// file field), applies the server-level Quick default, and normalizes —
// after it, the spec's Fingerprint is the machine's serving identity.
func (s *Server) resolveSpec(ms krak.MachineSpec) (krak.MachineSpec, error) {
	r, err := ms.Resolved()
	if err != nil {
		return ms, err
	}
	if s.cfg.Quick {
		r.Quick = true
	}
	return r.Normalized(), nil
}

// errTooManyMachines is the 503 the machine cap returns.
var errTooManyMachines = errors.New("server: too many distinct machine configurations; retry with a known one")

// machineFor returns the shared Machine for a normalized spec, building
// it on first use. All requests against the same platform share the
// machine and therefore its single-flight artifact caches.
func (s *Server) machineFor(ms krak.MachineSpec) (*krak.Machine, error) {
	build := func() (*krak.Machine, error) {
		opts := ms.Options()
		if s.cfg.Parallel > 0 {
			opts = append(opts, krak.WithParallelism(s.cfg.Parallel))
		}
		opts = append(opts, krak.WithSharedArtifacts(s.artifacts))
		return krak.NewMachine(opts...)
	}
	// Validate before touching the cache: engine.Cache memoizes errors
	// forever and Len counts them, so letting invalid specs in would both
	// pin dead entries and let a stream of bad requests consume the
	// machine cap. Machine construction is cheap (no artifact computes),
	// so validating with a throwaway build costs nothing.
	if _, err := build(); err != nil {
		return nil, err
	}
	// The cap check and the insert happen atomically inside GetBounded: a
	// separate Len/Has probe followed by Get would let a burst of novel
	// specs race past the cap, each seeing Len just under the limit before
	// any of them inserted. Known configurations keep serving past the cap
	// (soft cap) — GetBounded admits existing keys unconditionally.
	m, err := s.machines.GetBounded(ms.Fingerprint(), maxMachines, build)
	if errors.Is(err, engine.ErrCacheFull) {
		s.machinesRejected.Add(1)
		return nil, errTooManyMachines
	}
	return m, err
}

// handleHealthz renders the liveness view: every number is read back out
// of the metrics registry (by family name, summing labeled series), so
// /healthz and /metrics are two renderings of the same counters and the
// agreement test can diff them.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	total := func(name string) int64 { return int64(s.metrics.Total(name)) }
	writeJSON(w, map[string]any{
		"status":             "ok",
		"uptime_s":           time.Since(s.start).Seconds(),
		"requests":           total("krak_requests_total"),
		"cache_hits":         total("krak_response_cache_hits_total"),
		"cache_misses":       total("krak_response_cache_misses_total"),
		"cache_coalesced":    total("krak_response_cache_coalesced_total"),
		"cache_len":          total("krak_response_cache_entries"),
		"cache_cap":          total("krak_response_cache_capacity"),
		"machines":           total("krak_machines"),
		"batches":            total("krak_batches_total"),
		"batched_jobs":       total("krak_batched_jobs_total"),
		"parallelism":        total("krak_parallelism"),
		"admission_rejected": total("krak_admission_rejected_total"),
		"jobs":               total("krak_jobs"),
		"registered":         total("krak_registered_machines"),
		"drift_flagged":      total("krak_calib_drift_flagged_total"),
		"partition_computes": total("krak_partition_computes_total"),
		"disk_hits":          total("krak_disk_cache_hits_total"),
	})
}

func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, krak.ListMachines())
}

// responseKind namespaces rendered response bodies in the disk tier.
const responseKind = "response"

// cachedBody looks key up in the rendered-response LRU, filling it on a
// miss; duplicate misses in flight share the one computation. With a
// cache directory configured, a miss consults the disk tier before
// computing, and fresh computations are persisted — so a restarted
// server serves previously rendered responses byte-identically without
// recomputing them. The LRU reports each request's outcome distinctly:
// a hit found the entry filled, a coalesced request joined another
// request's in-flight fill (it waited, it did not compute, and it was
// not served from the finished cache), and a miss ran the fill itself.
func (s *Server) cachedBody(w http.ResponseWriter, key string, fill func() ([]byte, error)) {
	body, outcome, err := s.responses.Do(key, func() ([]byte, error) {
		if b, ok := s.disk.Get(responseKind, key); ok {
			return b, nil
		}
		b, err := fill()
		if err != nil {
			return nil, err
		}
		s.disk.Put(responseKind, key, b)
		return b, nil
	})
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	switch outcome {
	case engine.LRUHit:
		s.cacheHits.Add(1)
	case engine.LRUCoalesced:
		s.cacheCoalesced.Add(1)
	default:
		s.cacheMisses.Add(1)
	}
	writeBody(w, body)
}

// cachedResult is cachedBody for handlers that compute a Result,
// rendering it CLI-identically.
func (s *Server) cachedResult(w http.ResponseWriter, key string, compute func() (*krak.Result, error)) {
	s.cachedBody(w, key, func() ([]byte, error) {
		res, err := compute()
		if err != nil {
			return nil, err
		}
		return renderJSON(res)
	})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req krak.PredictRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	key := req.CanonicalKey()
	// The fill runs detached from this request's context: other requests
	// may be coalesced onto it, and one client disconnecting must not
	// fail the strangers sharing the computation (predictions are short
	// and the rendered result is cacheable regardless).
	s.cachedResult(w, key, func() (*krak.Result, error) {
		//krakcheck:ignore ctxflow deliberate detach: coalesced fill shared by other requests must survive this client disconnecting
		return s.batch.predict(context.Background(), m, sc)
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req krak.SimulateRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	key := req.CanonicalKey()
	s.cachedResult(w, key, func() (*krak.Result, error) {
		sess, err := krak.NewSession(m, sc)
		if err != nil {
			return nil, err
		}
		return sess.Simulate()
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req krak.SweepRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	op, grid, err := req.Grid()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	base, err := krak.NewScenario()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	sess, err := krak.NewSession(m, base)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Sweeps are not response-cached: their wall/work timing fields
	// legitimately vary run to run, and serving stale timings would
	// misreport the realized speedup. The grid points still share the
	// machine's warm artifact caches.
	sr, err := sess.Sweep(r.Context(), op, grid)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, sr)
}

// handleCalibrate fits machine parameters to the request's dataset
// (textual measurement file, structured observations, or self-generated
// runs on the request's machine) and returns a CalibrationResult whose
// body is byte-identical to `krak calibrate --json` for the same inputs.
// Calibration is deterministic for a fixed machine and dataset, so
// responses are cached like predictions, keyed by a content hash of the
// canonical request.
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	var req krak.CalibrateRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	canon, err := json.Marshal(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	key := fmt.Sprintf("calibrate|%x", sha256.Sum256(canon))
	// Like predict fills, the computation runs detached from the request
	// context: coalesced strangers must not be failed by one client
	// disconnecting, and the result is cacheable regardless.
	s.cachedBody(w, key, func() ([]byte, error) {
		sess, err := krak.NewSession(m, sc)
		if err != nil {
			return nil, err
		}
		//krakcheck:ignore ctxflow deliberate detach: coalesced fill shared by other requests must survive this client disconnecting
		ds, err := req.Materialize(context.Background(), sess)
		if err != nil {
			return nil, err
		}
		//krakcheck:ignore ctxflow same deliberate detach as the Materialize call above
		cr, err := sess.Calibrate(context.Background(), ds, krak.CalibrateOptions{Folds: req.Folds, Form: req.Form})
		if err != nil {
			return nil, err
		}
		return renderJSON(cr)
	})
}

// handleMachineHistory serves a registered machine's calibration
// history: the exact bytes stored at registration time, whether they
// came from memory or (after a restart) the disk tier — no refitting.
func (s *Server) handleMachineHistory(w http.ResponseWriter, r *http.Request) {
	body, err := s.machineReg.history(r.PathValue("fingerprint"))
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeBody(w, body)
}

// handleMachineRegister records a calibration result as the
// fingerprint's next version and returns the updated history. The
// result must carry the fingerprint it is being registered under —
// registration is claiming "this calibration described that machine".
func (s *Server) handleMachineRegister(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	var req krak.RegisterMachineRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Result == nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("register request carries no calibration result"))
		return
	}
	if req.Result.FittedFingerprint != fp {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("result's fitted fingerprint %s does not match path fingerprint %s",
				req.Result.FittedFingerprint, fp))
		return
	}
	body, err := s.machineReg.register(fp, req.Result, req.Dataset)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeBody(w, body)
}

// handleCalibrateAppend folds fresh measurements into a registered
// machine's stored dataset: the stored fit is checked for drift against
// the fresh data, the merged dataset is refitted, and the refit is
// registered as the fingerprint's next version. The response body is
// byte-identical to `krak calibrate -data <stored> -append <fresh>
// --json` for the same inputs. Appends mutate the registry, so they are
// never response-cached.
func (s *Server) handleCalibrateAppend(w http.ResponseWriter, r *http.Request) {
	var req krak.AppendRequest
	if err := decode(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req = req.Normalized()
	ms, err := s.resolveSpec(req.Machine)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	req.Machine = ms
	sc, err := req.Scenario()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(req.Machine)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	ver, err := s.machineReg.latest(req.Fingerprint)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	if ver.Dataset == "" {
		writeError(w, http.StatusConflict,
			fmt.Errorf("version %d of %s was registered without its dataset; appends need it to refit",
				ver.Version, req.Fingerprint))
		return
	}
	base, err := krak.ParseDataset([]byte(ver.Dataset))
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	fresh, err := req.Fresh()
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	sess, err := krak.NewSession(m, sc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	cr, err := sess.CalibrateAppend(r.Context(), base, fresh, krak.CalibrateOptions{Folds: req.Folds, Form: req.Form})
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	if cr.Drift != nil && cr.Drift.Flagged {
		s.driftFlagged.Add(1)
	}
	merged := &krak.Dataset{Name: base.Name}
	merged.Observations = append(merged.Observations, base.Observations...)
	merged.Observations = append(merged.Observations, fresh.Observations...)
	if _, err := s.machineReg.register(req.Fingerprint, cr, string(merged.Format())); err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, cr)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, krak.ListExperiments())
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ms, err := machineSpecFromQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if ms, err = s.resolveSpec(ms); err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	m, err := s.machineFor(ms)
	if err != nil {
		writeError(w, s.machineStatus(err), err)
		return
	}
	key := fmt.Sprintf("experiment|%s|%s", id, ms.Fingerprint())
	s.cachedResult(w, key, func() (*krak.Result, error) {
		sc, err := krak.NewScenario()
		if err != nil {
			return nil, err
		}
		sess, err := krak.NewSession(m, sc)
		if err != nil {
			return nil, err
		}
		return sess.Experiment(id)
	})
}

// machineSpecFromQuery reads the optional machine parameters GET
// endpoints accept: ?interconnect=, ?seed=, ?repeats=, ?quick=.
func machineSpecFromQuery(r *http.Request) (krak.MachineSpec, error) {
	var ms krak.MachineSpec
	q := r.URL.Query()
	ms.Interconnect = q.Get("interconnect")
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return ms, fmt.Errorf("bad seed %q: %v", v, err)
		}
		ms.Seed = n
	}
	if v := q.Get("repeats"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return ms, fmt.Errorf("bad repeats %q: %v", v, err)
		}
		ms.Repeats = n
	}
	if v := q.Get("quick"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return ms, fmt.Errorf("bad quick %q: %v", v, err)
		}
		ms.Quick = b
	}
	return ms, nil
}

// machineStatus maps machineFor errors: the cap is 503, the rest are the
// usual typed-error statuses.
func (s *Server) machineStatus(err error) int {
	if errors.Is(err, errTooManyMachines) {
		return http.StatusServiceUnavailable
	}
	return errorStatus(err)
}
